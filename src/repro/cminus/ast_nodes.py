"""AST node definitions.

Nodes carry their source position (``line``) so KGCC diagnostics and check
sites can report ``file:line`` like the paper's tools.  ``Check`` nodes are
not produced by the parser — the KGCC instrumentation pass (§3.4) wraps
pointer operations in them, and its optimization passes remove them again;
each carries a stable ``site`` id used for check counting and dynamic
deinstrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cminus.ctypes import CType


@dataclass
class Node:
    line: int = 0


# ----------------------------------------------------------------- expressions

@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class BinOp(Expr):
    op: str = "+"
    left: Expr = None
    right: Expr = None


@dataclass
class UnOp(Expr):
    op: str = "-"          # one of - ! ~ ++ -- (prefix)
    operand: Expr = None


@dataclass
class Deref(Expr):
    """``*ptr``"""
    ptr: Expr = None


@dataclass
class AddrOf(Expr):
    """``&lvalue``"""
    target: Expr = None


@dataclass
class Index(Expr):
    """``base[index]``"""
    base: Expr = None
    index: Expr = None


@dataclass
class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""
    base: Expr = None
    field_name: str = ""
    arrow: bool = False


@dataclass
class Call(Expr):
    func: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Assign(Expr):
    """``target op= value`` where op may be empty (plain assignment)."""
    target: Expr = None
    value: Expr = None
    op: str = ""            # "", "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"


@dataclass
class PostIncDec(Expr):
    target: Expr = None
    op: str = "++"


@dataclass
class SizeOf(Expr):
    ctype: Optional[CType] = None
    expr: Optional[Expr] = None


@dataclass
class Check(Expr):
    """KGCC-inserted runtime check wrapping ``inner`` (§3.4).

    kind is ``'deref'`` (validate an about-to-be-accessed address) or
    ``'arith'`` (validate the result of pointer arithmetic, possibly
    creating an out-of-bounds *peer* object).
    """
    kind: str = "deref"
    inner: Expr = None
    access_size: int = 1
    site: str = "?"
    enabled: bool = True


# ------------------------------------------------------------------ statements

@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Stmt):
    name: str = ""
    ctype: CType = None
    init: Optional[Expr] = None


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    orelse: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ------------------------------------------------------------------ top level

@dataclass
class Param(Node):
    name: str = ""
    ctype: CType = None


@dataclass
class FuncDef(Node):
    name: str = ""
    ret_type: CType = None
    params: list[Param] = field(default_factory=list)
    body: Block = None


@dataclass
class Program(Node):
    funcs: dict[str, FuncDef] = field(default_factory=dict)
    globals: list[VarDecl] = field(default_factory=list)
    structs: dict[str, CType] = field(default_factory=dict)  # tag -> StructType


def walk(node):
    """Yield ``node`` and all AST descendants (generic traversal)."""
    if node is None:
        return
    yield node
    for f in vars(node).values():
        if isinstance(f, Node):
            yield from walk(f)
        elif isinstance(f, list):
            for item in f:
                if isinstance(item, Node):
                    yield from walk(item)
        elif isinstance(f, dict):
            for item in f.values():
                if isinstance(item, Node):
                    yield from walk(item)
