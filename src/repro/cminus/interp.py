"""Tree-walking interpreter for the C subset.

Variables live at real simulated addresses supplied by a
:class:`~repro.cminus.memaccess.MemoryAccess`; every load and store moves
actual bytes, so the safety tools observe genuine memory behaviour:
Kefence's guard pages fault on overflowing pointers, segment limits stop
escaping ones, and KGCC's :class:`~repro.cminus.ast_nodes.Check` nodes are
executed here by calling into the attached check runtime.

Hooks (all optional):

* ``on_op()`` — called once per AST operation; harnesses charge
  :attr:`CostModel.cminus_op` cycles here.
* ``step_hook()`` — called once per statement; the Cosy kernel extension
  hits its preemption point here (the watchdog of §2.3).
* ``var_hooks`` — ``on_decl(name, addr, ctype, site)`` /
  ``on_scope_exit(addrs)``; KGCC registers stack objects in its address
  map through these (the compiler-inserted registrations of §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.cminus import ast_nodes as ast
from repro.cminus.ctypes import (ArrayType, CHAR, CType, INT, IntType,
                                 PointerType, StructType)
from repro.cminus.memaccess import MemoryAccess
from repro.errors import CMinusError

_WORD_MASK = (1 << 64) - 1


class CheckRuntime(Protocol):
    """What KGCC plugs in to execute Check nodes."""

    def check_deref(self, addr: int, size: int, site: str) -> None: ...
    def check_index(self, base: int, addr: int, size: int, site: str) -> None: ...
    def check_arith(self, base: int, result: int, site: str) -> int: ...


class VarHooks(Protocol):
    def on_decl(self, name: str, addr: int, ctype: CType, site: str) -> None: ...
    def on_scope_exit(self, addrs: list[int]) -> None: ...


@dataclass
class ExecLimits:
    """Runaway protection for untrusted programs."""

    max_ops: int | None = None


class _ReturnSignal(Exception):
    def __init__(self, value: int):
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


@dataclass
class _Binding:
    addr: int
    ctype: CType


def _truncate(value: int, ctype: CType) -> int:
    """Store-width truncation with sign handling."""
    if isinstance(ctype, PointerType):
        return value & _WORD_MASK
    bits = ctype.size * 8
    value &= (1 << bits) - 1
    if isinstance(ctype, IntType) and ctype.signed and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


class Interpreter:
    """Executes a parsed :class:`~repro.cminus.ast_nodes.Program`."""

    def __init__(self, program: ast.Program, mem: MemoryAccess, *,
                 externs: dict[str, Callable] | None = None,
                 on_op: Callable[[], None] | None = None,
                 on_op_batch: Callable[[int], None] | None = None,
                 step_hook: Callable[[], None] | None = None,
                 check_runtime: CheckRuntime | None = None,
                 var_hooks: VarHooks | None = None,
                 limits: ExecLimits | None = None,
                 filename: str = "<cminus>"):
        self.program = program
        self.mem = mem
        self.externs = externs or {}
        if on_op is None and on_op_batch is not None:
            # API symmetry with CompiledEngine: accept a batch callback;
            # the tree-walker simply charges it one op at a time
            batch = on_op_batch

            def on_op() -> None:
                batch(1)
        self.on_op = on_op
        self.step_hook = step_hook
        self.check_runtime = check_runtime
        self.var_hooks = var_hooks
        self.limits = limits or ExecLimits()
        self.filename = filename
        self.ops_executed = 0
        self._scopes: list[dict[str, _Binding]] = [{}]
        self._frame_allocs: list[list[tuple[int, int]]] = []
        self._strings: dict[int, int] = {}  # id(StrLit node) -> address
        self._init_globals()

    # ------------------------------------------------------------- plumbing

    def _tick(self) -> None:
        self.ops_executed += 1
        if self.on_op is not None:
            self.on_op()
        if (self.limits.max_ops is not None
                and self.ops_executed > self.limits.max_ops):
            raise CMinusError(
                f"execution exceeded {self.limits.max_ops} operations")

    def _site(self, node: ast.Node) -> str:
        return f"{self.filename}:{node.line}"

    def _init_globals(self) -> None:
        for decl in self.program.globals:
            addr = self.mem.malloc(max(decl.ctype.size, 1))
            self._scopes[0][decl.name] = _Binding(addr, decl.ctype)
            if self.var_hooks is not None:
                self.var_hooks.on_decl(decl.name, addr, decl.ctype,
                                       self._site(decl))
            if decl.init is not None:
                value, _ = self.eval(decl.init)
                self._store(addr, value, decl.ctype)
            else:
                self.mem.write(addr, b"\0" * max(decl.ctype.size, 1))

    def _lookup(self, name: str, line: int) -> _Binding:
        for scope in reversed(self._scopes):
            binding = scope.get(name)
            if binding is not None:
                return binding
        raise CMinusError(f"undefined variable '{name}'", line)

    # ----------------------------------------------------------- load/store

    def _load(self, addr: int, ctype: CType) -> int:
        data = self.mem.read(addr, ctype.size)
        signed = isinstance(ctype, IntType) and ctype.signed
        return int.from_bytes(data, "little", signed=signed)

    def _store(self, addr: int, value: int, ctype: CType) -> None:
        bits = ctype.size * 8
        raw = value & ((1 << bits) - 1)
        self.mem.write(addr, raw.to_bytes(ctype.size, "little"))

    # ----------------------------------------------------------------- call

    def call(self, name: str, *args: int) -> int:
        """Call a program function (or extern) with integer arguments."""
        func = self.program.funcs.get(name)
        if func is None:
            ext = self.externs.get(name)
            if ext is None:
                raise CMinusError(f"undefined function '{name}'", 0)
            result = ext(*args)
            return int(result) if result is not None else 0
        if len(args) != len(func.params):
            raise CMinusError(
                f"{name}() takes {len(func.params)} args, got {len(args)}",
                func.line)
        scope: dict[str, _Binding] = {}
        allocs: list[tuple[int, int]] = []
        for param, arg in zip(func.params, args):
            size = max(param.ctype.size, 1)
            addr = self.mem.alloc_stack(size)
            allocs.append((addr, size))
            self._store(addr, arg, param.ctype)
            scope[param.name] = _Binding(addr, param.ctype)
            if self.var_hooks is not None:
                self.var_hooks.on_decl(param.name, addr, param.ctype,
                                       self._site(param))
        self._scopes.append(scope)
        self._frame_allocs.append(allocs)
        try:
            self.exec_stmt(func.body, new_scope=False)
            result = 0
        except _ReturnSignal as ret:
            result = ret.value
        finally:
            self._scopes.pop()
            frame = self._frame_allocs.pop()
            if self.var_hooks is not None:
                self.var_hooks.on_scope_exit([a for a, _ in frame])
            for addr, size in reversed(frame):
                self.mem.free_stack(addr, size)
        return result

    # ------------------------------------------------------------ statements

    def exec_stmt(self, stmt: ast.Stmt, *, new_scope: bool = True) -> None:
        self._tick()
        if self.step_hook is not None:
            self.step_hook()
        method = getattr(self, f"_exec_{type(stmt).__name__}", None)
        if method is None:
            raise CMinusError(f"cannot execute {type(stmt).__name__}", stmt.line)
        if isinstance(stmt, ast.Block):
            method(stmt, new_scope)
        else:
            method(stmt)

    def _exec_Block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self._scopes.append({})
        allocs: list[tuple[int, int]] = []
        self._frame_allocs.append(allocs)
        try:
            for stmt in block.stmts:
                self.exec_stmt(stmt)
        finally:
            self._frame_allocs.pop()
            if self.var_hooks is not None and allocs:
                self.var_hooks.on_scope_exit([a for a, _ in allocs])
            for addr, size in reversed(allocs):
                self.mem.free_stack(addr, size)
            if new_scope:
                self._scopes.pop()

    def _exec_VarDecl(self, decl: ast.VarDecl) -> None:
        size = max(decl.ctype.size, 1)
        addr = self.mem.alloc_stack(size)
        self._frame_allocs[-1].append((addr, size))
        self._scopes[-1][decl.name] = _Binding(addr, decl.ctype)
        if self.var_hooks is not None:
            self.var_hooks.on_decl(decl.name, addr, decl.ctype, self._site(decl))
        if decl.init is not None:
            if isinstance(decl.ctype, (ArrayType, StructType)):
                raise CMinusError(
                    "array/struct initializers are not supported", decl.line)
            value, _ = self.eval(decl.init)
            self._store(addr, value, decl.ctype)
        else:
            self.mem.write(addr, b"\0" * size)

    def _exec_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        self.eval(stmt.expr)

    def _exec_If(self, stmt: ast.If) -> None:
        cond, _ = self.eval(stmt.cond)
        if cond:
            self.exec_stmt(stmt.then)
        elif stmt.orelse is not None:
            self.exec_stmt(stmt.orelse)

    def _exec_While(self, stmt: ast.While) -> None:
        while True:
            cond, _ = self.eval(stmt.cond)
            if not cond:
                break
            try:
                self.exec_stmt(stmt.body)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _exec_For(self, stmt: ast.For) -> None:
        self._scopes.append({})
        allocs: list[tuple[int, int]] = []
        self._frame_allocs.append(allocs)
        try:
            if stmt.init is not None:
                self.exec_stmt(stmt.init)
            while True:
                if stmt.cond is not None:
                    cond, _ = self.eval(stmt.cond)
                    if not cond:
                        break
                try:
                    self.exec_stmt(stmt.body)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.step is not None:
                    self.eval(stmt.step)
        finally:
            self._frame_allocs.pop()
            if self.var_hooks is not None and allocs:
                self.var_hooks.on_scope_exit([a for a, _ in allocs])
            for addr, size in reversed(allocs):
                self.mem.free_stack(addr, size)
            self._scopes.pop()

    def _exec_Return(self, stmt: ast.Return) -> None:
        value = 0
        if stmt.value is not None:
            value, _ = self.eval(stmt.value)
        raise _ReturnSignal(value)

    def _exec_Break(self, stmt: ast.Break) -> None:
        raise _BreakSignal()

    def _exec_Continue(self, stmt: ast.Continue) -> None:
        raise _ContinueSignal()

    # ----------------------------------------------------------- expressions

    def eval(self, expr: ast.Expr) -> tuple[int, CType]:
        """Evaluate to (value, type)."""
        self._tick()
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise CMinusError(f"cannot evaluate {type(expr).__name__}", expr.line)
        return method(expr)

    def lvalue(self, expr: ast.Expr) -> tuple[int, CType]:
        """Evaluate to (address, type of the object at that address)."""
        if isinstance(expr, ast.Ident):
            binding = self._lookup(expr.name, expr.line)
            return binding.addr, binding.ctype
        if isinstance(expr, ast.Deref):
            ptr, ptype = self.eval(expr.ptr)
            if not isinstance(ptype, PointerType):
                raise CMinusError("dereference of non-pointer", expr.line)
            return ptr, ptype.pointee
        if isinstance(expr, ast.Index):
            base, btype = self.eval(expr.base)
            idx, _ = self.eval(expr.index)
            if isinstance(btype, PointerType):
                elem = btype.pointee
            else:
                raise CMinusError("indexing a non-pointer", expr.line)
            return base + idx * elem.size, elem
        if isinstance(expr, ast.Member):
            return self._member_lvalue(expr)
        if isinstance(expr, ast.Check):
            # a Check wrapping an lvalue: run the check, return the lvalue
            if isinstance(expr.inner, ast.Index):
                return self._checked_index_lvalue(expr)
            addr, ctype = self.lvalue(expr.inner)
            self._run_check(expr, addr)
            return addr, ctype
        raise CMinusError(f"{type(expr).__name__} is not an lvalue", expr.line)

    def _checked_index_lvalue(self, node: ast.Check) -> tuple[int, CType]:
        """Index under a KGCC check: evaluate base and index exactly once,
        then validate with intended-referent semantics — ``a[i]`` must stay
        inside the object ``a`` points into, not merely hit *some* object."""
        inner = node.inner
        base, btype = self.eval(inner.base)
        idx, _ = self.eval(inner.index)
        if not isinstance(btype, PointerType):
            raise CMinusError("indexing a non-pointer", inner.line)
        elem = btype.pointee
        addr = base + idx * elem.size
        if node.enabled and self.check_runtime is not None:
            self.check_runtime.check_index(base, addr, node.access_size,
                                           node.site)
        return addr, elem

    # --- leaves

    def _eval_IntLit(self, e: ast.IntLit) -> tuple[int, CType]:
        return e.value, INT

    def _eval_StrLit(self, e: ast.StrLit) -> tuple[int, CType]:
        addr = self._strings.get(id(e))
        if addr is None:
            raw = e.value.encode() + b"\0"
            addr = self.mem.malloc(len(raw))
            self.mem.write(addr, raw)
            self._strings[id(e)] = addr
        return addr, PointerType(CHAR)

    def _eval_Ident(self, e: ast.Ident) -> tuple[int, CType]:
        binding = self._lookup(e.name, e.line)
        if isinstance(binding.ctype, ArrayType):
            return binding.addr, binding.ctype.decay()
        return self._load(binding.addr, binding.ctype), binding.ctype

    # --- operators

    def _eval_BinOp(self, e: ast.BinOp) -> tuple[int, CType]:
        if e.op == "&&":
            left, _ = self.eval(e.left)
            if not left:
                return 0, INT
            right, _ = self.eval(e.right)
            return (1 if right else 0), INT
        if e.op == "||":
            left, _ = self.eval(e.left)
            if left:
                return 1, INT
            right, _ = self.eval(e.right)
            return (1 if right else 0), INT
        lv, lt = self.eval(e.left)
        rv, rt = self.eval(e.right)
        return self._binop(e.op, lv, lt, rv, rt, e.line)

    def _binop(self, op: str, lv: int, lt: CType, rv: int, rt: CType,
               line: int) -> tuple[int, CType]:
        lptr = isinstance(lt, PointerType)
        rptr = isinstance(rt, PointerType)
        if op == "+":
            if lptr and rptr:
                raise CMinusError("cannot add two pointers", line)
            if lptr:
                return (lv + rv * lt.pointee.size) & _WORD_MASK, lt
            if rptr:
                return (rv + lv * rt.pointee.size) & _WORD_MASK, rt
            return _truncate(lv + rv, INT), INT
        if op == "-":
            if lptr and rptr:
                if lt.pointee.size != rt.pointee.size:
                    raise CMinusError("pointer subtraction type mismatch", line)
                return (lv - rv) // max(lt.pointee.size, 1), INT
            if lptr:
                return (lv - rv * lt.pointee.size) & _WORD_MASK, lt
            return _truncate(lv - rv, INT), INT
        if op in ("==", "!=", "<", ">", "<=", ">="):
            result = {
                "==": lv == rv, "!=": lv != rv, "<": lv < rv,
                ">": lv > rv, "<=": lv <= rv, ">=": lv >= rv,
            }[op]
            return (1 if result else 0), INT
        if lptr or rptr:
            raise CMinusError(f"invalid pointer operand to '{op}'", line)
        if op == "*":
            return _truncate(lv * rv, INT), INT
        if op == "/":
            if rv == 0:
                raise CMinusError("division by zero", line)
            return _truncate(int(lv / rv), INT), INT  # C truncates toward zero
        if op == "%":
            if rv == 0:
                raise CMinusError("modulo by zero", line)
            return _truncate(lv - int(lv / rv) * rv, INT), INT
        if op == "&":
            return _truncate(lv & rv, INT), INT
        if op == "|":
            return _truncate(lv | rv, INT), INT
        if op == "^":
            return _truncate(lv ^ rv, INT), INT
        if op == "<<":
            return _truncate(lv << (rv & 63), INT), INT
        if op == ">>":
            return _truncate(lv >> (rv & 63), INT), INT
        raise CMinusError(f"unknown operator '{op}'", line)

    def _eval_UnOp(self, e: ast.UnOp) -> tuple[int, CType]:
        if e.op in ("++", "--"):
            addr, ctype = self.lvalue(e.operand)
            old = self._load(addr, ctype)
            scale = ctype.pointee.size if isinstance(ctype, PointerType) else 1
            new = old + scale if e.op == "++" else old - scale
            self._store(addr, new, ctype)
            return _truncate(new, ctype), ctype
        value, ctype = self.eval(e.operand)
        if e.op == "-":
            return _truncate(-value, INT), INT
        if e.op == "!":
            return (0 if value else 1), INT
        if e.op == "~":
            return _truncate(~value, INT), INT
        raise CMinusError(f"unknown unary operator '{e.op}'", e.line)

    def _eval_Deref(self, e: ast.Deref) -> tuple[int, CType]:
        addr, ctype = self.lvalue(e)
        if isinstance(ctype, ArrayType):
            return addr, ctype.decay()
        return self._load(addr, ctype), ctype

    def _member_lvalue(self, expr: ast.Member) -> tuple[int, CType]:
        """Address and type of ``base.field`` / ``base->field``."""
        if expr.arrow:
            ptr, ptype = self.eval(expr.base)
            if not (isinstance(ptype, PointerType)
                    and isinstance(ptype.pointee, StructType)):
                raise CMinusError("-> on a non-struct-pointer", expr.line)
            struct = ptype.pointee
            base_addr = ptr
        else:
            base_addr, btype = self.lvalue(expr.base)
            if not isinstance(btype, StructType):
                raise CMinusError(". on a non-struct value", expr.line)
            struct = btype
        try:
            offset, ftype = struct.field(expr.field_name)
        except KeyError as exc:
            raise CMinusError(str(exc), expr.line) from exc
        return base_addr + offset, ftype

    def _eval_Member(self, e: ast.Member) -> tuple[int, CType]:
        addr, ctype = self._member_lvalue(e)
        if isinstance(ctype, ArrayType):
            return addr, ctype.decay()
        if isinstance(ctype, StructType):
            return addr, PointerType(ctype)  # nested structs decay to addr
        return self._load(addr, ctype), ctype

    def _eval_AddrOf(self, e: ast.AddrOf) -> tuple[int, CType]:
        addr, ctype = self.lvalue(e.target)
        if isinstance(ctype, ArrayType):
            return addr, PointerType(ctype.elem)
        return addr, PointerType(ctype)

    def _eval_Index(self, e: ast.Index) -> tuple[int, CType]:
        addr, ctype = self.lvalue(e)
        if isinstance(ctype, ArrayType):
            return addr, ctype.decay()
        return self._load(addr, ctype), ctype

    def _eval_Assign(self, e: ast.Assign) -> tuple[int, CType]:
        addr, ctype = self.lvalue(e.target)
        if isinstance(ctype, ArrayType):
            raise CMinusError("cannot assign to an array", e.line)
        value, vtype = self.eval(e.value)
        if e.op:
            old = self._load(addr, ctype)
            value, _ = self._binop(e.op, old, ctype, value, vtype, e.line)
        self._store(addr, value, ctype)
        return _truncate(value, ctype), ctype

    def _eval_PostIncDec(self, e: ast.PostIncDec) -> tuple[int, CType]:
        addr, ctype = self.lvalue(e.target)
        old = self._load(addr, ctype)
        scale = ctype.pointee.size if isinstance(ctype, PointerType) else 1
        new = old + scale if e.op == "++" else old - scale
        self._store(addr, new, ctype)
        return old, ctype

    def _eval_Call(self, e: ast.Call) -> tuple[int, CType]:
        args = [self.eval(a)[0] for a in e.args]
        return self.call(e.func, *args), INT

    def _eval_SizeOf(self, e: ast.SizeOf) -> tuple[int, CType]:
        if e.ctype is not None:
            return e.ctype.size, INT
        return self._static_type(e.expr).size, INT

    def _static_type(self, expr: ast.Expr) -> CType:
        """Best-effort static type of an expression (no evaluation)."""
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.StrLit):
            return PointerType(CHAR)
        if isinstance(expr, ast.Ident):
            return self._lookup(expr.name, expr.line).ctype
        if isinstance(expr, ast.Deref):
            inner = self._static_type(expr.ptr)
            if isinstance(inner, PointerType):
                return inner.pointee
            if isinstance(inner, ArrayType):
                return inner.elem
            raise CMinusError("sizeof: dereference of non-pointer", expr.line)
        if isinstance(expr, ast.Index):
            inner = self._static_type(expr.base)
            if isinstance(inner, (PointerType,)):
                return inner.pointee
            if isinstance(inner, ArrayType):
                return inner.elem
            raise CMinusError("sizeof: indexing a non-pointer", expr.line)
        if isinstance(expr, ast.AddrOf):
            return PointerType(self._static_type(expr.target))
        if isinstance(expr, ast.Member):
            base = self._static_type(expr.base)
            struct = base.pointee if isinstance(base, PointerType) else base
            if isinstance(struct, StructType):
                try:
                    return struct.field(expr.field_name)[1]
                except KeyError as exc:
                    raise CMinusError(str(exc), expr.line) from exc
            raise CMinusError("sizeof: member of a non-struct", expr.line)
        return INT

    # ------------------------------------------------------------ KGCC hooks

    def _run_check(self, node: ast.Check, addr: int) -> None:
        if node.enabled and self.check_runtime is not None:
            self.check_runtime.check_deref(addr, node.access_size, node.site)

    def _eval_Check(self, e: ast.Check) -> tuple[int, CType]:
        if e.kind == "arith":
            # Evaluate the arithmetic, then let the runtime validate/track it.
            value, ctype = self.eval(e.inner)
            if e.enabled and self.check_runtime is not None:
                base = self._arith_base(e.inner)
                value = self.check_runtime.check_arith(base, value, e.site)
            return value, ctype
        # deref-kind Check wrapping a load
        if isinstance(e.inner, ast.Index):
            addr, ctype = self._checked_index_lvalue(e)
        else:
            addr, ctype = self.lvalue(e.inner)
            self._run_check(e, addr)
        if isinstance(ctype, ArrayType):
            return addr, ctype.decay()
        return self._load(addr, ctype), ctype

    def _arith_base(self, expr: ast.Expr) -> int:
        """The pointer operand's value, for peer attribution (§3.4)."""
        if isinstance(expr, ast.BinOp):
            for side in (expr.left, expr.right):
                try:
                    value, ctype = self.eval(side)
                except CMinusError:
                    continue
                if isinstance(ctype, PointerType):
                    return value
        if isinstance(expr, (ast.PostIncDec, ast.UnOp)):
            target = getattr(expr, "target", None) or getattr(expr, "operand")
            value, ctype = self.eval(target)
            if isinstance(ctype, PointerType):
                return value
        return 0
