"""Closure compiler for the C subset: lower an AST once, execute many.

The tree-walking :class:`~repro.cminus.interp.Interpreter` re-dispatches on
node types and fires a Python ``on_op`` callback for every simulated
operation.  That is faithful but slow, and every hot path in the
reproduction (CoSy compounds, KGCC-instrumented modules) bottoms out in
it.  This module performs the move real kernel-embedded runtimes make —
eBPF JIT-compiles at load time — scaled to this simulator:

* :func:`compile_program` lowers a parsed :class:`ast.Program` into flat
  Python closures.  Variable references resolve to frame-slot indices at
  compile time, type sizes and truncation masks are precomputed,
  per-node ``isinstance``/``getattr`` dispatch disappears, and KGCC
  :class:`ast.Check` nodes are baked into the closure stream.
* :class:`CompiledEngine` executes compiled code behind the same ``call``
  API as the interpreter, with **batched cost accounting**: operations
  accumulate in a pending counter and are charged ``costs.cminus_op × N``
  at *flush points* — before every memory access, allocation, runtime
  check, variable hook, extern call, ``step_hook`` and raised error — so
  any mid-run observer (preemption watchdog, fault injection, Kefence
  traps, segment-limit faults) reads a clock identical to the
  tree-walker's.  The tree-walker stays as the differential oracle.
* :class:`CodeCache` caches compiled programs keyed by (program
  fingerprint, instrumentation generation).  KGCC ``instrument`` /
  ``optimize`` / ``hotpatch`` / ``deinstrument`` and CoSy re-registration
  bump the generation via :func:`bump_generation`, so stale compiled code
  can never run: the engine re-checks the generation on every ``call``.

Semantics parity contract (verified by ``tests/property/test_prop_compile``):
return values, memory state, fault sites and messages, check verdicts,
``ops_executed`` and charged cycle totals all match the tree-walker.  The
single intentional divergence: the tree-walker resolves names against the
whole dynamic scope stack (a callee can see its caller's locals); compiled
code is lexically scoped.  Well-scoped programs — everything this repo
executes — behave identically.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Any, Callable

from repro.cminus import ast_nodes as ast
from repro.cminus.ctypes import (ArrayType, CHAR, CType, INT, IntType,
                                 PointerType, StructType)
from repro.cminus.interp import (CheckRuntime, ExecLimits, VarHooks,
                                 _WORD_MASK)
from repro.cminus.memaccess import MemoryAccess
from repro.errors import CMinusError

#: an expression closure: (engine, frame) -> value (or address, for lvalues)
EvalFn = Callable[["CompiledEngine", Any], int]
#: a statement closure: (engine, frame) -> None
StmtFn = Callable[["CompiledEngine", Any], None]

_GEN_ATTR = "_cminus_generation"
_FP_ATTR = "_cminus_fingerprint"


# --------------------------------------------------------------- generations

def generation_of(program: ast.Program) -> int:
    """The program's instrumentation generation (0 for a fresh parse)."""
    return getattr(program, _GEN_ATTR, 0)


def bump_generation(program: ast.Program) -> int:
    """Record that ``program``'s AST was mutated (instrumentation added or
    removed, a function hot-patched, checks toggled).  Any compiled code
    for earlier generations becomes stale and is invalidated on the next
    cache lookup."""
    gen = generation_of(program) + 1
    setattr(program, _GEN_ATTR, gen)
    return gen


def program_fingerprint(program: ast.Program) -> str:
    """Structural hash of the AST (cached per generation)."""
    gen = generation_of(program)
    cached = getattr(program, _FP_ATTR, None)
    if cached is not None and cached[0] == gen:
        return cached[1]
    h = hashlib.sha256()
    for node in ast.walk(program):
        h.update(type(node).__name__.encode())
        for key, value in vars(node).items():
            if isinstance(value, (bool, int, str)):
                h.update(f"{key}={value};".encode())
            elif isinstance(value, CType):
                h.update(f"{key}={value!r};".encode())
    fp = h.hexdigest()[:16]
    setattr(program, _FP_ATTR, (gen, fp))
    return fp


# ----------------------------------------------------------- control signals

class _Return(Exception):
    def __init__(self, value: int):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


# ------------------------------------------------------------------ helpers

def _make_truncate(ctype: CType) -> Callable[[int], int]:
    """Specialized equivalent of ``interp._truncate`` for a fixed type."""
    if isinstance(ctype, PointerType):
        return lambda v: v & _WORD_MASK
    bits = ctype.size * 8
    mask = (1 << bits) - 1
    if isinstance(ctype, IntType) and ctype.signed and bits > 0:
        half = 1 << (bits - 1)
        full = 1 << bits

        def trunc_signed(v: int) -> int:
            v &= mask
            return v - full if v >= half else v

        return trunc_signed
    return lambda v: v & mask


def _is_signed(ctype: CType) -> bool:
    return isinstance(ctype, IntType) and ctype.signed


class _GlobalSpec:
    """Everything the engine needs to materialize one global variable."""

    __slots__ = ("name", "ctype", "index", "line", "alloc_size",
                 "store_size", "store_mask", "init")

    def __init__(self, name: str, ctype: CType, index: int, line: int,
                 init: EvalFn | None):
        self.name = name
        self.ctype = ctype
        self.index = index
        self.line = line
        self.alloc_size = max(ctype.size, 1)
        self.store_size = ctype.size
        self.store_mask = (1 << (ctype.size * 8)) - 1
        self.init = init


class _ParamSpec:
    __slots__ = ("name", "ctype", "slot", "line", "alloc_size",
                 "store_size", "store_mask")

    def __init__(self, name: str, ctype: CType, slot: int, line: int):
        self.name = name
        self.ctype = ctype
        self.slot = slot
        self.line = line
        self.alloc_size = max(ctype.size, 1)
        self.store_size = ctype.size
        self.store_mask = (1 << (ctype.size * 8)) - 1


class CompiledFunction:
    """One lowered function: parameter specs plus the body closure."""

    __slots__ = ("name", "line", "params", "nslots", "body")

    def __init__(self, name: str, line: int):
        self.name = name
        self.line = line
        self.params: list[_ParamSpec] = []
        self.nslots = 0
        self.body: StmtFn | None = None


class CompiledProgram:
    """The closure-compiled form of one :class:`ast.Program` generation."""

    __slots__ = ("program", "generation", "fingerprint", "funcs",
                 "globals_spec")

    def __init__(self, program: ast.Program):
        self.program = program
        self.generation = generation_of(program)
        self.fingerprint = program_fingerprint(program)
        self.funcs: dict[str, CompiledFunction] = {}
        self.globals_spec: list[_GlobalSpec] = []


def _invoke(rt: "CompiledEngine", cf: CompiledFunction,
            args: list[int]) -> int:
    """Call a compiled function: mirror of ``Interpreter.call``."""
    if len(args) != len(cf.params):
        rt.flush()
        raise CMinusError(
            f"{cf.name}() takes {len(cf.params)} args, got {len(args)}",
            cf.line)
    rt.flush()
    mem = rt.mem
    vh = rt.var_hooks
    frame: list[int] = [0] * cf.nslots
    allocs: list[tuple[int, int]] = []
    for spec, arg in zip(cf.params, args):
        addr = mem.alloc_stack(spec.alloc_size)
        allocs.append((addr, spec.alloc_size))
        mem.write(addr, (arg & spec.store_mask).to_bytes(
            spec.store_size, "little"))
        frame[spec.slot] = addr
        if vh is not None:
            vh.on_decl(spec.name, addr, spec.ctype,
                       f"{rt.filename}:{spec.line}")
    body = cf.body
    assert body is not None
    try:
        body(rt, frame)
        result = 0
    except _Return as ret:
        result = ret.value
    finally:
        rt.flush()
        if vh is not None:
            vh.on_scope_exit([a for a, _ in allocs])
        for addr, size in reversed(allocs):
            mem.free_stack(addr, size)
    return result


# ---------------------------------------------------------------- the compiler

class _Compiler:
    """Per-function lowering: expressions/statements -> closures.

    Scope resolution happens here, at compile time: every name becomes
    either a frame-slot index (locals/params) or a global index, so
    executed code never walks a scope dictionary.
    """

    def __init__(self, program: ast.Program, compiled: CompiledProgram):
        self.program = program
        self.compiled = compiled
        self.global_index: dict[str, tuple[int, CType]] = {}
        self.scopes: list[dict[str, tuple[int, CType]]] = []
        self.nslots = 0

    # ---------------------------------------------------------------- scopes

    def declare(self, name: str, ctype: CType) -> int:
        slot = self.nslots
        self.nslots += 1
        self.scopes[-1][name] = (slot, ctype)
        return slot

    def lookup(self, name: str) -> tuple[str, int, CType] | None:
        """('local'|'global', slot-or-index, ctype) or None."""
        for scope in reversed(self.scopes):
            entry = scope.get(name)
            if entry is not None:
                return ("local", entry[0], entry[1])
        entry = self.global_index.get(name)
        if entry is not None:
            return ("global", entry[0], entry[1])
        return None

    def _fast_ident_slot(self, expr: ast.Expr
                         ) -> tuple[str, int, CType] | None:
        """The ('local'|'global', idx, ctype) of a scalar Ident lvalue —
        its address is just a slot read, so assignment/increment closures
        can skip the lvalue-closure call entirely."""
        if not isinstance(expr, ast.Ident):
            return None
        found = self.lookup(expr.name)
        if found is None or isinstance(found[2], (ArrayType, StructType)):
            return None
        return found

    # ----------------------------------------------------------- error nodes

    @staticmethod
    def _raise_eval(msg: str, line: int) -> EvalFn:
        """An expression that errors when (and only when) evaluated — this
        preserves the tree-walker's lazy error timing for code that is
        statically wrong but never executed."""

        def run(rt: "CompiledEngine", frame: Any) -> int:
            rt.pending += 1
            rt.flush()
            raise CMinusError(msg, line)

        return run

    @staticmethod
    def _raise_after(ev: EvalFn, msg: str, line: int) -> EvalFn:
        """Evaluate ``ev`` for its side effects (mirroring the tree-walker's
        operand-first evaluation order), then raise."""

        def run(rt: "CompiledEngine", frame: Any) -> int:
            ev(rt, frame)
            rt.flush()
            raise CMinusError(msg, line)

        return run

    @staticmethod
    def _raise_lvalue(msg: str, line: int) -> EvalFn:
        """An lvalue that errors on use (no tick: ``lvalue()`` never ticks)."""

        def run(rt: "CompiledEngine", frame: Any) -> int:
            rt.flush()
            raise CMinusError(msg, line)

        return run

    # ------------------------------------------------------------ expressions

    def compile_eval(self, expr: ast.Expr) -> tuple[EvalFn, CType]:
        """Closure returning the expression's value; type is static.

        Every eval closure begins with ``rt.pending += 1`` — the exact
        analogue of the tree-walker's ``_tick()`` at ``eval()`` entry.
        """
        if isinstance(expr, ast.IntLit):
            value = expr.value

            def run_int(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return value

            return run_int, INT

        if isinstance(expr, ast.StrLit):
            raw = expr.value.encode() + b"\0"
            key = id(expr)
            self._keepalive(expr)

            def run_str(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                addr = rt.strings.get(key)
                if addr is None:
                    rt.flush()
                    addr = rt.mem.malloc(len(raw))
                    rt.mem.write(addr, raw)
                    rt.strings[key] = addr
                return addr

            return run_str, PointerType(CHAR)

        if isinstance(expr, ast.Ident):
            return self._compile_ident(expr)
        if isinstance(expr, ast.BinOp):
            return self._compile_binop(expr)
        if isinstance(expr, ast.UnOp):
            return self._compile_unop(expr)
        if isinstance(expr, ast.Deref):
            lv, ctype = self.compile_lvalue(expr)
            return self._eval_via_lvalue(lv, ctype)
        if isinstance(expr, ast.Member):
            lv, ctype = self._member_lvalue(expr)
            if isinstance(ctype, StructType):
                struct = ctype

                def run_member(rt: "CompiledEngine", frame: Any) -> int:
                    rt.pending += 1
                    return lv(rt, frame)

                return run_member, PointerType(struct)
            return self._eval_via_lvalue(lv, ctype)
        if isinstance(expr, ast.AddrOf):
            lv, ctype = self.compile_lvalue_of(expr.target)

            def run_addr(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return lv(rt, frame)

            if isinstance(ctype, ArrayType):
                return run_addr, PointerType(ctype.elem)
            return run_addr, PointerType(ctype)
        if isinstance(expr, ast.Index):
            lv, ctype = self.compile_lvalue(expr)
            return self._eval_via_lvalue(lv, ctype)
        if isinstance(expr, ast.Assign):
            return self._compile_assign(expr)
        if isinstance(expr, ast.PostIncDec):
            return self._compile_postincdec(expr)
        if isinstance(expr, ast.Call):
            return self._compile_call(expr)
        if isinstance(expr, ast.SizeOf):
            return self._compile_sizeof(expr)
        if isinstance(expr, ast.Check):
            return self._compile_check(expr)
        return (self._raise_eval(f"cannot evaluate {type(expr).__name__}",
                                 expr.line), INT)

    def _keepalive(self, node: ast.Node) -> None:
        # compiled closures key interned strings by id(node); the compiled
        # program keeps the whole AST alive through .program, so ids are
        # stable for the cache entry's lifetime.  Nothing to do — the hook
        # exists to document the invariant.
        pass

    def _load_closure(self, lv: EvalFn, ctype: CType) -> EvalFn:
        size = ctype.size
        signed = _is_signed(ctype)

        def run(rt: "CompiledEngine", frame: Any) -> int:
            rt.pending += 1
            addr = lv(rt, frame)
            # inlined flush: loads are the hottest closures of all
            n = rt.pending
            if n:
                rt.pending = 0
                ops = rt.ops_executed + n
                if ops > rt._ops_cap:
                    rt.pending = n
                    rt.flush()
                rt.ops_executed = ops
                b = rt._on_op_batch
                if b is not None:
                    b(n)
            return rt.mem.read_int(addr, size, signed)

        return run

    def _eval_via_lvalue(self, lv: EvalFn, ctype: CType
                         ) -> tuple[EvalFn, CType]:
        if isinstance(ctype, ArrayType):
            decayed = ctype.decay()

            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return lv(rt, frame)

            return run, decayed
        return self._load_closure(lv, ctype), ctype

    def _compile_ident(self, expr: ast.Ident) -> tuple[EvalFn, CType]:
        found = self.lookup(expr.name)
        if found is None:
            return (self._raise_eval(f"undefined variable '{expr.name}'",
                                     expr.line), INT)
        kind, idx, ctype = found
        if isinstance(ctype, ArrayType):
            decayed = ctype.decay()
            if kind == "local":
                def run_arr(rt: "CompiledEngine", frame: Any) -> int:
                    rt.pending += 1
                    return frame[idx]
            else:
                def run_arr(rt: "CompiledEngine", frame: Any) -> int:
                    rt.pending += 1
                    return rt.globals[idx]
            return run_arr, decayed
        size = ctype.size
        signed = _is_signed(ctype)
        if kind == "local":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                # inlined tick + flush: local scalar loads dominate all
                # interpreter-bound profiles
                n = rt.pending + 1
                rt.pending = 0
                ops = rt.ops_executed + n
                if ops > rt._ops_cap:
                    rt.pending = n
                    rt.flush()
                rt.ops_executed = ops
                b = rt._on_op_batch
                if b is not None:
                    b(n)
                return rt.mem.read_int(frame[idx], size, signed)
        else:
            def run(rt: "CompiledEngine", frame: Any) -> int:
                n = rt.pending + 1
                rt.pending = 0
                ops = rt.ops_executed + n
                if ops > rt._ops_cap:
                    rt.pending = n
                    rt.flush()
                rt.ops_executed = ops
                b = rt._on_op_batch
                if b is not None:
                    b(n)
                return rt.mem.read_int(rt.globals[idx], size, signed)
        return run, ctype

    # ------------------------------------------------------------- operators

    def _make_binop_combine(self, op: str, lt: CType, rtt: CType, line: int
                            ) -> tuple[Callable[["CompiledEngine", int, int],
                                                int], CType]:
        """Specialized (rt, lv, rv) -> value mirroring ``Interpreter._binop``
        for statically-known operand types."""
        lptr = isinstance(lt, PointerType)
        rptr = isinstance(rtt, PointerType)
        t_int = _make_truncate(INT)

        def raiser(msg: str) -> Callable[["CompiledEngine", int, int], int]:
            def c(rt: "CompiledEngine", lv: int, rv: int) -> int:
                rt.flush()
                raise CMinusError(msg, line)
            return c

        if op == "+":
            if lptr and rptr:
                return raiser("cannot add two pointers"), INT
            if lptr:
                s = lt.pointee.size  # type: ignore[union-attr]
                return (lambda rt, lv, rv: (lv + rv * s) & _WORD_MASK), lt
            if rptr:
                s = rtt.pointee.size  # type: ignore[union-attr]
                return (lambda rt, lv, rv: (rv + lv * s) & _WORD_MASK), rtt
            return (lambda rt, lv, rv: t_int(lv + rv)), INT
        if op == "-":
            if lptr and rptr:
                if lt.pointee.size != rtt.pointee.size:  # type: ignore[union-attr]
                    return raiser("pointer subtraction type mismatch"), INT
                s = max(lt.pointee.size, 1)  # type: ignore[union-attr]
                return (lambda rt, lv, rv: (lv - rv) // s), INT
            if lptr:
                s = lt.pointee.size  # type: ignore[union-attr]
                return (lambda rt, lv, rv: (lv - rv * s) & _WORD_MASK), lt
            return (lambda rt, lv, rv: t_int(lv - rv)), INT
        if op == "==":
            return (lambda rt, lv, rv: 1 if lv == rv else 0), INT
        if op == "!=":
            return (lambda rt, lv, rv: 1 if lv != rv else 0), INT
        if op == "<":
            return (lambda rt, lv, rv: 1 if lv < rv else 0), INT
        if op == ">":
            return (lambda rt, lv, rv: 1 if lv > rv else 0), INT
        if op == "<=":
            return (lambda rt, lv, rv: 1 if lv <= rv else 0), INT
        if op == ">=":
            return (lambda rt, lv, rv: 1 if lv >= rv else 0), INT
        if lptr or rptr:
            return raiser(f"invalid pointer operand to '{op}'"), INT
        if op == "*":
            return (lambda rt, lv, rv: t_int(lv * rv)), INT
        if op == "/":
            def c_div(rt: "CompiledEngine", lv: int, rv: int) -> int:
                if rv == 0:
                    rt.flush()
                    raise CMinusError("division by zero", line)
                return t_int(int(lv / rv))  # C truncates toward zero
            return c_div, INT
        if op == "%":
            def c_mod(rt: "CompiledEngine", lv: int, rv: int) -> int:
                if rv == 0:
                    rt.flush()
                    raise CMinusError("modulo by zero", line)
                return t_int(lv - int(lv / rv) * rv)
            return c_mod, INT
        if op == "&":
            return (lambda rt, lv, rv: t_int(lv & rv)), INT
        if op == "|":
            return (lambda rt, lv, rv: t_int(lv | rv)), INT
        if op == "^":
            return (lambda rt, lv, rv: t_int(lv ^ rv)), INT
        if op == "<<":
            return (lambda rt, lv, rv: t_int(lv << (rv & 63))), INT
        if op == ">>":
            return (lambda rt, lv, rv: t_int(lv >> (rv & 63))), INT
        return raiser(f"unknown operator '{op}'"), INT

    def _compile_binop(self, expr: ast.BinOp) -> tuple[EvalFn, CType]:
        if expr.op == "&&":
            ev_l, _ = self.compile_eval(expr.left)
            ev_r, _ = self.compile_eval(expr.right)

            def run_and(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                if not ev_l(rt, frame):
                    return 0
                return 1 if ev_r(rt, frame) else 0

            return run_and, INT
        if expr.op == "||":
            ev_l, _ = self.compile_eval(expr.left)
            ev_r, _ = self.compile_eval(expr.right)

            def run_or(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                if ev_l(rt, frame):
                    return 1
                return 1 if ev_r(rt, frame) else 0

            return run_or, INT
        ev_l, lt = self.compile_eval(expr.left)
        ev_r, rtt = self.compile_eval(expr.right)
        if not isinstance(lt, PointerType) and not isinstance(rtt,
                                                              PointerType):
            # fused int-int paths: skip the combine indirection entirely
            if isinstance(expr.right, ast.IntLit):
                fused = self._fused_int_binop_const(expr.op, ev_l,
                                                    expr.right.value)
                if fused is not None:
                    return fused, INT
            fused = self._fused_int_binop(expr.op, ev_l, ev_r, expr.line)
            if fused is not None:
                return fused, INT
        combine, result_type = self._make_binop_combine(expr.op, lt, rtt,
                                                        expr.line)

        def run(rt: "CompiledEngine", frame: Any) -> int:
            rt.pending += 1
            lv = ev_l(rt, frame)
            rv = ev_r(rt, frame)
            return combine(rt, lv, rv)

        return run, result_type

    @staticmethod
    def _fused_int_binop_const(op: str, ev_l: EvalFn, c: int
                               ) -> EvalFn | None:
        """``<expr> op <int-literal>`` with the literal folded into the
        closure.  Tick discipline mirrors the tree-walker exactly: one tick
        for the BinOp before the left operand, one tick for the literal
        after it (the literal's own eval), so pending counts agree at every
        flush point."""
        t = _make_truncate(INT)
        if op == "+":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return t(lv + c)
        elif op == "-":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return t(lv - c)
        elif op == "*":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return t(lv * c)
        elif op == "==":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return 1 if lv == c else 0
        elif op == "!=":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return 1 if lv != c else 0
        elif op == "<":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return 1 if lv < c else 0
        elif op == ">":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return 1 if lv > c else 0
        elif op == "<=":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return 1 if lv <= c else 0
        elif op == ">=":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return 1 if lv >= c else 0
        elif op == "&":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return t(lv & c)
        elif op == "|":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return t(lv | c)
        elif op == "^":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return t(lv ^ c)
        elif op == "<<":
            sh = c & 63

            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return t(lv << sh)
        elif op == ">>":
            sh = c & 63

            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return t(lv >> sh)
        elif op == "/" and c != 0:
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return t(int(lv / c))
        elif op == "%" and c != 0:
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rt.pending += 1
                return t(lv - int(lv / c) * c)
        else:
            return None
        return run

    @staticmethod
    def _fused_int_binop(op: str, ev_l: EvalFn, ev_r: EvalFn,
                         line: int) -> EvalFn | None:
        t = _make_truncate(INT)
        if op == "+":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return t(ev_l(rt, frame) + ev_r(rt, frame))
        elif op == "-":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return t(ev_l(rt, frame) - ev_r(rt, frame))
        elif op == "*":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return t(ev_l(rt, frame) * ev_r(rt, frame))
        elif op == "==":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return 1 if ev_l(rt, frame) == ev_r(rt, frame) else 0
        elif op == "!=":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return 1 if ev_l(rt, frame) != ev_r(rt, frame) else 0
        elif op == "<":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return 1 if ev_l(rt, frame) < ev_r(rt, frame) else 0
        elif op == ">":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return 1 if ev_l(rt, frame) > ev_r(rt, frame) else 0
        elif op == "<=":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return 1 if ev_l(rt, frame) <= ev_r(rt, frame) else 0
        elif op == ">=":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return 1 if ev_l(rt, frame) >= ev_r(rt, frame) else 0
        elif op == "&":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return t(ev_l(rt, frame) & ev_r(rt, frame))
        elif op == "|":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return t(ev_l(rt, frame) | ev_r(rt, frame))
        elif op == "^":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return t(ev_l(rt, frame) ^ ev_r(rt, frame))
        elif op == "<<":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return t(ev_l(rt, frame) << (ev_r(rt, frame) & 63))
        elif op == ">>":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return t(ev_l(rt, frame) >> (ev_r(rt, frame) & 63))
        elif op == "/":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rv = ev_r(rt, frame)
                if rv == 0:
                    rt.flush()
                    raise CMinusError("division by zero", line)
                return t(int(lv / rv))
        elif op == "%":
            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv = ev_l(rt, frame)
                rv = ev_r(rt, frame)
                if rv == 0:
                    rt.flush()
                    raise CMinusError("modulo by zero", line)
                return t(lv - int(lv / rv) * rv)
        else:
            return None
        return run

    def _compile_unop(self, expr: ast.UnOp) -> tuple[EvalFn, CType]:
        if expr.op in ("++", "--"):
            lv_cl, ctype = self.compile_lvalue_of(expr.operand)
            scale = (ctype.pointee.size if isinstance(ctype, PointerType)
                     else 1)
            if expr.op == "--":
                scale = -scale
            size = ctype.size
            signed = _is_signed(ctype)
            mask = (1 << (size * 8)) - 1
            trunc = _make_truncate(ctype)

            def run_incdec(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                addr = lv_cl(rt, frame)
                n = rt.pending
                if n:
                    rt.pending = 0
                    ops = rt.ops_executed + n
                    if ops > rt._ops_cap:
                        rt.pending = n
                        rt.flush()
                    rt.ops_executed = ops
                    b = rt._on_op_batch
                    if b is not None:
                        b(n)
                old = rt.mem.read_int(addr, size, signed)
                new = old + scale
                rt.mem.write(addr, (new & mask).to_bytes(size, "little"))
                return trunc(new)

            return run_incdec, ctype
        ev, _ = self.compile_eval(expr.operand)
        t_int = _make_truncate(INT)
        if expr.op == "-":
            def run_neg(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return t_int(-ev(rt, frame))
            return run_neg, INT
        if expr.op == "!":
            def run_not(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return 0 if ev(rt, frame) else 1
            return run_not, INT
        if expr.op == "~":
            def run_inv(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                return t_int(~ev(rt, frame))
            return run_inv, INT
        return (self._raise_after(
            ev, f"unknown unary operator '{expr.op}'", expr.line), INT)

    def _compile_assign_stmt(self, expr: ast.Assign) -> StmtFn | None:
        """``x = e;`` / ``x op= e;`` with a scalar Ident target, fused into
        one statement closure: statement tick, hook, assign tick, value,
        flush, store.  Tick/hook/flush order is exactly the unfused
        ExprStmt + Assign sequence, so pending counts agree at every
        observable point."""
        fast = self._fast_ident_slot(expr.target)
        if fast is None:
            return None
        kind, idx, ctype = fast
        ev_val, vtype = self.compile_eval(expr.value)
        size = ctype.size
        signed = _is_signed(ctype)
        mask = (1 << (size * 8)) - 1
        is_local = kind == "local"
        if expr.op:
            combine, _ = self._make_binop_combine(expr.op, ctype, vtype,
                                                  expr.line)

            def run_aug_stmt(rt: "CompiledEngine", frame: Any) -> None:
                rt.pending += 1          # statement tick
                sh = rt.step_hook
                if sh is not None:
                    n = rt.pending
                    if n:
                        ops = rt.ops_executed + n
                        if ops > rt._ops_cap:
                            rt.flush()
                        rt.pending = 0
                        rt.ops_executed = ops
                        b = rt._on_op_batch
                        if b is not None:
                            b(n)
                    sh()
                rt.pending += 1          # the Assign node's tick
                value = ev_val(rt, frame)
                n = rt.pending
                rt.pending = 0
                ops = rt.ops_executed + n
                if ops > rt._ops_cap:
                    rt.pending = n
                    rt.flush()
                rt.ops_executed = ops
                b = rt._on_op_batch
                if b is not None:
                    b(n)
                addr = frame[idx] if is_local else rt.globals[idx]
                old = rt.mem.read_int(addr, size, signed)
                value = combine(rt, old, value)
                rt.mem.write(addr, (value & mask).to_bytes(size, "little"))

            return run_aug_stmt

        def run_assign_stmt(rt: "CompiledEngine", frame: Any) -> None:
            rt.pending += 1              # statement tick
            sh = rt.step_hook
            if sh is not None:
                n = rt.pending
                if n:
                    ops = rt.ops_executed + n
                    if ops > rt._ops_cap:
                        rt.flush()
                    rt.pending = 0
                    rt.ops_executed = ops
                    b = rt._on_op_batch
                    if b is not None:
                        b(n)
                sh()
            rt.pending += 1              # the Assign node's tick
            value = ev_val(rt, frame)
            n = rt.pending
            rt.pending = 0
            ops = rt.ops_executed + n
            if ops > rt._ops_cap:
                rt.pending = n
                rt.flush()
            rt.ops_executed = ops
            b = rt._on_op_batch
            if b is not None:
                b(n)
            addr = frame[idx] if is_local else rt.globals[idx]
            rt.mem.write(addr, (value & mask).to_bytes(size, "little"))

        return run_assign_stmt

    def _compile_assign(self, expr: ast.Assign) -> tuple[EvalFn, CType]:
        lv_cl, ctype = self.compile_lvalue_of(expr.target)
        if isinstance(ctype, ArrayType):
            line = expr.line

            def run_bad(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                lv_cl(rt, frame)
                rt.flush()
                raise CMinusError("cannot assign to an array", line)

            return run_bad, ctype
        ev_val, vtype = self.compile_eval(expr.value)
        size = ctype.size
        signed = _is_signed(ctype)
        mask = (1 << (size * 8)) - 1
        trunc = _make_truncate(ctype)
        if expr.op:
            combine, _ = self._make_binop_combine(expr.op, ctype, vtype,
                                                  expr.line)

            def run_aug(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                addr = lv_cl(rt, frame)
                value = ev_val(rt, frame)
                n = rt.pending
                if n:
                    rt.pending = 0
                    ops = rt.ops_executed + n
                    if ops > rt._ops_cap:
                        rt.pending = n
                        rt.flush()
                    rt.ops_executed = ops
                    b = rt._on_op_batch
                    if b is not None:
                        b(n)
                old = rt.mem.read_int(addr, size, signed)
                value = combine(rt, old, value)
                rt.mem.write(addr, (value & mask).to_bytes(size, "little"))
                return trunc(value)

            return run_aug, ctype

        def run(rt: "CompiledEngine", frame: Any) -> int:
            rt.pending += 1
            addr = lv_cl(rt, frame)
            value = ev_val(rt, frame)
            n = rt.pending
            if n:
                rt.pending = 0
                ops = rt.ops_executed + n
                if ops > rt._ops_cap:
                    rt.pending = n
                    rt.flush()
                rt.ops_executed = ops
                b = rt._on_op_batch
                if b is not None:
                    b(n)
            rt.mem.write(addr, (value & mask).to_bytes(size, "little"))
            return trunc(value)

        return run, ctype

    def _compile_postincdec(self, expr: ast.PostIncDec
                            ) -> tuple[EvalFn, CType]:
        lv_cl, ctype = self.compile_lvalue_of(expr.target)
        scale = ctype.pointee.size if isinstance(ctype, PointerType) else 1
        if expr.op == "--":
            scale = -scale
        size = ctype.size
        signed = _is_signed(ctype)
        mask = (1 << (size * 8)) - 1
        fast = self._fast_ident_slot(expr.target)
        if fast is not None:
            kind, idx, _ = fast
            is_local = kind == "local"

            def run_fast(rt: "CompiledEngine", frame: Any) -> int:
                n = rt.pending + 1
                rt.pending = 0
                ops = rt.ops_executed + n
                if ops > rt._ops_cap:
                    rt.pending = n
                    rt.flush()
                rt.ops_executed = ops
                b = rt._on_op_batch
                if b is not None:
                    b(n)
                addr = frame[idx] if is_local else rt.globals[idx]
                old = rt.mem.read_int(addr, size, signed)
                rt.mem.write(addr, ((old + scale) & mask).to_bytes(size,
                                                                   "little"))
                return old

            return run_fast, ctype

        def run(rt: "CompiledEngine", frame: Any) -> int:
            rt.pending += 1
            addr = lv_cl(rt, frame)
            n = rt.pending
            if n:
                rt.pending = 0
                ops = rt.ops_executed + n
                if ops > rt._ops_cap:
                    rt.pending = n
                    rt.flush()
                rt.ops_executed = ops
                b = rt._on_op_batch
                if b is not None:
                    b(n)
            old = rt.mem.read_int(addr, size, signed)
            rt.mem.write(addr, ((old + scale) & mask).to_bytes(size,
                                                               "little"))
            return old

        return run, ctype

    def _compile_call(self, expr: ast.Call) -> tuple[EvalFn, CType]:
        arg_cls = tuple(self.compile_eval(a)[0] for a in expr.args)
        name = expr.func
        if name in self.program.funcs:
            cf = self.compiled.funcs[name]

            def run(rt: "CompiledEngine", frame: Any) -> int:
                rt.pending += 1
                args = [a(rt, frame) for a in arg_cls]
                return _invoke(rt, cf, args)

            return run, INT

        def run_ext(rt: "CompiledEngine", frame: Any) -> int:
            rt.pending += 1
            args = [a(rt, frame) for a in arg_cls]
            ext = rt.externs.get(name)
            if ext is None:
                rt.flush()
                raise CMinusError(f"undefined function '{name}'", 0)
            rt.flush()
            result = ext(*args)
            return int(result) if result is not None else 0

        return run_ext, INT

    def _compile_sizeof(self, expr: ast.SizeOf) -> tuple[EvalFn, CType]:
        try:
            if expr.ctype is not None:
                size = expr.ctype.size
            else:
                assert expr.expr is not None
                size = self._static_type(expr.expr).size
        except CMinusError as exc:
            # mirror the tree-walker: the error fires when evaluated
            return self._raise_eval(exc.args[0].rsplit(" at line", 1)[0]
                                    if exc.line else exc.args[0],
                                    exc.line), INT

        def run(rt: "CompiledEngine", frame: Any) -> int:
            rt.pending += 1
            return size

        return run, INT

    def _static_type(self, expr: ast.Expr) -> CType:
        """Compile-time mirror of ``Interpreter._static_type``."""
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.StrLit):
            return PointerType(CHAR)
        if isinstance(expr, ast.Ident):
            found = self.lookup(expr.name)
            if found is None:
                raise CMinusError(f"undefined variable '{expr.name}'",
                                  expr.line)
            return found[2]
        if isinstance(expr, ast.Deref):
            inner = self._static_type(expr.ptr)
            if isinstance(inner, PointerType):
                return inner.pointee
            if isinstance(inner, ArrayType):
                return inner.elem
            raise CMinusError("sizeof: dereference of non-pointer", expr.line)
        if isinstance(expr, ast.Index):
            inner = self._static_type(expr.base)
            if isinstance(inner, PointerType):
                return inner.pointee
            if isinstance(inner, ArrayType):
                return inner.elem
            raise CMinusError("sizeof: indexing a non-pointer", expr.line)
        if isinstance(expr, ast.AddrOf):
            return PointerType(self._static_type(expr.target))
        if isinstance(expr, ast.Member):
            base = self._static_type(expr.base)
            struct = base.pointee if isinstance(base, PointerType) else base
            if isinstance(struct, StructType):
                try:
                    return struct.field(expr.field_name)[1]
                except KeyError as exc:
                    raise CMinusError(str(exc), expr.line) from exc
            raise CMinusError("sizeof: member of a non-struct", expr.line)
        return INT

    # --------------------------------------------------------------- lvalues

    def compile_lvalue_of(self, expr: ast.Expr) -> tuple[EvalFn, CType]:
        """Closure returning the ADDRESS of ``expr``.  Mirrors
        ``Interpreter.lvalue`` — which does NOT tick."""
        if isinstance(expr, ast.Ident):
            found = self.lookup(expr.name)
            if found is None:
                return (self._raise_lvalue(
                    f"undefined variable '{expr.name}'", expr.line), INT)
            kind, idx, ctype = found
            if kind == "local":
                def run_l(rt: "CompiledEngine", frame: Any) -> int:
                    return frame[idx]
                return run_l, ctype

            def run_g(rt: "CompiledEngine", frame: Any) -> int:
                return rt.globals[idx]
            return run_g, ctype
        if isinstance(expr, ast.Deref):
            ev_ptr, ptype = self.compile_eval(expr.ptr)
            if not isinstance(ptype, PointerType):
                return (self._raise_after(ev_ptr, "dereference of non-pointer",
                                          expr.line), INT)
            return ev_ptr, ptype.pointee
        if isinstance(expr, ast.Index):
            ev_base, btype = self.compile_eval(expr.base)
            ev_idx, _ = self.compile_eval(expr.index)
            if not isinstance(btype, PointerType):
                def run_bad(rt: "CompiledEngine", frame: Any) -> int:
                    ev_base(rt, frame)
                    ev_idx(rt, frame)
                    rt.flush()
                    raise CMinusError("indexing a non-pointer", expr.line)
                return run_bad, INT
            elem = btype.pointee
            esize = elem.size

            def run_idx(rt: "CompiledEngine", frame: Any) -> int:
                base = ev_base(rt, frame)
                idx = ev_idx(rt, frame)
                return base + idx * esize

            return run_idx, elem
        if isinstance(expr, ast.Member):
            return self._member_lvalue(expr)
        if isinstance(expr, ast.Check):
            if isinstance(expr.inner, ast.Index):
                return self._checked_index_lvalue(expr)
            lv_cl, ctype = self.compile_lvalue_of(expr.inner)
            check = self._make_deref_check(expr)

            def run_chk(rt: "CompiledEngine", frame: Any) -> int:
                addr = lv_cl(rt, frame)
                check(rt, addr)
                return addr

            return run_chk, ctype
        return (self._raise_lvalue(
            f"{type(expr).__name__} is not an lvalue", expr.line), INT)

    # compile_lvalue: alias used where the tree-walker calls self.lvalue(e)
    compile_lvalue = compile_lvalue_of

    def _member_lvalue(self, expr: ast.Member) -> tuple[EvalFn, CType]:
        if expr.arrow:
            ev_base, btype = self.compile_eval(expr.base)
            if not (isinstance(btype, PointerType)
                    and isinstance(btype.pointee, StructType)):
                return (self._raise_after(ev_base, "-> on a non-struct-pointer",
                                          expr.line), INT)
            struct = btype.pointee
            base_cl = ev_base
        else:
            base_cl, bt = self.compile_lvalue_of(expr.base)
            if not isinstance(bt, StructType):
                return (self._raise_after(base_cl, ". on a non-struct value",
                                          expr.line), INT)
            struct = bt
        try:
            offset, ftype = struct.field(expr.field_name)
        except KeyError as exc:
            return (self._raise_after(base_cl, str(exc), expr.line), INT)
        if offset == 0:
            return base_cl, ftype

        def run(rt: "CompiledEngine", frame: Any) -> int:
            return base_cl(rt, frame) + offset

        return run, ftype

    # ---------------------------------------------------------------- checks

    def _make_deref_check(self, node: ast.Check
                          ) -> Callable[["CompiledEngine", int], None]:
        """(rt, addr) -> None executing the baked deref check.  The
        ``enabled`` flag is read from the live AST node so dynamic
        deinstrumentation takes effect even before the recompile its
        generation bump triggers."""
        access_size = node.access_size
        site = node.site

        def check(rt: "CompiledEngine", addr: int) -> None:
            if node.enabled:
                cr = rt.check_runtime
                if cr is not None:
                    rt.flush()
                    cr.check_deref(addr, access_size, site)

        return check

    def _checked_index_lvalue(self, node: ast.Check) -> tuple[EvalFn, CType]:
        """Mirror of ``Interpreter._checked_index_lvalue``: evaluate base and
        index exactly once, then validate with intended-referent
        semantics."""
        inner = node.inner
        assert isinstance(inner, ast.Index)
        ev_base, btype = self.compile_eval(inner.base)
        ev_idx, _ = self.compile_eval(inner.index)
        if not isinstance(btype, PointerType):
            line = inner.line

            def run_bad(rt: "CompiledEngine", frame: Any) -> int:
                ev_base(rt, frame)
                ev_idx(rt, frame)
                rt.flush()
                raise CMinusError("indexing a non-pointer", line)

            return run_bad, INT
        elem = btype.pointee
        esize = elem.size
        access_size = node.access_size
        site = node.site

        def run(rt: "CompiledEngine", frame: Any) -> int:
            base = ev_base(rt, frame)
            idx = ev_idx(rt, frame)
            addr = base + idx * esize
            if node.enabled:
                cr = rt.check_runtime
                if cr is not None:
                    rt.flush()
                    cr.check_index(base, addr, access_size, site)
            return addr

        return run, elem

    def _compile_check(self, expr: ast.Check) -> tuple[EvalFn, CType]:
        if expr.kind == "arith":
            return self._compile_arith_check(expr)
        # deref-kind Check wrapping a load
        if isinstance(expr.inner, ast.Index):
            lv_cl, ctype = self._checked_index_lvalue(expr)
        else:
            inner_lv, ctype = self.compile_lvalue_of(expr.inner)
            check = self._make_deref_check(expr)

            def lv_cl(rt: "CompiledEngine", frame: Any,
                      _lv: EvalFn = inner_lv,
                      _check: Callable[["CompiledEngine", int], None] = check
                      ) -> int:
                addr = _lv(rt, frame)
                _check(rt, addr)
                return addr
        return self._eval_via_lvalue(lv_cl, ctype)

    def _compile_arith_check(self, expr: ast.Check) -> tuple[EvalFn, CType]:
        ev_inner, ctype = self.compile_eval(expr.inner)
        site = expr.site
        inner = expr.inner
        base_fn: Callable[["CompiledEngine", Any], int]
        if isinstance(inner, ast.BinOp):
            sides = []
            for side in (inner.left, inner.right):
                ev_side, stype = self.compile_eval(side)
                sides.append((ev_side, isinstance(stype, PointerType)))
            side_specs = tuple(sides)

            def base_fn(rt: "CompiledEngine", frame: Any) -> int:
                # mirror of _arith_base: re-evaluate operands (including
                # their side effects and ticks), first pointer wins
                for ev_side, is_ptr in side_specs:
                    try:
                        v = ev_side(rt, frame)
                    except CMinusError:
                        continue
                    if is_ptr:
                        return v
                return 0
        elif isinstance(inner, (ast.PostIncDec, ast.UnOp)):
            target = getattr(inner, "target", None) or getattr(inner,
                                                               "operand")
            ev_t, ttype = self.compile_eval(target)
            t_is_ptr = isinstance(ttype, PointerType)

            def base_fn(rt: "CompiledEngine", frame: Any) -> int:
                v = ev_t(rt, frame)
                return v if t_is_ptr else 0
        else:
            def base_fn(rt: "CompiledEngine", frame: Any) -> int:
                return 0
        node = expr

        def run(rt: "CompiledEngine", frame: Any) -> int:
            rt.pending += 1
            value = ev_inner(rt, frame)
            if node.enabled:
                cr = rt.check_runtime
                if cr is not None:
                    base = base_fn(rt, frame)
                    rt.flush()
                    value = cr.check_arith(base, value, site)
            return value

        return run, ctype

    # ------------------------------------------------------------ statements

    def compile_stmt(self, stmt: ast.Stmt) -> StmtFn:
        """Every statement closure opens with the exact tree-walker
        sequence: tick, then ``step_hook`` (flushing first so the hook sees
        an up-to-date clock)."""
        if isinstance(stmt, ast.Block):
            return self.compile_block(stmt, new_scope=True)
        if isinstance(stmt, ast.VarDecl):
            return self._compile_vardecl(stmt)
        if isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Assign):
                fused = self._compile_assign_stmt(stmt.expr)
                if fused is not None:
                    return fused
            ev, _ = self.compile_eval(stmt.expr)

            def run_expr(rt: "CompiledEngine", frame: Any) -> None:
                rt.pending += 1
                sh = rt.step_hook
                if sh is not None:
                    n = rt.pending
                    if n:
                        ops = rt.ops_executed + n
                        if ops > rt._ops_cap:
                            rt.flush()
                        rt.pending = 0
                        rt.ops_executed = ops
                        b = rt._on_op_batch
                        if b is not None:
                            b(n)
                    sh()
                ev(rt, frame)

            return run_expr
        if isinstance(stmt, ast.If):
            return self._compile_if(stmt)
        if isinstance(stmt, ast.While):
            return self._compile_while(stmt)
        if isinstance(stmt, ast.For):
            return self._compile_for(stmt)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                ev_val, _ = self.compile_eval(stmt.value)

                def run_ret(rt: "CompiledEngine", frame: Any) -> None:
                    rt.pending += 1
                    sh = rt.step_hook
                    if sh is not None:
                        n = rt.pending
                        if n:
                            ops = rt.ops_executed + n
                            if ops > rt._ops_cap:
                                rt.flush()
                            rt.pending = 0
                            rt.ops_executed = ops
                            b = rt._on_op_batch
                            if b is not None:
                                b(n)
                        sh()
                    raise _Return(ev_val(rt, frame))

                return run_ret

            def run_ret0(rt: "CompiledEngine", frame: Any) -> None:
                rt.pending += 1
                sh = rt.step_hook
                if sh is not None:
                    n = rt.pending
                    if n:
                        ops = rt.ops_executed + n
                        if ops > rt._ops_cap:
                            rt.flush()
                        rt.pending = 0
                        rt.ops_executed = ops
                        b = rt._on_op_batch
                        if b is not None:
                            b(n)
                    sh()
                raise _Return(0)

            return run_ret0
        if isinstance(stmt, ast.Break):
            def run_brk(rt: "CompiledEngine", frame: Any) -> None:
                rt.pending += 1
                sh = rt.step_hook
                if sh is not None:
                    n = rt.pending
                    if n:
                        ops = rt.ops_executed + n
                        if ops > rt._ops_cap:
                            rt.flush()
                        rt.pending = 0
                        rt.ops_executed = ops
                        b = rt._on_op_batch
                        if b is not None:
                            b(n)
                    sh()
                raise _Break()

            return run_brk
        if isinstance(stmt, ast.Continue):
            def run_cont(rt: "CompiledEngine", frame: Any) -> None:
                rt.pending += 1
                sh = rt.step_hook
                if sh is not None:
                    n = rt.pending
                    if n:
                        ops = rt.ops_executed + n
                        if ops > rt._ops_cap:
                            rt.flush()
                        rt.pending = 0
                        rt.ops_executed = ops
                        b = rt._on_op_batch
                        if b is not None:
                            b(n)
                    sh()
                raise _Continue()

            return run_cont
        msg = f"cannot execute {type(stmt).__name__}"
        line = stmt.line

        def run_bad(rt: "CompiledEngine", frame: Any) -> None:
            rt.pending += 1
            sh = rt.step_hook
            if sh is not None:
                n = rt.pending
                if n:
                    ops = rt.ops_executed + n
                    if ops > rt._ops_cap:
                        rt.flush()
                    rt.pending = 0
                    rt.ops_executed = ops
                    b = rt._on_op_batch
                    if b is not None:
                        b(n)
                sh()
            rt.flush()
            raise CMinusError(msg, line)

        return run_bad

    def compile_block(self, block: ast.Block, *, new_scope: bool) -> StmtFn:
        if new_scope:
            self.scopes.append({})
        try:
            stmts = tuple(self.compile_stmt(s) for s in block.stmts)
        finally:
            if new_scope:
                self.scopes.pop()
        has_decls = any(isinstance(s, ast.VarDecl) for s in block.stmts)
        if not has_decls:
            def run_plain(rt: "CompiledEngine", frame: Any) -> None:
                rt.pending += 1
                sh = rt.step_hook
                if sh is not None:
                    n = rt.pending
                    if n:
                        ops = rt.ops_executed + n
                        if ops > rt._ops_cap:
                            rt.flush()
                        rt.pending = 0
                        rt.ops_executed = ops
                        b = rt._on_op_batch
                        if b is not None:
                            b(n)
                    sh()
                for s in stmts:
                    s(rt, frame)

            return run_plain

        def run(rt: "CompiledEngine", frame: Any) -> None:
            rt.pending += 1
            sh = rt.step_hook
            if sh is not None:
                n = rt.pending
                if n:
                    ops = rt.ops_executed + n
                    if ops > rt._ops_cap:
                        rt.flush()
                    rt.pending = 0
                    rt.ops_executed = ops
                    b = rt._on_op_batch
                    if b is not None:
                        b(n)
                sh()
            allocs: list[tuple[int, int]] = []
            prev = rt.allocs
            rt.allocs = allocs
            try:
                for s in stmts:
                    s(rt, frame)
            finally:
                rt.allocs = prev
                rt.flush()
                vh = rt.var_hooks
                if vh is not None and allocs:
                    vh.on_scope_exit([a for a, _ in allocs])
                for addr, size in reversed(allocs):
                    rt.mem.free_stack(addr, size)

        return run

    def _compile_vardecl(self, decl: ast.VarDecl) -> StmtFn:
        ctype = decl.ctype
        # bind the slot BEFORE compiling the initializer — the tree-walker
        # installs the scope binding before evaluating init, so `int x = x;`
        # reads the freshly-declared x
        slot = self.declare(decl.name, ctype)
        size = max(ctype.size, 1)
        zero = b"\0" * size
        name = decl.name
        line = decl.line
        bad_init = (decl.init is not None
                    and isinstance(ctype, (ArrayType, StructType)))
        init_cl: EvalFn | None = None
        if decl.init is not None and not bad_init:
            init_cl, _ = self.compile_eval(decl.init)
        store_size = ctype.size
        store_mask = (1 << (store_size * 8)) - 1

        def run(rt: "CompiledEngine", frame: Any) -> None:
            rt.pending += 1
            sh = rt.step_hook
            if sh is not None:
                n = rt.pending
                if n:
                    ops = rt.ops_executed + n
                    if ops > rt._ops_cap:
                        rt.flush()
                    rt.pending = 0
                    rt.ops_executed = ops
                    b = rt._on_op_batch
                    if b is not None:
                        b(n)
                sh()
            rt.flush()
            addr = rt.mem.alloc_stack(size)
            rt.allocs.append((addr, size))
            frame[slot] = addr
            vh = rt.var_hooks
            if vh is not None:
                vh.on_decl(name, addr, ctype, f"{rt.filename}:{line}")
            if bad_init:
                raise CMinusError(
                    "array/struct initializers are not supported", line)
            if init_cl is not None:
                value = init_cl(rt, frame)
                rt.flush()
                rt.mem.write(addr, (value & store_mask).to_bytes(
                    store_size, "little"))
            else:
                rt.mem.write(addr, zero)

        return run

    def _compile_if(self, stmt: ast.If) -> StmtFn:
        ev_cond, _ = self.compile_eval(stmt.cond)
        then_cl = self.compile_stmt(stmt.then)
        orelse_cl = (self.compile_stmt(stmt.orelse)
                     if stmt.orelse is not None else None)

        def run(rt: "CompiledEngine", frame: Any) -> None:
            rt.pending += 1
            sh = rt.step_hook
            if sh is not None:
                n = rt.pending
                if n:
                    ops = rt.ops_executed + n
                    if ops > rt._ops_cap:
                        rt.flush()
                    rt.pending = 0
                    rt.ops_executed = ops
                    b = rt._on_op_batch
                    if b is not None:
                        b(n)
                sh()
            if ev_cond(rt, frame):
                then_cl(rt, frame)
            elif orelse_cl is not None:
                orelse_cl(rt, frame)

        return run

    def _compile_while(self, stmt: ast.While) -> StmtFn:
        ev_cond, _ = self.compile_eval(stmt.cond)
        body_cl = self.compile_stmt(stmt.body)

        def run(rt: "CompiledEngine", frame: Any) -> None:
            rt.pending += 1
            sh = rt.step_hook
            if sh is not None:
                n = rt.pending
                if n:
                    ops = rt.ops_executed + n
                    if ops > rt._ops_cap:
                        rt.flush()
                    rt.pending = 0
                    rt.ops_executed = ops
                    b = rt._on_op_batch
                    if b is not None:
                        b(n)
                sh()
            while True:
                if rt.max_ops is not None:
                    # flush per iteration so a pure-compute runaway loop
                    # still trips ExecLimits at exactly the right op
                    rt.flush()
                if not ev_cond(rt, frame):
                    break
                try:
                    body_cl(rt, frame)
                except _Break:
                    break
                except _Continue:
                    continue

        return run

    def _compile_for(self, stmt: ast.For) -> StmtFn:
        self.scopes.append({})
        try:
            init_cl = (self.compile_stmt(stmt.init)
                       if stmt.init is not None else None)
            cond_cl = (self.compile_eval(stmt.cond)[0]
                       if stmt.cond is not None else None)
            body_cl = self.compile_stmt(stmt.body)
            step_cl = (self.compile_eval(stmt.step)[0]
                       if stmt.step is not None else None)
        finally:
            self.scopes.pop()
        header_allocs = isinstance(stmt.init, ast.VarDecl)

        def loop(rt: "CompiledEngine", frame: Any) -> None:
            if init_cl is not None:
                init_cl(rt, frame)
            while True:
                if rt.max_ops is not None:
                    rt.flush()
                if cond_cl is not None and not cond_cl(rt, frame):
                    break
                try:
                    body_cl(rt, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if step_cl is not None:
                    step_cl(rt, frame)

        if not header_allocs:
            def run_plain(rt: "CompiledEngine", frame: Any) -> None:
                rt.pending += 1
                sh = rt.step_hook
                if sh is not None:
                    n = rt.pending
                    if n:
                        ops = rt.ops_executed + n
                        if ops > rt._ops_cap:
                            rt.flush()
                        rt.pending = 0
                        rt.ops_executed = ops
                        b = rt._on_op_batch
                        if b is not None:
                            b(n)
                    sh()
                loop(rt, frame)

            return run_plain

        def run(rt: "CompiledEngine", frame: Any) -> None:
            rt.pending += 1
            sh = rt.step_hook
            if sh is not None:
                n = rt.pending
                if n:
                    ops = rt.ops_executed + n
                    if ops > rt._ops_cap:
                        rt.flush()
                    rt.pending = 0
                    rt.ops_executed = ops
                    b = rt._on_op_batch
                    if b is not None:
                        b(n)
                sh()
            allocs: list[tuple[int, int]] = []
            prev = rt.allocs
            rt.allocs = allocs
            try:
                loop(rt, frame)
            finally:
                rt.allocs = prev
                rt.flush()
                vh = rt.var_hooks
                if vh is not None and allocs:
                    vh.on_scope_exit([a for a, _ in allocs])
                for addr, size in reversed(allocs):
                    rt.mem.free_stack(addr, size)

        return run


# ----------------------------------------------------------- program compile

def compile_program(program: ast.Program) -> CompiledProgram:
    """Lower ``program`` (at its current generation) to closures."""
    compiled = CompiledProgram(program)
    compiler = _Compiler(program, compiled)
    # Function shells first so Call closures can bind them directly even
    # for mutual recursion.
    for name, fdef in program.funcs.items():
        compiled.funcs[name] = CompiledFunction(name, fdef.line)
    # Globals: indices assigned in declaration order; each initializer is
    # compiled with the bindings declared so far (plus its own, matching
    # the tree-walker's bind-then-eval order).
    for decl in program.globals:
        idx = len(compiled.globals_spec)
        compiler.global_index[decl.name] = (idx, decl.ctype)
        init_cl: EvalFn | None = None
        if decl.init is not None:
            compiler.scopes = [{}]
            compiler.nslots = 0
            init_cl = compiler.compile_eval(decl.init)[0]
        compiled.globals_spec.append(
            _GlobalSpec(decl.name, decl.ctype, idx, decl.line, init_cl))
    # Function bodies.
    for name, fdef in program.funcs.items():
        cf = compiled.funcs[name]
        compiler.scopes = [{}]
        compiler.nslots = 0
        for param in fdef.params:
            slot = compiler.declare(param.name, param.ctype)
            cf.params.append(_ParamSpec(param.name, param.ctype, slot,
                                        param.line))
        # the body block shares the parameter scope (new_scope=False),
        # exactly like Interpreter.call
        cf.body = compiler.compile_block(fdef.body, new_scope=False)
        cf.nslots = compiler.nslots
    return compiled


# ------------------------------------------------------------------ the cache

class CodeCache:
    """Per-kernel cache of compiled programs.

    The effective key is (program identity, structural fingerprint,
    instrumentation generation): a generation bump — hotpatch,
    (de)instrumentation, re-registration — invalidates the entry, and a
    dead program's entry is dropped via its weakref.  Counters live in
    the kernel's :class:`~repro.trace.metrics.MetricsRegistry` (a private
    one when standalone) under ``cminus.cache.*`` and feed
    :func:`repro.analysis.report.code_cache_report`.
    """

    def __init__(self, max_entries: int = 256, *, metrics=None):
        if metrics is None:
            from repro.trace.metrics import MetricsRegistry
            metrics = MetricsRegistry()
        self.max_entries = max_entries
        self._hits = metrics.counter("cminus.cache.hits")
        self._misses = metrics.counter("cminus.cache.misses")
        self._invalidations = metrics.counter("cminus.cache.invalidations")
        self._compiles = metrics.counter("cminus.cache.compiles")
        self._entries: dict[int, tuple[weakref.ref, int, CompiledProgram]] = {}
        metrics.gauge("cminus.cache.entries", fn=lambda: len(self._entries))

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def invalidations(self) -> int:
        return self._invalidations.value

    @property
    def compiles(self) -> int:
        return self._compiles.value

    def lookup(self, program: ast.Program) -> CompiledProgram:
        gen = generation_of(program)
        key = id(program)
        entry = self._entries.get(key)
        if entry is not None:
            ref, cached_gen, compiled = entry
            if ref() is program:
                if cached_gen == gen:
                    self._hits.inc()
                    return compiled
                # the program was rewritten since this was compiled —
                # stale code must never run
                self._invalidations.inc()
            del self._entries[key]
        self._misses.inc()
        compiled = compile_program(program)
        self._compiles.inc()
        if len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = (weakref.ref(program), gen, compiled)
        return compiled

    def invalidate(self, program: ast.Program) -> None:
        """Drop any cached code for ``program`` (bumps its generation)."""
        bump_generation(program)
        entry = self._entries.pop(id(program), None)
        if entry is not None:
            self._invalidations.inc()

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations,
                "compiles": self.compiles, "entries": len(self._entries)}

    def __repr__(self) -> str:  # pragma: no cover
        s = self.stats()
        return (f"CodeCache(hits={s['hits']}, misses={s['misses']}, "
                f"invalidations={s['invalidations']}, "
                f"entries={s['entries']})")


# ------------------------------------------------------------------ the engine

class CompiledEngine:
    """Drop-in replacement for :class:`Interpreter` over compiled code.

    Same constructor surface plus:

    * ``on_op_batch(n)`` — preferred accounting hook, called once per
      flush with the batched op count (``on_op`` still works: it is
      invoked n times per flush, preserving exact call counts);
    * ``cache`` — a :class:`CodeCache`; compilation is skipped on a hit
      and the generation is re-validated on every :meth:`call`, so code
      invalidated by KGCC rewrites is recompiled before it can run.
    """

    def __init__(self, program: ast.Program, mem: MemoryAccess, *,
                 externs: dict[str, Callable] | None = None,
                 on_op: Callable[[], None] | None = None,
                 on_op_batch: Callable[[int], None] | None = None,
                 step_hook: Callable[[], None] | None = None,
                 check_runtime: CheckRuntime | None = None,
                 var_hooks: VarHooks | None = None,
                 limits: ExecLimits | None = None,
                 filename: str = "<cminus>",
                 cache: CodeCache | None = None,
                 compiled: CompiledProgram | None = None,
                 tracer=None):
        self.program = program
        self.mem = mem
        self.externs = externs or {}
        self.on_op = on_op
        self.step_hook = step_hook
        self.check_runtime = check_runtime
        self.var_hooks = var_hooks
        self.limits = limits or ExecLimits()
        self.max_ops = self.limits.max_ops
        # closures compare against an always-int cap so the unlimited case
        # costs one comparison, not an extra None test
        self._ops_cap = (self.max_ops if self.max_ops is not None
                         else float("inf"))
        self.filename = filename
        self.pending = 0
        self.ops_executed = 0
        self.strings: dict[int, int] = {}
        self.allocs: list[tuple[int, int]] = []
        self._cache = cache
        self._tracer = tracer
        if on_op_batch is None and on_op is not None:
            op = on_op

            def on_op_batch(n: int) -> None:
                for _ in range(n):
                    op()
        self._on_op_batch = on_op_batch
        if compiled is None:
            compiled = (cache.lookup(program) if cache is not None
                        else compile_program(program))
        if compiled.program is not program:
            raise CMinusError("compiled code belongs to a different program")
        if compiled.generation != generation_of(program):
            raise CMinusError(
                f"stale compiled code (generation {compiled.generation}, "
                f"program is at {generation_of(program)})")
        self._compiled = compiled
        self.globals: list[int] = [0] * len(compiled.globals_spec)
        self._init_globals()

    # ------------------------------------------------------------ accounting

    def flush(self) -> None:
        """Charge all pending ops; enforce ``ExecLimits`` without overshoot.

        When the batch crosses ``max_ops``, exactly the ops up to and
        including the crossing one are charged (the tree-walker charges
        the crossing op's tick and then raises), then the same
        :class:`CMinusError` fires.
        """
        n = self.pending
        if not n:
            return
        self.pending = 0
        max_ops = self.max_ops
        if max_ops is not None and self.ops_executed + n > max_ops:
            allowed = max_ops + 1 - self.ops_executed
            if allowed > 0:
                self.ops_executed += allowed
                if self._on_op_batch is not None:
                    self._on_op_batch(allowed)
            raise CMinusError(
                f"execution exceeded {max_ops} operations")
        self.ops_executed += n
        if self._on_op_batch is not None:
            self._on_op_batch(n)

    # --------------------------------------------------------------- plumbing

    def _init_globals(self) -> None:
        for spec in self._compiled.globals_spec:
            addr = self.mem.malloc(spec.alloc_size)
            self.globals[spec.index] = addr
            if self.var_hooks is not None:
                self.var_hooks.on_decl(spec.name, addr, spec.ctype,
                                       f"{self.filename}:{spec.line}")
            if spec.init is not None:
                value = spec.init(self, ())
                self.flush()
                self.mem.write(addr, (value & spec.store_mask).to_bytes(
                    spec.store_size, "little"))
            else:
                self.mem.write(addr, b"\0" * spec.alloc_size)
        self.flush()

    def _refresh(self) -> CompiledProgram:
        """The program was rewritten under us (generation bumped):
        recompile (or fetch fresh code from the cache) before running."""
        cache = self._cache
        compiled = (cache.lookup(self.program) if cache is not None
                    else compile_program(self.program))
        if len(compiled.globals_spec) != len(self.globals):
            raise CMinusError(
                "program globals changed under a live engine")
        self._compiled = compiled
        return compiled

    # ------------------------------------------------------------------- call

    def call(self, name: str, *args: int) -> int:
        """Call a program function (or extern) with integer arguments."""
        compiled = self._compiled
        if compiled.generation != generation_of(self.program):
            compiled = self._refresh()
        cf = compiled.funcs.get(name)
        if cf is None:
            ext = self.externs.get(name)
            if ext is None:
                raise CMinusError(f"undefined function '{name}'", 0)
            result = ext(*args)
            return int(result) if result is not None else 0
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.begin(f"cminus:{name}", "cminus", file=self.filename)
            try:
                return _invoke(self, cf, list(args))
            finally:
                tracer.end(ops=self.ops_executed)
        return _invoke(self, cf, list(args))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"CompiledEngine(gen={self._compiled.generation}, "
                f"ops={self.ops_executed})")
