"""AST → C source rendering (the unparser).

Used by the Cosy auto-marker (§2.4) to rewrite programs with
``COSY_START()/COSY_END()`` inserted as real statements, and generally
handy for debugging transformed ASTs (KGCC instrumentation shows up as
``__check_*(...)`` pseudo-calls).

Round-trip guarantee (property-tested): ``parse(render(p))`` is
structurally identical to ``p`` for programs without Check nodes.
"""

from __future__ import annotations

from repro.cminus import ast_nodes as ast
from repro.cminus.ctypes import ArrayType, CType, PointerType

_INDENT = "    "


def _type_prefix(ctype: CType) -> tuple[str, str]:
    """(declaration prefix, array suffix) for a declarator."""
    suffix = ""
    while isinstance(ctype, ArrayType):
        suffix = f"[{ctype.length}]" + suffix
        ctype = ctype.elem
    stars = ""
    while isinstance(ctype, PointerType):
        stars += "*"
        ctype = ctype.pointee
    return f"{ctype.name()} {stars}", suffix


def render_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLit):
        return str(expr.value) if expr.value >= 0 else f"(0 - {-expr.value})"
    if isinstance(expr, ast.StrLit):
        escaped = (expr.value.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\t", "\\t")
                   .replace("\r", "\\r").replace("\0", "\\0"))
        return f'"{escaped}"'
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.BinOp):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, ast.UnOp):
        return f"({expr.op}{render_expr(expr.operand)})"
    if isinstance(expr, ast.Deref):
        return f"(*{render_expr(expr.ptr)})"
    if isinstance(expr, ast.AddrOf):
        return f"(&{render_expr(expr.target)})"
    if isinstance(expr, ast.Index):
        return f"{render_expr(expr.base)}[{render_expr(expr.index)}]"
    if isinstance(expr, ast.Member):
        op = "->" if expr.arrow else "."
        return f"{render_expr(expr.base)}{op}{expr.field_name}"
    if isinstance(expr, ast.Call):
        return f"{expr.func}({', '.join(render_expr(a) for a in expr.args)})"
    if isinstance(expr, ast.Assign):
        op = (expr.op or "") + "="
        return f"{render_expr(expr.target)} {op} {render_expr(expr.value)}"
    if isinstance(expr, ast.PostIncDec):
        return f"{render_expr(expr.target)}{expr.op}"
    if isinstance(expr, ast.SizeOf):
        if expr.ctype is not None:
            prefix, suffix = _type_prefix(expr.ctype)
            return f"sizeof({prefix.strip()}{suffix})"
        return f"sizeof({render_expr(expr.expr)})"
    if isinstance(expr, ast.Check):
        # diagnostic rendering of KGCC-instrumented trees
        return f"__check_{expr.kind}({render_expr(expr.inner)})"
    raise TypeError(f"cannot render {type(expr).__name__}")


def render_stmt(stmt: ast.Stmt, depth: int = 1) -> str:
    pad = _INDENT * depth
    if isinstance(stmt, ast.Block):
        inner = "\n".join(render_stmt(s, depth + 1) for s in stmt.stmts)
        return f"{pad}{{\n{inner}\n{pad}}}" if stmt.stmts else f"{pad}{{ }}"
    if isinstance(stmt, ast.VarDecl):
        prefix, suffix = _type_prefix(stmt.ctype)
        init = f" = {render_expr(stmt.init)}" if stmt.init is not None else ""
        return f"{pad}{prefix}{stmt.name}{suffix}{init};"
    if isinstance(stmt, ast.ExprStmt):
        return f"{pad}{render_expr(stmt.expr)};"
    if isinstance(stmt, ast.If):
        out = f"{pad}if ({render_expr(stmt.cond)})\n" \
              f"{_render_body(stmt.then, depth)}"
        if stmt.orelse is not None:
            out += f"\n{pad}else\n{_render_body(stmt.orelse, depth)}"
        return out
    if isinstance(stmt, ast.While):
        return f"{pad}while ({render_expr(stmt.cond)})\n" \
               f"{_render_body(stmt.body, depth)}"
    if isinstance(stmt, ast.For):
        if isinstance(stmt.init, ast.VarDecl):
            init = render_stmt(stmt.init, 0).strip()[:-1]  # drop ';'
        elif isinstance(stmt.init, ast.ExprStmt):
            init = render_expr(stmt.init.expr)
        else:
            init = ""
        cond = render_expr(stmt.cond) if stmt.cond is not None else ""
        step = render_expr(stmt.step) if stmt.step is not None else ""
        return f"{pad}for ({init}; {cond}; {step})\n" \
               f"{_render_body(stmt.body, depth)}"
    if isinstance(stmt, ast.Return):
        if stmt.value is not None:
            return f"{pad}return {render_expr(stmt.value)};"
        return f"{pad}return;"
    if isinstance(stmt, ast.Break):
        return f"{pad}break;"
    if isinstance(stmt, ast.Continue):
        return f"{pad}continue;"
    raise TypeError(f"cannot render {type(stmt).__name__}")


def _render_body(stmt: ast.Stmt, depth: int) -> str:
    """Bodies always render as blocks so nesting stays unambiguous."""
    if isinstance(stmt, ast.Block):
        return render_stmt(stmt, depth)
    return render_stmt(ast.Block(stmts=[stmt]), depth)


def render_program(program: ast.Program) -> str:
    parts: list[str] = []
    for struct in program.structs.values():
        members = "\n".join(
            f"{_INDENT}{_type_prefix(ftype)[0]}{fname}"
            f"{_type_prefix(ftype)[1]};"
            for fname, (_, ftype) in struct.fields.items())
        parts.append(f"struct {struct.tag} {{\n{members}\n}};")
    for decl in program.globals:
        parts.append(render_stmt(decl, 0))
    for func in program.funcs.values():
        prefix, _ = _type_prefix(func.ret_type)
        params = ", ".join(
            f"{_type_prefix(p.ctype)[0]}{p.name}{_type_prefix(p.ctype)[1]}"
            for p in func.params) or "void"
        parts.append(f"{prefix.strip()} {func.name}({params})\n"
                     f"{render_stmt(func.body, 0)}")
    return "\n\n".join(parts) + "\n"
