"""Memory backends for C-subset execution.

The interpreter is agnostic about *where* its bytes live; a
:class:`MemoryAccess` supplies load/store plus stack and heap allocation.

* :class:`UserMemAccess` — a task's demand-paged user memory, through the
  MMU (normal application execution).
* :class:`SegmentMemAccess` — an isolated segment's offset space, through
  limit-checked segmented access: every address the program manipulates is
  a segment offset, so escaping the segment is impossible by construction.
  This is Cosy's user-function isolation (§2.3).

KGCC wraps whichever backend is in use (see
:mod:`repro.safety.kgcc.runtime`), so the same program can run checked or
unchecked over either backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.errors import OutOfMemory

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.process import Task
    from repro.kernel.segments import SegmentedView


class MemoryAccess(ABC):
    """Byte access + stack/heap allocation, as the interpreter needs it."""

    @abstractmethod
    def read(self, addr: int, size: int) -> bytes: ...

    def read_int(self, addr: int, size: int, signed: bool = False) -> int:
        """Fused scalar load: ``read()`` + little-endian decode.  Backends
        override this with a copy-free path; semantics (checks, charges,
        faults) must be identical to ``read()``."""
        return int.from_bytes(self.read(addr, size), "little", signed=signed)

    @abstractmethod
    def write(self, addr: int, data: bytes) -> None: ...

    @abstractmethod
    def alloc_stack(self, size: int) -> int: ...

    @abstractmethod
    def free_stack(self, addr: int, size: int) -> None: ...

    @abstractmethod
    def malloc(self, size: int) -> int: ...

    @abstractmethod
    def free(self, addr: int) -> None: ...


class UserMemAccess(MemoryAccess):
    """A task's user address space (MMU-mediated, demand paged)."""

    def __init__(self, kernel: "Kernel", task: "Task"):
        self.kernel = kernel
        self.task = task

    def read(self, addr: int, size: int) -> bytes:
        return self.kernel.mmu.read(self.task.aspace, addr, size)

    def read_int(self, addr: int, size: int, signed: bool = False) -> int:
        return self.kernel.mmu.read_int(self.task.aspace, addr, size, signed)

    def write(self, addr: int, data: bytes) -> None:
        self.kernel.mmu.write(self.task.aspace, addr, data)

    def alloc_stack(self, size: int) -> int:
        return self.task.mem.push_frame(size)

    def free_stack(self, addr: int, size: int) -> None:
        self.task.mem.pop_frame(size)

    def malloc(self, size: int) -> int:
        return self.task.mem.malloc(size)

    def free(self, addr: int) -> None:
        self.task.mem.free(addr)


class KernelMemAccess(MemoryAccess):
    """Kernel memory: kmalloc-backed heap and stack, direct-mapped access.

    This is the backend for *kernel-module* code (the KGCC experiments
    instrument filesystem modules, which live entirely in kernel memory).
    """

    def __init__(self, kernel: "Kernel"):
        from repro.kernel.memory.paging import AddressSpace

        self.kernel = kernel
        self.aspace = AddressSpace(kernel.kernel_pt)

    def read(self, addr: int, size: int) -> bytes:
        return self.kernel.mmu.read(self.aspace, addr, size)

    def read_int(self, addr: int, size: int, signed: bool = False) -> int:
        return self.kernel.mmu.read_int(self.aspace, addr, size, signed)

    def write(self, addr: int, data: bytes) -> None:
        self.kernel.mmu.write(self.aspace, addr, data)

    def alloc_stack(self, size: int) -> int:
        return self.kernel.kmalloc.kmalloc(max(size, 1))

    def free_stack(self, addr: int, size: int) -> None:
        self.kernel.kmalloc.kfree(addr)

    def malloc(self, size: int) -> int:
        return self.kernel.kmalloc.kmalloc(max(size, 1))

    def free(self, addr: int) -> None:
        self.kernel.kmalloc.kfree(addr)


class SegmentMemAccess(MemoryAccess):
    """An isolated segment: all addresses are offsets, checked at the limit.

    Layout inside the segment: ``[0, static_reserve)`` is available to the
    host (Cosy stages arguments there); the heap bumps upward from
    ``static_reserve``; the stack grows downward from the limit.  Heap and
    stack colliding raises :class:`OutOfMemory` rather than corrupting —
    a luxury real segments don't offer, but the paper's protection claim
    (no reference can *leave* the segment) is enforced by the underlying
    :class:`~repro.kernel.segments.SegmentedView`.
    """

    def __init__(self, view: "SegmentedView", static_reserve: int = 256):
        self.view = view
        self._heap_top = static_reserve
        self._sp = view.limit
        self._free: dict[int, list[int]] = {}
        self._live: dict[int, int] = {}
        # bound-method shortcuts: skip one frame per load/store
        self.read = view.read          # type: ignore[method-assign]
        self.read_int = view.read_int  # type: ignore[method-assign]
        self.write = view.write        # type: ignore[method-assign]

    def read(self, addr: int, size: int) -> bytes:
        return self.view.read(addr, size)

    def write(self, addr: int, data: bytes) -> None:
        self.view.write(addr, data)

    def alloc_stack(self, size: int) -> int:
        aligned = (size + 15) & ~15
        if self._sp - aligned < self._heap_top:
            raise OutOfMemory("segment stack collided with heap")
        self._sp -= aligned
        return self._sp

    def free_stack(self, addr: int, size: int) -> None:
        self._sp += (size + 15) & ~15
        if self._sp > self.view.limit:
            raise RuntimeError("segment stack underflow")

    def malloc(self, size: int) -> int:
        bucket = (size + 15) & ~15
        free = self._free.get(bucket)
        if free:
            addr = free.pop()
        else:
            addr = self._heap_top
            if addr + bucket > self._sp:
                raise OutOfMemory("segment heap collided with stack")
            self._heap_top += bucket
        self._live[addr] = bucket
        return addr

    def free(self, addr: int) -> None:
        bucket = self._live.pop(addr, None)
        if bucket is None:
            raise OutOfMemory(f"free of unallocated segment offset {addr:#x}")
        self._free.setdefault(bucket, []).append(addr)
