"""Recursive-descent parser for the C subset."""

from __future__ import annotations

from repro.cminus import ast_nodes as ast
from repro.cminus.ctypes import (ArrayType, CType, PointerType, StructType,
                                 base_type)
from repro.cminus.lexer import Token, TokenKind, tokenize
from repro.errors import CMinusError

_TYPE_KEYWORDS = {"int", "char", "long", "void"}

# binary operator precedence (higher binds tighter)
_BIN_PREC = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/",
               "%=": "%", "&=": "&", "|=": "|", "^=": "^",
               "<<=": "<<", ">>=": ">>"}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self.structs: dict[str, StructType] = {}

    # ------------------------------------------------------------- plumbing

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def at_op(self, *ops: str) -> bool:
        t = self.peek()
        return t.kind is TokenKind.OP and t.text in ops

    def at_keyword(self, *kws: str) -> bool:
        t = self.peek()
        return t.kind is TokenKind.KEYWORD and t.text in kws

    def expect_op(self, op: str) -> Token:
        t = self.next()
        if t.kind is not TokenKind.OP or t.text != op:
            raise CMinusError(f"expected {op!r}, found {t.text!r}", t.line, t.col)
        return t

    def expect_ident(self) -> Token:
        t = self.next()
        if t.kind is not TokenKind.IDENT:
            raise CMinusError(f"expected identifier, found {t.text!r}", t.line, t.col)
        return t

    # ----------------------------------------------------------------- types

    def at_type(self) -> bool:
        return self.at_keyword(*_TYPE_KEYWORDS) or self.at_keyword("struct")

    def parse_base_type(self) -> CType:
        t = self.next()
        if t.kind is TokenKind.KEYWORD and t.text == "struct":
            tag = self.expect_ident()
            struct = self.structs.get(tag.text)
            if struct is None:
                raise CMinusError(f"unknown struct '{tag.text}'", tag.line)
            return struct
        if t.kind is not TokenKind.KEYWORD or t.text not in _TYPE_KEYWORDS:
            raise CMinusError(f"expected type, found {t.text!r}", t.line, t.col)
        return base_type(t.text)

    def parse_struct_def(self) -> None:
        """``struct Tag { member-decls };`` at top level."""
        self.next()  # 'struct'
        tag = self.expect_ident()
        self.expect_op("{")
        fields: list[tuple[str, CType]] = []
        while not self.at_op("}"):
            base = self.parse_base_type()
            ftype = self.parse_pointers(base)
            fname = self.expect_ident()
            if self.at_op("["):
                self.next()
                size_tok = self.next()
                if size_tok.kind is not TokenKind.INT or size_tok.value <= 0:
                    raise CMinusError("bad array size in struct field",
                                      size_tok.line)
                self.expect_op("]")
                ftype = ArrayType(ftype, size_tok.value)
            self.expect_op(";")
            fields.append((fname.text, ftype))
        self.expect_op("}")
        self.expect_op(";")
        if tag.text in self.structs:
            raise CMinusError(f"redefinition of struct {tag.text}", tag.line)
        if not fields:
            raise CMinusError(f"struct {tag.text} has no members", tag.line)
        try:
            self.structs[tag.text] = StructType(tag.text, fields)
        except ValueError as exc:
            raise CMinusError(str(exc), tag.line) from exc

    def parse_pointers(self, base: CType) -> CType:
        while self.at_op("*"):
            self.next()
            base = PointerType(base)
        return base

    # ------------------------------------------------------------- top level

    def parse_program(self) -> ast.Program:
        prog = ast.Program(line=1)
        while self.peek().kind is not TokenKind.EOF:
            if (self.at_keyword("struct") and self.peek(1).kind is
                    TokenKind.IDENT and self.peek(2).text == "{"):
                self.parse_struct_def()
                prog.structs = dict(self.structs)
                continue
            base = self.parse_base_type()
            ctype = self.parse_pointers(base)
            name_tok = self.expect_ident()
            if self.at_op("("):
                func = self.parse_funcdef(ctype, name_tok)
                if func.name in prog.funcs:
                    raise CMinusError(f"redefinition of {func.name}", func.line)
                prog.funcs[func.name] = func
            else:
                decl = self.finish_vardecl(ctype, name_tok)
                prog.globals.append(decl)
        return prog

    def parse_funcdef(self, ret_type: CType, name_tok: Token) -> ast.FuncDef:
        self.expect_op("(")
        params: list[ast.Param] = []
        if not self.at_op(")"):
            if self.at_keyword("void") and self.peek(1).text == ")":
                self.next()
            else:
                while True:
                    base = self.parse_base_type()
                    ptype = self.parse_pointers(base)
                    pname = self.expect_ident()
                    params.append(ast.Param(line=pname.line, name=pname.text,
                                            ctype=ptype))
                    if self.at_op(","):
                        self.next()
                        continue
                    break
        self.expect_op(")")
        body = self.parse_block()
        return ast.FuncDef(line=name_tok.line, name=name_tok.text,
                           ret_type=ret_type, params=params, body=body)

    def finish_vardecl(self, ctype: CType, name_tok: Token) -> ast.VarDecl:
        if self.at_op("["):
            self.next()
            size_tok = self.next()
            if size_tok.kind is not TokenKind.INT:
                raise CMinusError("array size must be an integer literal",
                                  size_tok.line)
            if size_tok.value <= 0:
                raise CMinusError("array size must be positive", size_tok.line)
            self.expect_op("]")
            ctype = ArrayType(ctype, size_tok.value)
        init = None
        if self.at_op("="):
            self.next()
            init = self.parse_expr()
        self.expect_op(";")
        return ast.VarDecl(line=name_tok.line, name=name_tok.text,
                           ctype=ctype, init=init)

    # ------------------------------------------------------------ statements

    def parse_block(self) -> ast.Block:
        open_tok = self.expect_op("{")
        stmts: list[ast.Stmt] = []
        while not self.at_op("}"):
            if self.peek().kind is TokenKind.EOF:
                raise CMinusError("unterminated block", open_tok.line)
            stmts.append(self.parse_stmt())
        self.expect_op("}")
        return ast.Block(line=open_tok.line, stmts=stmts)

    def parse_stmt(self) -> ast.Stmt:
        t = self.peek()
        if self.at_op("{"):
            return self.parse_block()
        if self.at_type():
            base = self.parse_base_type()
            ctype = self.parse_pointers(base)
            name_tok = self.expect_ident()
            return self.finish_vardecl(ctype, name_tok)
        if self.at_keyword("if"):
            self.next()
            self.expect_op("(")
            cond = self.parse_expr()
            self.expect_op(")")
            then = self.parse_stmt()
            orelse = None
            if self.at_keyword("else"):
                self.next()
                orelse = self.parse_stmt()
            return ast.If(line=t.line, cond=cond, then=then, orelse=orelse)
        if self.at_keyword("while"):
            self.next()
            self.expect_op("(")
            cond = self.parse_expr()
            self.expect_op(")")
            body = self.parse_stmt()
            return ast.While(line=t.line, cond=cond, body=body)
        if self.at_keyword("for"):
            self.next()
            self.expect_op("(")
            init: ast.Stmt | None = None
            if not self.at_op(";"):
                if self.at_type():
                    base = self.parse_base_type()
                    ctype = self.parse_pointers(base)
                    name_tok = self.expect_ident()
                    init = self.finish_vardecl(ctype, name_tok)  # eats ';'
                else:
                    init = ast.ExprStmt(line=t.line, expr=self.parse_expr())
                    self.expect_op(";")
            else:
                self.next()
            cond = None
            if not self.at_op(";"):
                cond = self.parse_expr()
            self.expect_op(";")
            step = None
            if not self.at_op(")"):
                step = self.parse_expr()
            self.expect_op(")")
            body = self.parse_stmt()
            return ast.For(line=t.line, init=init, cond=cond, step=step, body=body)
        if self.at_keyword("return"):
            self.next()
            value = None
            if not self.at_op(";"):
                value = self.parse_expr()
            self.expect_op(";")
            return ast.Return(line=t.line, value=value)
        if self.at_keyword("break"):
            self.next()
            self.expect_op(";")
            return ast.Break(line=t.line)
        if self.at_keyword("continue"):
            self.next()
            self.expect_op(";")
            return ast.Continue(line=t.line)
        expr = self.parse_expr()
        self.expect_op(";")
        return ast.ExprStmt(line=t.line, expr=expr)

    # ----------------------------------------------------------- expressions

    def parse_expr(self) -> ast.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_binary(1)
        t = self.peek()
        if t.kind is TokenKind.OP and t.text in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()  # right-associative
            if not isinstance(left, (ast.Ident, ast.Deref, ast.Index,
                                     ast.Member)):
                raise CMinusError("invalid assignment target", t.line)
            return ast.Assign(line=t.line, target=left, value=value,
                              op=_ASSIGN_OPS[t.text])
        return left

    def parse_binary(self, min_prec: int) -> ast.Expr:
        left = self.parse_unary()
        while True:
            t = self.peek()
            if t.kind is not TokenKind.OP:
                return left
            prec = _BIN_PREC.get(t.text)
            if prec is None or prec < min_prec:
                return left
            self.next()
            right = self.parse_binary(prec + 1)
            left = ast.BinOp(line=t.line, op=t.text, left=left, right=right)

    def parse_unary(self) -> ast.Expr:
        t = self.peek()
        if self.at_op("-", "!", "~", "++", "--"):
            self.next()
            operand = self.parse_unary()
            return ast.UnOp(line=t.line, op=t.text, operand=operand)
        if self.at_op("*"):
            self.next()
            return ast.Deref(line=t.line, ptr=self.parse_unary())
        if self.at_op("&"):
            self.next()
            return ast.AddrOf(line=t.line, target=self.parse_unary())
        if self.at_keyword("sizeof"):
            self.next()
            self.expect_op("(")
            if self.at_type():
                base = self.parse_base_type()
                ctype = self.parse_pointers(base)
                node = ast.SizeOf(line=t.line, ctype=ctype)
            else:
                node = ast.SizeOf(line=t.line, expr=self.parse_expr())
            self.expect_op(")")
            return node
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.at_op("["):
                t = self.next()
                index = self.parse_expr()
                self.expect_op("]")
                expr = ast.Index(line=t.line, base=expr, index=index)
            elif self.at_op(".", "->"):
                t = self.next()
                field = self.expect_ident()
                expr = ast.Member(line=t.line, base=expr,
                                  field_name=field.text,
                                  arrow=(t.text == "->"))
            elif self.at_op("++", "--"):
                t = self.next()
                expr = ast.PostIncDec(line=t.line, target=expr, op=t.text)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        t = self.next()
        if t.kind is TokenKind.INT or t.kind is TokenKind.CHAR:
            return ast.IntLit(line=t.line, value=t.value)
        if t.kind is TokenKind.STRING:
            return ast.StrLit(line=t.line, value=t.value)
        if t.kind is TokenKind.IDENT:
            if self.at_op("("):
                self.next()
                args: list[ast.Expr] = []
                if not self.at_op(")"):
                    while True:
                        args.append(self.parse_expr())
                        if self.at_op(","):
                            self.next()
                            continue
                        break
                self.expect_op(")")
                return ast.Call(line=t.line, func=t.text, args=args)
            return ast.Ident(line=t.line, name=t.text)
        if t.kind is TokenKind.OP and t.text == "(":
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        raise CMinusError(f"unexpected token {t.text!r}", t.line, t.col)


def parse(source: str) -> ast.Program:
    """Parse C-subset source into a :class:`~repro.cminus.ast_nodes.Program`."""
    return _Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (used by tests and Cosy-GCC internals)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expr()
    if parser.peek().kind is not TokenKind.EOF:
        t = parser.peek()
        raise CMinusError(f"trailing tokens after expression: {t.text!r}", t.line)
    return expr
