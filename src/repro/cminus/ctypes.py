"""C types for the subset: sizes drive pointer arithmetic and layout.

Widths: ``char`` is 1 byte; ``int``, ``long``, and pointers are 8 bytes
(an LP64-like model with a wide ``int``, documented in the package
docstring — it keeps the simulated ABI uniform without affecting any of
the paper's mechanisms, which depend on *relative* sizes only).
"""

from __future__ import annotations

from dataclasses import dataclass


class CType:
    """Base class; subclasses define ``size`` in bytes and a display name."""

    size: int = 0

    def __repr__(self) -> str:
        return self.name()

    def name(self) -> str:  # pragma: no cover - overridden
        return "type"


@dataclass(frozen=True, repr=False)
class VoidType(CType):
    size: int = 0

    def name(self) -> str:
        return "void"


@dataclass(frozen=True, repr=False)
class IntType(CType):
    size: int = 8
    signed: bool = True
    type_name: str = "int"

    def name(self) -> str:
        return self.type_name


@dataclass(frozen=True, repr=False)
class PointerType(CType):
    pointee: CType = VoidType()
    size: int = 8

    def name(self) -> str:
        return f"{self.pointee.name()}*"


@dataclass(frozen=True, repr=False)
class ArrayType(CType):
    elem: CType = IntType()
    length: int = 0

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.elem.size * self.length

    def name(self) -> str:
        return f"{self.elem.name()}[{self.length}]"

    def decay(self) -> PointerType:
        """Array-to-pointer decay."""
        return PointerType(self.elem)


class StructType(CType):
    """A C struct with naturally-aligned members."""

    def __init__(self, tag: str, fields: list[tuple[str, CType]]):
        self.tag = tag
        self.fields: dict[str, tuple[int, CType]] = {}  # name -> (offset, t)
        offset = 0
        max_align = 1
        for fname, ftype in fields:
            if fname in self.fields:
                raise ValueError(f"duplicate field '{fname}' in struct {tag}")
            align = _alignment(ftype)
            max_align = max(max_align, align)
            offset = (offset + align - 1) & ~(align - 1)
            self.fields[fname] = (offset, ftype)
            offset += ftype.size
        self.size = (offset + max_align - 1) & ~(max_align - 1) \
            if offset else 0

    def field(self, name: str) -> tuple[int, CType]:
        """(byte offset, type) of a member."""
        entry = self.fields.get(name)
        if entry is None:
            raise KeyError(f"struct {self.tag} has no field '{name}'")
        return entry

    def name(self) -> str:
        return f"struct {self.tag}"

    def __eq__(self, other) -> bool:
        return isinstance(other, StructType) and other.tag == self.tag

    def __hash__(self) -> int:
        return hash(("struct", self.tag))


def _alignment(ctype: CType) -> int:
    if isinstance(ctype, ArrayType):
        return _alignment(ctype.elem)
    if isinstance(ctype, StructType):
        return max((_alignment(t) for _, t in ctype.fields.values()),
                   default=1)
    return max(1, min(ctype.size, 8))


CHAR = IntType(size=1, type_name="char")
INT = IntType(size=8, type_name="int")
LONG = IntType(size=8, type_name="long")
VOID = VoidType()

_BASE_TYPES = {"char": CHAR, "int": INT, "long": LONG, "void": VOID}


def base_type(name: str) -> CType:
    return _BASE_TYPES[name]
