"""cminus: a small C-subset toolchain.

The paper builds two compiler-based systems: Cosy-GCC (§2.3), which
extracts marked code regions and compiles them into compound operations,
and KGCC (§3.4), which instruments pointer operations with bounds checks.
Both need real C programs to operate on, so this package provides a
lexer → parser → AST → tree-walking interpreter for a C subset:

* types: ``char`` (1 byte), ``int``/``long`` (8 bytes), pointers, 1-D
  arrays, ``void``;
* statements: declarations with initializers, ``if``/``else``, ``while``,
  ``for``, ``return``, ``break``, ``continue``, blocks, expression
  statements;
* expressions: full C operator set minus the conditional operator, with
  C pointer-arithmetic scaling, ``&``/``*``, indexing, ``sizeof``, calls;
* functions, string literals, and externs (host-provided functions, used
  for syscall shims and the KGCC runtime).

Programs execute against *simulated* memory through a
:class:`~repro.cminus.memaccess.MemoryAccess`, so pointers are real
simulated addresses: Kefence guard pages fault on them, segment limits
confine them, and KGCC's splay-tree map tracks them.
"""

from repro.cminus.lexer import tokenize, Token, TokenKind
from repro.cminus.ctypes import (CType, VoidType, IntType, PointerType,
                                 ArrayType, CHAR, INT, LONG, VOID)
from repro.cminus import ast_nodes as ast
from repro.cminus.parser import parse
from repro.cminus.memaccess import MemoryAccess, UserMemAccess, SegmentMemAccess
from repro.cminus.interp import Interpreter, ExecLimits
from repro.cminus.compile import (CodeCache, CompiledEngine, CompiledProgram,
                                  bump_generation, compile_program,
                                  generation_of, program_fingerprint)

__all__ = [
    "tokenize", "Token", "TokenKind",
    "CType", "VoidType", "IntType", "PointerType", "ArrayType",
    "CHAR", "INT", "LONG", "VOID",
    "ast", "parse",
    "MemoryAccess", "UserMemAccess", "SegmentMemAccess",
    "Interpreter", "ExecLimits",
    "CodeCache", "CompiledEngine", "CompiledProgram",
    "compile_program", "generation_of", "bump_generation",
    "program_fingerprint",
]
