"""Tokenizer for the C subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CMinusError

KEYWORDS = {
    "int", "char", "long", "void", "if", "else", "while", "for",
    "return", "break", "continue", "sizeof", "struct",
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--", "->",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".",
]


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    CHAR = "char"
    STRING = "string"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: int | str | None
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind.value}, {self.text!r}, L{self.line})"


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0",
            "\\": "\\", "'": "'", '"': '"'}


def _read_escape(src: str, i: int, line: int) -> tuple[str, int]:
    if i >= len(src):
        raise CMinusError("unterminated escape", line)
    ch = src[i]
    if ch not in _ESCAPES:
        raise CMinusError(f"unknown escape '\\{ch}'", line)
    return _ESCAPES[ch], i + 1


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into a token list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        # whitespace
        if ch in " \t\r\n":
            advance(1)
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CMinusError("unterminated block comment", line)
            advance(end + 2 - i)
            continue
        tline, tcol = line, col
        # numbers
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            tokens.append(Token(TokenKind.INT, source[i:j], value, tline, tcol))
            advance(j - i)
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, None, tline, tcol))
            advance(j - i)
            continue
        # char literal
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                c, j = _read_escape(source, j + 1, tline)
            elif j < n:
                c = source[j]
                j += 1
            else:
                raise CMinusError("unterminated char literal", tline)
            if j >= n or source[j] != "'":
                raise CMinusError("unterminated char literal", tline)
            j += 1
            tokens.append(Token(TokenKind.CHAR, source[i:j], ord(c), tline, tcol))
            advance(j - i)
            continue
        # string literal
        if ch == '"':
            j = i + 1
            chars: list[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    c, j = _read_escape(source, j + 1, tline)
                    chars.append(c)
                else:
                    chars.append(source[j])
                    j += 1
            if j >= n:
                raise CMinusError("unterminated string literal", tline)
            j += 1
            tokens.append(Token(TokenKind.STRING, source[i:j], "".join(chars),
                                tline, tcol))
            advance(j - i)
            continue
        # operators / punctuation
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, None, tline, tcol))
                advance(len(op))
                break
        else:
            raise CMinusError(f"unexpected character {ch!r}", tline, tcol)

    tokens.append(Token(TokenKind.EOF, "", None, line, col))
    return tokens
