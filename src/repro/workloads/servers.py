"""Synthetic server syscall traces for the pattern-mining analysis (§2.2).

"We captured system-call traces for many commodity user programs such as
graphical environments, Web browsers, long-running daemons (e.g., Sendmail
and Apache) ..."  These synthesizers produce name sequences with each
daemon's characteristic hot loops, feeding the syscall graph and
heavy-path mining without needing the daemons themselves.
"""

from __future__ import annotations

import numpy as np


def synth_web_server_trace(requests: int = 500, *, static_ratio: float = 0.8,
                           seed: int = 11) -> list[str]:
    """An Apache-like loop: per request stat + open-read...-close the file
    (static), or read a script then write output (dynamic)."""
    rng = np.random.default_rng(seed)
    trace: list[str] = []
    for _ in range(requests):
        trace += ["read"]                       # the HTTP request
        trace += ["stat"]                       # path lookup / cache check
        if rng.random() < static_ratio:
            trace += ["open"]
            trace += ["read"] * int(rng.integers(1, 4))
            trace += ["close"]
            trace += ["write"]                  # the response
        else:
            trace += ["open", "read", "close"]  # the script source
            trace += ["write", "write"]         # headers + body
    return trace


def synth_mail_server_trace(messages: int = 300, *, seed: int = 13
                            ) -> list[str]:
    """A Sendmail-like loop: spool write, queue-directory scans (the
    readdir-stat pattern!), delivery reads, unlinks."""
    rng = np.random.default_rng(seed)
    trace: list[str] = []
    for _ in range(messages):
        # receive: write to the spool
        trace += ["open", "write", "write", "close"]
        # queue run: list the queue and stat every entry
        trace += ["open", "getdents"]
        trace += ["stat"] * int(rng.integers(3, 10))
        trace += ["close"]
        # deliver: read the spooled message, append to a mailbox, clean up
        trace += ["open", "read", "close"]
        trace += ["open", "write", "close"]
        trace += ["unlink"]
    return trace
