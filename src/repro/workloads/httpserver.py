"""Concurrent HTTP serving, three ways: select, epoll, Cosy compounds.

This is the paper's server story (§2.1/§2.4) run against *many* clients on
the simulated network stack, instead of one socketpair.  Per request every
server does the same work — accept the connection, read the request, open
the file, sendfile it, close the file — but they differ in how much of the
user/kernel boundary they cross to do it:

* :class:`SelectHttpServer` — classic select-per-request loop.  Every
  request pays one ``select`` over the *entire* interest set (the kernel
  rescans all N registered fds), plus the accept/read/open/sendfile/close
  traps.  With keep-alive connections the interest set grows with the
  client count, so per-request cost grows O(N).
* :class:`EpollHttpServer` — event loop over ``epoll_wait``.  Readiness
  is O(ready), batched up to 64 events per trap; per-request cost is flat
  no matter how many idle connections are registered.
* :class:`CosyHttpServer` — the whole request loop is one Cosy compound:
  ``accept → read → open → sendfile → close`` for a wave of clients runs
  in a single ``cosy_exec`` trap, with the request bytes landing in the
  shared buffer (no uaccess).  Crossings per request approach zero.
* :class:`UringHttpServer` — async syscall rings (docs/URING.md).  Each
  request is a linked SQE chain ``recv → openat → sendfile → close``
  submitted through shared rings; a multishot accept feeds new
  connections without rearming.  In enter mode one ``uring_enter`` trap
  moves a whole batch; with sqpoll (the default on SMP kernels) a
  kernel-side poller consumes submissions and the serving phase makes
  *zero* boundary crossings.  Like Cosy it is a zero-copy pipeline
  server: request bytes land in the shared data area and the kernel reads
  the path straight out of them, so user space never parses the request
  (no ``REQUEST_PARSE_CYCLES``) — but unlike Cosy there is no program to
  encode or interpret, just fixed-size entries.

``benchmarks/bench_net.py`` sweeps the client count to reproduce the
crossings-dominate curve; the differential test asserts all four serve
byte-identical responses.

Protocol: one request per connection, ``b"GET <path>\\0"`` (NUL-terminated
so the Cosy compound can reuse its request region), response is the raw
file body; connections are kept alive (never closed by the server), which
is what makes select's interest set grow.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.cosy.compound import CompoundBuilder
from repro.core.cosy.kernel_ext import CosyKernelExtension
from repro.core.cosy.ops import Arg
from repro.core.cosy.shared_buffer import SharedBuffer
from repro.errors import EAGAIN, Errno
from repro.kernel.clock import Mode
from repro.kernel.net import EPOLL_CTL_ADD, EPOLLIN
from repro.kernel.uring import (F_FIXED_FILE, F_LINK, F_MULTISHOT, OP_ACCEPT,
                                OP_CLOSE, OP_OPENAT, OP_RECV, OP_SENDFILE,
                                Sqe, UringLayer, UringQueue)
from repro.kernel.vfs.file import O_RDONLY
from repro.workloads.webserver import (REQUEST_PARSE_CYCLES, WebServerConfig,
                                       build_docroot)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

SERVER_KINDS = ("select", "epoll", "cosy", "uring")

#: size of the fixed request region ("GET " + path + NUL must fit)
REQUEST_BYTES = 64


@dataclass
class HttpBenchConfig:
    """One bench scenario: ``nclients`` one-request keep-alive clients."""

    nclients: int = 100
    nfiles: int = 16
    avg_file_bytes: int = 4096
    #: clients connect in waves of this size; must not exceed ``backlog``
    wave: int = 128
    backlog: int = 128
    port: int = 80
    docroot: str = "/www"
    seed: int = 4242
    #: uring server: kernel-side submission poller.  None = auto (sqpoll
    #: on SMP kernels, where the poller has its own runqueue to live on;
    #: enter mode on uniprocessors, where polling would steal the very
    #: CPU the server needs).
    uring_sqpoll: bool | None = None


@dataclass
class HttpBenchResult:
    """Serving-phase metrics for one (server kind, nclients) run."""

    kind: str
    nclients: int
    requests: int = 0
    bytes_served: int = 0
    elapsed: int = 0          # simulated cycles, serving phase only
    user_cycles: int = 0
    system_cycles: int = 0
    syscalls: int = 0         # boundary crossings, serving phase only
    digest: str = ""          # sha256 over every client's drained bytes
    nic: dict = field(default_factory=dict)

    @property
    def cycles_per_request(self) -> float:
        return self.elapsed / max(self.requests, 1)

    @property
    def syscalls_per_request(self) -> float:
        return self.syscalls / max(self.requests, 1)


def _request_for(path: str) -> bytes:
    req = b"GET " + path.encode() + b"\0"
    if len(req) > REQUEST_BYTES:
        raise ValueError(f"request for {path!r} exceeds {REQUEST_BYTES} bytes")
    return req


class _HttpServerBase:
    """Listener setup + the per-request file work shared by all servers."""

    def __init__(self, kernel: "Kernel", cfg: HttpBenchConfig):
        self.kernel = kernel
        self.cfg = cfg
        self.listen_fd = -1
        self.requests = 0
        self.bytes_served = 0

    def setup(self) -> None:
        sys = self.kernel.sys
        self.listen_fd = sys.socket(blocking=False)
        sys.bind(self.listen_fd, self.cfg.port)
        sys.listen(self.listen_fd, self.cfg.backlog)

    def _serve_conn(self, conn: int) -> None:
        """One request on an established connection, user-level style."""
        sys = self.kernel.sys
        req = sys.read(conn, REQUEST_BYTES)
        self.kernel.clock.charge(REQUEST_PARSE_CYCLES, Mode.USER)
        path = req[4:].split(b"\0", 1)[0].decode()
        fd = sys.open(path, O_RDONLY)
        try:
            self.bytes_served += sys.sendfile(conn, fd, 0, 1 << 30)
        finally:
            sys.close(fd)
        self.requests += 1

    def serve_wave(self, n: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SelectHttpServer(_HttpServerBase):
    """select-per-request: every request rescans the whole interest set."""

    def __init__(self, kernel: "Kernel", cfg: HttpBenchConfig):
        super().__init__(kernel, cfg)
        self.fds: list[int] = []            # [listener] + all live conns
        self._index: dict[int, int] = {}    # fd -> position in self.fds

    def setup(self) -> None:
        super().setup()
        self.fds = [self.listen_fd]
        self._index = {self.listen_fd: 0}

    def serve_wave(self, n: int) -> None:
        sys = self.kernel.sys
        served = 0
        pos = 0
        while served < n:
            # the classic loop: select over the whole set, walk the ready
            # fds it reported.  No per-connection registration syscalls —
            # select's small-N advantage — but every call rescans all N
            # descriptors, which is what sinks it at large N.
            ready = sys.select(self.fds, start=pos, limit=64)
            if not ready:
                raise RuntimeError("select found nothing with work pending")
            for fd in ready:
                if fd == self.listen_fd:
                    while True:
                        try:
                            conn = sys.accept(self.listen_fd)
                        except Errno as exc:
                            if exc.errno == EAGAIN:
                                break
                            raise
                        self._index[conn] = len(self.fds)
                        self.fds.append(conn)
                else:
                    self._serve_conn(fd)
                    served += 1
            pos = (self._index[ready[-1]] + 1) % len(self.fds)


class EpollHttpServer(_HttpServerBase):
    """Event loop: readiness is registered once, reported O(ready)."""

    def __init__(self, kernel: "Kernel", cfg: HttpBenchConfig):
        super().__init__(kernel, cfg)
        self.epfd = -1

    def setup(self) -> None:
        super().setup()
        sys = self.kernel.sys
        self.epfd = sys.epoll_create()
        sys.epoll_ctl(self.epfd, EPOLL_CTL_ADD, self.listen_fd, EPOLLIN)

    def serve_wave(self, n: int) -> None:
        sys = self.kernel.sys
        served = 0
        while served < n:
            events = sys.epoll_wait(self.epfd, maxevents=64, timeout=0)
            if not events:
                raise RuntimeError("epoll found nothing with work pending")
            for fd, _mask in events:
                if fd == self.listen_fd:
                    while True:
                        try:
                            conn = sys.accept(self.listen_fd)
                        except Errno as exc:
                            if exc.errno == EAGAIN:
                                break
                            raise
                        sys.epoll_ctl(self.epfd, EPOLL_CTL_ADD, conn, EPOLLIN)
                else:
                    self._serve_conn(fd)
                    served += 1


class CosyHttpServer(_HttpServerBase):
    """The request loop as one in-kernel compound per wave of clients.

    ``accept → read → open → sendfile → close`` for all ``n`` queued
    connections runs inside a single ``cosy_exec`` trap; the request line
    lands in the shared buffer (kernel-side memcpy, no uaccess) and the
    path is read back out of it C-string-style by the ``open`` op.
    """

    def __init__(self, kernel: "Kernel", cfg: HttpBenchConfig):
        super().__init__(kernel, cfg)
        self.ext: CosyKernelExtension | None = None
        self.shared: SharedBuffer | None = None
        self.req_off = 0
        self._encoded: dict[int, bytes] = {}   # wave size -> compound bytes

    def setup(self) -> None:
        super().setup()
        self.ext = CosyKernelExtension(self.kernel)
        self.shared = SharedBuffer(self.kernel, self.kernel.current, 4096)
        self.req_off = self.shared.alloc(REQUEST_BYTES)

    def _compound(self, n: int) -> bytes:
        encoded = self._encoded.get(n)
        if encoded is not None:
            return encoded
        b = CompoundBuilder()
        cnt = b.slot("n")
        conn = b.slot("conn")
        fd = b.slot("fd")
        sent = b.slot("sent")
        nread = b.slot("nread")
        rc = b.slot("rc")  # dump for close's result (dst defaults to slot 0)
        b.mov(cnt, Arg.lit(n))
        top = b.label("top")
        done = b.label("done")
        b.place(top)
        b.syscall("accept", Arg.lit(self.listen_fd), out=conn)
        b.syscall("read", Arg.slot(conn),
                  Arg.shared(self.req_off, REQUEST_BYTES),
                  Arg.lit(REQUEST_BYTES), out=nread)
        b.syscall("open", Arg.shared(self.req_off + 4, REQUEST_BYTES - 4),
                  Arg.lit(O_RDONLY), out=fd)
        b.syscall("sendfile", Arg.slot(conn), Arg.slot(fd),
                  Arg.lit(0), Arg.lit(1 << 30), out=sent)
        b.syscall("close", Arg.slot(fd), out=rc)
        b.math("-", cnt, Arg.slot(cnt), Arg.lit(1))
        b.jz(Arg.slot(cnt), done)
        b.jmp(top)
        b.place(done)
        encoded = b.encode()
        self._encoded[n] = encoded
        return encoded

    def serve_wave(self, n: int) -> None:
        encoded = self._compound(n)
        # user side forms (or reuses) the compound buffer
        self.kernel.clock.charge(
            int(len(encoded) * self.kernel.costs.user_touch_per_byte),
            Mode.USER)
        self.ext.execute(self.kernel.current, encoded, self.shared)
        self.requests += n


class UringHttpServer(_HttpServerBase):
    """The request loop as linked SQE chains on async syscall rings.

    Per connection (fed by one armed multishot accept) the server
    submits ``RECV → OPENAT → SENDFILE → CLOSE`` as an ``F_LINK`` chain:
    the request lands in the connection's slot of the shared data area,
    OPENAT reads the path straight out of it (kernel-side, zero copies,
    no user-space parse), SENDFILE streams the file into the connection
    through the fixed-file slot the OPENAT filled, and CLOSE drops it.
    The chain tail runs synchronously once the RECV fires, so a single
    fixed-file slot serves every in-flight request.
    """

    #: user_data low bits tag the op; high bits carry the connection fd
    TAG_ACCEPT, TAG_RECV, TAG_OPEN, TAG_SENDFILE, TAG_CLOSE = range(5)

    def __init__(self, kernel: "Kernel", cfg: HttpBenchConfig):
        super().__init__(kernel, cfg)
        self.sqpoll = (cfg.uring_sqpoll if cfg.uring_sqpoll is not None
                       else kernel.ncpus > 1)
        self.ring_fd = -1
        self.q: UringQueue | None = None
        #: recycled request buffers: a chain's buffer is live only from
        #: prep until its CLOSE completes, so the working set is bounded
        #: by in-flight chains (≤ SQ size), not by client count — the
        #: same few hot pages per wave no matter how many clients, like
        #: Cosy's single request region.
        self._pool: list[int] = []
        self._bufs: dict[int, int] = {}       # conn fd -> data-area offset

    def setup(self) -> None:
        super().setup()
        sys = self.kernel.sys
        if not hasattr(sys, "uring_setup"):
            UringLayer(self.kernel)
        sq = 4 * self.cfg.wave + 8
        data = (2 * self.cfg.wave + 16) * REQUEST_BYTES
        self.ring_fd = sys.uring_setup(sq, cq_entries=2 * sq, files=4,
                                       data_bytes=data, sqpoll=self.sqpoll,
                                       sq_idle=64)
        self.q = UringQueue(self.kernel, self.ring_fd)
        # one armed multishot accept feeds connections for the whole run;
        # this setup-time enter is the last *required* trap in sqpoll mode
        self.q.prep(Sqe(OP_ACCEPT, fd=self.listen_fd, flags=F_MULTISHOT,
                        user_data=self.TAG_ACCEPT))
        self.q.enter()

    def _chain(self, conn: int) -> None:
        """Queue one request chain for an accepted connection."""
        q = self.q
        while q.sq_space() < 4:       # whole chains only: never split one
            q.submit()
        buf = self._bufs.get(conn)
        if buf is None:
            buf = self._pool.pop() if self._pool else q.alloc(REQUEST_BYTES)
            self._bufs[conn] = buf
        ud = conn << 3
        q.prep(Sqe(OP_RECV, flags=F_LINK, fd=conn, addr=buf,
                   len=REQUEST_BYTES, user_data=ud | self.TAG_RECV))
        q.prep(Sqe(OP_OPENAT, flags=F_LINK, fd=0, off=O_RDONLY,
                   addr=buf + 4, len=REQUEST_BYTES - 4,
                   user_data=ud | self.TAG_OPEN))
        q.prep(Sqe(OP_SENDFILE, flags=F_LINK | F_FIXED_FILE, fd=conn,
                   addr=0, off=0, len=1 << 30,
                   user_data=ud | self.TAG_SENDFILE))
        q.prep(Sqe(OP_CLOSE, flags=F_FIXED_FILE, fd=0,
                   user_data=ud | self.TAG_CLOSE))

    def serve_wave(self, n: int) -> None:
        q = self.q
        served = 0
        while served < n:
            cqes = q.harvest(maxevents=64)
            if not cqes:
                # nothing harvestable without kernel help: flush armed
                # ops / pump the NIC in one trap (sqpoll steady state
                # never gets here — harvest runs the poller inline)
                q.enter(min_complete=1)
                continue
            prepped = False
            for cqe in cqes:
                tag = cqe.user_data & 7
                if cqe.res < 0:
                    raise RuntimeError(
                        f"uring op tag={tag} failed with res={cqe.res}")
                if tag == self.TAG_ACCEPT:
                    self._chain(cqe.res)
                    prepped = True
                elif tag == self.TAG_SENDFILE:
                    self.bytes_served += cqe.res
                    self.requests += 1
                    served += 1
                elif tag == self.TAG_CLOSE:
                    buf = self._bufs.pop(cqe.user_data >> 3, None)
                    if buf is not None:
                        self._pool.append(buf)
            if prepped:
                q.submit()


_SERVERS = {
    "select": SelectHttpServer,
    "epoll": EpollHttpServer,
    "cosy": CosyHttpServer,
    "uring": UringHttpServer,
}


def run_http_bench(kernel: "Kernel", kind: str,
                   cfg: HttpBenchConfig) -> HttpBenchResult:
    """Run one server kind against ``cfg.nclients`` simulated clients.

    ``kernel`` must be freshly booted with a mounted root and one running
    task (which becomes the server).  Clients run as a second task and
    connect in waves of ``cfg.wave``; only the serving phase is measured,
    so the client-side driving cost (identical across kinds) stays out of
    the comparison.  Returns serving-phase metrics plus a digest over the
    bytes every client received, for differential comparison.
    """
    if kind not in _SERVERS:
        raise ValueError(f"unknown server kind {kind!r}")
    sys = kernel.sys
    httpd = kernel.current
    if httpd is None:
        raise RuntimeError("run_http_bench needs a running task")
    web_cfg = WebServerConfig(nfiles=cfg.nfiles,
                              avg_file_bytes=cfg.avg_file_bytes,
                              docroot=cfg.docroot, seed=cfg.seed)
    paths = build_docroot(kernel, web_cfg)
    server = _SERVERS[kind](kernel, cfg)
    server.setup()
    clients = kernel.spawn("clients")
    # both sides hold O(nclients) descriptors; lift the soft limit
    httpd.rlimit_nofile = max(httpd.rlimit_nofile, cfg.nclients + 64)
    clients.rlimit_nofile = max(clients.rlimit_nofile, cfg.nclients + 64)

    result = HttpBenchResult(kind=kind, nclients=cfg.nclients)
    client_fds: list[int] = []
    launched = 0
    while launched < cfg.nclients:
        wave = min(cfg.wave, cfg.nclients - launched)
        kernel.sched.switch_to(clients)
        for i in range(launched, launched + wave):
            fd = sys.socket(blocking=False)
            sys.connect(fd, cfg.port)
            sys.write(fd, _request_for(paths[i % len(paths)]))
            client_fds.append(fd)
        launched += wave
        kernel.sched.switch_to(httpd)
        with kernel.measure() as m:
            server.serve_wave(wave)
        result.elapsed += m.delta.elapsed
        result.user_cycles += m.delta.user
        result.system_cycles += m.delta.system
        result.syscalls += m.syscalls

    # differential evidence: what did each client actually receive?
    kernel.sched.switch_to(clients)
    digest = hashlib.sha256()
    total = 0
    for fd in client_fds:
        body = bytearray()
        while True:
            chunk = sys.read(fd, 65536)
            if not chunk:
                break
            body += chunk
        digest.update(len(body).to_bytes(8, "little"))
        digest.update(bytes(body))
        total += len(body)
    result.requests = server.requests
    result.bytes_served = total
    result.digest = digest.hexdigest()
    stack = kernel.sys.do_accept.__self__  # the installed SocketLayer
    result.nic = {
        "tx_packets": stack.nic.tx_packets,
        "rx_packets": stack.nic.rx_packets,
        "tx_bytes": stack.nic.tx_bytes,
        "interrupts": stack.nic.interrupts,
        "dropped": stack.nic.dropped,
    }
    return result


@dataclass
class SmpHttpBenchResult:
    """Aggregate metrics for one sharded multi-core serving run."""

    kind: str
    nclients: int
    cpus: int
    requests: int = 0
    bytes_served: int = 0
    #: serving-phase cycles per CPU; the *wall* elapsed is their max
    #: (frontier rule, docs/SMP.md) and the serialized equivalent their sum.
    per_cpu_elapsed: list = field(default_factory=list)
    wall_elapsed: int = 0
    total_elapsed: int = 0
    syscalls: int = 0
    digest: str = ""          # sha256 over every shard's drained bytes
    shard_requests: list = field(default_factory=list)
    nic: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Aggregate simulated throughput: requests per wall cycle."""
        return self.requests / max(self.wall_elapsed, 1)

    @property
    def speedup(self) -> float:
        """Parallel speedup over running the same work on one CPU."""
        return self.total_elapsed / max(self.wall_elapsed, 1)


def run_http_bench_smp(kernel: "Kernel", kind: str,
                       cfg: HttpBenchConfig) -> SmpHttpBenchResult:
    """Shard ``cfg.nclients`` across every CPU of an SMP kernel.

    CPU *c* gets its own server task and client task (both pinned to
    *c*) on port ``cfg.port + c``; the NIC's RSS steering keeps each
    listener's SYNs on its own RX queue.  Shards execute one after
    another in the cooperative simulation, but their costs land on their
    own CPUs' local clocks — so the *wall* elapsed of the whole run is
    the maximum per-CPU serving time (the frontier rule), and aggregate
    throughput is total requests over that wall time.  The kernel's
    ``SocketLayer`` should be built with ``queues=kernel.ncpus``.
    """
    if kind not in _SERVERS:
        raise ValueError(f"unknown server kind {kind!r}")
    ncpus = kernel.ncpus
    if ncpus < 2:
        raise ValueError("run_http_bench_smp needs an SMP kernel (cpus>1)")
    if kernel.current is None:
        raise RuntimeError("run_http_bench_smp needs a running task")
    sys = kernel.sys
    clock = kernel.clock
    web_cfg = WebServerConfig(nfiles=cfg.nfiles,
                              avg_file_bytes=cfg.avg_file_bytes,
                              docroot=cfg.docroot, seed=cfg.seed)
    paths = build_docroot(kernel, web_cfg)
    base, rem = divmod(cfg.nclients, ncpus)
    sizes = [base + (1 if c < rem else 0) for c in range(ncpus)]

    result = SmpHttpBenchResult(kind=kind, nclients=cfg.nclients, cpus=ncpus)
    serving = [0] * ncpus
    digest = hashlib.sha256()
    total_bytes = 0
    for c in range(ncpus):
        size = sizes[c]
        if size == 0:
            result.shard_requests.append(0)
            continue
        shard_cfg = replace(cfg, nclients=size, port=cfg.port + c)
        httpd = kernel.spawn(f"httpd/{c}", cpu=c)
        clients = kernel.spawn(f"clients/{c}", cpu=c)
        httpd.rlimit_nofile = max(httpd.rlimit_nofile, size + 64)
        clients.rlimit_nofile = max(clients.rlimit_nofile, size + 64)
        kernel.sched.switch_to(httpd)
        server = _SERVERS[kind](kernel, shard_cfg)
        server.setup()

        client_fds: list[int] = []
        launched = 0
        while launched < size:
            wave = min(cfg.wave, size - launched)
            kernel.sched.switch_to(clients)
            for i in range(launched, launched + wave):
                fd = sys.socket(blocking=False)
                sys.connect(fd, shard_cfg.port)
                sys.write(fd, _request_for(paths[(i * ncpus + c) % len(paths)]))
                client_fds.append(fd)
            launched += wave
            kernel.sched.switch_to(httpd)
            # The serving phase may spill onto other CPUs (RSS steers
            # established flows by socket ino), so measure every CPU's
            # local delta, not just shard c's.
            before = [clock.local_now(x) for x in range(ncpus)]
            sys0 = sys.total_syscalls
            server.serve_wave(wave)
            for x in range(ncpus):
                serving[x] += clock.local_now(x) - before[x]
            result.syscalls += sys.total_syscalls - sys0

        kernel.sched.switch_to(clients)
        for fd in client_fds:
            body = bytearray()
            while True:
                chunk = sys.read(fd, 65536)
                if not chunk:
                    break
                body += chunk
            digest.update(len(body).to_bytes(8, "little"))
            digest.update(bytes(body))
            total_bytes += len(body)
        result.requests += server.requests
        result.shard_requests.append(server.requests)

    result.bytes_served = total_bytes
    result.digest = digest.hexdigest()
    result.per_cpu_elapsed = serving
    result.wall_elapsed = max(serving)
    result.total_elapsed = sum(serving)
    stack = kernel.sys.do_accept.__self__  # the installed SocketLayer
    result.nic = {
        "tx_packets": stack.nic.tx_packets,
        "rx_packets": stack.nic.rx_packets,
        "tx_bytes": stack.nic.tx_bytes,
        "interrupts": stack.nic.interrupts,
        "dropped": stack.nic.dropped,
        "rx_queues": stack.nic.nqueues,
        "lock_contentions": stack.nic.lock.contentions,
        "lock_contention_cycles": stack.nic.lock.contention_cycles,
    }
    return result
