"""An Am-utils-compile-like workload (§3.2 / §3.4's CPU-intensive bench).

Compiling a package is a characteristic kernel workload: for every source
file the compiler stats a slew of headers (dcache + lookup traffic), reads
the source, burns CPU compiling, and writes an object file; a final link
re-reads every object.  The instrumented-filesystem experiments (Kefence
over Wrapfs, KGCC over the FS module) measure the *overhead ratio* of this
workload, so what matters is the faithful op mix, not the absolute scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.kernel.clock import Mode, Timings
from repro.kernel.vfs.file import O_CREAT, O_RDONLY, O_WRONLY

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


@dataclass
class CompileBenchConfig:
    nfiles: int = 40             # source files (Am-utils has ~430; scaled)
    headers: int = 25            # shared headers stat'ed/read per source
    avg_source_bytes: int = 6000
    object_ratio: float = 0.6    # .o size relative to source
    #: CPU cycles of "compilation" per source byte
    compile_cycles_per_byte: float = 40.0
    srcdir: str = "/src"
    objdir: str = "/obj"
    seed: int = 1234


@dataclass
class CompileBenchResult:
    sources_compiled: int
    bytes_read: int
    bytes_written: int
    timings: Timings


class CompileBench:
    """Set up a source tree, then 'compile' it through the syscall layer."""

    def __init__(self, kernel: "Kernel", config: CompileBenchConfig | None = None):
        self.kernel = kernel
        self.config = config or CompileBenchConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._prepared = False

    def prepare(self) -> None:
        """Create sources and headers (not part of the measured window)."""
        cfg = self.config
        sys = self.kernel.sys
        sys.mkdir(cfg.srcdir)
        sys.mkdir(f"{cfg.srcdir}/include")
        sys.mkdir(cfg.objdir)
        for h in range(cfg.headers):
            body = self._blob(cfg.avg_source_bytes // 4)
            sys.open_write_close(f"{cfg.srcdir}/include/h{h:03d}.h", body)
        for i in range(cfg.nfiles):
            size = max(200, int(self._rng.normal(cfg.avg_source_bytes,
                                                 cfg.avg_source_bytes / 4)))
            sys.open_write_close(f"{cfg.srcdir}/file{i:04d}.c",
                                 self._blob(size))
        self._prepared = True

    def _blob(self, size: int) -> bytes:
        return bytes(self._rng.integers(32, 127, size, dtype=np.uint8))

    def run(self) -> CompileBenchResult:
        """The measured compile+link pass."""
        if not self._prepared:
            self.prepare()
        cfg = self.config
        sys = self.kernel.sys
        bytes_read = bytes_written = 0
        with self.kernel.measure() as m:
            objects: list[str] = []
            for i in range(cfg.nfiles):
                src = f"{cfg.srcdir}/file{i:04d}.c"
                # the compiler probes every header (found or not)
                for h in range(cfg.headers):
                    sys.stat(f"{cfg.srcdir}/include/h{h:03d}.h")
                # read the source
                fd = sys.open(src, O_RDONLY)
                source = b""
                while True:
                    chunk = sys.read(fd, 8192)
                    if not chunk:
                        break
                    source += chunk
                sys.close(fd)
                bytes_read += len(source)
                # compile: pure user CPU
                self.kernel.clock.charge(
                    int(len(source) * cfg.compile_cycles_per_byte), Mode.USER)
                # write the object file
                obj = f"{cfg.objdir}/file{i:04d}.o"
                payload = self._blob(int(len(source) * cfg.object_ratio))
                fd = sys.open(obj, O_CREAT | O_WRONLY)
                sys.write(fd, payload)
                sys.close(fd)
                bytes_written += len(payload)
                objects.append(obj)
            # link: re-read every object, emit the binary
            binary = b""
            for obj in objects:
                binary += sys.open_read_close(obj)
            bytes_read += len(binary)
            sys.open_write_close(f"{cfg.objdir}/a.out", binary[:65536])
            bytes_written += min(len(binary), 65536)
        return CompileBenchResult(
            sources_compiled=cfg.nfiles, bytes_read=bytes_read,
            bytes_written=bytes_written, timings=m.timings)
