"""A synthetic interactive user session (§2.2's 15-minute trace).

"To see how this might affect an average user's workload, we logged the
system calls on a system under average interactive user load for
approximately 15 minutes."  The session mixes the activities such a log is
made of — directory listings (the readdir-stat runs readdirplus targets),
file viewing, edits, and builds of small files — with a seeded RNG so
traces are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import Errno
from repro.kernel.clock import Mode
from repro.kernel.vfs.file import O_CREAT, O_RDONLY, O_WRONLY

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


@dataclass
class InteractiveConfig:
    #: number of simulated user "commands"
    commands: int = 300
    #: directories in the simulated home tree, and files per directory
    ndirs: int = 12
    files_per_dir: int = 60
    avg_file_bytes: int = 2500
    #: command mix (probabilities; normalized internally).  Interactive
    #: desktop traffic is metadata-dominated (shells, file managers, and
    #: completion constantly list-and-stat), hence the heavy ls share.
    p_ls: float = 0.45
    p_cat: float = 0.25
    p_edit: float = 0.18
    p_build: float = 0.12
    #: mean user think time between commands (idle CPU), seconds.  Real
    #: interactive traces are mostly idle; §2.2 extrapolates savings per
    #: *wall* hour, so idle time must be modelled.
    think_time_mean_s: float = 1.0
    seed: int = 2005


class InteractiveSession:
    """Builds a home tree, then replays a command mix against it."""

    def __init__(self, kernel: "Kernel", config: InteractiveConfig | None = None):
        self.kernel = kernel
        self.config = config or InteractiveConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._dirs: list[str] = []
        self._prepared = False

    def prepare(self) -> None:
        cfg = self.config
        sys = self.kernel.sys
        try:
            sys.mkdir("/home")
        except Errno:
            pass
        for d in range(cfg.ndirs):
            path = f"/home/dir{d:02d}"
            sys.mkdir(path)
            self._dirs.append(path)
            for f in range(cfg.files_per_dir):
                size = max(10, int(self._rng.normal(cfg.avg_file_bytes,
                                                    cfg.avg_file_bytes / 3)))
                body = bytes(self._rng.integers(32, 127, size, dtype=np.uint8))
                sys.open_write_close(f"{path}/file{f:03d}", body)
        self._prepared = True

    # ------------------------------------------------------------- commands

    def _pick_dir(self) -> str:
        return self._dirs[int(self._rng.integers(len(self._dirs)))]

    def _pick_file(self) -> str:
        d = self._pick_dir()
        f = int(self._rng.integers(self.config.files_per_dir))
        return f"{d}/file{f:03d}"

    def _cmd_ls(self) -> None:
        """ls -l: the readdir + per-file stat pattern."""
        sys = self.kernel.sys
        path = self._pick_dir()
        fd = sys.open(path, O_RDONLY)
        names = []
        while True:
            batch = sys.getdents(fd)
            if not batch:
                break
            names.extend(e.name for e in batch)
        for name in names:
            sys.stat(f"{path}/{name}")
        sys.close(fd)

    def _cmd_cat(self) -> None:
        sys = self.kernel.sys
        fd = sys.open(self._pick_file(), O_RDONLY)
        while sys.read(fd, 4096):
            pass
        sys.close(fd)

    def _cmd_edit(self) -> None:
        """Editor save: read, think, write back (classic open-write-close)."""
        sys = self.kernel.sys
        path = self._pick_file()
        fd = sys.open(path, O_RDONLY)
        data = b""
        while True:
            chunk = sys.read(fd, 4096)
            if not chunk:
                break
            data += chunk
        sys.close(fd)
        self.kernel.clock.charge(
            int(len(data) * self.kernel.costs.user_touch_per_byte), Mode.USER)
        fd = sys.open(path, O_CREAT | O_WRONLY)
        sys.write(fd, data + b"\n// edited")
        sys.close(fd)

    def _cmd_build(self) -> None:
        """Tiny build: stat a few files, read one, write an artifact."""
        sys = self.kernel.sys
        d = self._pick_dir()
        for f in range(min(8, self.config.files_per_dir)):
            sys.stat(f"{d}/file{f:03d}")
        src = sys.open_read_close(f"{d}/file000")
        self.kernel.clock.charge(len(src) * 20, Mode.USER)
        sys.open_write_close(f"{d}/.artifact", src[: len(src) // 2])

    # ------------------------------------------------------------------ run

    def run(self) -> int:
        """Replay the command mix; returns the number of commands run."""
        if not self._prepared:
            self.prepare()
        cfg = self.config
        probs = np.array([cfg.p_ls, cfg.p_cat, cfg.p_edit, cfg.p_build])
        probs = probs / probs.sum()
        commands = [self._cmd_ls, self._cmd_cat, self._cmd_edit,
                    self._cmd_build]
        think_cycles = cfg.think_time_mean_s * self.kernel.clock.hz
        for _ in range(cfg.commands):
            idx = int(self._rng.choice(len(commands), p=probs))
            commands[idx]()
            if think_cycles > 0:
                # user thinks/types; CPU idles
                self.kernel.clock.charge(
                    int(self._rng.exponential(think_cycles)), Mode.IOWAIT)
        return cfg.commands
