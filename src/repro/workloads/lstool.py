"""/bin/ls -l, two ways (the §2.2 readdirplus experiment's subject).

``ls_legacy`` is the program the paper benchmarks readdirplus *against*:
"a program which did a readdir followed by stat calls for each file".
``ls_readdirplus`` is the same listing through the consolidated syscall.
Both return identical (name, size) listings; the benchmark compares their
elapsed/system/user times across directory sizes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.clock import Mode
from repro.kernel.vfs.file import O_RDONLY

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

#: user-side cycles to format one listing row (both variants pay this)
FORMAT_ROW_CYCLES = 150
#: user-side cycles the legacy ls spends per entry building the path string
#: it passes to stat (malloc + strcpy + strcat) — work readdirplus removes
PATH_BUILD_BASE_CYCLES = 180
PATH_BUILD_PER_CHAR = 3
#: per-entry cost of the user-level readdir(3) library layer over getdents
READDIR_LIB_CYCLES = 60


def ls_legacy(kernel: "Kernel", path: str) -> list[tuple[str, int]]:
    """readdir + one stat(2) per entry, like a pre-readdirplus /bin/ls."""
    sys = kernel.sys
    out: list[tuple[str, int]] = []
    fd = sys.open(path, O_RDONLY)
    try:
        while True:
            batch = sys.getdents(fd)
            if not batch:
                break
            for entry in batch:
                # the user program concatenates the path and re-crosses the
                # boundary for every single file
                kernel.clock.charge(
                    READDIR_LIB_CYCLES + PATH_BUILD_BASE_CYCLES
                    + PATH_BUILD_PER_CHAR * (len(path) + len(entry.name) + 2),
                    Mode.USER)
                st = sys.stat(f"{path}/{entry.name}")
                kernel.clock.charge(FORMAT_ROW_CYCLES, Mode.USER)
                out.append((entry.name, st.size))
    finally:
        sys.close(fd)
    return out


def ls_readdirplus(kernel: "Kernel", path: str) -> list[tuple[str, int]]:
    """readdirplus returns names and attributes together; one call per
    buffer-full (huge directories continue via the cookie)."""
    sys = kernel.sys
    out: list[tuple[str, int]] = []
    start = 0
    while True:
        batch = sys.readdirplus(path, start=start)
        if not batch:
            break
        for entry, st in batch:
            kernel.clock.charge(FORMAT_ROW_CYCLES, Mode.USER)
            out.append((entry.name, st.size))
        start += len(batch)
    return out


def make_directory(kernel: "Kernel", path: str, nfiles: int,
                   *, size_step: int = 7) -> None:
    """Populate a directory with ``nfiles`` small files (test fixture)."""
    from repro.kernel.vfs.file import O_CREAT, O_WRONLY

    sys = kernel.sys
    sys.mkdir(path)
    for i in range(nfiles):
        fd = sys.open(f"{path}/f{i:06d}", O_CREAT | O_WRONLY)
        if i % size_step:
            sys.write(fd, b"d" * (i % 64))
        sys.close(fd)
