"""A static-file web server, two ways (§2.1/§2.4).

The canonical server hot path the paper cites: per request, open the
file, move its bytes to the client socket, close.  ``ReadWriteServer``
is the classic loop — every chunk crosses into user space and straight
back.  ``SendfileServer`` replaces the loop with one ``sendfile`` call:
the §2.1-cited optimization ("performance improvements ranging from 92%
to 116%"), and an instance of §2.4's workload-tailored syscall suites.

Both serve identical bytes (the test asserts it by draining the client
side of the socket pair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.kernel.clock import Mode
from repro.kernel.vfs.file import O_CREAT, O_RDONLY, O_WRONLY

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

#: user-side cycles to parse one HTTP request / format response headers
REQUEST_PARSE_CYCLES = 900


@dataclass
class WebServerConfig:
    nfiles: int = 20
    avg_file_bytes: int = 16 * 1024
    requests: int = 100
    chunk: int = 8192          # read/write loop buffer size
    docroot: str = "/www"
    seed: int = 8080


def build_docroot(kernel: "Kernel", cfg: WebServerConfig) -> list[str]:
    """Create the document tree; returns the file paths."""
    rng = np.random.default_rng(cfg.seed)
    kernel.sys.mkdir(cfg.docroot)
    paths = []
    for i in range(cfg.nfiles):
        size = max(256, int(rng.normal(cfg.avg_file_bytes,
                                       cfg.avg_file_bytes / 4)))
        path = f"{cfg.docroot}/page{i:03d}.html"
        body = bytes(rng.integers(32, 127, size, dtype=np.uint8))
        fd = kernel.sys.open(path, O_CREAT | O_WRONLY)
        kernel.sys.write(fd, body)
        kernel.sys.close(fd)
        paths.append(path)
    return paths


class _ServerBase:
    def __init__(self, kernel: "Kernel", cfg: WebServerConfig,
                 client_fd: int, server_fd: int):
        self.kernel = kernel
        self.cfg = cfg
        self.client_fd = client_fd
        self.server_fd = server_fd
        self._rng = np.random.default_rng(cfg.seed + 1)
        self.bytes_served = 0

    def _next_path(self, paths: list[str]) -> str:
        return paths[int(self._rng.integers(len(paths)))]

    def serve(self, paths: list[str]) -> int:
        """Serve ``cfg.requests`` requests; returns bytes served."""
        for _ in range(self.cfg.requests):
            path = self._next_path(paths)
            self.kernel.clock.charge(REQUEST_PARSE_CYCLES, Mode.USER)
            self.bytes_served += self._serve_one(path)
        return self.bytes_served

    def _serve_one(self, path: str) -> int:  # pragma: no cover - abstract
        raise NotImplementedError


class ReadWriteServer(_ServerBase):
    """The classic loop: read(file) into a user buffer, write(socket)."""

    def _serve_one(self, path: str) -> int:
        sys = self.kernel.sys
        fd = sys.open(path, O_RDONLY)
        sent = 0
        try:
            while True:
                chunk = sys.read(fd, self.cfg.chunk)
                if not chunk:
                    break
                sent += sys.write(self.server_fd, chunk)
        finally:
            sys.close(fd)
        return sent


class SendfileServer(_ServerBase):
    """open + fstat for the length + one sendfile (the §2.1 fast path)."""

    def _serve_one(self, path: str) -> int:
        sys = self.kernel.sys
        fd, st = sys.open_fstat(path)
        try:
            return sys.sendfile(self.server_fd, fd, 0, st.size)
        finally:
            sys.close(fd)


def drain_client(kernel: "Kernel", client_fd: int) -> bytes:
    """Pull everything the 'network' delivered to the client side."""
    out = bytearray()
    sys = kernel.sys
    while True:
        chunk = sys.read(client_fd, 65536)
        if not chunk:
            return bytes(out)
        out += chunk
