"""Multi-tenant overload scenarios: the survival suite behind BENCH_SCALE.

Every benchmark before this one is a fair-weather, single-workload run.
The paper's claim — in-kernel execution pays off because boundary
crossings dominate — matters most when it is *hard* to keep: hundreds of
simulated processes from tenants of different trust tiers sharing one
kernel, heavy-tailed request sizes and arrivals, connection churn,
listen backlogs overflowing, and fault-injection storms firing mid-load.
This module generates and executes those runs:

* :func:`generate_schedule` — a **seeded, deterministic** event schedule:
  Zipf-popular file requests over Pareto inter-arrivals, connection
  open/close/abort churn for keep-alive tenants, batch ticks for the
  file-system/DB tenants, and fault-storm on/off markers.  Every OPEN is
  paired with exactly one CLOSE or ABORT and requests only target live
  connections — properties ``tests/property/test_prop_scenario.py``
  checks across random seeds.
* :class:`ScenarioRunner` — executes a schedule on a fresh kernel: one
  server task per HTTP tenant (select / epoll / Cosy-compound serving,
  hardened against mid-request disconnects), batch tasks for PostMark /
  compile / record-store tenants, trust-tier wiring for the Cosy tenants
  (load-time-verified / warmup-promoted / pinned-isolated extensions
  sharing the kernel), and per-tenant SLO accounting into
  :mod:`repro.analysis.slo` histograms.

Two runs with the same :class:`ScenarioConfig` produce bit-identical
clocks, metrics, and SLO reports (``tests/workloads/
test_scenario_determinism.py``); ``benchmarks/bench_scale.py`` turns the
reports into the BENCH_SCALE.json trajectory.  See docs/SCENARIOS.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.slo import SloReport, TenantSlo
from repro.core.cosy import (CompoundFault, CosyGCC, CosyKernelExtension,
                             CosyLib, CosyProtection, TrustManager)
from repro.errors import EAGAIN, ECANCELED, ECONNREFUSED, EMFILE, Errno
from repro.kernel.clock import Mode
from repro.kernel.core import Kernel
from repro.kernel.fs import RamfsSuperBlock
from repro.kernel.net import EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLLIN, SocketLayer
from repro.kernel.vfs.file import O_RDONLY
from repro.safety.monitor import EventDispatcher, SocketMonitor
from repro.safety.verifier import LoadTimeVerifier
from repro.workloads.compilebench import CompileBench, CompileBenchConfig
from repro.workloads.dbapp import (RECORD_SIZE, CosyRecordStore,
                                   DBWorkloadConfig, build_database)
from repro.workloads.httpserver import (REQUEST_BYTES, CosyHttpServer,
                                        EpollHttpServer, HttpBenchConfig,
                                        SelectHttpServer, UringHttpServer,
                                        _request_for)
from repro.workloads.postmark import PostMark, PostMarkConfig
from repro.workloads.webserver import (REQUEST_PARSE_CYCLES, WebServerConfig,
                                       build_docroot)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.process import Task

__all__ = [
    "TrustTier", "TenantSpec", "FaultStorm", "ScenarioConfig",
    "ScheduleEvent", "generate_schedule", "ScenarioRunner",
    "ScenarioResult", "run_scenario", "default_tenants",
]

#: tenant kinds the generator knows how to schedule
HTTP_KINDS = ("http-select", "http-epoll", "http-cosy", "http-uring")
BATCH_KINDS = ("postmark", "compile", "dbapp")
#: the keep-alive serving strategies ``ScenarioConfig.io_model`` can
#: force (cosy is excluded: its connection-per-request flow changes the
#: *schedule*, not just the serving loop)
_KEEPALIVE_KINDS = ("http-select", "http-epoll", "http-uring")


class TrustTier(enum.Enum):
    """How much the kernel trusts a tenant's in-kernel code (§2.4).

    PROVEN tenants carry extensions the load-time verifier proves safe —
    DATA_ONLY protection from the first call.  WARMUP tenants earn
    DATA_ONLY through the TrustManager observation period.  UNTRUSTED
    tenants run FULL_ISOLATION forever.
    """

    PROVEN = "proven"
    WARMUP = "warmup"
    UNTRUSTED = "untrusted"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant sharing the kernel."""

    name: str
    kind: str                       # one of HTTP_KINDS + BATCH_KINDS
    tier: TrustTier = TrustTier.UNTRUSTED
    #: share of generated events routed to this tenant
    weight: float = 1.0
    nfiles: int = 8
    avg_file_bytes: int = 2048
    #: batch tenants: operations per BATCH tick
    batch_ops: int = 12

    def __post_init__(self):
        if self.kind not in HTTP_KINDS + BATCH_KINDS:
            raise ValueError(f"unknown tenant kind {self.kind!r}")


@dataclass(frozen=True)
class FaultStorm:
    """A probabilistic failpoint armed for a slice of the schedule."""

    failpoint: str
    rate: float = 0.05
    #: fraction of the schedule where the storm starts / stops
    start_frac: float = 0.3
    stop_frac: float = 0.6


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything that determines a run.  Same config ⇒ same result."""

    seed: int = 2026
    tenants: tuple[TenantSpec, ...] = ()
    #: request/batch events generated (excluding opens/closes/storms)
    events: int = 300
    #: Zipf exponent for file popularity (>1; larger = more skewed)
    zipf_s: float = 1.3
    #: Pareto shape for inter-arrival gaps and request bursts
    pareto_alpha: float = 1.6
    #: probability a keep-alive connection is closed after a request
    churn: float = 0.15
    #: probability a churn close is abortive (no request drained)
    abort_prob: float = 0.2
    #: max simultaneously open connections per keep-alive tenant
    max_conns: int = 12
    #: listen backlog for every HTTP tenant (small ⇒ overflow under bursts)
    backlog: int = 32
    storms: tuple[FaultStorm, ...] = ()
    #: attach the §3.3 event monitors (dispatch cost is deterministic)
    monitor: bool = True
    #: simulated CPUs to boot (docs/SMP.md): tenants spread round-robin
    #: and the NIC runs one RX queue per CPU; 1 = the pre-SMP kernel
    cpus: int = 1
    #: serve every keep-alive HTTP tenant with this I/O model —
    #: "select" | "epoll" | "uring" — regardless of its spec kind.  The
    #: *schedule* still follows the spec (same opens/requests/churn), so
    #: two runs differing only in ``io_model`` face identical clients and
    #: the SLO deltas isolate the serving strategy.  None = per-spec.
    io_model: str | None = None

    def __post_init__(self):
        if self.io_model not in (None, "select", "epoll", "uring"):
            raise ValueError(f"unknown io_model {self.io_model!r}")

    def resolved_tenants(self) -> tuple[TenantSpec, ...]:
        return self.tenants if self.tenants else default_tenants()

    def serving_kind(self, spec: TenantSpec) -> str:
        """The server strategy actually booted for ``spec``."""
        if self.io_model is None or spec.kind not in _KEEPALIVE_KINDS:
            return spec.kind
        return f"http-{self.io_model}"


def default_tenants() -> tuple[TenantSpec, ...]:
    """The standard mixed-trust tenant population."""
    return (
        TenantSpec("web-select", "http-select", TrustTier.UNTRUSTED,
                   weight=2.0),
        TenantSpec("web-epoll", "http-epoll", TrustTier.UNTRUSTED,
                   weight=2.0),
        TenantSpec("web-cosy", "http-cosy", TrustTier.WARMUP, weight=2.0),
        TenantSpec("web-uring", "http-uring", TrustTier.UNTRUSTED,
                   weight=2.0),
        TenantSpec("mail-postmark", "postmark", TrustTier.UNTRUSTED,
                   weight=0.7),
        TenantSpec("build-farm", "compile", TrustTier.UNTRUSTED, weight=0.4),
        TenantSpec("db-proven", "dbapp", TrustTier.PROVEN, weight=0.7),
        TenantSpec("db-warmup", "dbapp", TrustTier.WARMUP, weight=0.7),
        TenantSpec("db-untrusted", "dbapp", TrustTier.UNTRUSTED, weight=0.5),
    )


# --------------------------------------------------------------------------
# schedule generation
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ScheduleEvent:
    """One step of a scenario.

    ``at`` is a virtual arrival timestamp (monotone, non-negative) used
    for ordering and well-formedness checks; simulated time itself
    advances only from executed work.
    """

    kind: str          # open|request|close|abort|batch|storm_on|storm_off
    tenant: str = ""
    conn: int = -1
    rank: int = 0      # Zipf popularity rank of the requested file
    burst: int = 1     # back-to-back requests on the connection
    storm: int = -1    # index into ScenarioConfig.storms
    at: int = 0


def generate_schedule(cfg: ScenarioConfig) -> list[ScheduleEvent]:
    """Deterministically expand a config into an event schedule.

    Invariants (property-tested): timestamps are non-negative and
    non-decreasing; every ``open`` has exactly one matching ``close`` or
    ``abort``; every ``request``/``close``/``abort`` names a connection
    that is open at that point; every storm turned on is turned off.
    """
    rng = np.random.default_rng(cfg.seed)
    tenants = cfg.resolved_tenants()
    weights = np.array([t.weight for t in tenants], dtype=float)
    weights /= weights.sum()
    # cosy tenants serve one connection per request (the compound accepts)
    keepalive = {t.name for t in tenants if t.kind in _KEEPALIVE_KINDS}
    byname = {t.name: t for t in tenants}

    events: list[ScheduleEvent] = []
    open_conns: dict[str, list[int]] = {t.name: [] for t in tenants}
    next_conn: dict[str, int] = {t.name: 0 for t in tenants}
    t = 0
    for _ in range(cfg.events):
        t += 1 + int(rng.pareto(cfg.pareto_alpha) * 2)
        tenant = tenants[int(rng.choice(len(tenants), p=weights))]
        name = tenant.name
        if tenant.kind in BATCH_KINDS:
            events.append(ScheduleEvent("batch", name, at=t))
            continue
        rank = int((rng.zipf(cfg.zipf_s) - 1) % tenant.nfiles)
        burst = min(4, 1 + int(rng.pareto(cfg.pareto_alpha)))
        if name not in keepalive:
            # connection-per-request tenant: self-contained event
            events.append(ScheduleEvent("request", name, rank=rank,
                                        burst=burst, at=t))
            continue
        pool = open_conns[name]
        if not pool or (len(pool) < cfg.max_conns
                        and rng.random() < 0.5):
            # Churny clients arrive in herds: a Pareto-sized burst of
            # connects lands before the server gets to run again, which
            # is what actually pressures the listen backlog.
            herd = min(cfg.max_conns - len(pool),
                       1 + int(rng.pareto(cfg.pareto_alpha)
                               * 4 * cfg.churn))
            for _ in range(max(1, herd)):
                cid = next_conn[name]
                next_conn[name] += 1
                pool.append(cid)
                events.append(ScheduleEvent("open", name, conn=cid, at=t))
        cid = pool[int(rng.integers(len(pool)))]
        events.append(ScheduleEvent("request", name, conn=cid, rank=rank,
                                    burst=burst, at=t))
        if rng.random() < cfg.churn:
            pool.remove(cid)
            kind = "abort" if rng.random() < cfg.abort_prob else "close"
            events.append(ScheduleEvent(kind, name, conn=cid, at=t))
    # drain: every connection still open is closed in deterministic order
    for name in sorted(open_conns):
        for cid in open_conns[name]:
            t += 1
            events.append(ScheduleEvent("close", name, conn=cid, at=t))
    # splice fault storms in at their schedule fractions
    for i, storm in enumerate(cfg.storms):
        n = len(events)
        on = min(n, max(0, int(storm.start_frac * n)))
        off = min(n, max(on, int(storm.stop_frac * n)))
        at_on = events[on].at if on < n else t
        at_off = events[off].at if off < n else t
        events.insert(off, ScheduleEvent("storm_off", storm=i, at=at_off))
        events.insert(on, ScheduleEvent("storm_on", storm=i, at=at_on))
    return events


# --------------------------------------------------------------------------
# scenario-hardened servers
# --------------------------------------------------------------------------
# The bench servers in repro.workloads.httpserver assume well-behaved
# clients: every accepted connection eventually sends a complete request
# and nobody hangs up.  Under churn those assumptions break — these
# subclasses keep the serving strategy (select / epoll / compound) but
# survive EOF, resets, mid-transfer hangups, and fd exhaustion.

class _RobustServing:
    """Mixin: serve one request off a readable connection, tolerating
    every way the peer can have misbehaved.  Returns +1 when a request
    completed, 0 when the connection was reaped or had nothing valid."""

    errors = 0

    def _serve_robust(self, conn: int) -> int:
        sys = self.kernel.sys
        try:
            req = sys.read(conn, REQUEST_BYTES)
        except Errno:
            self._reap(conn)
            return 0
        if not req:
            # readable with no data ⇒ EOF/HUP: the peer is gone
            self._reap(conn)
            return 0
        self.kernel.clock.charge(REQUEST_PARSE_CYCLES, Mode.USER)
        path = req[4:].split(b"\0", 1)[0].decode(errors="replace")
        try:
            fd = sys.open(path, O_RDONLY)
        except Errno:
            self.errors += 1      # truncated/garbled request line
            self._reap(conn)
            return 0
        try:
            self.bytes_served += sys.sendfile(conn, fd, 0, 1 << 30)
        except Errno:
            self.errors += 1      # peer hung up (or a fault storm) mid-send
            self._reap(conn)
            return 0
        finally:
            sys.close(fd)
        self.requests += 1
        return 1

    def _reap(self, conn: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _accept_pending(self) -> int:
        """Drain the accept queue; returns backlog entries consumed."""
        sys = self.kernel.sys
        consumed = 0
        while True:
            try:
                conn = sys.accept(self.listen_fd)
            except Errno as exc:
                if exc.errno == EAGAIN:
                    break
                if exc.errno == EMFILE:
                    # the kernel tore the child down (accept-emfile path);
                    # the backlog entry is consumed, keep draining
                    consumed += 1
                    continue
                raise
            self._track(conn)
            consumed += 1
        return consumed

    def _track(self, conn: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class ScenarioSelectServer(_RobustServing, SelectHttpServer):
    """select(2) strategy with churn-tolerant serving."""

    def _track(self, conn: int) -> None:
        self._index[conn] = len(self.fds)
        self.fds.append(conn)

    def _reap(self, conn: int) -> None:
        self.kernel.sys.close(conn)
        self.fds = [fd for fd in self.fds if fd != conn]
        self._index = {fd: i for i, fd in enumerate(self.fds)}

    def pump(self) -> int:
        sys = self.kernel.sys
        served = 0
        while True:
            progressed = self._accept_pending() > 0
            ready = sys.select(self.fds, start=0, limit=64)
            for fd in ready:
                if fd == self.listen_fd:
                    continue
                served += self._serve_robust(fd)
                progressed = True
            if not progressed:
                return served

    def live_conns(self) -> list[int]:
        return [fd for fd in self.fds if fd != self.listen_fd]


class ScenarioEpollServer(_RobustServing, EpollHttpServer):
    """epoll strategy with churn-tolerant serving.

    Reaping closes the connection *without* EPOLL_CTL_DEL on purpose:
    descriptor reuse across churn is exactly the stale-registration edge
    the epoll identity tracking has to survive."""

    def __init__(self, kernel, cfg):
        super().__init__(kernel, cfg)
        self._conns: set[int] = set()

    def _track(self, conn: int) -> None:
        self.kernel.sys.epoll_ctl(self.epfd, EPOLL_CTL_ADD, conn, EPOLLIN)
        self._conns.add(conn)

    def _reap(self, conn: int) -> None:
        self.kernel.sys.close(conn)
        self._conns.discard(conn)

    def pump(self) -> int:
        sys = self.kernel.sys
        served = 0
        while True:
            events = sys.epoll_wait(self.epfd, maxevents=64, timeout=0)
            progressed = False
            for fd, _mask in events:
                if fd == self.listen_fd:
                    progressed = self._accept_pending() > 0 or progressed
                else:
                    served += self._serve_robust(fd)
                    progressed = True
            if not progressed:
                return served

    def live_conns(self) -> list[int]:
        return sorted(self._conns)


class ScenarioUringServer(UringHttpServer):
    """Async-ring strategy with churn-tolerant serving (docs/URING.md).

    The bench server treats any negative CQE as a harness bug; under
    churn they are routine: RECV completes 0 / ``-ECONNRESET`` when the
    peer hung up, OPENAT fails on a garbled request line, SENDFILE dies
    mid-transfer, and each failed link cancels the rest of its chain
    with ``-ECANCELED``.  Every failure reaps the connection and
    recycles its request buffer; a completed chain re-arms the next
    request's chain on the same connection (keep-alive).
    """

    errors = 0

    def __init__(self, kernel, cfg):
        super().__init__(kernel, cfg)
        self._conns: set[int] = set()

    def _track(self, conn: int) -> None:
        self._conns.add(conn)
        self._chain(conn)

    def _reap(self, conn: int) -> None:
        if conn not in self._conns:
            return
        self._conns.discard(conn)
        buf = self._bufs.pop(conn, None)
        if buf is not None:
            self._pool.append(buf)
        try:
            self.kernel.sys.close(conn)
        except Errno:  # pragma: no cover - double close is a server bug
            pass

    def _handle(self, cqe) -> int:
        tag = cqe.user_data & 7
        conn = cqe.user_data >> 3
        if tag == self.TAG_ACCEPT:
            if cqe.res < 0:
                # EMFILE: the kernel tore the child down (accept-emfile
                # path); the multishot accept stays armed
                self.errors += 1
            else:
                self._track(cqe.res)
            return 0
        if tag == self.TAG_RECV:
            if cqe.res <= 0:
                # EOF, reset, or an injected fault; the chain's rest
                # arrives as -ECANCELED CQEs right behind this one
                self._reap(conn)
            return 0
        if tag == self.TAG_OPEN:
            if cqe.res < 0 and cqe.res != -ECANCELED:
                self.errors += 1      # truncated/garbled request line
                self._reap(conn)
            return 0
        if tag == self.TAG_SENDFILE:
            if cqe.res == -ECANCELED:
                return 0
            if cqe.res < 0:
                self.errors += 1      # peer hung up (or fault) mid-send
                self._reap(conn)
                return 0
            self.bytes_served += cqe.res
            self.requests += 1
            return 1
        # TAG_CLOSE: the chain completed (or was cancelled after a reap);
        # a surviving connection gets the next request's chain armed
        if cqe.res != -ECANCELED and conn in self._conns:
            self._chain(conn)
        return 0

    def pump(self) -> int:
        q = self.q
        served = 0
        while True:
            try:
                # one trap flushes armed accepts/recvs, the CQ-overflow
                # backlog, and any chains _handle re-armed last round
                q.enter()
            except Errno:
                self.errors += 1
            cqes = q.harvest(maxevents=64)
            if not cqes:
                return served
            for cqe in cqes:
                served += self._handle(cqe)

    def live_conns(self) -> list[int]:
        return sorted(self._conns)


class ScenarioCosyServer(CosyHttpServer):
    """Compound strategy, one connection per request, with cleanup.

    Unlike the bench compound (keep-alive, connections left open), the
    scenario compound closes the served connection — churn would
    otherwise leak one server-side fd per request."""

    errors = 0

    def _compound(self, n: int) -> bytes:
        from repro.core.cosy.compound import CompoundBuilder
        from repro.core.cosy.ops import Arg
        encoded = self._encoded.get(n)
        if encoded is not None:
            return encoded
        b = CompoundBuilder()
        cnt = b.slot("n")
        conn = b.slot("conn")
        fd = b.slot("fd")
        sent = b.slot("sent")
        nread = b.slot("nread")
        rc = b.slot("rc")
        b.mov(cnt, Arg.lit(n))
        top = b.label("top")
        done = b.label("done")
        b.place(top)
        b.syscall("accept", Arg.lit(self.listen_fd), out=conn)
        b.syscall("read", Arg.slot(conn),
                  Arg.shared(self.req_off, REQUEST_BYTES),
                  Arg.lit(REQUEST_BYTES), out=nread)
        b.syscall("open", Arg.shared(self.req_off + 4, REQUEST_BYTES - 4),
                  Arg.lit(O_RDONLY), out=fd)
        b.syscall("sendfile", Arg.slot(conn), Arg.slot(fd),
                  Arg.lit(0), Arg.lit(1 << 30), out=sent)
        b.syscall("close", Arg.slot(fd), out=rc)
        b.syscall("close", Arg.slot(conn), out=rc)
        b.math("-", cnt, Arg.slot(cnt), Arg.lit(1))
        b.jz(Arg.slot(cnt), done)
        b.jmp(top)
        b.place(done)
        encoded = b.encode()
        self._encoded[n] = encoded
        return encoded

    #: slot layout above (for fault cleanup)
    _SLOT_CONN, _SLOT_FD = 1, 2

    def serve_one(self) -> int:
        """Serve exactly one queued connection through the compound."""
        encoded = self._compound(1)
        self.kernel.clock.charge(
            int(len(encoded) * self.kernel.costs.user_touch_per_byte),
            Mode.USER)
        sys = self.kernel.sys
        try:
            self.ext.execute(self.kernel.current, encoded, self.shared)
        except CompoundFault as cf:
            # partial-failure cleanup: close whatever the compound had
            # open when the faulting op aborted it
            self.errors += 1
            if cf.op_name != "accept":
                if cf.op_name in ("sendfile", "close"):
                    try:
                        sys.close(cf.slots[self._SLOT_FD])
                    except Errno:
                        pass
                try:
                    sys.close(cf.slots[self._SLOT_CONN])
                except Errno:
                    pass
            return 0
        self.requests += 1
        return 1


# --------------------------------------------------------------------------
# tenant runtime state
# --------------------------------------------------------------------------

_HTTP_SERVERS = {
    "http-select": ScenarioSelectServer,
    "http-epoll": ScenarioEpollServer,
    "http-cosy": ScenarioCosyServer,
    "http-uring": ScenarioUringServer,
}

#: the PROVEN tier's extension: constant-bound loops the load-time
#: verifier proves safe, so the TrustManager grants DATA_ONLY from the
#: first call with no warmup.
_PROVEN_SRC = """
int mix(int x) {
    int a[16];
    int s;
    s = 0;
    for (int i = 0; i < 16; i++) { a[i] = x + i; }
    for (int i = 0; i < 16; i++) { s = s + a[i]; }
    return s;
}
int main() {
    int rounds;
    COSY_START();
    int s = 0;
    for (int r = 0; r < rounds; r++) {
        s = s + mix(r);
    }
    return s;
    COSY_END();
    return 0;
}
"""


class _Tenant:
    """Everything the runner keeps per tenant: task, app, SLO stats."""

    def __init__(self, spec: TenantSpec, slo: TenantSlo, task: "Task"):
        self.spec = spec
        self.slo = slo
        self.task = task
        self.server = None          # HTTP tenants
        self.paths: list[str] = []
        self.port = 0
        self.app = None             # batch tenants
        self.trust: TrustManager | None = None


class ScenarioRunner:
    """Execute a schedule on a freshly booted kernel."""

    def __init__(self, cfg: ScenarioConfig, kernel: Kernel | None = None):
        self.cfg = cfg
        if kernel is None:
            kernel = Kernel(cpus=cfg.cpus)
            kernel.mount_root(RamfsSuperBlock(kernel))
            kernel.spawn("driver")
        self.kernel = kernel
        self.driver = kernel.current
        self.stack = SocketLayer(kernel, queues=kernel.ncpus)
        self.dispatcher = None
        self.sock_monitor = None
        if cfg.monitor:
            self.sock_monitor = SocketMonitor()
            self.dispatcher = EventDispatcher(kernel).attach()
            self.dispatcher.register_callback(self.sock_monitor)
        self.tenants: dict[str, _Tenant] = {}
        #: (tenant, conn_id) -> driver-side fd, or a _DEAD_* marker noting
        #: why the connection is gone (so later requests on it are charged
        #: to the right SLO bucket)
        self._conns: dict[tuple[str, int], int | str] = {}
        self._storms: dict[int, object] = {}
        self._setup_tenants()

    # ------------------------------------------------------------- setup

    def _setup_tenants(self) -> None:
        kernel = self.kernel
        metrics = kernel.metrics
        specs = self.cfg.resolved_tenants()
        port = 80
        for i, spec in enumerate(specs):
            slo = TenantSlo(spec.name, spec.kind, spec.tier.value)
            slo.latency = metrics.histogram(f"slo.{spec.name}.latency_cycles")
            slo.sched_delay = metrics.histogram(
                f"slo.{spec.name}.sched_delay_cycles")
            # SMP kernels spread tenants round-robin across CPUs; at
            # cpus=1 the explicit pin is cpu0, same as the default.
            task = kernel.spawn(spec.name, cpu=i % kernel.ncpus)
            # Tenant-tag the task: profiler samples group by it, and the
            # scheduler feeds this tenant's starvation SLO directly.
            task.tenant = spec.name
            task.sched_delay = slo.sched_delay
            tenant = _Tenant(spec, slo, task)
            self.tenants[spec.name] = tenant
            kernel.sched.switch_to(task)
            if spec.kind in HTTP_KINDS:
                tenant.port = port
                web_cfg = WebServerConfig(
                    nfiles=spec.nfiles, avg_file_bytes=spec.avg_file_bytes,
                    docroot=f"/{spec.name}", seed=self.cfg.seed + 31 * i)
                tenant.paths = build_docroot(kernel, web_cfg)
                http_cfg = HttpBenchConfig(
                    nfiles=spec.nfiles, avg_file_bytes=spec.avg_file_bytes,
                    backlog=self.cfg.backlog, port=port,
                    docroot=f"/{spec.name}", seed=self.cfg.seed + 31 * i)
                server = _HTTP_SERVERS[self.cfg.serving_kind(spec)](
                    kernel, http_cfg)
                server.setup()
                task.rlimit_nofile = max(task.rlimit_nofile,
                                         4 * self.cfg.max_conns + 64)
                tenant.server = server
                if spec.kind == "http-cosy":
                    self._wire_trust(tenant, server.ext)
                port += 1
            elif spec.kind == "postmark":
                tenant.app = PostMark(kernel, PostMarkConfig(
                    nfiles=max(8, spec.batch_ops),
                    transactions=spec.batch_ops,
                    workdir=f"/{spec.name}", seed=self.cfg.seed + 31 * i))
            elif spec.kind == "compile":
                bench = CompileBench(kernel, CompileBenchConfig(
                    nfiles=max(2, spec.batch_ops // 4), headers=6,
                    avg_source_bytes=1500,
                    srcdir=f"/{spec.name}-src", objdir=f"/{spec.name}-obj",
                    seed=self.cfg.seed + 31 * i))
                bench.prepare()
                tenant.app = bench
            elif spec.kind == "dbapp":
                self._setup_db_tenant(tenant, i)
        kernel.sched.switch_to(self.driver)
        self.driver.rlimit_nofile = max(
            self.driver.rlimit_nofile,
            4 * self.cfg.max_conns * max(1, len(specs)) + 64)

    def _setup_db_tenant(self, tenant: _Tenant, i: int) -> None:
        kernel = self.kernel
        spec = tenant.spec
        if spec.tier is TrustTier.PROVEN:
            # pure-compute extension with provable bounds
            ext = CosyKernelExtension(
                kernel, protection=CosyProtection.FULL_ISOLATION,
                verifier=LoadTimeVerifier())
            self._wire_trust(tenant, ext)
            lib = CosyLib(kernel, ext)
            tenant.app = lib.install(tenant.task,
                                     CosyGCC().compile(_PROVEN_SRC))
            return
        db_cfg = DBWorkloadConfig(nrecords=64, db_path=f"/{spec.name}.dat",
                                  seed=self.cfg.seed + 31 * i)
        build_database(kernel, db_cfg)
        if spec.tier is TrustTier.WARMUP:
            ext = CosyKernelExtension(
                kernel, protection=CosyProtection.FULL_ISOLATION)
            self._wire_trust(tenant, ext)
        else:
            # pinned untrusted: FULL_ISOLATION forever, no trust manager
            ext = CosyKernelExtension(
                kernel, protection=CosyProtection.FULL_ISOLATION)
        tenant.app = CosyRecordStore(kernel, tenant.task, db_cfg, ext=ext)

    def _wire_trust(self, tenant: _Tenant, ext: CosyKernelExtension) -> None:
        if tenant.spec.tier is TrustTier.PROVEN:
            tenant.trust = TrustManager(ext, threshold=1 << 30)
        elif tenant.spec.tier is TrustTier.WARMUP:
            tenant.trust = TrustManager(ext, threshold=3)

    # ---------------------------------------------------------- execution

    def run(self, schedule: list[ScheduleEvent] | None = None
            ) -> "ScenarioResult":
        if schedule is None:
            schedule = generate_schedule(self.cfg)
        handlers = {"open": self._ev_open, "request": self._ev_request,
                    "close": self._ev_close, "abort": self._ev_abort,
                    "batch": self._ev_batch, "storm_on": self._ev_storm_on,
                    "storm_off": self._ev_storm_off}
        for ev in schedule:
            handlers[ev.kind](ev)
        self._cleanup()
        return self._result()

    def _tenant(self, ev: ScheduleEvent) -> _Tenant:
        return self.tenants[ev.tenant]

    def _pump(self, tenant: _Tenant) -> None:
        """Run the tenant's server task until it has no pending work."""
        self.kernel.sched.switch_to(tenant.task)
        try:
            tenant.server.pump()
        except Errno:
            tenant.server.errors += 1
        finally:
            self.kernel.sched.switch_to(self.driver)

    def _drain(self, fd: int) -> int:
        """Read everything queued on a driver-side connection."""
        sys = self.kernel.sys
        total = 0
        while True:
            try:
                chunk = sys.read(fd, 65536)
            except Errno:
                return total
            if not chunk:
                return total
            total += len(chunk)

    def _close_driver_fd(self, fd: int) -> None:
        try:
            self.kernel.sys.close(fd)
        except Errno:  # pragma: no cover - double close is a runner bug
            pass

    # ------------------------------------------------------ event handlers

    _DEAD_REFUSED = "dead:refused"
    _DEAD_RESET = "dead:reset"

    def _ev_open(self, ev: ScheduleEvent) -> None:
        tenant = self._tenant(ev)
        sys = self.kernel.sys
        fd = sys.socket(blocking=False)
        try:
            sys.connect(fd, tenant.port)
        except Errno as exc:
            self._close_driver_fd(fd)
            if exc.errno == ECONNREFUSED:
                tenant.slo.refused += 1
                self._conns[(ev.tenant, ev.conn)] = self._DEAD_REFUSED
                return
            tenant.slo.resets += 1
            self._conns[(ev.tenant, ev.conn)] = self._DEAD_RESET
            return
        self._conns[(ev.tenant, ev.conn)] = fd

    def _ev_request(self, ev: ScheduleEvent) -> None:
        tenant = self._tenant(ev)
        if tenant.spec.kind == "http-cosy":
            self._cosy_request(tenant, ev)
            return
        fd = self._conns.get((ev.tenant, ev.conn))
        for _ in range(ev.burst):
            tenant.slo.requests += 1
            if isinstance(fd, str) or fd is None:
                if fd == self._DEAD_REFUSED:
                    tenant.slo.refused += 1
                else:
                    tenant.slo.resets += 1
                continue
            if not self._one_request(tenant, fd, ev.rank):
                self._close_driver_fd(fd)
                self._conns[(ev.tenant, ev.conn)] = fd = self._DEAD_RESET

    def _one_request(self, tenant: _Tenant, fd: int, rank: int) -> bool:
        """Write request, pump the server, drain the response.
        Returns False when the connection died."""
        sys = self.kernel.sys
        clock = self.kernel.clock
        path = tenant.paths[rank % len(tenant.paths)]
        submit = clock.now
        try:
            sys.write(fd, _request_for(path))
        except Errno:
            tenant.slo.resets += 1
            return False
        self._pump(tenant)
        got = self._drain(fd)
        if got == 0:
            # server reaped us (garbled request under a storm, or reset)
            tenant.slo.resets += 1
            return False
        tenant.slo.latency.observe(clock.now - submit)
        tenant.slo.completed += 1
        tenant.slo.goodput_bytes += got
        return True

    def _cosy_request(self, tenant: _Tenant, ev: ScheduleEvent) -> None:
        """Connection-per-request flow: the compound accepts and closes."""
        sys = self.kernel.sys
        clock = self.kernel.clock
        for _ in range(ev.burst):
            tenant.slo.requests += 1
            fd = sys.socket(blocking=False)
            try:
                sys.connect(fd, tenant.port)
            except Errno as exc:
                self._close_driver_fd(fd)
                if exc.errno == ECONNREFUSED:
                    tenant.slo.refused += 1
                else:
                    tenant.slo.resets += 1
                continue
            path = tenant.paths[ev.rank % len(tenant.paths)]
            submit = clock.now
            try:
                sys.write(fd, _request_for(path))
            except Errno:
                tenant.slo.resets += 1
                self._close_driver_fd(fd)
                continue
            self.kernel.sched.switch_to(tenant.task)
            try:
                served = tenant.server.serve_one()
            except Errno:
                tenant.server.errors += 1
                served = 0
            finally:
                self.kernel.sched.switch_to(self.driver)
            got = self._drain(fd)
            if served and got:
                tenant.slo.latency.observe(clock.now - submit)
                tenant.slo.completed += 1
                tenant.slo.goodput_bytes += got
            else:
                tenant.slo.resets += 1
            self._close_driver_fd(fd)

    def _ev_close(self, ev: ScheduleEvent) -> None:
        fd = self._conns.pop((ev.tenant, ev.conn), None)
        if isinstance(fd, int):
            self._close_driver_fd(fd)
            # let the server observe the EOF and reap its side
            self._pump(self._tenant(ev))

    def _ev_abort(self, ev: ScheduleEvent) -> None:
        """Abortive close: hang up without draining, don't tell the server
        (it discovers the corpse whenever it next looks)."""
        tenant = self._tenant(ev)
        fd = self._conns.pop((ev.tenant, ev.conn), None)
        if isinstance(fd, int):
            tenant.slo.aborted += 1
            self._close_driver_fd(fd)

    def _ev_batch(self, ev: ScheduleEvent) -> None:
        tenant = self._tenant(ev)
        kernel = self.kernel
        slo = tenant.slo
        slo.requests += 1
        kernel.sched.switch_to(tenant.task)
        try:
            with kernel.measure() as m:
                goodput = self._run_batch(tenant)
        except Errno:
            slo.resets += 1       # a fault storm broke the batch mid-way
            return
        finally:
            kernel.sched.switch_to(self.driver)
        slo.latency.observe(m.delta.elapsed)
        slo.completed += 1
        slo.goodput_bytes += goodput

    def _run_batch(self, tenant: _Tenant) -> int:
        spec = tenant.spec
        if spec.kind == "postmark":
            r = tenant.app.run()
            return r.bytes_read + r.bytes_written
        if spec.kind == "compile":
            r = tenant.app.run()
            return r.bytes_read + r.bytes_written
        # dbapp
        if spec.tier is TrustTier.PROVEN:
            tenant.app.run({"rounds": spec.batch_ops})
            return spec.batch_ops * 16 * 4
        tenant.app.random_lookups(spec.batch_ops)
        return spec.batch_ops * RECORD_SIZE

    def _ev_storm_on(self, ev: ScheduleEvent) -> None:
        storm = self.cfg.storms[ev.storm]
        self._storms[ev.storm] = self.kernel.faults.inject(
            storm.failpoint, probability=storm.rate,
            seed=self.cfg.seed + 977 * (ev.storm + 1))

    def _ev_storm_off(self, ev: ScheduleEvent) -> None:
        inj = self._storms.pop(ev.storm, None)
        if inj is not None:
            inj.remove()

    # ------------------------------------------------------------- teardown

    def _cleanup(self) -> None:
        """Close every surviving descriptor so a leak at the end is a bug,
        not leftover state."""
        for inj in self._storms.values():
            inj.remove()
        self._storms.clear()
        for key, fd in sorted(self._conns.items()):
            if isinstance(fd, int):
                self._close_driver_fd(fd)
        self._conns.clear()
        sys = self.kernel.sys
        for tenant in self.tenants.values():
            if tenant.server is None:
                continue
            self._pump_quiet(tenant)
            self.kernel.sched.switch_to(tenant.task)
            server = tenant.server
            if hasattr(server, "live_conns"):
                for fd in server.live_conns():
                    try:
                        sys.close(fd)
                    except Errno:
                        pass
            if getattr(server, "epfd", -1) >= 0:
                sys.close(server.epfd)
            if getattr(server, "ring_fd", -1) >= 0:
                sys.close(server.ring_fd)
            sys.close(server.listen_fd)
            self.kernel.sched.switch_to(self.driver)

    def _pump_quiet(self, tenant: _Tenant) -> None:
        if hasattr(tenant.server, "pump"):
            self._pump(tenant)

    def _result(self) -> "ScenarioResult":
        kernel = self.kernel
        clock = (kernel.clock.user, kernel.clock.system, kernel.clock.iowait)
        stack = self.stack
        net = {
            "connections": stack.connections,
            "accepts": stack.accepts,
            "drops": stack.drops,
            "refused": stack.refused,
            "backlog_overflows": stack.backlog_overflows,
            "rst_tx": stack.rst_tx,
            "accept_emfile": stack.accept_emfile,
            "nic_dropped": stack.nic.dropped,
        }
        leaks = 0
        monitor_counts: dict[str, int] = {}
        if self.sock_monitor is not None:
            leaks = len(self.sock_monitor.report_leaks())
            monitor_counts = {
                "accepts": self.sock_monitor.accepts,
                "closes": self.sock_monitor.closes,
                "drop_events": sum(self.sock_monitor.drops.values()),
                "leaks": leaks,
            }
        trust = {}
        for name, tenant in sorted(self.tenants.items()):
            if tenant.trust is not None:
                trust[name] = {
                    "promoted": len(tenant.trust.promoted),
                    "statically_proven": len(tenant.trust.statically_proven),
                }
        report = SloReport(
            tenants={n: t.slo for n, t in self.tenants.items()},
            clock=clock, net=net, leaked_sockets=leaks)
        return ScenarioResult(
            config=self.cfg, report=report, clock=clock,
            metrics=kernel.metrics.snapshot(),
            fault_signature=kernel.faults.trace_signature(),
            monitor_counts=monitor_counts,
            sockfs_inodes=len(stack.sockfs.inodes),
            trust=trust)


@dataclass
class ScenarioResult:
    """Everything a run produced, all of it deterministic per config."""

    config: ScenarioConfig
    report: SloReport
    clock: tuple[int, int, int]
    metrics: dict
    fault_signature: list
    monitor_counts: dict
    sockfs_inodes: int
    trust: dict


def run_scenario(cfg: ScenarioConfig,
                 kernel: Kernel | None = None) -> ScenarioResult:
    """Generate the schedule for ``cfg`` and execute it."""
    return ScenarioRunner(cfg, kernel=kernel).run()


def scaled(cfg: ScenarioConfig, factor: float) -> ScenarioConfig:
    """A copy of ``cfg`` with the event budget scaled (CI smoke runs)."""
    return replace(cfg, events=max(10, int(cfg.events * factor)))
