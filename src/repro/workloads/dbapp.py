"""A record-store database with sequential and random access patterns.

This is the §2.3 application study: "we modified popular user
applications that exhibit sequential or random access patterns (e.g., a
database) to use Cosy."  :class:`RecordStore` is the unmodified
application — every record access is a full lseek/read or pread syscall
round trip plus user-level processing.  :class:`CosyRecordStore` is the
"minimal code changes" port: the scan/lookup loops are marked Cosy regions
compiled into compounds, so the whole loop runs kernel-side with the data
staying in the shared buffer.

Both variants compute the same checksums, so results are comparable and
correctness is testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.cminus import UserMemAccess, parse
from repro.cminus.compile import CompiledEngine
from repro.core.cosy import CosyGCC, CosyKernelExtension, CosyLib
from repro.kernel.clock import Mode
from repro.kernel.vfs.file import O_CREAT, O_RDONLY, O_WRONLY

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.process import Task

RECORD_SIZE = 128


@dataclass
class DBWorkloadConfig:
    nrecords: int = 400
    db_path: str = "/db.dat"
    seed: int = 77
    #: parameters of the in-compound LCG that drives random access
    lcg_a: int = 1103515245
    lcg_c: int = 12345


def build_database(kernel: "Kernel", config: DBWorkloadConfig) -> None:
    """Write nrecords fixed-size records (deterministic content)."""
    rng = np.random.default_rng(config.seed)
    fd = kernel.sys.open(config.db_path, O_CREAT | O_WRONLY)
    for _ in range(config.nrecords):
        kernel.sys.write(
            fd, bytes(rng.integers(0, 256, RECORD_SIZE, dtype=np.uint8)))
    kernel.sys.close(fd)


#: the record-processing routine BOTH variants execute, so their compute
#: cost is identical by construction: the unmodified app runs it at user
#: level, the Cosy port runs the very same function inside the compound.
_CHECKSUM_FUNC = """
int checksum(char *p, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int b = p[i];
        if (b < 0) b += 256;
        s += b;
    }
    return s;
}
"""


class RecordStore:
    """The unmodified application: one syscall round trip per record,
    user-level processing of each record."""

    def __init__(self, kernel: "Kernel", config: DBWorkloadConfig | None = None):
        self.kernel = kernel
        self.config = config or DBWorkloadConfig()
        task = kernel.current
        self._mem = UserMemAccess(kernel, task)
        self._buf = task.mem.malloc(RECORD_SIZE)
        cminus_op = kernel.costs.cminus_op
        charge = kernel.clock.charge
        self._interp = CompiledEngine(
            parse(_CHECKSUM_FUNC), self._mem,
            on_op_batch=lambda n: charge(n * cminus_op, Mode.USER),
            cache=kernel.code_cache)

    def _process(self, rec: bytes) -> int:
        """User-level checksum of one record (real interpreted code)."""
        self._mem.write(self._buf, rec)
        return self._interp.call("checksum", self._buf, len(rec))

    def sequential_scan(self) -> int:
        """Checksum every record in order; returns the combined checksum."""
        sys = self.kernel.sys
        fd = sys.open(self.config.db_path, O_RDONLY)
        total = 0
        try:
            for _ in range(self.config.nrecords):
                rec = sys.read(fd, RECORD_SIZE)
                if len(rec) < RECORD_SIZE:
                    break
                total = (total + self._process(rec)) & 0xFFFFFFFF
        finally:
            sys.close(fd)
        return total

    def random_lookups(self, nlookups: int) -> int:
        """Checksum records in LCG order (same sequence as the Cosy port)."""
        cfg = self.config
        sys = self.kernel.sys
        fd = sys.open(cfg.db_path, O_RDONLY)
        total = 0
        state = cfg.seed
        try:
            for _ in range(nlookups):
                state = (state * cfg.lcg_a + cfg.lcg_c) & 0x7FFFFFFF
                idx = state % cfg.nrecords
                rec = sys.pread(fd, RECORD_SIZE, idx * RECORD_SIZE)
                total = (total + self._process(rec)) & 0xFFFFFFFF
        finally:
            sys.close(fd)
        return total


#: the marked sources for the Cosy port.  The checksum helper runs as an
#: isolated user function; record I/O stays in the shared buffer.
_SEQ_SCAN_SRC = """
int checksum(char *p, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int b = p[i];
        if (b < 0) b += 256;
        s += b;
    }
    return s;
}
int main() {
    int nrecords;
    COSY_START();
    int fd = open("%(path)s", 0);
    char rec[%(recsize)d];
    int total = 0;
    int i = 0;
    while (i < nrecords) {
        int n = read(fd, rec, %(recsize)d);
        if (n < %(recsize)d) break;
        total = total + checksum(rec, n);
        i++;
    }
    close(fd);
    return total;
    COSY_END();
    return 0;
}
"""

_RANDOM_SRC = """
int checksum(char *p, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        int b = p[i];
        if (b < 0) b += 256;
        s += b;
    }
    return s;
}
int main() {
    int nlookups;
    int nrecords;
    int seed;
    COSY_START();
    int fd = open("%(path)s", 0);
    char rec[%(recsize)d];
    int total = 0;
    int state = seed;
    int i = 0;
    while (i < nlookups) {
        state = (state * %(lcg_a)d + %(lcg_c)d) %% 2147483648;
        int idx = state %% nrecords;
        int n = pread(fd, rec, %(recsize)d, idx * %(recsize)d);
        total = total + checksum(rec, n);
        i++;
    }
    close(fd);
    return total;
    COSY_END();
    return 0;
}
"""


class CosyRecordStore:
    """The Cosy port: marked loops compiled to compounds."""

    def __init__(self, kernel: "Kernel", task: "Task",
                 config: DBWorkloadConfig | None = None,
                 ext: CosyKernelExtension | None = None):
        self.kernel = kernel
        self.task = task
        self.config = config or DBWorkloadConfig()
        self.ext = ext or CosyKernelExtension(kernel)
        self.lib = CosyLib(kernel, self.ext)
        gcc = CosyGCC()
        params = {"path": self.config.db_path, "recsize": RECORD_SIZE,
                  "lcg_a": self.config.lcg_a, "lcg_c": self.config.lcg_c}
        self._seq = self.lib.install(task, gcc.compile(_SEQ_SCAN_SRC % params))
        self._rand = self.lib.install(task, gcc.compile(_RANDOM_SRC % params))

    def sequential_scan(self) -> int:
        result = self._seq.run({"nrecords": self.config.nrecords})
        return result.value & 0xFFFFFFFF

    def random_lookups(self, nlookups: int) -> int:
        result = self._rand.run({
            "nlookups": nlookups,
            "nrecords": self.config.nrecords,
            "seed": self.config.seed,
        })
        return result.value & 0xFFFFFFFF
