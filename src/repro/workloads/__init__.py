"""Workload generators driving the evaluation.

Each reproduces the syscall mix of a workload the paper measured with:

* :mod:`postmark` — a PostMark clone (small-file create/delete/read/append
  transactions; Katcher's benchmark, used in §3.3 and §3.4).
* :mod:`compilebench` — an Am-utils-compile-like workload (stat-heavy
  source tree walk, read sources, write objects; used in §3.2 and §3.4).
* :mod:`lstool` — /bin/ls -l two ways: readdir+stat vs readdirplus (§2.2).
* :mod:`interactive` — a synthetic interactive session (§2.2's 15-minute
  trace), heavy on directory listing and file browsing.
* :mod:`dbapp` — a record-store database with sequential and random access
  patterns, in plain-syscall and Cosy-compound variants (§2.3).
* :mod:`servers` — web/mail-server syscall trace synthesis for the
  pattern-mining analysis (§2.2).
"""

from repro.workloads.postmark import PostMark, PostMarkConfig, PostMarkResult
from repro.workloads.compilebench import CompileBench, CompileBenchConfig
from repro.workloads.lstool import ls_legacy, ls_readdirplus
from repro.workloads.interactive import InteractiveSession, InteractiveConfig
from repro.workloads.dbapp import RecordStore, DBWorkloadConfig, CosyRecordStore
from repro.workloads.servers import synth_web_server_trace, synth_mail_server_trace
from repro.workloads.webserver import (ReadWriteServer, SendfileServer,
                                       WebServerConfig, build_docroot,
                                       drain_client)
from repro.workloads.httpserver import (CosyHttpServer, EpollHttpServer,
                                        HttpBenchConfig, HttpBenchResult,
                                        SelectHttpServer, SERVER_KINDS,
                                        SmpHttpBenchResult, run_http_bench,
                                        run_http_bench_smp)
from repro.workloads.scenario import (FaultStorm, ScenarioConfig,
                                      ScenarioResult, ScenarioRunner,
                                      ScheduleEvent, TenantSpec, TrustTier,
                                      default_tenants, generate_schedule,
                                      run_scenario)

__all__ = [
    "FaultStorm", "ScenarioConfig", "ScenarioResult", "ScenarioRunner",
    "ScheduleEvent", "TenantSpec", "TrustTier", "default_tenants",
    "generate_schedule", "run_scenario",
    "ReadWriteServer", "SendfileServer", "WebServerConfig",
    "build_docroot", "drain_client",
    "CosyHttpServer", "EpollHttpServer", "SelectHttpServer",
    "HttpBenchConfig", "HttpBenchResult", "SERVER_KINDS",
    "SmpHttpBenchResult", "run_http_bench", "run_http_bench_smp",
    "PostMark", "PostMarkConfig", "PostMarkResult",
    "CompileBench", "CompileBenchConfig",
    "ls_legacy", "ls_readdirplus",
    "InteractiveSession", "InteractiveConfig",
    "RecordStore", "DBWorkloadConfig", "CosyRecordStore",
    "synth_web_server_trace", "synth_mail_server_trace",
]
