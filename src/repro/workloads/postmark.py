"""PostMark: the small-file transaction benchmark (Katcher, TR3022).

The real PostMark creates a pool of small files, then runs transactions,
each pairing one file operation (read or append) with one pool operation
(create or delete), and finally deletes the pool.  This clone follows that
structure against the simulated kernel's syscalls, so it generates the
same metadata-heavy pressure on the dcache — which is why the paper uses
it to stress ``dcache_lock`` in §3.3 and KGCC's overheads in §3.4.

A ``checkpoint`` callback fires after every transaction; the monitoring
benchmarks hang the user-space logger's pump off it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import Errno
from repro.kernel.clock import Mode, Timings
from repro.kernel.vfs.file import O_APPEND, O_CREAT, O_RDONLY, O_WRONLY

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


@dataclass
class PostMarkConfig:
    """Pool and transaction parameters (defaults scaled for simulation)."""

    nfiles: int = 100
    min_size: int = 512
    max_size: int = 9984       # PostMark's classic 500 bytes – 9.77 KB
    transactions: int = 500
    read_block: int = 4096
    write_block: int = 4096
    #: probability a transaction's file op is a read (vs append)
    read_bias: float = 0.5
    #: probability a transaction's pool op is a create (vs delete)
    create_bias: float = 0.5
    workdir: str = "/postmark"
    seed: int = 42


@dataclass
class PostMarkResult:
    transactions: int
    files_created: int
    files_deleted: int
    bytes_read: int
    bytes_written: int
    timings: Timings
    dcache_lock_hits: int

    @property
    def tps(self) -> float:
        """Transactions per simulated second."""
        return self.transactions / self.timings.elapsed \
            if self.timings.elapsed else 0.0


class PostMark:
    """One PostMark run against a kernel."""

    def __init__(self, kernel: "Kernel", config: PostMarkConfig | None = None,
                 *, checkpoint: Callable[[], None] | None = None):
        self.kernel = kernel
        self.config = config or PostMarkConfig()
        self.checkpoint = checkpoint
        self._rng = np.random.default_rng(self.config.seed)
        self._files: list[str] = []
        self._serial = 0

    # ------------------------------------------------------------ phases

    def _rand_size(self) -> int:
        return int(self._rng.integers(self.config.min_size,
                                      self.config.max_size + 1))

    def _new_name(self) -> str:
        self._serial += 1
        return f"{self.config.workdir}/pm{self._serial:07d}"

    def _create_file(self) -> tuple[str, int]:
        sys = self.kernel.sys
        name = self._new_name()
        size = self._rand_size()
        fd = sys.open(name, O_CREAT | O_WRONLY)
        written = 0
        payload = bytes(self._rng.integers(0, 256, self.config.write_block,
                                           dtype=np.uint8))
        while written < size:
            n = min(self.config.write_block, size - written)
            sys.write(fd, payload[:n])
            written += n
        sys.close(fd)
        self._files.append(name)
        return name, written

    def _read_file(self, name: str) -> int:
        sys = self.kernel.sys
        fd = sys.open(name, O_RDONLY)
        total = 0
        while True:
            data = sys.read(fd, self.config.read_block)
            if not data:
                break
            total += len(data)
            # the application actually looks at what it read
            self.kernel.clock.charge(
                int(len(data) * self.kernel.costs.user_touch_per_byte),
                Mode.USER)
        sys.close(fd)
        return total

    def _append_file(self, name: str) -> int:
        sys = self.kernel.sys
        n = min(self._rand_size(), self.config.write_block)
        fd = sys.open(name, O_WRONLY | O_APPEND)
        payload = bytes(self._rng.integers(0, 256, n, dtype=np.uint8))
        sys.write(fd, payload)
        sys.close(fd)
        return n

    def _delete_file(self, name: str) -> None:
        self.kernel.sys.unlink(name)
        self._files.remove(name)

    # --------------------------------------------------------------- run

    def run(self) -> PostMarkResult:
        cfg = self.config
        sys = self.kernel.sys
        lock_hits0 = self.kernel.vfs.dcache_lock.acquisitions
        created = deleted = bytes_read = bytes_written = 0
        try:
            sys.mkdir(cfg.workdir)
        except Errno:
            pass  # reusing an existing work directory
        with self.kernel.measure() as m:
            # Phase 1: build the pool.
            for _ in range(cfg.nfiles):
                _, n = self._create_file()
                created += 1
                bytes_written += n
            # Phase 2: transactions.
            for _ in range(cfg.transactions):
                if not self._files:
                    _, n = self._create_file()
                    created += 1
                    bytes_written += n
                target = self._files[int(self._rng.integers(len(self._files)))]
                if self._rng.random() < cfg.read_bias:
                    bytes_read += self._read_file(target)
                else:
                    bytes_written += self._append_file(target)
                if self._rng.random() < cfg.create_bias:
                    _, n = self._create_file()
                    created += 1
                    bytes_written += n
                elif self._files:
                    victim = self._files[
                        int(self._rng.integers(len(self._files)))]
                    self._delete_file(victim)
                    deleted += 1
                if self.checkpoint is not None:
                    self.checkpoint()
            # Phase 3: delete the remaining pool.
            for name in list(self._files):
                self._delete_file(name)
                deleted += 1
            sys.rmdir(cfg.workdir)
        return PostMarkResult(
            transactions=cfg.transactions, files_created=created,
            files_deleted=deleted, bytes_read=bytes_read,
            bytes_written=bytes_written, timings=m.timings,
            dcache_lock_hits=(self.kernel.vfs.dcache_lock.acquisitions
                              - lock_hits0),
        )
