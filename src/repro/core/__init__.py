"""The paper's performance systems.

* :mod:`repro.core.consolidation` — syscall tracing, the weighted syscall
  graph, pattern mining, and the analysis behind the new consolidated
  syscalls (§2.2).
* :mod:`repro.core.cosy` — Compound System Calls: Cosy-GCC, Cosy-Lib, and
  the Cosy kernel extension (§2.3).
"""
