"""Cosy safety mechanisms: the kernel-time watchdog and segment isolation.

Two mechanisms, exactly the two the paper names (§2.3):

* **Preemption watchdog** — "to remove the possibility of infinite loops in
  the kernel, we use a preemptive kernel that checks the running time of a
  Cosy process inside the kernel every time it is scheduled out. If this
  time has exceeded the maximum allowed kernel time then the process is
  terminated."  :class:`CosyWatchdog` is a scheduler preempt hook doing
  precisely that check; compound execution arms it by stamping
  ``task.kernel_entry_cycles``.

* **Segmentation** — user-supplied functions execute confined to an x86
  segment.  :class:`CosyProtection` selects between the paper's two
  designs:

  - ``FULL_ISOLATION``: code and data in separate segments at kernel
    privilege; every call pays a far-call, but self-modifying code is
    impossible (the code segment is execute-only) and *any* reference
    outside the data segment faults, even from hand-crafted functions.
  - ``DATA_ONLY``: only function data is confined; calls are free, but the
    protection assumes the code came from Cosy-GCC — a hand-crafted
    function can escape (the vulnerability the paper concedes, reproduced
    here so it can be demonstrated in tests).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.cminus import ast_nodes as ast
from repro.cminus.compile import CompiledEngine
from repro.cminus.interp import ExecLimits, Interpreter
from repro.cminus.memaccess import MemoryAccess, SegmentMemAccess
from repro.errors import WatchdogExpired
from repro.kernel.clock import Mode
from repro.kernel.memory.paging import AddressSpace
from repro.kernel.segments import (SEG_READ, SEG_WRITE, SegmentDescriptor,
                                   SegmentedView)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.cosy.shared_buffer import SharedBuffer
    from repro.kernel.core import Kernel
    from repro.kernel.process import Task


class CosyProtection(enum.Enum):
    FULL_ISOLATION = "full"
    DATA_ONLY = "data-only"


class CosyWatchdog:
    """Scheduler hook that kills compounds exceeding their kernel time."""

    def __init__(self, kernel: "Kernel", max_kernel_cycles: int):
        if max_kernel_cycles <= 0:
            raise ValueError("watchdog budget must be positive")
        self.kernel = kernel
        self.max_kernel_cycles = max_kernel_cycles
        self.expirations = 0
        self._armed = False

    def arm(self) -> None:
        if not self._armed:
            self.kernel.sched.add_preempt_hook(self._on_preempt)
            self._armed = True

    def disarm(self) -> None:
        if self._armed:
            self.kernel.sched.remove_preempt_hook(self._on_preempt)
            self._armed = False

    def _on_preempt(self, task) -> None:
        entry = task.kernel_entry_cycles
        if entry is None:
            return
        used = self.kernel.clock.now - entry
        if used > self.max_kernel_cycles:
            self.expirations += 1
            task.kernel_entry_cycles = None
            raise WatchdogExpired(task.pid, used, self.max_kernel_cycles)


class _RawKernelAccess(MemoryAccess):
    """UNPROTECTED kernel memory access.

    This is what a hand-crafted (non-Cosy-GCC) function effectively gets in
    DATA_ONLY mode: its code runs in the kernel segment, so nothing stops
    it addressing arbitrary kernel memory.  It exists so the paper's stated
    limitation is demonstrable, not as an API anyone should use.
    """

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.aspace = AddressSpace(kernel.kernel_pt)

    def read(self, addr: int, size: int) -> bytes:
        return self.kernel.mmu.read(self.aspace, addr, size)

    def write(self, addr: int, data: bytes) -> None:
        self.kernel.mmu.write(self.aspace, addr, data)

    def alloc_stack(self, size: int) -> int:
        return self.kernel.kmalloc.kmalloc(max(size, 1))

    def free_stack(self, addr: int, size: int) -> None:
        self.kernel.kmalloc.kfree(addr)

    def malloc(self, size: int) -> int:
        return self.kernel.kmalloc.kmalloc(max(size, 1))

    def free(self, addr: int) -> None:
        self.kernel.kmalloc.kfree(addr)


class FunctionIsolation:
    """Executes a compiled user function under a Cosy protection mode.

    The function's data segment is laid over the task's shared buffer, so
    shared-buffer offsets deposited by earlier syscall ops are directly
    dereferenceable by the function (zero-copy), while its stack and heap
    are carved from the tail of the same segment — "the static and dynamic
    needs of such a function are satisfied using memory belonging to the
    same isolated segment."
    """

    def __init__(self, kernel: "Kernel", task: "Task", shared: "SharedBuffer",
                 mode: CosyProtection, *, max_ops: int = 50_000_000,
                 engine: str = "compiled"):
        if engine not in ("compiled", "tree"):
            raise ValueError(f"unknown engine {engine!r}")
        self.kernel = kernel
        self.task = task
        self.shared = shared
        self.mode = mode
        self.max_ops = max_ops
        self.engine = engine
        self.data_selector = kernel.gdt.install(SegmentDescriptor(
            base=shared.base, limit=shared.size,
            perms=SEG_READ | SEG_WRITE, name="cosy-data"))
        self.view = SegmentedView(kernel.mmu, task.aspace,
                                  kernel.gdt, self.data_selector)

    def call(self, program: ast.Program, func: str, args: list[int], *,
             handcrafted: bool = False,
             mode: CosyProtection | None = None) -> int:
        """Run ``func`` from ``program`` in kernel mode under isolation.

        ``mode`` overrides the instance default per call — the trust
        manager (§2.4) uses this to promote observed-safe functions from
        full isolation to the cheap data-only scheme.
        """
        kernel = self.kernel
        costs = kernel.costs
        mode = mode if mode is not None else self.mode

        if handcrafted and mode is CosyProtection.DATA_ONLY:
            # The concession of §2.3: hand-crafted code in data-only mode
            # runs in the kernel segment — nothing confines it.
            mem: MemoryAccess = _RawKernelAccess(kernel)
        else:
            # Heap/stack start after the data already staged in the buffer.
            mem = SegmentMemAccess(self.view,
                                   static_reserve=self.shared._cursor)

        if mode is CosyProtection.FULL_ISOLATION:
            # far call into the isolated code segment + segment loads
            kernel.clock.charge(costs.far_call + 2 * costs.segment_load,
                                Mode.SYSTEM)

        cminus_op = costs.cminus_op
        charge_system = kernel.clock.charge_system
        if self.engine == "compiled":
            interp: Interpreter | CompiledEngine = CompiledEngine(
                program, mem,
                on_op_batch=lambda n: charge_system(n * cminus_op),
                step_hook=kernel.sched.maybe_preempt,
                limits=ExecLimits(max_ops=self.max_ops),
                cache=kernel.code_cache,
                tracer=kernel.trace,
            )
        else:  # the tree-walking oracle
            interp = Interpreter(
                program, mem,
                on_op=lambda: charge_system(cminus_op),
                step_hook=kernel.sched.maybe_preempt,
                limits=ExecLimits(max_ops=self.max_ops),
            )
        try:
            return interp.call(func, *args)
        finally:
            if mode is CosyProtection.FULL_ISOLATION:
                kernel.clock.charge(costs.far_call, Mode.SYSTEM)  # far return

    def release(self) -> None:
        self.kernel.gdt.remove(self.data_selector)
