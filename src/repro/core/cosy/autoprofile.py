"""Profiling-driven automatic region marking (§2.4, implemented).

"In the future, we would like to modify Cosy to automate the job of
deciding which code should be moved to the kernel using profiling."

:func:`find_candidate_regions` scores every contiguous run of top-level
statements in a function by its estimated syscall *density* — syscalls
inside loops weighted by (known or assumed) trip counts, exactly what a
profile would report — and keeps only runs Cosy-GCC can actually compile
(verified by attempting the compilation).  :func:`auto_mark` then rewrites
the source with ``COSY_START()/COSY_END()`` around the best region, giving
the fully automatic pipeline::

    source -> profile/score -> mark -> CosyGCC().compile -> install -> run

A measured dynamic profile (``{line: hit_count}`` from a tracer) can be
supplied to replace the static loop-weight heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cminus import ast_nodes as ast
from repro.cminus.parser import parse
from repro.core.cosy.cosy_gcc import CosyGCC, _RegionCompiler
from repro.errors import CosyError
from repro.kernel.syscalls.table import SYSCALL_NRS

#: assumed trip count for loops whose bound is not a literal
DEFAULT_LOOP_WEIGHT = 64


@dataclass(frozen=True)
class CandidateRegion:
    """One markable statement run and its profile score."""

    func: str
    start_index: int      # index into the function body's statement list
    end_index: int        # exclusive
    start_line: int
    end_line: int
    syscall_weight: float  # estimated syscall invocations per entry

    def __str__(self) -> str:
        return (f"{self.func}: statements {self.start_index}..{self.end_index}"
                f" (lines {self.start_line}-{self.end_line}),"
                f" ~{self.syscall_weight:.0f} syscalls/run")


def _loop_trip_estimate(stmt: ast.Stmt) -> int:
    """Literal trip count when derivable (for (i=0; i<N; i++)), else default."""
    if isinstance(stmt, ast.For) and isinstance(stmt.cond, ast.BinOp):
        cond = stmt.cond
        if cond.op in ("<", "<=") and isinstance(cond.right, ast.IntLit):
            return max(1, cond.right.value + (1 if cond.op == "<=" else 0))
    if isinstance(stmt, ast.While) and isinstance(stmt.cond, ast.IntLit):
        return DEFAULT_LOOP_WEIGHT  # while(1)-style: bounded by the watchdog
    return DEFAULT_LOOP_WEIGHT


def _syscall_weight(node: ast.Node, multiplier: float,
                    profile: dict[int, int] | None) -> float:
    """Estimated syscall invocations under ``node``."""
    weight = 0.0
    if isinstance(node, ast.Call) and node.func in SYSCALL_NRS:
        if profile is not None:
            weight += profile.get(node.line, 1)
        else:
            weight += multiplier
    if isinstance(node, (ast.While, ast.For)):
        inner = multiplier if profile is not None else \
            multiplier * _loop_trip_estimate(node)
        for child in _children(node):
            weight += _syscall_weight(child, inner, profile)
        return weight
    for child in _children(node):
        weight += _syscall_weight(child, multiplier, profile)
    return weight


def _children(node: ast.Node):
    for value in vars(node).items():
        _, v = value
        if isinstance(v, ast.Node):
            yield v
        elif isinstance(v, list):
            for item in v:
                if isinstance(item, ast.Node):
                    yield item


def _compilable(program: ast.Program, fdef: ast.FuncDef,
                stmts: list[ast.Stmt]) -> bool:
    """Can Cosy-GCC compile this run?  (Attempt it and see.)"""
    try:
        _RegionCompiler(program, fdef, stmts).compile()
        return True
    except CosyError:
        return False


def find_candidate_regions(source: str, func: str = "main", *,
                           profile: dict[int, int] | None = None,
                           min_weight: float = 2.0) -> list[CandidateRegion]:
    """All compilable statement runs in ``func``, best first."""
    program = parse(source)
    fdef = program.funcs.get(func)
    if fdef is None:
        raise CosyError(f"function '{func}' not found")
    body = fdef.body.stmts
    candidates: list[CandidateRegion] = []
    for start in range(len(body)):
        for end in range(start + 1, len(body) + 1):
            run = body[start:end]
            # a Return may only appear as the final statement of the run
            if any(isinstance(s, ast.Return) for s in run[:-1]):
                continue
            weight = sum(_syscall_weight(s, 1.0, profile) for s in run)
            if weight < min_weight:
                continue
            if not _compilable(program, fdef, run):
                continue
            candidates.append(CandidateRegion(
                func=func, start_index=start, end_index=end,
                start_line=run[0].line, end_line=run[-1].line,
                syscall_weight=weight))
    # best = heaviest, then longest (amortize the trap over more work)
    candidates.sort(key=lambda c: (-c.syscall_weight,
                                   -(c.end_index - c.start_index)))
    return candidates


def auto_mark(source: str, func: str = "main", *,
              profile: dict[int, int] | None = None) -> str:
    """Insert COSY markers around the best region; returns marked source.

    Markers are inserted as real AST statements and the whole program is
    re-rendered (robust against any source formatting).  Raises
    :class:`CosyError` when nothing worth compounding is found.
    """
    from repro.cminus.render import render_program

    candidates = find_candidate_regions(source, func, profile=profile)
    if not candidates:
        raise CosyError(f"no profitable Cosy region found in '{func}'")
    best = candidates[0]
    program = parse(source)
    body = program.funcs[func].body.stmts
    body.insert(best.end_index, _marker("COSY_END"))
    body.insert(best.start_index, _marker("COSY_START"))
    return render_program(program)


def _marker(name: str) -> ast.ExprStmt:
    return ast.ExprStmt(expr=ast.Call(func=name, args=[]))


def auto_compile(source: str, func: str = "main", *,
                 profile: dict[int, int] | None = None):
    """The full automatic pipeline: profile, mark, compile."""
    return CosyGCC().compile(auto_mark(source, func, profile=profile), func)
