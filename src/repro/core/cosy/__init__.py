"""Cosy — Compound System Calls (§2.3).

Three components, exactly as the paper describes:

* **Cosy-GCC** (:mod:`cosy_gcc`) — parses a C function whose bottleneck
  region is marked with ``COSY_START(); ... COSY_END();`` and compiles the
  marked statements into the Cosy intermediate language, resolving
  dependencies between operation parameters and identifying zero-copy
  buffer opportunities.
* **Cosy-Lib** (:mod:`lib`) — forms the *compound*: encodes operations
  into the compound buffer shared with the kernel, binds runtime input
  values, and decodes outputs after execution.
* **Cosy kernel extension** (:mod:`kernel_ext`) — decodes the compound in
  kernel mode and executes operation by operation: syscalls run through
  the same handlers as normal processes (all checks intact) but without
  per-call traps or user-copy costs; user functions run confined to x86
  segments; a preemption watchdog bounds kernel time.
"""

from repro.core.cosy.ops import (Op, Arg, ArgKind, OpCode, MATH_OPS,
                                 COSY_MAGIC)
from repro.core.cosy.compound import (CompoundBuilder, CompoundFault,
                                      CompoundStatus, decode_compound,
                                      encode_compound)
from repro.core.cosy.shared_buffer import SharedBuffer
from repro.core.cosy.safety import (CosyProtection, CosyWatchdog,
                                    FunctionIsolation)
from repro.core.cosy.kernel_ext import CosyKernelExtension
from repro.core.cosy.cosy_gcc import CosyGCC, CompiledRegion, UnsupportedConstruct
from repro.core.cosy.lib import CosyLib
from repro.core.cosy.autoprofile import (CandidateRegion, auto_compile,
                                         auto_mark, find_candidate_regions)
from repro.core.cosy.trust import TrustManager

__all__ = [
    "Op", "Arg", "ArgKind", "OpCode", "MATH_OPS", "COSY_MAGIC",
    "CompoundBuilder", "CompoundFault", "CompoundStatus",
    "decode_compound", "encode_compound",
    "SharedBuffer", "CosyProtection", "CosyWatchdog", "FunctionIsolation",
    "CosyKernelExtension", "CosyGCC", "CompiledRegion",
    "UnsupportedConstruct", "CosyLib",
    "CandidateRegion", "auto_compile", "auto_mark",
    "find_candidate_regions", "TrustManager",
]
