"""The Cosy intermediate language: operations and their binary encoding.

A *compound* is a byte-encoded program the kernel executes: a header, then
a sequence of fixed-layout operations whose arguments are literals, slot
(register) references, or shared-buffer references.  The encoding is a real
binary format (struct-packed) because the compound buffer is genuinely
shared user/kernel memory — the kernel decodes the same bytes the user
library wrote, with no copy in between (§2.3).

Layout
------
header   : magic u32 | nops u32 | nslots u32 | reserved u32        (16 B)
op       : opcode u8 | dst u8 | extra u16 | nargs u32              (8 B)
arg      : kind u8 | pad[7] | value i64 | aux i64                  (24 B)

``extra`` carries the syscall number (SYSCALL), math opcode (MATH), jump
target (JMP/JZ), or function id (CALLF).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.errors import CosyError

COSY_MAGIC = 0x59534F43  # "COSY" little-endian

_HEADER = struct.Struct("<IIII")
_OP = struct.Struct("<BBHI")
_ARG = struct.Struct("<B7xqq")

MAX_SLOTS = 256
MAX_OPS = 65536


class OpCode(enum.IntEnum):
    END = 0        # end of compound
    SYSCALL = 1    # extra=nr, args per syscall marshaller, result -> dst
    MOV = 2        # dst = arg0
    MATH = 3       # dst = arg0 <extra-op> arg1
    JMP = 4        # unconditional jump to op index `extra`
    JZ = 5         # if arg0 == 0 jump to op index `extra`
    CALLF = 6      # call user function `extra` with args, result -> dst


class ArgKind(enum.IntEnum):
    LIT = 0        # value = immediate
    SLOT = 1       # value = slot index
    SHARED = 2     # value = byte offset into the shared buffer, aux = length


#: math sub-opcodes for OpCode.MATH (``extra`` field)
MATH_OPS: dict[str, int] = {
    "+": 0, "-": 1, "*": 2, "/": 3, "%": 4,
    "<": 5, ">": 6, "<=": 7, ">=": 8, "==": 9, "!=": 10,
    "&": 11, "|": 12, "^": 13, "<<": 14, ">>": 15,
    "&&": 16, "||": 17,
}
MATH_OP_NAMES = {code: name for name, code in MATH_OPS.items()}


@dataclass(frozen=True)
class Arg:
    kind: ArgKind
    value: int
    aux: int = 0

    @staticmethod
    def lit(value: int) -> "Arg":
        return Arg(ArgKind.LIT, value)

    @staticmethod
    def slot(index: int) -> "Arg":
        if not (0 <= index < MAX_SLOTS):
            raise CosyError(f"slot index {index} out of range")
        return Arg(ArgKind.SLOT, index)

    @staticmethod
    def shared(offset: int, length: int = 0) -> "Arg":
        if offset < 0 or length < 0:
            raise CosyError("negative shared-buffer reference")
        return Arg(ArgKind.SHARED, offset, length)

    def pack(self) -> bytes:
        return _ARG.pack(int(self.kind), self.value, self.aux)

    @staticmethod
    def unpack(data: bytes, offset: int) -> "Arg":
        kind, value, aux = _ARG.unpack_from(data, offset)
        try:
            k = ArgKind(kind)
        except ValueError as exc:
            raise CosyError(f"bad arg kind {kind} at byte {offset}") from exc
        return Arg(k, value, aux)


@dataclass(frozen=True)
class Op:
    opcode: OpCode
    dst: int = 0
    extra: int = 0
    args: tuple[Arg, ...] = field(default_factory=tuple)

    def pack(self) -> bytes:
        out = _OP.pack(int(self.opcode), self.dst, self.extra, len(self.args))
        return out + b"".join(a.pack() for a in self.args)

    @property
    def packed_size(self) -> int:
        return _OP.size + len(self.args) * _ARG.size

    @staticmethod
    def unpack(data: bytes, offset: int) -> tuple["Op", int]:
        if offset + _OP.size > len(data):
            raise CosyError("truncated op header")
        opcode, dst, extra, nargs = _OP.unpack_from(data, offset)
        try:
            oc = OpCode(opcode)
        except ValueError as exc:
            raise CosyError(f"bad opcode {opcode} at byte {offset}") from exc
        if nargs > 64:
            raise CosyError(f"implausible arg count {nargs}")
        offset += _OP.size
        args = []
        for _ in range(nargs):
            if offset + _ARG.size > len(data):
                raise CosyError("truncated op arguments")
            args.append(Arg.unpack(data, offset))
            offset += _ARG.size
        return Op(oc, dst, extra, tuple(args)), offset


def pack_header(nops: int, nslots: int) -> bytes:
    if nops > MAX_OPS:
        raise CosyError(f"compound too large: {nops} ops")
    if nslots > MAX_SLOTS:
        raise CosyError(f"too many slots: {nslots}")
    return _HEADER.pack(COSY_MAGIC, nops, nslots, 0)


def unpack_header(data: bytes) -> tuple[int, int]:
    if len(data) < _HEADER.size:
        raise CosyError("compound shorter than header")
    magic, nops, nslots, _ = _HEADER.unpack_from(data, 0)
    if magic != COSY_MAGIC:
        raise CosyError(f"bad compound magic {magic:#x}")
    if nops > MAX_OPS or nslots > MAX_SLOTS:
        raise CosyError("compound header limits exceeded")
    return nops, nslots


HEADER_SIZE = _HEADER.size
