"""The Cosy kernel extension: decode and execute compounds in kernel mode.

"The final component is the Cosy kernel extension, which is the heart of
the Cosy framework.  It decodes each operation within a compound and then
executes each operation in turn." (§2.3)

Execution model:

* the whole compound enters the kernel through **one** trap (the
  ``cosy_exec`` syscall), so N operations cost one boundary crossing;
* syscall operations invoke the *same handlers* a normal process reaches
  through the dispatcher — every fd/permission/path check still runs — but
  data moves through the shared buffer at in-kernel memcpy cost instead of
  uaccess cost (the zero-copy saving);
* every operation is a preemption point, which arms the kernel-time
  watchdog against infinite loops;
* user functions (CALLF ops) run under segment isolation per the
  configured :class:`~repro.core.cosy.safety.CosyProtection`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cminus import ast_nodes as ast
from repro.cminus.compile import bump_generation
from repro.core.cosy.compound import (CompoundFault, CompoundStatus,
                                      decode_compound)
from repro.core.cosy.ops import Arg, ArgKind, MATH_OP_NAMES, Op, OpCode
from repro.core.cosy.safety import CosyProtection, CosyWatchdog, FunctionIsolation
from repro.core.cosy.shared_buffer import SharedBuffer
from repro.errors import (CosyError, EBADF, ENOMEM, Errno, OutOfMemory,
                          raise_errno)
from repro.kernel.clock import Mode
from repro.kernel.syscalls.table import syscall_name
from repro.kernel.vfs.file import O_APPEND

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.process import Task

#: default kernel-time budget for one compound: ~200 ms at 1.7 GHz.
DEFAULT_MAX_KERNEL_CYCLES = 340_000_000


class _RegisteredFunction:
    def __init__(self, program: ast.Program, func: str, handcrafted: bool):
        self.program = program
        self.func = func
        self.handcrafted = handcrafted


class CosyKernelExtension:
    """One loaded instance of the Cosy kernel module."""

    def __init__(self, kernel: "Kernel", *,
                 protection: CosyProtection = CosyProtection.DATA_ONLY,
                 max_kernel_cycles: int = DEFAULT_MAX_KERNEL_CYCLES,
                 verifier=None, engine: str = "compiled"):
        self.kernel = kernel
        self.protection = protection
        #: C-minus execution engine for CALLF ops: "compiled" (closure
        #: compiler + kernel.code_cache) or "tree" (the oracle interpreter)
        self.engine = engine
        self.watchdog = CosyWatchdog(kernel, max_kernel_cycles)
        self.watchdog.arm()
        self._functions: dict[int, _RegisteredFunction] = {}
        self._next_func_id = 1
        self.compounds_executed = 0
        self.compounds_failed = 0
        self.ops_executed = 0
        #: status of the most recent compound (§2.1 partial-failure record)
        self.last_status: CompoundStatus | None = None
        #: optional §2.4 trust manager (set by TrustManager itself)
        self.trust_manager = None
        #: optional load-time verifier (e.g.
        #: :class:`repro.safety.verifier.LoadTimeVerifier` — duck-typed so
        #: the core package keeps no import of the safety tools).  When
        #: set, every register_function() is verified: REJECT refuses the
        #: load, and verdicts are published to the trust manager.
        self.verifier = verifier
        #: func_id -> effective load-time verdict (when a verifier is set)
        self.verdicts: dict[int, object] = {}

    def unload(self) -> None:
        self.watchdog.disarm()

    # ---------------------------------------------------------- functions

    def register_function(self, program: ast.Program, func: str,
                          *, handcrafted: bool = False) -> int:
        """Register a compiled user function; returns its CALLF id.

        When a load-time verifier is attached, the function is statically
        verified *here* — the one-time analysis cost is charged to kernel
        time, a REJECT verdict refuses the registration with
        :class:`~repro.errors.VerifierReject`, and PROVEN_SAFE verdicts are
        published to the trust manager so the function can start at
        DATA_ONLY protection without any warmup runs.
        """
        if func not in program.funcs:
            raise CosyError(f"function '{func}' not defined in program")
        # (Re-)registration is a load event: any previously compiled code
        # for this program object must not survive it.
        bump_generation(program)
        verdict = None
        if self.verifier is not None and not handcrafted:
            fv = self.verifier.verdict_for(program, func)
            self.kernel.clock.charge(
                self.kernel.costs.verifier_cost(fv.nodes), Mode.SYSTEM)
            if fv.effective.name == "REJECT":
                from repro.errors import VerifierReject
                raise VerifierReject(func, fv.reject_reasons())
            verdict = fv.effective
        func_id = self._next_func_id
        self._next_func_id += 1
        self._functions[func_id] = _RegisteredFunction(program, func, handcrafted)
        if verdict is not None:
            self.verdicts[func_id] = verdict
            if self.trust_manager is not None:
                self.trust_manager.note_verdict(func_id, verdict)
        return func_id

    # ----------------------------------------------------------- execution

    def execute(self, task: "Task", compound: bytes,
                shared: SharedBuffer) -> list[int]:
        """Run a compound as the ``cosy_exec`` syscall; returns final slots."""
        sys = self.kernel.sys
        return sys._dispatch(
            "cosy_exec",
            lambda: self._execute_in_kernel(task, compound, shared),
            args=(len(compound),))

    def _execute_in_kernel(self, task: "Task", compound: bytes,
                           shared: SharedBuffer) -> list[int]:
        kernel = self.kernel
        costs = kernel.costs
        kernel.clock.charge(costs.cosy_setup, Mode.SYSTEM)
        ops, nslots = decode_compound(compound)
        slots = [0] * max(nslots, 1)
        isolation = FunctionIsolation(kernel, task, shared, self.protection,
                                      engine=self.engine)
        self.compounds_executed += 1
        task.kernel_entry_cycles = kernel.clock.now
        status = CompoundStatus()
        self.last_status = status
        pc = 0
        tracer = kernel.trace
        try:
            while pc < len(ops):
                op = ops[pc]
                kernel.clock.charge(costs.cosy_decode_op, Mode.SYSTEM)
                kernel.sched.maybe_preempt()  # watchdog checkpoint
                self.ops_executed += 1
                if op.opcode is OpCode.END:
                    break
                traced = tracer.enabled
                if traced:
                    tracer.begin(f"cosy:{_op_label(op)}", "cosy", pc=pc)
                try:
                    pc = self._exec_op(op, pc, slots, shared, isolation)
                except (Errno, OutOfMemory) as exc:
                    # §2.1 partial failure: the compound stops at the
                    # failing element.  Ops before pc have fully taken
                    # effect (their results are in `slots`); nothing after
                    # pc ran.  Report which element failed, with errno.
                    errno = exc.errno if isinstance(exc, Errno) else ENOMEM
                    status.failed_index = pc
                    status.errno = errno
                    self.compounds_failed += 1
                    raise CompoundFault(errno, pc, _op_label(op), slots,
                                        status.ops_completed,
                                        str(exc)) from exc
                finally:
                    if traced:
                        tracer.end()
                status.ops_completed += 1
        finally:
            task.kernel_entry_cycles = None
            isolation.release()
        return slots

    # ------------------------------------------------------------ op bodies

    def _resolve(self, arg: Arg, slots: list[int]) -> int:
        if arg.kind is ArgKind.LIT:
            return arg.value
        if arg.kind is ArgKind.SLOT:
            return slots[arg.value]
        raise CosyError("shared-buffer arg used where a scalar is expected")

    def _exec_op(self, op: Op, pc: int, slots: list[int],
                 shared: SharedBuffer, isolation: FunctionIsolation) -> int:
        if op.opcode is OpCode.MOV:
            slots[op.dst] = self._resolve(op.args[0], slots)
            return pc + 1
        if op.opcode is OpCode.MATH:
            name = MATH_OP_NAMES.get(op.extra)
            if name is None:
                raise CosyError(f"bad math opcode {op.extra}")
            a = self._resolve(op.args[0], slots)
            b = self._resolve(op.args[1], slots)
            slots[op.dst] = _math(name, a, b)
            return pc + 1
        if op.opcode is OpCode.JMP:
            return op.extra
        if op.opcode is OpCode.JZ:
            cond = self._resolve(op.args[0], slots)
            return op.extra if cond == 0 else pc + 1
        if op.opcode is OpCode.SYSCALL:
            slots[op.dst] = self._exec_syscall(op, slots, shared)
            return pc + 1
        if op.opcode is OpCode.CALLF:
            reg = self._functions.get(op.extra)
            if reg is None:
                raise CosyError(f"CALLF to unregistered function {op.extra}")
            args = [self._resolve(a, slots) if a.kind is not ArgKind.SHARED
                    else a.value for a in op.args]
            trust = self.trust_manager
            mode = trust.protection_for(op.extra) if trust is not None else None
            try:
                slots[op.dst] = isolation.call(reg.program, reg.func, args,
                                               handcrafted=reg.handcrafted,
                                               mode=mode)
            except Exception as exc:
                from repro.errors import HardwareFault
                if trust is not None and isinstance(exc, HardwareFault):
                    trust.record_fault(op.extra, exc)
                raise
            if trust is not None:
                trust.record_clean(op.extra)
            return pc + 1
        raise CosyError(f"unexpected opcode {op.opcode}")

    # ------------------------------------------------- syscall marshalling

    def _exec_syscall(self, op: Op, slots: list[int],
                      shared: SharedBuffer) -> int:
        """Invoke one syscall op through the normal handlers, zero-copy."""
        kernel = self.kernel
        sys = kernel.sys
        name = syscall_name(op.extra)
        kernel.clock.charge(kernel.costs.syscall_dispatch, Mode.SYSTEM)
        args = op.args

        def scalar(i: int) -> int:
            return self._resolve(args[i], slots)

        def shared_ref(i: int) -> tuple[int, int]:
            a = args[i]
            if a.kind is not ArgKind.SHARED:
                raise CosyError(f"{name}: arg {i} must be a shared-buffer ref")
            return a.value, a.aux

        def path_arg(i: int) -> str:
            off, length = shared_ref(i)
            # C-string semantics: stop at the first NUL so a reused request
            # region (e.g. the Cosy HTTP server's) tolerates stale tails.
            return shared.read_kernel(off, length).split(b"\0", 1)[0].decode()

        if name == "open":
            return sys._open_nocopy(path_arg(0), scalar(1),
                                    scalar(2) if len(args) > 2 else 0o644)
        if name == "close":
            return sys.do_close(scalar(0))
        if name == "read":
            fd = scalar(0)
            off, _ = shared_ref(1)
            count = scalar(2)
            file = sys._file_for(fd)
            file.check_readable()
            data = file.inode.read(file.pos, count)
            file.pos += len(data)
            shared.write_kernel(off, data)
            return len(data)
        if name == "write":
            fd = scalar(0)
            off, _ = shared_ref(1)
            count = scalar(2)
            data = shared.read_kernel(off, count)
            file = sys._file_for(fd)
            file.check_writable()
            pos = file.inode.size if (file.flags & O_APPEND) else file.pos
            n = file.inode.write(pos, data)
            file.pos = pos + n
            return n
        if name == "pread":
            fd, count, fpos = scalar(0), scalar(2), scalar(3)
            off, _ = shared_ref(1)
            file = sys._file_for(fd)
            file.check_readable()
            data = file.inode.read(fpos, count)
            shared.write_kernel(off, data)
            return len(data)
        if name == "pwrite":
            fd, count, fpos = scalar(0), scalar(2), scalar(3)
            off, _ = shared_ref(1)
            data = shared.read_kernel(off, count)
            file = sys._file_for(fd)
            file.check_writable()
            return file.inode.write(fpos, data)
        if name == "lseek":
            return sys.do_lseek(scalar(0), scalar(1), scalar(2))
        if name == "getpid":
            return sys.do_getpid()
        if name == "stat":
            path = path_arg(0)
            off, _ = shared_ref(1)
            dentry = kernel.vfs.path_walk(path, kernel.current.cwd)
            kernel.clock.charge(kernel.costs.stat_fill, Mode.SYSTEM)
            shared.write_kernel(off, dentry.inode.getattr().pack())
            return 0
        if name == "fstat":
            fd = scalar(0)
            off, _ = shared_ref(1)
            file = sys._file_for(fd)
            kernel.clock.charge(kernel.costs.stat_fill, Mode.SYSTEM)
            shared.write_kernel(off, file.inode.getattr().pack())
            return 0
        if name == "unlink":
            kernel.vfs.unlink(path_arg(0), kernel.current.cwd)
            return 0
        if name == "mkdir":
            kernel.vfs.mkdir(path_arg(0), kernel.current.cwd)
            return 0
        if name == "rmdir":
            kernel.vfs.rmdir(path_arg(0), kernel.current.cwd)
            return 0
        if name == "ftruncate":
            return sys.do_ftruncate(scalar(0), scalar(1))
        if name == "getdents":
            fd = scalar(0)
            off, length = shared_ref(1)
            entries = sys._file_for(fd)  # validate fd first
            if not entries.inode.is_dir:
                raise_errno(EBADF, "getdents on non-directory")
            batch = []
            used = 0
            all_entries = entries.inode.readdir()
            for e in all_entries[entries.pos:]:
                raw = _pack_dirent(e)
                if used + len(raw) > length:
                    break
                kernel.clock.charge(kernel.costs.dirent_emit, Mode.SYSTEM)
                batch.append(raw)
                used += len(raw)
            entries.pos += len(batch)
            if batch:
                shared.write_kernel(off, b"".join(batch))
            return used
        if name in ("accept", "sendfile", "shutdown"):
            # Network handlers are installed by repro.kernel.net.SocketLayer;
            # compounds can only reach them once the stack is loaded.
            handler = getattr(sys, f"do_{name}", None)
            if handler is None:
                raise CosyError(f"{name}: socket layer is not loaded")
            if name == "accept":
                return handler(scalar(0))
            if name == "sendfile":
                return handler(scalar(0), scalar(1), scalar(2), scalar(3))
            return handler(scalar(0), scalar(1))
        raise CosyError(f"syscall '{name}' is not available in compounds")


def _op_label(op: Op) -> str:
    """Human-readable name of a compound op for failure reports."""
    if op.opcode is OpCode.SYSCALL:
        return syscall_name(op.extra)
    if op.opcode is OpCode.CALLF:
        return f"callf#{op.extra}"
    return op.opcode.name.lower()


def _pack_dirent(entry) -> bytes:
    name_bytes = entry.name.encode()
    return (entry.ino.to_bytes(8, "little")
            + bytes([entry.dtype, len(name_bytes)]) + name_bytes)


def _math(op: str, a: int, b: int) -> int:
    """C-semantics integer math shared with the interpreter."""
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise CosyError("division by zero in compound")
        return int(a / b)
    if op == "%":
        if b == 0:
            raise CosyError("modulo by zero in compound")
        return a - int(a / b) * b
    if op == "<":
        return 1 if a < b else 0
    if op == ">":
        return 1 if a > b else 0
    if op == "<=":
        return 1 if a <= b else 0
    if op == ">=":
        return 1 if a >= b else 0
    if op == "==":
        return 1 if a == b else 0
    if op == "!=":
        return 1 if a != b else 0
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "<<":
        return a << (b & 63)
    if op == ">>":
        return a >> (b & 63)
    if op == "&&":
        return 1 if (a and b) else 0
    if op == "||":
        return 1 if (a or b) else 0
    raise CosyError(f"unknown math op {op}")
