"""Cosy-Lib: the user-level runtime that forms and runs compounds.

"The second component of Cosy, Cosy-Lib, provides utility functions to
create a compound ...  The functioning of Cosy-Lib and the internal
structure of the compound buffer are entirely transparent to the user."

Responsibilities here:

* install a :class:`~repro.core.cosy.cosy_gcc.CompiledRegion` for a task —
  map the two shared buffers (compound buffer + data buffer), pre-place
  string literals, and register helper functions with the kernel extension;
* per run, bind input values, encode the compound *into the shared
  compound buffer* (a user-mode copy into shared memory — the only copy
  the whole mechanism ever makes), and invoke ``cosy_exec``;
* decode results: every region variable's final value, the region's return
  value, and zero-copy views of its shared data buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.cosy.cosy_gcc import (CompiledRegion, RETURN_SLOT_NAME,
                                      _TaggedCallf)
from repro.core.cosy.kernel_ext import CosyKernelExtension
from repro.core.cosy.ops import Op
from repro.core.cosy.shared_buffer import SharedBuffer
from repro.errors import CosyError
from repro.kernel.clock import Mode

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.process import Task


@dataclass
class CosyResult:
    """Outcome of one compound execution."""

    values: dict[str, int]        # final value of every region variable
    shared: SharedBuffer          # the data buffer (zero-copy views)
    layout: dict[str, tuple[int, int]]

    @property
    def value(self) -> int:
        """The region's return value (0 if the region never returned)."""
        return self.values.get(RETURN_SLOT_NAME, 0)

    def buffer(self, name: str) -> bytes:
        """Contents of a region-local char buffer after execution."""
        if name not in self.layout:
            raise CosyError(f"no shared buffer named '{name}'")
        offset, size = self.layout[name]
        return self.shared.read_user(offset, size)


class InstalledRegion:
    """A compiled region bound to a task: buffers mapped, helpers registered."""

    def __init__(self, lib: "CosyLib", task: "Task", region: CompiledRegion):
        self.lib = lib
        self.task = task
        # Own copy: CALLF ids are per-extension, so the shared CompiledRegion
        # must stay untouched (it may be installed into other kernels too).
        self.region = CompiledRegion(
            ops=list(region.ops), nslots=region.nslots,
            slot_map=dict(region.slot_map),
            input_prologue=dict(region.input_prologue),
            shared_layout=dict(region.shared_layout),
            shared_literals=list(region.shared_literals),
            shared_size=region.shared_size,
            functions=dict(region.functions),
            fingerprints=dict(region.fingerprints),
            source_name=region.source_name,
        )
        region = self.region
        kernel = lib.kernel
        data_size = max(region.shared_size * 2, 64 * 1024)
        self.data_buf = SharedBuffer(kernel, task, data_size)
        self.compound_buf = SharedBuffer(kernel, task, 256 * 1024)
        # Pre-place string literals once; they are immutable across runs.
        for offset, raw in region.shared_literals:
            self.data_buf.write_user(offset, raw)
        # Reserve the compiled layout so in-kernel function heaps start past it.
        self.data_buf._cursor = region.shared_size
        # Register helper functions, rewriting tagged CALLF ops to real ids.
        ids: dict[str, int] = {}
        for name, program in region.functions.items():
            ids[name] = lib.ext.register_function(program, name)
            # load-time compilation (eBPF-style JIT-at-load): the first
            # CALLF hits warm compiled code instead of paying the compile
            kernel.code_cache.lookup(program)
        for i, op in enumerate(region.ops):
            if isinstance(op, _TaggedCallf):
                region.ops[i] = Op(op.opcode, op.dst, ids[op.func_name],
                                   op.args)

    def run(self, inputs: dict[str, int] | None = None) -> CosyResult:
        """Encode with ``inputs`` bound and execute; returns the results."""
        kernel = self.lib.kernel
        encoded = self.region.encode(inputs)
        if len(encoded) > self.compound_buf.size:
            raise CosyError(f"compound of {len(encoded)} bytes exceeds "
                            f"the compound buffer")
        # Forming the compound is user-level work: Cosy-Lib writes the ops
        # into the shared compound buffer (this is the only copy).
        kernel.clock.charge(
            int(len(encoded) * kernel.costs.user_touch_per_byte), Mode.USER)
        self.compound_buf.write_user(0, encoded)
        slots = self.lib.ext.execute(self.task, encoded, self.data_buf)
        values = {name: slots[idx]
                  for name, idx in self.region.slot_map.items()
                  if not name.startswith("__tmp")}
        return CosyResult(values=values, shared=self.data_buf,
                          layout=dict(self.region.shared_layout))


class CosyLib:
    """Facade tying Cosy-GCC output to the kernel extension."""

    def __init__(self, kernel: "Kernel", ext: CosyKernelExtension):
        self.kernel = kernel
        self.ext = ext

    def install(self, task: "Task", region: CompiledRegion) -> InstalledRegion:
        return InstalledRegion(self, task, region)
