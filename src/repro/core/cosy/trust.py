"""Heuristic authentication of untrusted code (§2.4, implemented).

"We plan to explore heuristic approaches to authenticate untrusted code.
The behavior of untrusted code will be observed for some specific time
period and once the untrusted code is considered safe, the security
checks will be dynamically turned off."

:class:`TrustManager` watches user functions executing under Cosy's
expensive FULL_ISOLATION mode; after ``threshold`` consecutive clean
executions a function is *promoted* to DATA_ONLY (near-zero call
overhead).  Any protection fault — ever — demotes the function back to
full isolation and pins it there (a function that tried to escape once is
never trusted again).

This is the Cosy-level twin of KGCC's dynamic deinstrumentation
(:mod:`repro.safety.kgcc.deinstrument`).

When the kernel extension carries a load-time verifier
(:class:`repro.safety.verifier.LoadTimeVerifier`), functions it proved
safe skip the observation period entirely: the extension publishes each
verdict via :meth:`TrustManager.note_verdict` and statically-proven
functions start at DATA_ONLY from their very first call.  A fault still
pins them — dynamic evidence of escape always beats a static proof,
since the proof covers only the analyzed program text.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

from repro.core.cosy.safety import CosyProtection
from repro.errors import HardwareFault

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.cosy.kernel_ext import CosyKernelExtension


class TrustManager:
    """Per-function promotion from FULL_ISOLATION to DATA_ONLY."""

    def __init__(self, ext: "CosyKernelExtension", *, threshold: int = 100):
        if threshold <= 0:
            raise ValueError("trust threshold must be positive")
        self.ext = ext
        self.threshold = threshold
        self.clean_runs: Counter = Counter()
        self.promoted: set[int] = set()
        self.pinned: set[int] = set()
        #: functions the load-time verifier proved safe — trusted from
        #: their first call, no warmup (§2.4 meets eBPF-style verification)
        self.statically_proven: set[int] = set()
        ext.trust_manager = self
        # pick up verdicts for functions registered before we attached
        for func_id, verdict in getattr(ext, "verdicts", {}).items():
            self.note_verdict(func_id, verdict)

    # -------------------------------------------------------------- policy

    def note_verdict(self, func_id: int, verdict) -> None:
        """Record a load-time verifier verdict for a registered function.

        Only PROVEN_SAFE changes policy (immediate DATA_ONLY).  A
        NEEDS_CHECKS function goes through the normal observation period;
        REJECT never reaches here (registration already refused it).
        """
        if getattr(verdict, "name", str(verdict)) == "PROVEN_SAFE":
            self.statically_proven.add(func_id)

    def protection_for(self, func_id: int) -> CosyProtection:
        if func_id in self.pinned:
            return CosyProtection.FULL_ISOLATION
        if func_id in self.promoted or func_id in self.statically_proven:
            return CosyProtection.DATA_ONLY
        return CosyProtection.FULL_ISOLATION

    def record_clean(self, func_id: int) -> None:
        if (func_id in self.pinned or func_id in self.promoted
                or func_id in self.statically_proven):
            return
        self.clean_runs[func_id] += 1
        if self.clean_runs[func_id] >= self.threshold:
            self.promoted.add(func_id)

    def record_fault(self, func_id: int, fault: HardwareFault) -> None:
        """An escape attempt: demote and never trust again.

        A statically-proven function that faults loses its static trust
        too — the dynamic evidence wins."""
        self.promoted.discard(func_id)
        self.statically_proven.discard(func_id)
        self.pinned.add(func_id)
        self.clean_runs[func_id] = 0

    def status(self, func_id: int) -> str:
        if func_id in self.pinned:
            return "pinned-isolated"
        if func_id in self.statically_proven:
            return "verified"
        if func_id in self.promoted:
            return "trusted"
        return f"observing ({self.clean_runs[func_id]}/{self.threshold})"
