"""The Cosy shared buffer: one region, two views, zero copies.

The paper's Cosy uses two shared areas: the *compound buffer*, where
Cosy-Lib encodes operations that the kernel extension decodes in place, and
a *shared data buffer*, through which file data moves between syscalls and
the application without crossing the boundary.

Here one :class:`SharedBuffer` instance serves either role: it maps frames
into the task's user address space (so the user program reads/writes them
through the MMU at user cost) while the kernel accesses the same frames
directly (charged as in-kernel memcpy, *not* as uaccess — that absence of
uaccess cost is precisely the zero-copy saving being measured).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import CosyError
from repro.kernel.clock import Mode

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.process import Task


class SharedBuffer:
    """A user/kernel shared memory region with a bump allocator."""

    def __init__(self, kernel: "Kernel", task: "Task", size: int = 1 << 20):
        if size <= 0:
            raise CosyError("shared buffer size must be positive")
        self.kernel = kernel
        self.task = task
        self.size = size
        self.base = task.mem.map_shared(size)
        self._cursor = 0

    # ------------------------------------------------------------ allocation

    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Reserve ``nbytes``; returns the *offset* within the buffer."""
        if nbytes <= 0:
            raise CosyError("shared alloc of non-positive size")
        self._cursor = (self._cursor + align - 1) & ~(align - 1)
        offset = self._cursor
        if offset + nbytes > self.size:
            raise CosyError("shared buffer exhausted")
        self._cursor += nbytes
        return offset

    def place(self, data: bytes, align: int = 8) -> int:
        """Allocate and fill; returns the offset (used for paths, literals)."""
        offset = self.alloc(len(data), align)
        self.write_user(offset, data)
        return offset

    def reset(self) -> None:
        self._cursor = 0

    # --------------------------------------------------------------- access

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise CosyError(
                f"shared-buffer reference [{offset}, {offset + nbytes}) "
                f"outside region of {self.size} bytes")

    def read_user(self, offset: int, nbytes: int) -> bytes:
        """User-side access (through the MMU, charged at user rates)."""
        self._check(offset, nbytes)
        return self.kernel.mmu.read(self.task.aspace, self.base + offset, nbytes)

    def write_user(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self.kernel.mmu.write(self.task.aspace, self.base + offset, data)

    def read_kernel(self, offset: int, nbytes: int) -> bytes:
        """Kernel-side access: same frames, in-kernel memcpy cost only."""
        self._check(offset, nbytes)
        self.kernel.clock.charge(self.kernel.costs.memcpy_cost(nbytes),
                                 Mode.SYSTEM)
        return self.kernel.mmu.read(self.task.aspace, self.base + offset, nbytes)

    def write_kernel(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self.kernel.clock.charge(self.kernel.costs.memcpy_cost(len(data)),
                                 Mode.SYSTEM)
        self.kernel.mmu.write(self.task.aspace, self.base + offset, data)
