"""Cosy-GCC: compile a marked C region into a compound (§2.3).

"Users need to identify the bottleneck code segments and mark them with the
Cosy specific constructs COSY_START and COSY_END.  This marked code is
parsed and the statements within the delimiters are encoded into the Cosy
language."

The markers are written as ordinary calls so the source stays valid C::

    int main() {
        int fd;
        COSY_START();
        fd = open("/data", 0);
        char buf[4096];
        int n = read(fd, buf, 4096);
        close(fd);
        COSY_END();
        return n;
    }

What Cosy-GCC does, mirroring the paper:

* **dependency resolution** — "resolves dependencies among parameters of
  the Cosy operations": variables become compound *slots*, so the fd
  produced by ``open`` flows into ``read`` with no user-level round trip;
* **zero-copy identification** — region-local ``char`` arrays and string
  literals are placed in the *shared buffer*; a buffer filled by ``read``
  and passed to ``write`` is the same shared bytes, never copied;
* **language subset** — "we limited Cosy to the execution of only a subset
  of C in the kernel"; anything outside the subset raises
  :class:`UnsupportedConstruct` (int arithmetic, loops, conditionals,
  syscalls, and calls to local helper functions are in; pointers beyond
  buffer references are out — helpers that need them run as isolated user
  functions via CALLF instead);
* **inputs** — variables defined before the region are bound at run time
  by Cosy-Lib into reserved prologue MOV ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cminus import ast_nodes as ast
from repro.cminus.compile import program_fingerprint
from repro.cminus.ctypes import ArrayType, PointerType
from repro.cminus.parser import parse
from repro.core.cosy.compound import CompoundBuilder, encode_compound
from repro.core.cosy.ops import Arg, MATH_OPS, Op
from repro.errors import CosyError
from repro.kernel.syscalls.table import SYSCALL_NRS

RETURN_SLOT_NAME = "__return"


class UnsupportedConstruct(CosyError):
    """The marked region uses something outside the Cosy C subset."""


@dataclass
class CompiledRegion:
    """Output of Cosy-GCC for one marked region."""

    ops: list[Op]
    nslots: int
    slot_map: dict[str, int]                 # variable -> slot
    input_prologue: dict[str, int]           # input variable -> prologue op idx
    shared_layout: dict[str, tuple[int, int]]  # buffer var -> (offset, size)
    shared_literals: list[tuple[int, bytes]]   # (offset, bytes) to pre-place
    shared_size: int
    functions: dict[str, ast.Program] = field(default_factory=dict)
    #: helper function -> structural fingerprint of its program (the first
    #: half of the code cache key; correlates cache entries to regions)
    fingerprints: dict[str, str] = field(default_factory=dict)
    source_name: str = "<cosy>"

    def encode(self, inputs: dict[str, int] | None = None) -> bytes:
        """Bind input values into the prologue and serialize the compound."""
        inputs = inputs or {}
        unknown = set(inputs) - set(self.input_prologue)
        if unknown:
            raise CosyError(f"unknown compound inputs: {sorted(unknown)}")
        missing = set(self.input_prologue) - set(inputs)
        if missing:
            raise CosyError(f"unbound compound inputs: {sorted(missing)}")
        ops = list(self.ops)
        for name, idx in self.input_prologue.items():
            old = ops[idx]
            ops[idx] = Op(old.opcode, old.dst, old.extra,
                          (Arg.lit(int(inputs[name])),))
        return encode_compound(ops, self.nslots)


class CosyGCC:
    """The compiler.  Stateless; ``compile()`` may be called repeatedly."""

    def compile(self, source: str, func: str = "main", *,
                require_bounded_loops: bool = False) -> CompiledRegion:
        """Compile the marked region of ``func``.

        With ``require_bounded_loops=True`` the region is refused (with
        :class:`~repro.errors.VerifierReject`) unless every loop in it has
        a provable bound — the eBPF-style alternative to relying on the
        run-time watchdog (see :mod:`repro.safety.verifier.termination`).
        """
        program = parse(source)
        fdef = program.funcs.get(func)
        if fdef is None:
            raise CosyError(f"function '{func}' not found")
        region = self._extract_region(fdef)
        if require_bounded_loops:
            self._check_bounded(func, region)
        return _RegionCompiler(program, fdef, region).compile()

    @staticmethod
    def _check_bounded(func: str, region: list[ast.Stmt]) -> None:
        from repro.safety.verifier.termination import check_termination
        bounds = check_termination(ast.Block(stmts=list(region), line=0))
        unbounded = [b for b in bounds if not b.bounded]
        if unbounded:
            from repro.errors import VerifierReject
            raise VerifierReject(func, [
                f"line {b.line}: loop bound not provable: {b.reason}"
                for b in unbounded])

    @staticmethod
    def _extract_region(fdef: ast.FuncDef) -> list[ast.Stmt]:
        start = end = None
        for i, stmt in enumerate(fdef.body.stmts):
            if (isinstance(stmt, ast.ExprStmt)
                    and isinstance(stmt.expr, ast.Call)):
                if stmt.expr.func == "COSY_START":
                    if start is not None:
                        raise CosyError("nested COSY_START")
                    start = i
                elif stmt.expr.func == "COSY_END":
                    if start is None:
                        raise CosyError("COSY_END before COSY_START")
                    end = i
                    break
        if start is None or end is None:
            raise CosyError("function has no COSY_START/COSY_END region")
        return fdef.body.stmts[start + 1:end]


class _RegionCompiler:
    def __init__(self, program: ast.Program, fdef: ast.FuncDef,
                 region: list[ast.Stmt]):
        self.program = program
        self.fdef = fdef
        self.region = region
        self.builder = CompoundBuilder()
        self.shared_layout: dict[str, tuple[int, int]] = {}
        self.shared_literals: list[tuple[int, bytes]] = []
        self._shared_cursor = 0
        self._literal_offsets: dict[str, int] = {}
        self.input_prologue: dict[str, int] = {}
        self.functions: dict[str, ast.Program] = {}
        self._declared: set[str] = set()
        #: (continue target, break target) per enclosing loop
        self._loop_stack: list[tuple] = []

    # -------------------------------------------------------------- helpers

    def _shared_alloc(self, size: int) -> int:
        offset = (self._shared_cursor + 7) & ~7
        self._shared_cursor = offset + size
        return offset

    def _place_literal(self, text: str) -> tuple[int, int]:
        """Place a NUL-terminated string in the shared buffer (deduplicated)."""
        if text in self._literal_offsets:
            offset = self._literal_offsets[text]
        else:
            raw = text.encode() + b"\0"
            offset = self._shared_alloc(len(raw))
            self.shared_literals.append((offset, raw))
            self._literal_offsets[text] = offset
        return offset, len(text.encode())

    def _is_syscall(self, name: str) -> bool:
        return name in SYSCALL_NRS

    def _is_local_func(self, name: str) -> bool:
        return name in self.program.funcs and name != self.fdef.name

    # ---------------------------------------------------- input discovery

    def _collect_inputs(self) -> None:
        """Variables read in the region but declared outside become inputs,
        bound via reserved prologue MOV ops (filled by Cosy-Lib)."""
        declared_in_region = {
            s.name for s in self.region if isinstance(s, ast.VarDecl)
        }
        # include loop-scope decls
        for stmt in self.region:
            for node in ast.walk(stmt):
                if isinstance(node, ast.VarDecl):
                    declared_in_region.add(node.name)
        used: list[str] = []
        seen: set[str] = set()
        for stmt in self.region:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Ident) and node.name not in seen:
                    seen.add(node.name)
                    if (node.name not in declared_in_region
                            and not self._is_syscall(node.name)
                            and not self._is_local_func(node.name)):
                        used.append(node.name)
        for name in used:
            slot = self.builder.slot(name)
            idx = self.builder.mov(slot, Arg.lit(0))  # placeholder
            self.input_prologue[name] = idx

    # --------------------------------------------------------------- driver

    def compile(self) -> CompiledRegion:
        self._collect_inputs()
        ret_slot = self.builder.slot(RETURN_SLOT_NAME)
        self.builder.mov(ret_slot, Arg.lit(0))
        self._end_label = self.builder.label("region_end")
        for stmt in self.region:
            self._compile_stmt(stmt)
        self.builder.place(self._end_label)
        # encode() resolves label fixups in place and appends the final END;
        # the resolved op list is what CompiledRegion carries.
        self.builder.encode()
        ops = list(self.builder.ops)
        return CompiledRegion(
            ops=ops,
            nslots=self.builder.nslots,
            slot_map=self.builder.slot_names,
            input_prologue=dict(self.input_prologue),
            shared_layout=dict(self.shared_layout),
            shared_literals=list(self.shared_literals),
            shared_size=max(self._shared_cursor, 8),
            functions=dict(self.functions),
            fingerprints={name: program_fingerprint(prog)
                          for name, prog in self.functions.items()},
        )

    # ------------------------------------------------------------ statements

    def _compile_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._compile_vardecl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._compile_expr(stmt.expr)
        elif isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                self._compile_stmt(s)
        elif isinstance(stmt, ast.If):
            self._compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self._compile_while(stmt)
        elif isinstance(stmt, ast.For):
            self._compile_for(stmt)
        elif isinstance(stmt, ast.Return):
            ret = self.builder.slot(RETURN_SLOT_NAME)
            if stmt.value is not None:
                arg = self._compile_expr(stmt.value)
                self.builder.mov(ret, arg)
            self.builder.jmp(self._end_label)
        elif isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise UnsupportedConstruct(f"break outside loop (line {stmt.line})")
            self.builder.jmp(self._loop_stack[-1][1])
        elif isinstance(stmt, ast.Continue):
            if not self._loop_stack:
                raise UnsupportedConstruct(
                    f"continue outside loop (line {stmt.line})")
            self.builder.jmp(self._loop_stack[-1][0])
        else:
            raise UnsupportedConstruct(
                f"statement {type(stmt).__name__} (line {stmt.line}) is "
                f"outside the Cosy subset")

    def _compile_vardecl(self, decl: ast.VarDecl) -> None:
        self._declared.add(decl.name)
        if isinstance(decl.ctype, ArrayType):
            if decl.ctype.elem.size != 1:
                raise UnsupportedConstruct(
                    f"only char buffers may live in the shared buffer "
                    f"(line {decl.line})")
            offset = self._shared_alloc(decl.ctype.length)
            self.shared_layout[decl.name] = (offset, decl.ctype.length)
            return
        if isinstance(decl.ctype, PointerType):
            raise UnsupportedConstruct(
                f"pointer variables are outside the Cosy subset "
                f"(line {decl.line}); use a helper function instead")
        slot = self.builder.slot(decl.name)
        if decl.init is not None:
            arg = self._compile_expr(decl.init)
            self.builder.mov(slot, arg)
        else:
            self.builder.mov(slot, Arg.lit(0))

    def _compile_if(self, stmt: ast.If) -> None:
        cond = self._compile_expr(stmt.cond)
        else_label = self.builder.label()
        self.builder.jz(cond, else_label)
        self._compile_stmt(stmt.then)
        if stmt.orelse is not None:
            end_label = self.builder.label()
            self.builder.jmp(end_label)
            self.builder.place(else_label)
            self._compile_stmt(stmt.orelse)
            self.builder.place(end_label)
        else:
            self.builder.place(else_label)

    def _compile_while(self, stmt: ast.While) -> None:
        top = self.builder.label()
        exit_label = self.builder.label()
        self.builder.place(top)
        cond = self._compile_expr(stmt.cond)
        self.builder.jz(cond, exit_label)
        self._loop_stack.append((top, exit_label))
        try:
            self._compile_stmt(stmt.body)
        finally:
            self._loop_stack.pop()
        self.builder.jmp(top)
        self.builder.place(exit_label)

    def _compile_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._compile_stmt(stmt.init)
        top = self.builder.label()
        step_label = self.builder.label()
        exit_label = self.builder.label()
        self.builder.place(top)
        if stmt.cond is not None:
            cond = self._compile_expr(stmt.cond)
            self.builder.jz(cond, exit_label)
        self._loop_stack.append((step_label, exit_label))
        try:
            self._compile_stmt(stmt.body)
        finally:
            self._loop_stack.pop()
        self.builder.place(step_label)
        if stmt.step is not None:
            self._compile_expr(stmt.step)
        self.builder.jmp(top)
        self.builder.place(exit_label)

    # ----------------------------------------------------------- expressions

    def _compile_expr(self, expr: ast.Expr) -> Arg:
        if isinstance(expr, ast.IntLit):
            return Arg.lit(expr.value)
        if isinstance(expr, ast.StrLit):
            offset, length = self._place_literal(expr.value)
            return Arg.shared(offset, length)
        if isinstance(expr, ast.Ident):
            shared = self.shared_layout.get(expr.name)
            if shared is not None:
                return Arg.shared(*shared)
            return Arg.slot(self.builder.slot(expr.name))
        if isinstance(expr, ast.Assign):
            return self._compile_assign(expr)
        if isinstance(expr, ast.BinOp):
            return self._compile_binop(expr)
        if isinstance(expr, ast.UnOp):
            return self._compile_unop(expr)
        if isinstance(expr, ast.PostIncDec):
            return self._compile_incdec(expr)
        if isinstance(expr, ast.Call):
            return self._compile_call(expr)
        raise UnsupportedConstruct(
            f"expression {type(expr).__name__} (line {expr.line}) is outside "
            f"the Cosy subset")

    def _compile_assign(self, expr: ast.Assign) -> Arg:
        if not isinstance(expr.target, ast.Ident):
            raise UnsupportedConstruct(
                f"only simple variables may be assigned in a compound "
                f"(line {expr.line})")
        if expr.target.name in self.shared_layout:
            raise UnsupportedConstruct(
                f"cannot assign to buffer '{expr.target.name}' "
                f"(line {expr.line})")
        slot = self.builder.slot(expr.target.name)
        value = self._compile_expr(expr.value)
        if expr.op:
            self.builder.math(expr.op, slot, Arg.slot(slot), value)
        else:
            self.builder.mov(slot, value)
        return Arg.slot(slot)

    def _compile_binop(self, expr: ast.BinOp) -> Arg:
        if expr.op not in MATH_OPS:
            raise UnsupportedConstruct(f"operator '{expr.op}' in compound")
        a = self._compile_expr(expr.left)
        b = self._compile_expr(expr.right)
        dst = self.builder.temp_slot()
        self.builder.math(expr.op, dst, a, b)
        return Arg.slot(dst)

    def _compile_unop(self, expr: ast.UnOp) -> Arg:
        if expr.op == "-":
            inner = self._compile_expr(expr.operand)
            dst = self.builder.temp_slot()
            self.builder.math("-", dst, Arg.lit(0), inner)
            return Arg.slot(dst)
        if expr.op == "!":
            inner = self._compile_expr(expr.operand)
            dst = self.builder.temp_slot()
            self.builder.math("==", dst, inner, Arg.lit(0))
            return Arg.slot(dst)
        if expr.op in ("++", "--") and isinstance(expr.operand, ast.Ident):
            slot = self.builder.slot(expr.operand.name)
            self.builder.math("+" if expr.op == "++" else "-", slot,
                              Arg.slot(slot), Arg.lit(1))
            return Arg.slot(slot)
        raise UnsupportedConstruct(f"unary '{expr.op}' in compound")

    def _compile_incdec(self, expr: ast.PostIncDec) -> Arg:
        if not isinstance(expr.target, ast.Ident):
            raise UnsupportedConstruct("++/-- target must be a variable")
        slot = self.builder.slot(expr.target.name)
        old = self.builder.temp_slot()
        self.builder.mov(old, Arg.slot(slot))
        self.builder.math("+" if expr.op == "++" else "-", slot,
                          Arg.slot(slot), Arg.lit(1))
        return Arg.slot(old)

    def _compile_call(self, expr: ast.Call) -> Arg:
        args = [self._compile_expr(a) for a in expr.args]
        dst = self.builder.temp_slot()
        if self._is_syscall(expr.func):
            self.builder.syscall(expr.func, *args, out=dst)
            return Arg.slot(dst)
        if self._is_local_func(expr.func):
            # Helper functions execute as isolated user functions (CALLF).
            self.functions.setdefault(expr.func, self.program)
            # func id is assigned at registration time; record name in extra
            # via a placeholder resolved by Cosy-Lib.
            idx = self.builder.callf(0, *args, out=dst)
            self.builder.ops[idx] = _TaggedCallf(
                self.builder.ops[idx], expr.func)
            return Arg.slot(dst)
        raise UnsupportedConstruct(
            f"call to unknown function '{expr.func}' (line {expr.line})")


class _TaggedCallf(Op):
    """A CALLF op annotated with its target function name; Cosy-Lib rewrites
    ``extra`` to the kernel-assigned function id before encoding."""

    def __new__(cls, op: Op, func_name: str):
        self = super().__new__(cls)
        return self

    def __init__(self, op: Op, func_name: str):
        object.__setattr__(self, "opcode", op.opcode)
        object.__setattr__(self, "dst", op.dst)
        object.__setattr__(self, "extra", op.extra)
        object.__setattr__(self, "args", op.args)
        object.__setattr__(self, "func_name", func_name)
