"""Compound building, encoding, and decoding.

:class:`CompoundBuilder` is the op-level API (used directly by tests and by
Cosy-Lib): append operations, reference forward labels, then ``encode()``
into the byte format of :mod:`repro.core.cosy.ops`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cosy.ops import (Arg, HEADER_SIZE, MATH_OPS, MAX_SLOTS, Op,
                                 OpCode, pack_header, unpack_header)
from repro.errors import CosyError, Errno, errno_name
from repro.kernel.syscalls.table import SYSCALL_NRS


@dataclass
class CompoundStatus:
    """Outcome record of one compound execution (§2.1 partial-failure).

    When one element of a compound fails, the whole compound stops *at*
    that element: everything before it has fully taken effect, nothing
    after it ran.  This record says how far execution got and — on
    failure — which element stopped it and with what errno.
    """

    ops_completed: int = 0
    failed_index: int | None = None
    errno: int | None = None

    @property
    def ok(self) -> bool:
        return self.failed_index is None


class CompoundFault(Errno):
    """A compound stopped because one of its elements failed.

    Subclasses :class:`~repro.errors.Errno` so callers that handle normal
    syscall failures handle compound failures identically; additionally
    carries the §2.1 bookkeeping: the index of the failing op, its name,
    and the slot values at the moment of failure (results of every op
    that completed — e.g. fds opened earlier in the compound, which remain
    valid and must be closed by the caller).
    """

    def __init__(self, errno: int, failed_index: int, op_name: str,
                 slots: list[int], ops_completed: int, msg: str = ""):
        super().__init__(errno, errno_name(errno),
                         f"compound op {failed_index} ({op_name}) failed"
                         f"{': ' + msg if msg else ''}")
        self.failed_index = failed_index
        self.op_name = op_name
        self.slots = list(slots)
        self.status = CompoundStatus(ops_completed=ops_completed,
                                     failed_index=failed_index, errno=errno)


def encode_compound(ops: list[Op], nslots: int) -> bytes:
    """Serialize ops into compound-buffer bytes."""
    return pack_header(len(ops), nslots) + b"".join(op.pack() for op in ops)


def decode_compound(data: bytes) -> tuple[list[Op], int]:
    """Parse compound-buffer bytes; returns (ops, nslots).

    Raises :class:`CosyError` on any malformation — this is the kernel-side
    validation pass, so it must never trust its input.
    """
    nops, nslots = unpack_header(data)
    ops: list[Op] = []
    offset = HEADER_SIZE
    for _ in range(nops):
        op, offset = Op.unpack(data, offset)
        ops.append(op)
    # Validate jump targets and slot references up front.
    for i, op in enumerate(ops):
        if op.opcode in (OpCode.JMP, OpCode.JZ) and not (0 <= op.extra <= nops):
            raise CosyError(f"op {i}: jump target {op.extra} out of range")
        if op.dst >= max(nslots, 1) and op.opcode in (
                OpCode.SYSCALL, OpCode.MOV, OpCode.MATH, OpCode.CALLF):
            raise CosyError(f"op {i}: dst slot {op.dst} >= nslots {nslots}")
        for arg in op.args:
            if arg.kind.name == "SLOT" and arg.value >= max(nslots, 1):
                raise CosyError(f"op {i}: slot arg {arg.value} >= nslots")
    return ops, nslots


@dataclass
class Label:
    """A forward-referencable jump target."""

    name: str
    index: int | None = None


class CompoundBuilder:
    """Append-only builder with slots and labels."""

    def __init__(self) -> None:
        self.ops: list[Op] = []
        self._slot_names: dict[str, int] = {}
        self._labels: list[Label] = []
        self._fixups: list[tuple[int, Label]] = []

    # --------------------------------------------------------------- slots

    def slot(self, name: str) -> int:
        """Get-or-create a named slot (an i64 register in the kernel)."""
        idx = self._slot_names.get(name)
        if idx is None:
            idx = len(self._slot_names)
            if idx >= MAX_SLOTS:
                raise CosyError("too many slots in compound")
            self._slot_names[name] = idx
        return idx

    def temp_slot(self) -> int:
        return self.slot(f"__tmp{len(self._slot_names)}")

    @property
    def nslots(self) -> int:
        return max(1, len(self._slot_names))

    @property
    def slot_names(self) -> dict[str, int]:
        return dict(self._slot_names)

    # ---------------------------------------------------------------- ops

    def _append(self, op: Op) -> int:
        self.ops.append(op)
        return len(self.ops) - 1

    def syscall(self, name: str, *args: Arg, out: int | None = None) -> int:
        """Append a syscall op.  ``name`` must be in the syscall table."""
        nr = SYSCALL_NRS.get(name)
        if nr is None:
            raise CosyError(f"unknown syscall '{name}' in compound")
        return self._append(Op(OpCode.SYSCALL, dst=out if out is not None else 0,
                               extra=nr, args=tuple(args)))

    def mov(self, dst: int, src: Arg) -> int:
        return self._append(Op(OpCode.MOV, dst=dst, args=(src,)))

    def math(self, op: str, dst: int, a: Arg, b: Arg) -> int:
        code = MATH_OPS.get(op)
        if code is None:
            raise CosyError(f"unsupported math op '{op}'")
        return self._append(Op(OpCode.MATH, dst=dst, extra=code, args=(a, b)))

    def callf(self, func_id: int, *args: Arg, out: int | None = None) -> int:
        return self._append(Op(OpCode.CALLF, dst=out if out is not None else 0,
                               extra=func_id, args=tuple(args)))

    # -------------------------------------------------------------- labels

    def label(self, name: str = "") -> Label:
        lbl = Label(name or f"L{len(self._labels)}")
        self._labels.append(lbl)
        return lbl

    def place(self, label: Label) -> None:
        """Bind a label to the current position."""
        if label.index is not None:
            raise CosyError(f"label {label.name} placed twice")
        label.index = len(self.ops)

    def jmp(self, label: Label) -> int:
        idx = self._append(Op(OpCode.JMP, extra=label.index or 0))
        if label.index is None:
            self._fixups.append((idx, label))
        return idx

    def jz(self, cond: Arg, label: Label) -> int:
        idx = self._append(Op(OpCode.JZ, extra=label.index or 0,
                              args=(cond,)))
        if label.index is None:
            self._fixups.append((idx, label))
        return idx

    # -------------------------------------------------------------- output

    def end(self) -> int:
        return self._append(Op(OpCode.END))

    def encode(self) -> bytes:
        """Resolve labels and serialize.  Appends a final END if missing."""
        if not self.ops or self.ops[-1].opcode is not OpCode.END:
            self.end()
        for idx, label in self._fixups:
            if label.index is None:
                raise CosyError(f"label {label.name} never placed")
            old = self.ops[idx]
            self.ops[idx] = Op(old.opcode, old.dst, label.index, old.args)
        self._fixups.clear()
        return encode_compound(self.ops, self.nslots)
