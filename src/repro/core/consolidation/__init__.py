"""Syscall consolidation (§2.2).

Pipeline, matching the paper's methodology:

1. :mod:`tracing` — collect syscall logs (the strace / Linux-2.6-audit
   substitute; hooks straight into the dispatcher).
2. :mod:`graph` — build the weighted directed *syscall graph*: an edge
   V1→V2 weighted by how often V2 directly followed V1 in a process.
3. :mod:`patterns` — find heavy paths (consolidation candidates) and
   known sequence instances (open-read-close, readdir-stat, ...), and
   compute the projected savings of replacing them with the consolidated
   syscalls in :mod:`repro.kernel.syscalls.consolidated`.
"""

from repro.core.consolidation.tracing import SyscallTracer, TraceSummary
from repro.core.consolidation.graph import SyscallGraph
from repro.core.consolidation.patterns import (PatternMatch, SEQUENCE_PATTERNS,
                                               find_heavy_paths,
                                               find_sequences,
                                               project_readdirplus_savings)

__all__ = [
    "SyscallTracer", "TraceSummary", "SyscallGraph",
    "PatternMatch", "SEQUENCE_PATTERNS", "find_heavy_paths",
    "find_sequences", "project_readdirplus_savings",
]
