"""Pattern mining over syscall traces, and projected savings (§2.2).

Two kinds of analysis:

* **Heavy paths** in the syscall graph — generic candidates for new
  consolidated syscalls ("paths with large weights are likely to be good
  candidates for consolidation").
* **Known sequences** — the paper's promising patterns (open-read-close,
  open-write-close, open-fstat, readdir-stat), matched against the raw
  trace so instances can be counted and their replacement savings
  computed.  :func:`project_readdirplus_savings` performs exactly the
  §2.2 estimate: bytes and calls under the observed trace vs. bytes and
  calls had readdirplus been used.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.consolidation.graph import SyscallGraph
from repro.core.consolidation.tracing import SyscallTracer
from repro.kernel.vfs.stat import STAT_SIZE

#: the sequences §2.2 reports finding, with their consolidated replacement.
SEQUENCE_PATTERNS: dict[str, tuple[tuple[str, ...], str]] = {
    "open-read-close": (("open", "read", "close"), "open_read_close"),
    "open-write-close": (("open", "write", "close"), "open_write_close"),
    "open-fstat": (("open", "fstat"), "open_fstat"),
    "readdir-stat": (("getdents", "stat"), "readdirplus"),
}


@dataclass(frozen=True)
class PatternMatch:
    """One matched instance of a known sequence."""

    pattern: str
    replacement: str
    start_seq: int          # seq number of the first record
    length: int             # records consumed


def find_heavy_paths(graph: SyscallGraph, *, max_len: int = 4,
                     min_weight: int = 2, top: int = 10
                     ) -> list[tuple[list[str], int]]:
    """Greedy heavy-path extraction from the syscall graph.

    From each node, repeatedly follow the heaviest outgoing edge while the
    path weight stays >= ``min_weight`` and no node repeats.  Returns up to
    ``top`` (path, weight) pairs, heaviest first.
    """
    candidates: list[tuple[list[str], int]] = []
    for start in graph.nodes:
        path = [start]
        while len(path) < max_len:
            succ = [s for s in graph.successors(path[-1]) if s[0] not in path]
            if not succ:
                break
            nxt, w = succ[0]
            if w < min_weight:
                break
            path.append(nxt)
        if len(path) >= 2:
            weight = graph.path_weight(path)
            if weight >= min_weight:
                candidates.append((path, weight))
    # De-duplicate sub-paths of longer candidates with equal weight.
    candidates.sort(key=lambda c: (-c[1], -len(c[0])))
    kept: list[tuple[list[str], int]] = []
    for path, weight in candidates:
        if any(_is_subpath(path, k_path) and weight <= k_w
               for k_path, k_w in kept):
            continue
        kept.append((path, weight))
    return kept[:top]


def _is_subpath(needle: list[str], haystack: list[str]) -> bool:
    n, h = len(needle), len(haystack)
    return any(haystack[i:i + n] == needle for i in range(h - n + 1))


def find_sequences(tracer: SyscallTracer, pid: int | None = None
                   ) -> list[PatternMatch]:
    """Scan a trace for instances of the known §2.2 patterns.

    A ``readdir-stat`` instance is one getdents followed by a run of stats
    (the whole run counts as one instance, since one readdirplus replaces
    it).  The fd/path argument linkage is respected where the records carry
    it: a matched ``read`` must use the fd returned by the matched ``open``.
    """
    records = [r for r in tracer.records if pid is None or r.pid == pid]
    matches: list[PatternMatch] = []
    i = 0
    while i < len(records):
        r = records[i]
        if r.name == "getdents":
            j = i + 1
            # skip further getdents on the same directory stream
            while j < len(records) and records[j].name == "getdents":
                j += 1
            nstats = 0
            while j < len(records) and records[j].name == "stat":
                nstats += 1
                j += 1
            if nstats > 0:
                matches.append(PatternMatch("readdir-stat", "readdirplus",
                                            r.seq, j - i))
                i = j
                continue
        if r.name == "open" and i + 1 < len(records):
            nxt = records[i + 1]
            if nxt.name in ("read", "write") and i + 2 < len(records) \
                    and records[i + 2].name == "close":
                pat = "open-read-close" if nxt.name == "read" else \
                    "open-write-close"
                matches.append(PatternMatch(pat, SEQUENCE_PATTERNS[pat][1],
                                            r.seq, 3))
                i += 3
                continue
            if nxt.name == "fstat":
                matches.append(PatternMatch("open-fstat", "open_fstat",
                                            r.seq, 2))
                i += 2
                continue
        i += 1
    return matches


@dataclass
class ReaddirplusSavings:
    """The §2.2 interactive-workload projection."""

    observed_calls: int
    observed_bytes: int
    projected_calls: int
    projected_bytes: int
    instances: int

    @property
    def calls_saved(self) -> int:
        return self.observed_calls - self.projected_calls

    @property
    def bytes_saved(self) -> int:
        return self.observed_bytes - self.projected_bytes


def project_readdirplus_savings(tracer: SyscallTracer) -> ReaddirplusSavings:
    """Estimate calls/bytes had readdirplus replaced readdir-stat runs.

    Methodology follows the paper: take the observed trace; for every
    getdents-then-stats run, charge one readdirplus whose payload is the
    dirent bytes plus one stat record per stat call — removing the repeated
    path copies *into* the kernel and the per-call overhead of each stat.
    """
    records = tracer.records
    observed_calls = len(records)
    observed_bytes = sum(r.bytes_copied for r in records)
    projected_calls = observed_calls
    projected_bytes = observed_bytes
    instances = 0
    i = 0
    while i < len(records):
        if records[i].name == "getdents":
            j = i
            dirent_bytes = 0
            while j < len(records) and records[j].name == "getdents":
                dirent_bytes += records[j].bytes_to_user
                j += 1
            stat_in = stat_out = nstats = 0
            while j < len(records) and records[j].name == "stat":
                stat_in += records[j].bytes_from_user
                stat_out += records[j].bytes_to_user
                nstats += 1
                j += 1
            if nstats > 0:
                instances += 1
                run_calls = j - i
                run_bytes = dirent_bytes + stat_in + stat_out
                # one readdirplus: dir path in (~reuse of the getdents fd's
                # path; estimate from the record) + dirents + stat records out
                rdp_bytes = dirent_bytes + nstats * STAT_SIZE + 32
                projected_calls -= run_calls - 1
                projected_bytes -= run_bytes - rdp_bytes
            i = j
        else:
            i += 1
    return ReaddirplusSavings(
        observed_calls=observed_calls, observed_bytes=observed_bytes,
        projected_calls=projected_calls, projected_bytes=projected_bytes,
        instances=instances,
    )
