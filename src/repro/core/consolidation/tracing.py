"""Syscall tracing: the strace/audit substitute.

A :class:`SyscallTracer` registers with the dispatcher and records every
:class:`~repro.kernel.syscalls.interface.SyscallRecord`.  The §2.2
interactive-workload experiment is pure accounting over such a trace:
total calls, total bytes crossing the boundary, and per-name histograms.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.kernel.syscalls.interface import SyscallRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


@dataclass
class TraceSummary:
    """Aggregate statistics over a trace."""

    total_calls: int
    total_bytes: int
    bytes_to_user: int
    bytes_from_user: int
    calls_by_name: Counter = field(default_factory=Counter)
    bytes_by_name: Counter = field(default_factory=Counter)

    def top_calls(self, n: int = 10) -> list[tuple[str, int]]:
        return self.calls_by_name.most_common(n)


class SyscallTracer:
    """Records syscalls flowing through a kernel's dispatcher."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.records: list[SyscallRecord] = []
        self._attached = False

    # ------------------------------------------------------------ lifecycle

    def attach(self) -> "SyscallTracer":
        if not self._attached:
            self.kernel.sys.add_tracer(self.records.append)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.kernel.sys.remove_tracer(self.records.append)
            self._attached = False

    def __enter__(self) -> "SyscallTracer":
        return self.attach()

    def __exit__(self, *exc) -> bool:
        self.detach()
        return False

    def clear(self) -> None:
        self.records.clear()

    # ------------------------------------------------------------- analysis

    def name_sequence(self, pid: int | None = None) -> list[str]:
        """The per-process ordered sequence of syscall names."""
        return [r.name for r in self.records
                if pid is None or r.pid == pid]

    def pids(self) -> list[int]:
        return sorted({r.pid for r in self.records})

    def summary(self) -> TraceSummary:
        calls = Counter()
        byts = Counter()
        to_user = from_user = 0
        for r in self.records:
            calls[r.name] += 1
            byts[r.name] += r.bytes_copied
            to_user += r.bytes_to_user
            from_user += r.bytes_from_user
        return TraceSummary(
            total_calls=len(self.records),
            total_bytes=to_user + from_user,
            bytes_to_user=to_user,
            bytes_from_user=from_user,
            calls_by_name=calls,
            bytes_by_name=byts,
        )
