"""The weighted syscall graph of §2.2 / Cassyopia.

"This is a weighted directed graph with vertices representing system calls
and an edge between V1 and V2 having a weight equal to the number of times
system call V2 was invoked after V1.  Paths with large weights are likely
to be good candidates for consolidation."

Implemented natively (adjacency Counters) with an optional export to
networkx for users who want its algorithms.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable


class SyscallGraph:
    """Weighted digraph over syscall names."""

    def __init__(self) -> None:
        self._edges: dict[str, Counter] = defaultdict(Counter)
        self._node_hits: Counter = Counter()

    @staticmethod
    def from_sequence(names: Iterable[str]) -> "SyscallGraph":
        g = SyscallGraph()
        g.add_sequence(names)
        return g

    def add_sequence(self, names: Iterable[str]) -> None:
        """Add one process's ordered syscall names (edges between
        consecutive calls)."""
        prev: str | None = None
        for name in names:
            self._node_hits[name] += 1
            if prev is not None:
                self._edges[prev][name] += 1
            prev = name

    # --------------------------------------------------------------- queries

    @property
    def nodes(self) -> list[str]:
        names = set(self._node_hits)
        for src, dsts in self._edges.items():
            names.add(src)
            names.update(dsts)
        return sorted(names)

    def weight(self, src: str, dst: str) -> int:
        return self._edges.get(src, Counter()).get(dst, 0)

    def node_count(self, name: str) -> int:
        return self._node_hits.get(name, 0)

    def successors(self, src: str) -> list[tuple[str, int]]:
        """(dst, weight) pairs, heaviest first."""
        return self._edges.get(src, Counter()).most_common()

    def edges(self) -> list[tuple[str, str, int]]:
        """All edges as (src, dst, weight), heaviest first."""
        out = [(s, d, w) for s, c in self._edges.items() for d, w in c.items()]
        out.sort(key=lambda e: (-e[2], e[0], e[1]))
        return out

    def heaviest_edges(self, n: int = 10) -> list[tuple[str, str, int]]:
        return self.edges()[:n]

    def path_weight(self, path: list[str]) -> int:
        """Weight of a path = the minimum edge weight along it (the number
        of times the whole sequence could have occurred back to back)."""
        if len(path) < 2:
            return 0
        return min(self.weight(a, b) for a, b in zip(path, path[1:]))

    # --------------------------------------------------------------- export

    def to_networkx(self):
        """Export as ``networkx.DiGraph`` (weights on 'weight')."""
        import networkx as nx

        g = nx.DiGraph()
        for src, dst, w in self.edges():
            g.add_edge(src, dst, weight=w)
        return g

    def to_dot(self) -> str:
        """Graphviz source, for eyeballing traces."""
        lines = ["digraph syscalls {"]
        for src, dst, w in self.edges():
            lines.append(f'  "{src}" -> "{dst}" [label="{w}"];')
        lines.append("}")
        return "\n".join(lines)
