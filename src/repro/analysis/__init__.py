"""Result formatting and comparison against the paper's published numbers."""

from repro.analysis.report import (DEFAULT_METRIC_FAMILIES, Row,
                                   ComparisonTable, pct, fmt_bytes,
                                   fmt_seconds, code_cache_report,
                                   fault_injection_report, lockdep_report,
                                   metric_families_report, metrics_report,
                                   prof_report, verifier_report)
from repro.analysis.slo import (PERCENTILES, SloReport, TenantSlo,
                                histogram_percentile, jain_fairness,
                                latency_summary)

__all__ = ["Row", "ComparisonTable", "pct", "fmt_bytes", "fmt_seconds",
           "code_cache_report", "fault_injection_report", "lockdep_report",
           "metrics_report", "metric_families_report", "prof_report",
           "DEFAULT_METRIC_FAMILIES",
           "verifier_report", "PERCENTILES", "SloReport", "TenantSlo",
           "histogram_percentile", "jain_fairness", "latency_summary"]
