"""Service-level objectives computed from kernel metrics.

The overload suite (``repro.workloads.scenario``) answers the paper's
scaling question — does in-kernel execution still pay off when hundreds
of tenants share one kernel under heavy-tailed load? — and this module
defines what "pays off" means:

* **latency percentiles** (p50/p90/p99, simulated cycles) estimated from
  the power-of-two :class:`~repro.trace.metrics.Histogram` buckets the
  scenario runner fills per tenant;
* **drop/RST accounting** pulled from the
  :class:`~repro.kernel.net.syscalls.SocketLayer` counters (connections
  refused, backlog overflows, RSTs on the wire, aborted accepts);
* **goodput** — application payload bytes actually delivered per tenant;
* **Jain's fairness index** over per-tenant goodput, the standard
  "is anyone starving?" scalar ((Σx)² / (n·Σx²); 1.0 = perfectly fair).

Everything here is arithmetic over deterministic integers, so two runs
of the same scenario seed produce bit-identical reports — the property
``tests/workloads/test_scenario_determinism.py`` pins and
``benchmarks/bench_scale.py`` re-asserts before writing BENCH_SCALE.json.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.metrics import Histogram

#: percentiles every report carries
PERCENTILES = (50, 90, 99)


def histogram_percentile(hist: Histogram, pct: float) -> float:
    """Estimate a percentile from a power-of-two bucketed histogram.

    Bucket *i* holds values whose bit length is *i*, i.e. the range
    ``[2**(i-1), 2**i - 1]`` (bucket 0 holds exactly the value 0).  The
    estimator walks buckets in order to the one containing the target
    rank and interpolates linearly inside it, clamped to the exact
    min/max the histogram tracked — so single-bucket distributions
    report exact values and the p100 is always ``hist.max``.
    """
    if hist.count == 0:
        return 0.0
    rank = (pct / 100.0) * hist.count
    cumulative = 0
    for b in sorted(hist.buckets):
        n = hist.buckets[b]
        if cumulative + n >= rank:
            lo = 0 if b == 0 else 1 << (b - 1)
            hi = 0 if b == 0 else (1 << b) - 1
            frac = (rank - cumulative) / n
            est = lo + frac * (hi - lo)
            if hist.min is not None:
                est = max(est, float(hist.min))
            return min(est, float(hist.max))
        cumulative += n
    return float(hist.max)


def latency_summary(hist: Histogram) -> dict:
    """p50/p90/p99 + count/mean/max for one latency histogram."""
    out: dict = {"count": hist.count, "mean": round(hist.mean, 3),
                 "min": hist.min if hist.min is not None else 0,
                 "max": hist.max}
    for p in PERCENTILES:
        out[f"p{p}"] = round(histogram_percentile(hist, p), 3)
    return out


def jain_fairness(values: list[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²) ∈ (0, 1], 1 = equal shares.

    Defined as 1.0 for empty or all-zero allocations (nobody is being
    treated unfairly when nobody received anything).
    """
    xs = [float(v) for v in values]
    total = sum(xs)
    if not xs or total == 0:
        return 1.0
    return (total * total) / (len(xs) * sum(x * x for x in xs))


@dataclass
class TenantSlo:
    """Per-tenant outcome of one scenario run."""

    name: str
    kind: str
    tier: str
    #: requests the schedule issued for this tenant
    requests: int = 0
    #: requests that completed with a full response
    completed: int = 0
    #: connect() attempts refused (RST before establishment)
    refused: int = 0
    #: requests lost to connection resets mid-flight
    resets: int = 0
    #: connections the schedule aborted on purpose (churn)
    aborted: int = 0
    #: application payload bytes delivered to the tenant's clients
    goodput_bytes: int = 0
    #: per-request simulated latency (cycles submit→response)
    latency: Histogram = field(
        default_factory=lambda: Histogram("slo.latency"))
    #: READY→RUNNING scheduling delay of the tenant's task (cycles on the
    #: global clock), fed by the scheduler — the starvation SLO: a cold
    #: tenant's p99 here is how long it sat runnable while hotter
    #: tenants monopolized the CPU.
    sched_delay: Histogram = field(
        default_factory=lambda: Histogram("slo.sched_delay"))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "tier": self.tier,
            "requests": self.requests,
            "completed": self.completed,
            "refused": self.refused,
            "resets": self.resets,
            "aborted": self.aborted,
            "goodput_bytes": self.goodput_bytes,
            "latency_cycles": latency_summary(self.latency),
            "sched_delay_cycles": latency_summary(self.sched_delay),
        }


@dataclass
class SloReport:
    """Whole-run SLO rollup: per-tenant stats + kernel-wide accounting."""

    tenants: dict[str, TenantSlo]
    #: final simulated clock buckets (user, system, iowait)
    clock: tuple[int, int, int]
    #: stack-wide drop/RST counters (SocketLayer accounting)
    net: dict[str, int]
    #: monitor leak report: sockets accepted but never closed
    leaked_sockets: int = 0

    @property
    def goodput_total(self) -> int:
        return sum(t.goodput_bytes for t in self.tenants.values())

    @property
    def fairness(self) -> float:
        """Jain index over per-tenant goodput."""
        return jain_fairness(
            [t.goodput_bytes for t in self.tenants.values()])

    def to_dict(self) -> dict:
        return {
            "clock": {"user": self.clock[0], "system": self.clock[1],
                      "iowait": self.clock[2],
                      "total": sum(self.clock)},
            "net": dict(sorted(self.net.items())),
            "goodput_total_bytes": self.goodput_total,
            "fairness_jain": round(self.fairness, 6),
            "leaked_sockets": self.leaked_sockets,
            "tenants": {name: t.to_dict()
                        for name, t in sorted(self.tenants.items())},
        }

    def render(self) -> str:
        lines = ["== scenario SLO report =="]
        lines.append(f"  clock: user={self.clock[0]} system={self.clock[1]} "
                     f"iowait={self.clock[2]}")
        lines.append(f"  goodput={self.goodput_total}B "
                     f"fairness={self.fairness:.4f} "
                     f"leaked_sockets={self.leaked_sockets}")
        net = " ".join(f"{k}={v}" for k, v in sorted(self.net.items()))
        lines.append(f"  net: {net}")
        for name in sorted(self.tenants):
            t = self.tenants[name]
            s = latency_summary(t.latency)
            d = latency_summary(t.sched_delay)
            lines.append(
                f"  {name:<18} [{t.tier:>9}] req={t.requests:<5} "
                f"ok={t.completed:<5} refused={t.refused} resets={t.resets} "
                f"p50={s['p50']:.0f} p99={s['p99']:.0f} "
                f"sched_p99={d['p99']:.0f} "
                f"goodput={t.goodput_bytes}B")
        return "\n".join(lines)
