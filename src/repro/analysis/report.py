"""Paper-vs-measured comparison tables.

Every benchmark prints one of these so EXPERIMENTS.md can record, for each
table/figure in the paper, the published value next to what this
reproduction measures — and whether the *shape* (who wins, by roughly what
factor) holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def pct(new: float, old: float) -> float:
    """Percentage improvement of new over old (positive = new faster)."""
    return 0.0 if old == 0 else 100.0 * (old - new) / old


def fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024 or unit == "GB":
            return f"{n:,.1f} {unit}" if unit != "B" else f"{n:,.0f} B"
        n /= 1024
    return f"{n:,.1f} GB"


def fmt_seconds(s: float) -> str:
    if s >= 1:
        return f"{s:,.3f} s"
    if s >= 1e-3:
        return f"{s * 1e3:,.3f} ms"
    return f"{s * 1e6:,.1f} µs"


@dataclass
class Row:
    label: str
    paper: str
    measured: str
    holds: bool | None = None  # None = informational row

    @property
    def verdict(self) -> str:
        if self.holds is None:
            return ""
        return "OK" if self.holds else "MISS"


@dataclass
class ComparisonTable:
    """One experiment's paper-vs-measured table."""

    experiment: str
    title: str
    rows: list[Row] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, label: str, paper: str, measured: str,
            holds: bool | None = None) -> None:
        self.rows.append(Row(label, paper, measured, holds))

    def note(self, text: str) -> None:
        self.notes.append(text)

    @property
    def all_hold(self) -> bool:
        return all(r.holds for r in self.rows if r.holds is not None)

    def render(self) -> str:
        width_label = max([len(r.label) for r in self.rows] + [len("metric")])
        width_paper = max([len(r.paper) for r in self.rows] + [len("paper")])
        width_meas = max([len(r.measured) for r in self.rows] + [len("measured")])
        lines = [
            f"== {self.experiment}: {self.title} ==",
            f"{'metric':<{width_label}}  {'paper':<{width_paper}}  "
            f"{'measured':<{width_meas}}  shape",
        ]
        for r in self.rows:
            lines.append(
                f"{r.label:<{width_label}}  {r.paper:<{width_paper}}  "
                f"{r.measured:<{width_meas}}  {r.verdict}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print("\n" + self.render())


def verifier_report(report, *, optimize_report=None,
                    deinstrument_disabled: int = 0) -> str:
    """Render the load-time verifier section of an analysis report.

    ``report`` is a :class:`repro.safety.verifier.VerifierReport`
    (duck-typed).  When a KGCC :class:`OptimizeReport` is supplied, the
    section also attributes eliminated checks to their eliminating pass —
    statically proven by the verifier, removed by the classic static pass,
    CSE'd, or (via ``deinstrument_disabled``) disabled dynamically.
    """
    lines = [f"== load-time verifier: {report.filename} =="]
    hist = report.histogram()
    total_funcs = sum(hist.values()) or 1
    for verdict, count in hist.items():
        name = getattr(verdict, "name", str(verdict))
        lines.append(f"  {name:<12} {count:>4} function(s) "
                     f"({100.0 * count / total_funcs:.0f}%)")
    proven, unproven, violation = report.site_stats()
    sites = proven + unproven + violation
    if sites:
        lines.append(f"  check sites: {sites} total — {proven} proven "
                     f"({100.0 * proven / sites:.0f}%), {unproven} unproven, "
                     f"{violation} violations")
    else:
        lines.append("  check sites: none")
    for name in report.rejected():
        for reason in report.functions[name].reject_reasons():
            lines.append(f"  REJECT {name}: {reason}")
    lines.append(f"  load-time work: {report.total_nodes} AST nodes analyzed")
    if optimize_report is not None:
        lines.append("  checks eliminated by pass:")
        lines.append(f"    static (sizeof/const bounds): "
                     f"{optimize_report.checks_removed_static}")
        lines.append(f"    verifier (abstract interp):   "
                     f"{optimize_report.checks_removed_verified}")
        lines.append(f"    CSE:                          "
                     f"{optimize_report.checks_removed_cse}")
        if deinstrument_disabled:
            lines.append(f"    dynamic deinstrumentation:    "
                         f"{deinstrument_disabled}")
        lines.append(f"    remaining at run time:        "
                     f"{optimize_report.checks_after - deinstrument_disabled}")
    return "\n".join(lines)


def code_cache_report(cache) -> str:
    """Render the C-minus code-cache section of an analysis report.

    ``cache`` is a :class:`repro.cminus.compile.CodeCache` (duck-typed —
    anything with a ``stats()`` dict of hits/misses/invalidations/
    compiles/entries works).  Hit rate is hits over all lookups;
    invalidations count generation bumps observed at lookup time
    (hotpatch, (de)instrumentation, re-registration).
    """
    s = cache.stats()
    lookups = s["hits"] + s["misses"]
    lines = ["== c-minus code cache =="]
    if lookups:
        lines.append(f"  lookups: {lookups} — {s['hits']} hits "
                     f"({100.0 * s['hits'] / lookups:.0f}%), "
                     f"{s['misses']} misses")
    else:
        lines.append("  lookups: none")
    lines.append(f"  compiles: {s['compiles']}, invalidations: "
                 f"{s['invalidations']}, live entries: {s['entries']}")
    return "\n".join(lines)


def fault_injection_report(registry) -> str:
    """Render per-failpoint hit/injected/observed counters plus the tail of
    the deterministic injection trace — the report benchmarks print when
    they ran under an armed fault schedule (``REPRO_FAULT_SEED``)."""
    lines = ["== fault injection =="]
    stats = registry.stats()
    width = max([len(name) for name in stats] + [len("failpoint")])
    lines.append(f"{'failpoint':<{width}}  {'hits':>8}  {'injected':>8}  "
                 f"{'observed':>8}")
    any_traffic = False
    for name, (hits, injected, observed) in stats.items():
        if not hits:
            continue
        any_traffic = True
        lines.append(f"{name:<{width}}  {hits:>8}  {injected:>8}  {observed:>8}")
    if not any_traffic:
        lines.append("  (no failpoints armed)")
    tail = registry.trace[-10:]
    if tail:
        lines.append(f"  trace: {len(registry.trace)} decisions, last "
                     f"{len(tail)}:")
        for rec in tail:
            lines.append(f"    {rec}")
    return "\n".join(lines)


def lockdep_report(kernel) -> str:
    """Render the concurrency sanitizer's findings for one kernel.

    Summary table of lock classes (kind, irq-usage, hit counts) followed
    by every violation splat; "lockdep: disabled" when the kernel booted
    without a validator (no ``Kernel(lockdep=True)`` / ``REPRO_LOCKDEP``).
    """
    validator = getattr(kernel, "lockdep", None)
    if validator is None:
        return "lockdep: disabled"
    return validator.render()


def metrics_report(metrics, prefix: str = "") -> str:
    """Render the kernel-wide metrics registry (``kernel.metrics``).

    ``metrics`` is a :class:`repro.trace.metrics.MetricsRegistry`; an
    optional ``prefix`` filters to one subsystem's namespace
    (``"mmu."``, ``"fault."``, ``"lock."``, ...).
    """
    return metrics.render(prefix)


#: metric families the grouped report renders by default: the PR 7-9
#: namespaces that previously only existed as raw registry dumps.
DEFAULT_METRIC_FAMILIES = ("lockdep.", "sched.", "uring.")


def metric_families_report(metrics,
                           families: tuple[str, ...] = DEFAULT_METRIC_FAMILIES
                           ) -> str:
    """Render the registry grouped into subsystem families, expanding
    per-CPU counter shards.

    Where :func:`metrics_report` prints one flat value per metric, this
    report sections the namespace by family prefix and shows each
    :class:`~repro.trace.metrics.PercpuCounter` as its summed total
    *plus* the per-CPU shard split (``PercpuCounter.per_cpu()``) — on an
    SMP kernel, whether the switches happened on one CPU or four is the
    whole story.  Families with no registered metrics render as absent
    rather than failing, so the report is safe on any kernel.
    """
    from repro.trace.metrics import Histogram, PercpuCounter

    lines = ["== metric families =="]
    for family in families:
        rows = [name for name in metrics.names() if name.startswith(family)]
        lines.append(f"-- {family.rstrip('.')} --")
        if not rows:
            lines.append("  (none registered)")
            continue
        for name in rows:
            m = metrics.get(name)
            if isinstance(m, PercpuCounter):
                shards = m.per_cpu()
                split = " ".join(f"cpu{i}={v}" for i, v in enumerate(shards))
                lines.append(f"  {name:<40} {m.value} [{split}]")
            elif isinstance(m, Histogram):
                lines.append(f"  {name:<40} n={m.count} sum={m.sum} "
                             f"mean={m.mean:.1f} max={m.max}")
            else:
                value = m.value
                shown = f"{value:.3f}" if isinstance(value, float) \
                    and not float(value).is_integer() else f"{int(value)}"
                lines.append(f"  {name:<40} {shown}")
    return "\n".join(lines)


def prof_report(prof, top: int = 15) -> str:
    """Render one profiler's findings: hottest folded stacks, category
    sample shares, the latency-tracer histograms with their max-latency
    witnesses, and the per-syscall latency table.

    ``prof`` is a :class:`repro.trace.prof.Profiler` (enabled now or
    previously — disabled profilers keep their samples readable).
    """
    from repro.analysis.slo import latency_summary

    lines = [f"== profile: {prof.samples_taken} weighted samples "
             f"(period {prof.period} cyc) =="]
    if not prof.samples_taken:
        lines.append("  (no samples; was the profiler enabled?)")
        return "\n".join(lines)
    lines.append(f"  named-span fraction: {prof.named_fraction():.4f}")
    lines.append("  category shares:")
    for cat, share in sorted(prof.category_shares().items(),
                             key=lambda kv: -kv[1]):
        lines.append(f"    {cat:<12} {100.0 * share:6.2f}%")
    folded = prof.folded()
    total = sum(folded.values()) or 1
    lines.append(f"  hottest stacks (top {top}):")
    for stack, n in sorted(folded.items(), key=lambda kv: -kv[1])[:top]:
        lines.append(f"    {n:>7} ({100.0 * n / total:5.2f}%)  {stack}")

    def tracer_block(title: str, hist, witness) -> None:
        if not hist.count:
            lines.append(f"  {title}: (no events)")
            return
        s = latency_summary(hist)
        lines.append(f"  {title}: n={s['count']} p50={s['p50']:.0f} "
                     f"p99={s['p99']:.0f} max={s['max']}")
        stack = ";".join(witness.stack) or "(no open span)"
        lines.append(f"    worst: {witness.cycles} cyc on cpu{witness.cpu} "
                     f"task={witness.task} at {stack}")

    tracer_block("wakeup latency", prof.wakeup_delay, prof.wakeup_max)
    tracer_block("irqsoff", prof.irqsoff, prof.irqsoff_max)
    tracer_block("preemptoff", prof.preemptoff, prof.preemptoff_max)
    if prof.syscall_lat:
        lines.append("  syscall latency (cycles):")
        for name in sorted(prof.syscall_lat,
                           key=lambda n: -prof.syscall_lat[n].sum):
            h = prof.syscall_lat[name]
            s = latency_summary(h)
            lines.append(f"    {name:<12} nr={prof.syscall_nrs[name]:<4} "
                         f"n={s['count']:<6} p50={s['p50']:.0f} "
                         f"p99={s['p99']:.0f} max={s['max']}")
    return "\n".join(lines)
