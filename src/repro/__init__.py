"""repro — reproduction of *Efficient and Safe Execution of User-Level Code
in the Kernel* (Zadok, Callanan, Rai, Sivathanu, Traeger; NSF NGS Workshop /
IPDPS 2005).

The package has four layers:

* :mod:`repro.kernel` — a simulated Linux-2.6-style kernel with an explicit
  cycle cost model (the substrate everything runs on);
* :mod:`repro.cminus` — a C-subset toolchain (lexer/parser/interpreter) used
  by both Cosy-GCC and KGCC;
* :mod:`repro.core` — the paper's performance systems: syscall consolidation
  (§2.2) and Cosy compound syscalls (§2.3);
* :mod:`repro.safety` — the paper's safety systems: Kefence (§3.2), the
  event-monitoring framework (§3.3), and KGCC (§3.4).

Workload generators used by the evaluation live in :mod:`repro.workloads`.
"""

__version__ = "1.0.0"

from repro.kernel import Kernel, CostModel, Mode, Timings

__all__ = ["Kernel", "CostModel", "Mode", "Timings", "__version__"]
