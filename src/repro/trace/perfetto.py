"""Chrome trace-event / Perfetto JSON export of a traced window.

The output follows the Trace Event Format (the JSON flavour Perfetto and
``chrome://tracing`` both load): one ``B``/``E``/``X``/``i`` record per
ring event, timestamps converted from simulated cycles to microseconds at
the clock's configured frequency.  Each simulated CPU renders as one
track (pid 0 / tid *c*, named "cpu*c*"): events carry the CPU index the
tracer stamped them with, and span nesting is strict per track because
each CPU keeps its own span stack.  Task identity travels in ``args``.
Single-CPU kernels produce exactly the pre-SMP document — one "cpu0"
track, byte for byte.

If the drop-oldest ring overflowed, the oldest events are gone: the
export notes how many in ``otherData.dropped_oldest_events`` and the
earliest spans may show unmatched ``E`` records (viewers tolerate this).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.trace.tracepoints import (PH_BEGIN, PH_COMPLETE, PH_COUNTER,
                                     PH_END, PH_INSTANT, Tracer)

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.prof import Profiler


def chrome_trace(tracer: Tracer, *, process_name: str = "repro-kernel",
                 profiler: "Profiler | None" = None) -> dict:
    """Build the Trace Event Format document for one traced window.

    With a ``profiler`` the document additionally carries the sampling
    profiler's view of the same window: one ``prof:sample`` instant per
    retained sample (on the sampled CPU's track, stack and weight in
    ``args``) and the allowlisted counter tracks (runqueue depth, CQ
    backlog, TLB misses) as ``C`` time-series events — so a Perfetto
    view shows *load*, not just spans.
    """
    hz = tracer.clock.hz
    us_per_cycle = 1e6 / hz

    def us(cycles: int) -> float:
        return round(cycles * us_per_cycle, 4)

    events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
         "args": {"name": process_name}},
    ]
    for c in range(getattr(tracer, "ncpus", 1)):
        events.append({"ph": "M", "name": "thread_name", "pid": 0, "tid": c,
                       "args": {"name": f"cpu{c}"}})
    for ph, name, cat, ts, dur, args, cpu in tracer.events():
        ev: dict = {"ph": ph, "name": name, "cat": cat, "ts": us(ts),
                    "pid": 0, "tid": cpu}
        if ph == PH_COMPLETE:
            ev["dur"] = us(dur or 0)
        elif ph == PH_INSTANT:
            ev["s"] = "t"   # thread-scoped instant
        elif ph == PH_COUNTER:
            pass            # args already carries {"value": v}
        elif ph not in (PH_BEGIN, PH_END):  # pragma: no cover - future phases
            continue
        if args:
            ev["args"] = dict(args)
        events.append(ev)
    if profiler is not None:
        from repro.trace.prof import S_CAT, S_CPU, S_STACK, S_TASK, S_TS, \
            S_WEIGHT
        for s in profiler.samples():
            events.append({
                "ph": "i", "name": "prof:sample", "cat": "prof",
                "ts": us(s[S_TS]), "pid": 0, "tid": s[S_CPU], "s": "t",
                "args": {"task": s[S_TASK], "stack": ";".join(s[S_STACK]),
                         "category": s[S_CAT], "weight": s[S_WEIGHT]},
            })
        for ts, cpu, name, value in profiler.counter_samples():
            events.append({
                "ph": "C", "name": name, "cat": "counter", "ts": us(ts),
                "pid": 0, "tid": cpu, "args": {"value": value},
            })
    ring = tracer.ring
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "simulated_hz": hz,
            "window_start_cycles": tracer.window_start,
            "events_emitted": ring.total_pushed,
            "dropped_oldest_events": ring.dropped_oldest,
        },
    }
    if profiler is not None:
        doc["otherData"]["prof_samples"] = profiler.samples_taken
        doc["otherData"]["prof_period_cycles"] = profiler.period
    return doc


def write_chrome_trace(tracer: Tracer, path: str | Path, *,
                       process_name: str = "repro-kernel",
                       profiler: "Profiler | None" = None) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = chrome_trace(tracer, process_name=process_name, profiler=profiler)
    path.write_text(json.dumps(doc) + "\n")
    return path
