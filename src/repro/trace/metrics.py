"""The kernel-wide metrics registry: named counters, gauges, histograms.

Before this module every subsystem kept its own ad-hoc counters (MMU TLB
hits, ``CodeCache`` hits/misses, epoll waits, failpoint hit counts, lock
profiles) with no shared namespace or report.  :class:`MetricsRegistry`
is the one place they all register, Prometheus-style:

* a :class:`Counter` is a monotonically increasing integer a subsystem
  increments directly (``kernel.metrics.counter("epoll.waits").inc()``);
* a :class:`Gauge` is either a stored value or a *callback* over state the
  subsystem already keeps — the collector pattern used for hot-path
  counters (the MMU's TLB counters stay plain ``int`` attributes so the
  hottest loop in the simulator is untouched; the gauge reads them at
  report time);
* a :class:`Histogram` buckets observations by power of two (bucket *i*
  holds values with bit length *i*), enough to see a hold-time or
  span-length distribution without storing samples.

Metrics carry no simulated cost: registering or bumping one never touches
the :class:`~repro.kernel.clock.Clock`.
"""

from __future__ import annotations

from typing import Callable, Iterator


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value})"


class PercpuCounter:
    """A counter sharded per CPU with a summed classic view.

    Hot-path subsystems (scheduler switch counts, NIC per-packet counts)
    increment the *executing CPU's* shard — no shared object is written
    from two CPUs — and readers see the summed total through ``value``,
    indistinguishable from a plain :class:`Counter`.  On a single-CPU
    kernel there is exactly one shard.

    The shard index comes from the clock's :attr:`~repro.kernel.clock.
    Clock.cpu`; a registry built without a clock pins everything to
    shard 0.
    """

    __slots__ = ("name", "help", "shards", "_clock")

    def __init__(self, name: str, help: str = "", clock=None, cpus: int = 1):
        self.name = name
        self.help = help
        self.shards = [0] * max(int(cpus), 1)
        self._clock = clock

    def inc(self, n: int = 1) -> None:
        clock = self._clock
        self.shards[clock.cpu if clock is not None else 0] += n

    @property
    def value(self) -> int:
        return sum(self.shards)

    def per_cpu(self) -> list[int]:
        """Copy of the per-CPU shard values."""
        return list(self.shards)

    def reset(self) -> None:
        self.shards = [0] * len(self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PercpuCounter({self.name!r}, {self.value}, " \
               f"shards={len(self.shards)})"


class Gauge:
    """A point-in-time value: either stored (``set``) or computed by a
    callback over state the owning subsystem already maintains."""

    __slots__ = ("name", "help", "fn", "_value")

    def __init__(self, name: str, fn: Callable[[], float] | None = None,
                 help: str = ""):
        self.name = name
        self.help = help
        self.fn = fn
        self._value: float = 0

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value = value

    @property
    def value(self) -> float:
        return self.fn() if self.fn is not None else self._value

    def reset(self) -> None:
        if self.fn is None:
            self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Power-of-two bucketed distribution (bucket i: bit_length == i)."""

    __slots__ = ("name", "help", "count", "sum", "min", "max", "buckets")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.count = 0
        self.sum = 0
        self.min: int | None = None
        self.max = 0
        self.buckets: dict[int, int] = {}

    def observe(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative observation: {value}")
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = max(self.max, value)
        b = int(value).bit_length()
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = 0
        self.buckets.clear()

    def snapshot(self) -> dict:
        return {"count": self.count, "sum": self.sum, "min": self.min,
                "max": self.max, "mean": self.mean,
                "buckets": dict(sorted(self.buckets.items()))}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.1f})"


Metric = Counter | PercpuCounter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry of named metrics (one per kernel).

    Pass the kernel's clock to size :class:`PercpuCounter` shards to the
    machine's CPU count and route increments to the executing CPU; with
    no clock every per-CPU counter has a single shard.
    """

    def __init__(self, clock=None) -> None:
        self._metrics: dict[str, Metric] = {}
        self._clock = clock

    def _get(self, name: str, cls, **kwargs):
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = cls(name, **kwargs)
        elif not isinstance(m, cls):
            raise ValueError(
                f"metric {name!r} already registered as {type(m).__name__}")
        return m

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def percpu_counter(self, name: str, help: str = "") -> PercpuCounter:
        clock = self._clock
        return self._get(name, PercpuCounter, help=help, clock=clock,
                         cpus=getattr(clock, "cpus", 1))

    def gauge(self, name: str, fn: Callable[[], float] | None = None,
              help: str = "") -> Gauge:
        g = self._get(name, Gauge, fn=fn, help=help)
        if fn is not None:
            g.fn = fn   # re-registration rebinds: the newest object wins
        return g

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(name, Histogram, help=help)

    # ------------------------------------------------------------- queries

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, object]:
        """{name: value} (histograms expand to their summary dict)."""
        out: dict[str, object] = {}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            out[name] = m.snapshot() if isinstance(m, Histogram) else m.value
        return out

    def reset(self) -> None:
        """Zero every stored metric (callback gauges are views, untouched)."""
        for m in self._metrics.values():
            m.reset()

    def render(self, prefix: str = "") -> str:
        """Text report of every metric (optionally filtered by prefix)."""
        lines = ["== metrics =="]
        for name in sorted(self._metrics):
            if prefix and not name.startswith(prefix):
                continue
            m = self._metrics[name]
            if isinstance(m, Histogram):
                lines.append(
                    f"  {name:<40} n={m.count} sum={m.sum} "
                    f"mean={m.mean:.1f} max={m.max}")
            else:
                value = m.value
                shown = f"{value:.3f}" if isinstance(value, float) \
                    and not float(value).is_integer() else f"{int(value)}"
                lines.append(f"  {name:<40} {shown}")
        if len(lines) == 1:
            lines.append("  (no metrics registered)")
        return "\n".join(lines)
