"""Sampling profiler and ftrace-family latency tracers (``repro.trace.prof``).

This is the simulator's *perf*: where PR 5's span attribution answers
"which subsystem", the profiler answers "which code path, on which CPU,
under which tenant" — and adds the ftrace latency-tracer family on top.

Three parts:

* **Sampling profiler.**  A virtual timer fires every ``period`` simulated
  cycles on every CPU.  The trigger is the clock itself: every
  :meth:`~repro.kernel.clock.Clock.charge` checks whether the executing
  CPU's local clock crossed its next sample deadline, and if so captures
  one *weighted* sample — (cpu, timestamp, task, tenant, tracepoint span
  stack, leaf category, C-minus function, weight) — into a bounded
  per-CPU ring.  The weight is the number of period boundaries the charge
  crossed, so one huge quantum (a 21M-cycle disk seek) lands as one
  sample worth its full cycle share instead of a 400-iteration loop:
  sample shares are *exactly* proportional to self-cycles, quantized at
  one period.

* **Latency tracers.**  A wakeup tracer (READY→RUNNING delay per task,
  power-of-two histogram, max-latency witness = the span stack at the
  worst case), an irqsoff max tracer over the per-CPU IRQ-disable depths,
  a preemptoff tracer over the gaps between scheduler preemption points,
  and per-syscall latency histograms observed at dispatch.

* **Exports.**  Folded-stack output (``folded()``/``write_folded``) feeds
  :mod:`repro.trace.flamegraph`; samples and an allowlist of counter
  tracks (runqueue depth, CQ backlog, TLB misses) ride along in the
  Perfetto export (:func:`repro.trace.perfetto.chrome_trace`).

The hard constraint, inherited from the tracer: **zero cost-model
impact**.  Nothing here ever charges the simulated clock — every hook
only *reads* it — so the same workload profiled and unprofiled lands on
bit-identical user/system/iowait counts (``tests/trace/test_prof.py``;
the CI ``prof`` job re-runs the kernel suites under ``REPRO_PROF=1``).

Charge-time samples see the *innermost open span*, which is exactly that
span's self time — but retroactive ``complete`` events (a TLB miss, one
``syscall:boundary`` quantum, a disk request) are not on the stack while
their cost is charged.  The tracer therefore notifies the profiler on
every complete, and the profiler relabels the tail samples that landed
inside the completed quantum (complete ranges on one CPU never overlap:
each covers cycles charged immediately before it).  Without this fixup
roughly half the cycles of a syscall-heavy workload would be
misattributed to the enclosing syscall span.
"""

from __future__ import annotations

import os
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.trace.metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

#: environment knob: boot kernels with profiling (and tracing) enabled.
ENV_PROF = "REPRO_PROF"
#: environment knob: sample period in simulated cycles.
ENV_PROF_PERIOD = "REPRO_PROF_PERIOD"

#: default sample period (cycles): ~34k samples/simulated-second at the
#: paper's 1.7 GHz, fine enough to split a 1200-cycle syscall trap share.
DEFAULT_PERIOD = 50_000

#: samples kept per CPU (drop-oldest) and counter-track points kept total.
DEFAULT_CAPACITY = 1 << 14
COUNTER_CAPACITY = 1 << 15

#: sample record indices (records are lists so completes can relabel them)
S_CPU, S_TS, S_PID, S_TASK, S_TENANT, S_STACK, S_CAT, S_CMINUS, S_WEIGHT = \
    range(9)

#: folded-stack frame used for samples taken outside any span
UNTRACED_FRAME = "(untraced)"


def resolve_period(period: int | None = None) -> int:
    """Explicit argument wins, then ``REPRO_PROF_PERIOD``, then default."""
    if period is not None:
        p = int(period)
    else:
        p = int(os.environ.get(ENV_PROF_PERIOD) or DEFAULT_PERIOD)
    if p <= 0:
        raise ValueError(f"sample period must be positive, got {p}")
    return p


class MaxWitness:
    """Worst case seen by one latency tracer: the max plus its context."""

    __slots__ = ("cycles", "ts", "cpu", "pid", "task", "stack")

    def __init__(self) -> None:
        self.cycles = -1
        self.ts = 0
        self.cpu = 0
        self.pid: int | None = None
        self.task = ""
        self.stack: tuple = ()

    def offer(self, cycles: int, ts: int, cpu: int, pid: int | None,
              task: str, stack: tuple) -> None:
        if cycles <= self.cycles:
            return
        self.cycles = cycles
        self.ts = ts
        self.cpu = cpu
        self.pid = pid
        self.task = task
        self.stack = stack

    def to_dict(self) -> dict:
        return {"cycles": max(self.cycles, 0), "ts": self.ts,
                "cpu": self.cpu, "pid": self.pid, "task": self.task,
                "stack": list(self.stack)}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MaxWitness({self.cycles} cyc @{self.ts} cpu{self.cpu})"


class Profiler:
    """Per-kernel sampling profiler + latency tracers.

    Built for every kernel but dormant until :meth:`enable` — a disabled
    profiler costs nothing on the charge path (the clock's sampler slot
    stays ``None``) and one ``getattr``-and-``None``-check at the tracer
    hook sites.
    """

    def __init__(self, kernel: "Kernel", period: int | None = None,
                 capacity: int = DEFAULT_CAPACITY):
        self.kernel = kernel
        self.clock = kernel.clock
        self.ncpus = kernel.ncpus
        self.period = resolve_period(period)
        self.capacity = capacity
        self.enabled = False
        #: per-CPU sample rings, drop-oldest
        self.rings: list[deque] = [deque(maxlen=capacity)
                                   for _ in range(self.ncpus)]
        self._deadlines = [0] * self.ncpus
        #: weighted sample total (== periods elapsed) and ring pushes
        self.samples_taken = 0
        self.sample_events = 0
        #: counter-track providers: (name, zero-cost read callback)
        self._counters: list[tuple[str, Callable[[], int]]] = []
        self._counter_samples: deque = deque(maxlen=COUNTER_CAPACITY)
        # -- latency tracers -------------------------------------------
        self.wakeup_delay = Histogram(
            "prof.wakeup_delay", help="READY->RUNNING delay (cycles)")
        self.wakeup_max = MaxWitness()
        self.irqsoff = Histogram(
            "prof.irqsoff", help="IRQ-disabled section length (cycles)")
        self.irqsoff_max = MaxWitness()
        self._irq_off_since: list[int | None] = [None] * self.ncpus
        self.preemptoff = Histogram(
            "prof.preemptoff", help="gap between preemption points (cycles)")
        self.preemptoff_max = MaxWitness()
        self._last_preempt_point: list[int | None] = [None] * self.ncpus
        #: per-syscall latency histograms, keyed by syscall name
        self.syscall_lat: dict[str, Histogram] = {}
        self.syscall_nrs: dict[str, int] = {}

    # ------------------------------------------------------------ lifecycle

    def enable(self) -> None:
        """Arm the profiler.  The tracer must already be enabled (the
        span stacks are the sample context); :class:`Kernel` guarantees
        this when booting with ``profile=True`` / ``REPRO_PROF=1``."""
        clock = self.clock
        for c in range(self.ncpus):
            self._deadlines[c] = clock.local_now(c) + self.period
            self._last_preempt_point[c] = None
            self._irq_off_since[c] = None
        self.enabled = True
        clock._sampler = self
        self.kernel.trace._prof = self

    def disable(self) -> None:
        """Disarm; collected samples and histograms stay readable."""
        self.enabled = False
        if self.clock._sampler is self:
            self.clock._sampler = None
        if self.kernel.trace._prof is self:
            self.kernel.trace._prof = None

    # ------------------------------------------------------------- sampling

    def tick(self) -> None:
        """Charge-path hook: called by the clock after every charge.
        Reads the clock, never writes it."""
        clock = self.clock
        cpu = clock.cpu
        now = clock.local_now(cpu)
        deadline = self._deadlines[cpu]
        if now < deadline:
            return
        weight = 1 + (now - deadline) // self.period
        self._deadlines[cpu] = deadline + weight * self.period
        self._sample(cpu, now, weight)

    def _sample(self, cpu: int, now: int, weight: int) -> None:
        kernel = self.kernel
        task = kernel.sched.cpus[cpu].current
        frames = kernel.trace._stacks[cpu]
        # frame 0 is the implicit per-CPU root; user spans start at 1
        names = tuple(f[0] for f in frames[1:])
        cat = frames[-1][1] if len(frames) > 1 else None
        cminus = None
        for f in reversed(frames):
            if f[0].startswith("cminus:"):
                cminus = f[0][7:]
                break
        self.rings[cpu].append([
            cpu, now,
            task.pid if task is not None else None,
            task.name if task is not None else "(idle)",
            getattr(task, "tenant", "") if task is not None else "",
            names, cat, cminus, weight,
        ])
        self.sample_events += 1
        self.samples_taken += weight
        for name, fn in self._counters:
            self._counter_samples.append((now, cpu, name, int(fn())))

    def on_complete(self, cpu: int, name: str, cat: str, now: int,
                    dur: int) -> None:
        """Tracer hook: a retroactive span ``[now-dur, now]`` was just
        recorded on ``cpu``.  Relabel the tail samples that landed inside
        it — they were attributed to the enclosing open span at charge
        time, but the cycles belong to the completed quantum."""
        if dur <= 0:
            return
        t0 = now - dur
        for s in reversed(self.rings[cpu]):
            if s[S_TS] <= t0:
                break
            s[S_STACK] = s[S_STACK] + (name,)
            s[S_CAT] = cat

    # ------------------------------------------------------- counter tracks

    def add_counter(self, name: str, fn: Callable[[], int]) -> None:
        """Register a counter track sampled at every profile tick.  The
        callback must be a zero-cost read over existing state."""
        self._counters.append((name, fn))

    def counter_samples(self) -> list[tuple[int, int, str, int]]:
        """Collected counter points, oldest first: (ts, cpu, name, value)."""
        return list(self._counter_samples)

    # --------------------------------------------------- latency tracer hooks

    def _stack_at(self, cpu: int) -> tuple:
        return tuple(f[0] for f in self.kernel.trace._stacks[cpu][1:])

    def sched_wakeup(self, task, delay: int) -> None:
        """Scheduler hook: ``task`` just went READY→RUNNING after
        ``delay`` cycles on the runqueue."""
        self.wakeup_delay.observe(delay)
        cpu = self.clock.cpu
        self.wakeup_max.offer(delay, self.clock.local_now(cpu), cpu,
                              task.pid, task.name, self._stack_at(cpu))

    def irq_disabled(self, cpu: int, now: int) -> None:
        """IRQ hook: disable depth went 0→1 on ``cpu``."""
        self._irq_off_since[cpu] = now

    def irq_enabled(self, cpu: int, now: int) -> None:
        """IRQ hook: disable depth went 1→0 on ``cpu``."""
        start = self._irq_off_since[cpu]
        if start is None:
            return
        self._irq_off_since[cpu] = None
        dur = now - start
        self.irqsoff.observe(dur)
        task = self.kernel.sched.cpus[cpu].current
        self.irqsoff_max.offer(
            dur, now, cpu,
            task.pid if task is not None else None,
            task.name if task is not None else "(idle)",
            self._stack_at(cpu))

    def preempt_point(self, cpu: int, now: int) -> None:
        """Scheduler hook: a preemption opportunity on ``cpu``.  The gap
        since the previous one is how long preemption was impossible."""
        last = self._last_preempt_point[cpu]
        self._last_preempt_point[cpu] = now
        if last is None:
            return
        dur = now - last
        self.preemptoff.observe(dur)
        task = self.kernel.sched.cpus[cpu].current
        self.preemptoff_max.offer(
            dur, now, cpu,
            task.pid if task is not None else None,
            task.name if task is not None else "(idle)",
            self._stack_at(cpu))

    def observe_syscall(self, name: str, nr: int, cycles: int) -> None:
        """Dispatch hook: one syscall took ``cycles`` (trap to return)."""
        h = self.syscall_lat.get(name)
        if h is None:
            h = self.syscall_lat[name] = Histogram(f"prof.syscall.{name}")
            self.syscall_nrs[name] = nr
        h.observe(cycles)

    # -------------------------------------------------------------- queries

    def samples(self) -> list[list]:
        """Every retained sample, oldest first, all CPUs interleaved by
        ring order (sort by ``S_TS`` for a strict timeline)."""
        out: list[list] = []
        for ring in self.rings:
            out.extend(ring)
        return out

    def folded(self, *, by_task: bool = True) -> dict[str, int]:
        """Folded-stack form: ``frame;frame;... -> weighted samples``.
        The first frame is the task name (flamegraph convention) unless
        ``by_task=False``; sample-time stacks with no open span fold to
        ``(untraced)``."""
        out: dict[str, int] = {}
        for s in self.samples():
            frames = list(s[S_STACK]) or [UNTRACED_FRAME]
            if by_task:
                frames.insert(0, s[S_TASK])
            key = ";".join(frames)
            out[key] = out.get(key, 0) + s[S_WEIGHT]
        return out

    def write_folded(self, path) -> None:
        """Serialize :meth:`folded` in the classic one-line-per-stack
        format every flamegraph toolchain reads."""
        from pathlib import Path
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        lines = [f"{stack} {n}" for stack, n in
                 sorted(self.folded().items())]
        p.write_text("\n".join(lines) + "\n")

    def named_fraction(self) -> float:
        """Share of weighted samples attributed to at least one named
        span (the acceptance gate: ≥0.95 on a traced serving bench)."""
        total = named = 0
        for s in self.samples():
            total += s[S_WEIGHT]
            if s[S_STACK]:
                named += s[S_WEIGHT]
        return named / total if total else 0.0

    def category_shares(self) -> dict[str, float]:
        """Weighted sample share per leaf category; comparable to
        ``Attribution.by_category`` self-cycle shares on the same run."""
        counts: dict[str, int] = {}
        total = 0
        for s in self.samples():
            cat = s[S_CAT] if s[S_CAT] is not None else UNTRACED_FRAME
            counts[cat] = counts.get(cat, 0) + s[S_WEIGHT]
            total += s[S_WEIGHT]
        if not total:
            return {}
        return {cat: n / total for cat, n in sorted(counts.items())}

    def to_dict(self) -> dict:
        """JSON-ready summary (benchmarks embed this next to attribution)."""
        from repro.analysis.slo import latency_summary
        return {
            "period_cycles": self.period,
            "samples": self.samples_taken,
            "sample_events": self.sample_events,
            "named_fraction": round(self.named_fraction(), 6),
            "category_shares": {k: round(v, 6) for k, v in
                                self.category_shares().items()},
            "wakeup_delay": latency_summary(self.wakeup_delay),
            "wakeup_max": self.wakeup_max.to_dict(),
            "irqsoff": latency_summary(self.irqsoff),
            "irqsoff_max": self.irqsoff_max.to_dict(),
            "preemptoff": latency_summary(self.preemptoff),
            "preemptoff_max": self.preemptoff_max.to_dict(),
            "syscalls": {
                name: dict(latency_summary(h), nr=self.syscall_nrs[name])
                for name, h in sorted(self.syscall_lat.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Profiler(period={self.period}, enabled={self.enabled}, "
                f"samples={self.samples_taken})")
