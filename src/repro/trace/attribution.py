"""Hierarchical cycle attribution: where did every simulated cycle go?

The tracer maintains a span stack; when a span ends, its *total* cycles
(end − begin) and *self* cycles (total minus the totals of its direct
children) are accumulated here, keyed by span name and grouped by
category (the subsystem).  Because every cycle of the traced window falls
either inside some span's self time or outside all spans (``untraced``),
the attribution is a complete decomposition::

    sum(self_cycles over all spans) + untraced_cycles == window_cycles
                                                      == Δ(user+system+iowait)

which is asserted by ``tests/trace/`` and the CI trace job.  Reports are
diffable: :meth:`Attribution.diff` explains *why* one run was faster than
another, span by span.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SpanStat:
    """Accumulated cycles for one span name."""

    category: str
    count: int = 0
    total_cycles: int = 0
    self_cycles: int = 0


class Attribution:
    """A complete decomposition of one traced window's elapsed cycles."""

    def __init__(self, window_cycles: int, untraced_cycles: int,
                 spans: dict[str, SpanStat]):
        self.window_cycles = window_cycles
        self.untraced_cycles = untraced_cycles
        self.spans = spans

    # ------------------------------------------------------------ queries

    @property
    def attributed_cycles(self) -> int:
        return sum(s.self_cycles for s in self.spans.values())

    @property
    def complete(self) -> bool:
        """True iff self cycles + untraced cycles cover the window exactly."""
        return self.attributed_cycles + self.untraced_cycles \
            == self.window_cycles

    def by_category(self) -> dict[str, int]:
        """Self cycles per subsystem, plus the untraced residual."""
        out: dict[str, int] = {}
        for s in self.spans.values():
            out[s.category] = out.get(s.category, 0) + s.self_cycles
        if self.untraced_cycles:
            out["(untraced)"] = self.untraced_cycles
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def total_of(self, name: str) -> int:
        s = self.spans.get(name)
        return s.total_cycles if s is not None else 0

    def self_of(self, name: str) -> int:
        s = self.spans.get(name)
        return s.self_cycles if s is not None else 0

    def category_self(self, category: str) -> int:
        return sum(s.self_cycles for s in self.spans.values()
                   if s.category == category)

    def category_total(self, category: str) -> int:
        return sum(s.total_cycles for s in self.spans.values()
                   if s.category == category)

    # ---------------------------------------------------------- reporting

    def to_dict(self) -> dict:
        """JSON-ready form (the BENCH_*.json attribution section)."""
        return {
            "window_cycles": self.window_cycles,
            "untraced_cycles": self.untraced_cycles,
            "complete": self.complete,
            "self_cycles_by_category": self.by_category(),
            "spans": {
                name: {"category": s.category, "count": s.count,
                       "total_cycles": s.total_cycles,
                       "self_cycles": s.self_cycles}
                for name, s in sorted(self.spans.items(),
                                      key=lambda kv: -kv[1].self_cycles)
            },
        }

    def render(self, top: int = 30) -> str:
        """Two-level text report: per subsystem, then hottest spans."""
        lines = [f"== cycle attribution: {self.window_cycles:,} cycles =="]
        window = self.window_cycles or 1
        lines.append("  by subsystem (self cycles):")
        for cat, cycles in self.by_category().items():
            lines.append(f"    {cat:<12} {cycles:>14,}  "
                         f"({100.0 * cycles / window:5.1f}%)")
        ranked = sorted(self.spans.items(),
                        key=lambda kv: -kv[1].self_cycles)[:top]
        if ranked:
            lines.append("  hottest spans (self / total / count):")
            for name, s in ranked:
                lines.append(
                    f"    {name:<28} {s.self_cycles:>14,} / "
                    f"{s.total_cycles:>14,} / {s.count:>8,}")
        check = "OK" if self.complete else "INCOMPLETE"
        lines.append(f"  coverage: attributed {self.attributed_cycles:,} + "
                     f"untraced {self.untraced_cycles:,} "
                     f"= window {self.window_cycles:,} [{check}]")
        return "\n".join(lines)

    # --------------------------------------------------------------- diff

    def diff(self, baseline: "Attribution") -> dict[str, dict[str, int]]:
        """Per-span deltas of self/total/count vs. ``baseline``
        (positive = this run spent more).  Includes spans seen in either
        run, plus the window/untraced residual under ``"(window)"``."""
        out: dict[str, dict[str, int]] = {}
        for name in sorted(set(self.spans) | set(baseline.spans)):
            a, b = self.spans.get(name), baseline.spans.get(name)
            sa = a or SpanStat(b.category if b else "?")
            sb = b or SpanStat(sa.category)
            delta = {"self_cycles": sa.self_cycles - sb.self_cycles,
                     "total_cycles": sa.total_cycles - sb.total_cycles,
                     "count": sa.count - sb.count}
            if any(delta.values()):
                out[name] = delta
        out["(window)"] = {
            "self_cycles": self.untraced_cycles - baseline.untraced_cycles,
            "total_cycles": self.window_cycles - baseline.window_cycles,
            "count": 0}
        return out


def render_diff(diff: dict[str, dict[str, int]], top: int = 20) -> str:
    """Text table for :meth:`Attribution.diff` output, largest |Δself| first."""
    lines = ["== cycle attribution diff (this − baseline) =="]
    window = diff.get("(window)")
    if window is not None:
        lines.append(f"  window: {window['total_cycles']:+,} cycles, "
                     f"untraced: {window['self_cycles']:+,}")
    ranked = sorted(((k, v) for k, v in diff.items() if k != "(window)"),
                    key=lambda kv: -abs(kv[1]["self_cycles"]))[:top]
    for name, d in ranked:
        lines.append(f"  {name:<28} self {d['self_cycles']:+14,}  "
                     f"total {d['total_cycles']:+14,}  "
                     f"count {d['count']:+8,}")
    if not ranked:
        lines.append("  (no per-span differences)")
    return "\n".join(lines)
