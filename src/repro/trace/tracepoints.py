"""Kernel-wide static tracepoints with begin/end spans on a shared timeline.

This is the simulator's ftrace: subsystems declare *tracepoints* at fixed
sites (syscall entry/exit, context switches, page faults, disk requests,
NIC hardirq/softirq, Cosy compound elements, C-minus engine calls, syslog
lines) and, when tracing is enabled, each emits events stamped with the
executing CPU's local clock into a bounded drop-oldest ring buffer.

Three event shapes:

* **spans** — ``begin(name, cat)`` / ``end()`` bracket work whose duration
  is not known up front (a syscall handler, a softirq drain).  Spans nest
  on a stack; attribution splits each span's cycles into *self* and
  *children*.
* **complete events** — ``complete(name, cat, dur)`` records a span
  retroactively when the whole cost was charged as one quantum (a TLB
  miss, a disk request, a context switch): the span covers the ``dur``
  cycles ending *now*.
* **instants** — ``instant(name, cat)`` marks a point (a wakeup, a syslog
  line, a fault injection decision).

SMP (docs/SMP.md): the tracer keeps one span stack, stat table, and
window per CPU.  Emitters stamp events with ``Clock.local_now()`` on the
executing CPU and tag each ring entry with that CPU index, so the
Perfetto export renders one track per CPU.  :meth:`attribution` with no
argument *merges* the per-CPU windows — per-CPU windows sum to the
global ``Δ Clock.now`` because every charge lands on exactly one CPU's
local clock — so the invariant ``Σ self + untraced == window`` holds
both per CPU and merged.  On a single-CPU kernel all of this collapses
to the original single-timeline behavior, bit for bit.

Two invariants the whole design hangs off:

1. **Zero cost-model impact.**  The tracer only ever *reads* the clock;
   nothing here charges cycles, so the simulated clock is bit-identical
   with tracing on or off (asserted in ``tests/trace/``, and run-wide via
   ``REPRO_TRACE=1``).
2. **Near-zero overhead when disabled.**  Every emitter returns after a
   single attribute check; hot call sites additionally guard with
   ``if tracer.enabled:`` so argument construction is skipped too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.safety.monitor.ringbuf import LockFreeRingBuffer
from repro.trace.attribution import Attribution, SpanStat

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.clock import Clock

#: default ring capacity (events); must be a power of two.
DEFAULT_CAPACITY = 1 << 16

#: event phases, following the Chrome trace-event vocabulary.
PH_BEGIN, PH_END, PH_COMPLETE, PH_INSTANT = "B", "E", "X", "i"
#: counter-track phase: a (name, value) time-series point.
PH_COUNTER = "C"

#: one ring entry:
#: (phase, name, category, ts_cycles, dur_cycles|None, args|None, cpu)
TraceEvent = tuple


class Tracer:
    """The per-kernel tracepoint registry and span engine."""

    def __init__(self, clock: "Clock", capacity: int = DEFAULT_CAPACITY):
        self.clock = clock
        self.ncpus = getattr(clock, "cpus", 1)
        self.capacity = capacity
        #: the one flag every tracepoint checks; False ⇒ everything no-ops.
        self.enabled = False
        self.ring: LockFreeRingBuffer[TraceEvent] = LockFreeRingBuffer(
            capacity, policy="drop-oldest")
        # One timeline per CPU: frames are [name, cat, start, child].
        self._stacks: list[list[list]] = [[] for _ in range(self.ncpus)]
        self._statsv: list[dict[str, SpanStat]] = [
            {} for _ in range(self.ncpus)]
        self._t0s: list[int] = [0] * self.ncpus
        self._t_ends: list[int | None] = [None] * self.ncpus
        #: attached sampling profiler (repro.trace.prof); notified on
        #: every complete event so retroactive quanta relabel the samples
        #: that landed inside them.  None = no profiler armed.
        self._prof = None

    # ------------------------------------------------------------ lifecycle

    def enable(self) -> None:
        """Start (or restart) tracing: a fresh window opens *now* on every
        CPU (each window anchored at that CPU's local clock)."""
        self.enabled = True
        for c in range(self.ncpus):
            t0 = self.clock.local_now(c)
            self._t0s[c] = t0
            self._t_ends[c] = None
            self._stacks[c] = [["(cpu)", "root", t0, 0]]
            self._statsv[c] = {}
        self.ring = LockFreeRingBuffer(self.capacity, policy="drop-oldest")

    def disable(self) -> None:
        """Freeze every CPU's window; events and attribution stay readable."""
        if self.enabled:
            for c in range(self.ncpus):
                self._t_ends[c] = self.clock.local_now(c)
        self.enabled = False

    @property
    def window_start(self) -> int:
        """Window anchor of CPU 0 (the only CPU on pre-SMP kernels)."""
        return self._t0s[0]

    # ------------------------------------------------------------- emitters

    @staticmethod
    def _accum(name: str, cat: str, total: int, self_cycles: int,
               stats: dict[str, SpanStat]) -> None:
        s = stats.get(name)
        if s is None:
            s = stats[name] = SpanStat(cat)
        s.count += 1
        s.total_cycles += total
        s.self_cycles += self_cycles

    def begin(self, name: str, cat: str = "kernel", **args) -> None:
        """Open a span on the executing CPU; must be matched by
        :meth:`end` (spans nest per CPU)."""
        if not self.enabled:
            return
        cpu = self.clock.cpu
        now = self.clock.local_now()
        self._stacks[cpu].append([name, cat, now, 0])
        self.ring.try_push((PH_BEGIN, name, cat, now, None, args or None,
                            cpu))

    def end(self, **args) -> None:
        """Close the innermost open span on the executing CPU.  Unmatched
        ends (tracing enabled mid-span) are ignored rather than corrupting
        the stack."""
        if not self.enabled:
            return
        cpu = self.clock.cpu
        stack = self._stacks[cpu]
        if len(stack) <= 1:
            return
        name, cat, start, child = stack.pop()
        now = self.clock.local_now()
        total = now - start
        self._accum(name, cat, total, total - child, self._statsv[cpu])
        stack[-1][3] += total
        self.ring.try_push((PH_END, name, cat, now, None, args or None,
                            cpu))

    def complete(self, name: str, cat: str, dur: int, **args) -> None:
        """Record a span of ``dur`` cycles ending now (cost charged as one
        quantum, e.g. a TLB miss or a disk request)."""
        if not self.enabled:
            return
        cpu = self.clock.cpu
        now = self.clock.local_now()
        self._accum(name, cat, dur, dur, self._statsv[cpu])
        self._stacks[cpu][-1][3] += dur
        self.ring.try_push((PH_COMPLETE, name, cat, now - dur, dur,
                            args or None, cpu))
        prof = self._prof
        if prof is not None:
            prof.on_complete(cpu, name, cat, now, dur)

    def counter(self, name: str, value: int, cat: str = "counter") -> None:
        """Record one point of a counter track (Perfetto ``C`` event):
        the named time series takes ``value`` at the current local time."""
        if not self.enabled:
            return
        cpu = self.clock.cpu
        self.ring.try_push((PH_COUNTER, name, cat, self.clock.local_now(),
                            None, {"value": value}, cpu))

    def instant(self, name: str, cat: str = "kernel", **args) -> None:
        """Mark a point on the executing CPU's timeline."""
        if not self.enabled:
            return
        cpu = self.clock.cpu
        self.ring.try_push((PH_INSTANT, name, cat, self.clock.local_now(),
                            None, args or None, cpu))

    # ------------------------------------------------------------- queries

    @property
    def depth(self) -> int:
        """Open (user-visible) span depth on the executing CPU."""
        return max(len(self._stacks[self.clock.cpu]) - 1, 0)

    def events(self) -> list[TraceEvent]:
        """Drain-free snapshot of the ring's current contents, oldest first."""
        ring = self.ring
        out = []
        mask = ring.capacity - 1
        for i in range(ring._tail, ring._head):
            out.append(ring._slots[i & mask])
        return out

    def attribution(self, cpu: int | None = None) -> Attribution:
        """Cycle decomposition, computed *now*.

        ``cpu=None`` merges every CPU's window: windows, untraced cycles,
        and span stats sum across CPUs (per-CPU windows partition the
        global clock delta, so the merged window equals ``Δ Clock.now``).
        ``cpu=c`` returns CPU *c*'s window alone.

        Open spans (including each implicit cpu root) are closed
        virtually — their partial totals are included without mutating the
        stacks — so the report is valid mid-trace and always sums to the
        window.
        """
        if cpu is not None:
            return self._attribution_cpu(cpu)
        if self.ncpus == 1:
            return self._attribution_cpu(0)
        parts = [self._attribution_cpu(c) for c in range(self.ncpus)]
        window = sum(p.window_cycles for p in parts)
        untraced = sum(p.untraced_cycles for p in parts)
        merged: dict[str, SpanStat] = {}
        for p in parts:
            for name, s in p.spans.items():
                m = merged.get(name)
                if m is None:
                    merged[name] = SpanStat(s.category, s.count,
                                            s.total_cycles, s.self_cycles)
                else:
                    m.count += s.count
                    m.total_cycles += s.total_cycles
                    m.self_cycles += s.self_cycles
        return Attribution(window, untraced, merged)

    def _attribution_cpu(self, cpu: int) -> Attribution:
        stack = self._stacks[cpu]
        if not stack:
            return Attribution(0, 0, {})
        t_end = self._t_ends[cpu]
        now = self.clock.local_now(cpu) if t_end is None else t_end
        stats = {name: SpanStat(s.category, s.count, s.total_cycles,
                                s.self_cycles)
                 for name, s in self._statsv[cpu].items()}
        # Virtually close open frames from the innermost outwards: each
        # open frame's total is (now - start); its self time excludes both
        # its closed children (frame[3]) and its one open child (the frame
        # above it on the stack).
        open_child_total = 0
        for name, cat, start, child in reversed(stack[1:]):
            total = now - start
            self._accum(name, cat, total, total - child - open_child_total,
                        stats)
            open_child_total = total
        window = now - self._t0s[cpu]
        root_child = stack[0][3] + open_child_total
        return Attribution(window, window - root_child, stats)
