"""Kernel-wide static tracepoints with begin/end spans on a shared timeline.

This is the simulator's ftrace: subsystems declare *tracepoints* at fixed
sites (syscall entry/exit, context switches, page faults, disk requests,
NIC hardirq/softirq, Cosy compound elements, C-minus engine calls, syslog
lines) and, when tracing is enabled, each emits events stamped with
``Clock.now`` into a bounded drop-oldest ring buffer.

Three event shapes:

* **spans** — ``begin(name, cat)`` / ``end()`` bracket work whose duration
  is not known up front (a syscall handler, a softirq drain).  Spans nest
  on a stack; attribution splits each span's cycles into *self* and
  *children*.
* **complete events** — ``complete(name, cat, dur)`` records a span
  retroactively when the whole cost was charged as one quantum (a TLB
  miss, a disk request, a context switch): the span covers the ``dur``
  cycles ending *now*.
* **instants** — ``instant(name, cat)`` marks a point (a wakeup, a syslog
  line, a fault injection decision).

Two invariants the whole design hangs off:

1. **Zero cost-model impact.**  The tracer only ever *reads* the clock;
   nothing here charges cycles, so the simulated clock is bit-identical
   with tracing on or off (asserted in ``tests/trace/``, and run-wide via
   ``REPRO_TRACE=1``).
2. **Near-zero overhead when disabled.**  Every emitter returns after a
   single attribute check; hot call sites additionally guard with
   ``if tracer.enabled:`` so argument construction is skipped too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.safety.monitor.ringbuf import LockFreeRingBuffer
from repro.trace.attribution import Attribution, SpanStat

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.clock import Clock

#: default ring capacity (events); must be a power of two.
DEFAULT_CAPACITY = 1 << 16

#: event phases, following the Chrome trace-event vocabulary.
PH_BEGIN, PH_END, PH_COMPLETE, PH_INSTANT = "B", "E", "X", "i"

#: one ring entry: (phase, name, category, ts_cycles, dur_cycles|None, args|None)
TraceEvent = tuple


class Tracer:
    """The per-kernel tracepoint registry and span engine."""

    def __init__(self, clock: "Clock", capacity: int = DEFAULT_CAPACITY):
        self.clock = clock
        self.capacity = capacity
        #: the one flag every tracepoint checks; False ⇒ everything no-ops.
        self.enabled = False
        self.ring: LockFreeRingBuffer[TraceEvent] = LockFreeRingBuffer(
            capacity, policy="drop-oldest")
        self._stack: list[list] = []   # frames: [name, cat, start, child]
        self._stats: dict[str, SpanStat] = {}
        self._t0 = 0
        self._t_end: int | None = None

    # ------------------------------------------------------------ lifecycle

    def enable(self) -> None:
        """Start (or restart) tracing: a fresh window opens *now*."""
        self.enabled = True
        self._t0 = self.clock.now
        self._t_end = None
        self._stack = [["(cpu)", "root", self._t0, 0]]
        self._stats = {}
        self.ring = LockFreeRingBuffer(self.capacity, policy="drop-oldest")

    def disable(self) -> None:
        """Freeze the window; events and attribution stay readable."""
        if self.enabled:
            self._t_end = self.clock.now
        self.enabled = False

    @property
    def window_start(self) -> int:
        return self._t0

    # ------------------------------------------------------------- emitters

    def _accum(self, name: str, cat: str, total: int, self_cycles: int,
               stats: dict[str, SpanStat] | None = None) -> None:
        stats = self._stats if stats is None else stats
        s = stats.get(name)
        if s is None:
            s = stats[name] = SpanStat(cat)
        s.count += 1
        s.total_cycles += total
        s.self_cycles += self_cycles

    def begin(self, name: str, cat: str = "kernel", **args) -> None:
        """Open a span; must be matched by :meth:`end` (spans nest)."""
        if not self.enabled:
            return
        now = self.clock.now
        self._stack.append([name, cat, now, 0])
        self.ring.try_push((PH_BEGIN, name, cat, now, None, args or None))

    def end(self, **args) -> None:
        """Close the innermost open span.  Unmatched ends (tracing enabled
        mid-span) are ignored rather than corrupting the stack."""
        if not self.enabled:
            return
        stack = self._stack
        if len(stack) <= 1:
            return
        name, cat, start, child = stack.pop()
        now = self.clock.now
        total = now - start
        self._accum(name, cat, total, total - child)
        stack[-1][3] += total
        self.ring.try_push((PH_END, name, cat, now, None, args or None))

    def complete(self, name: str, cat: str, dur: int, **args) -> None:
        """Record a span of ``dur`` cycles ending now (cost charged as one
        quantum, e.g. a TLB miss or a disk request)."""
        if not self.enabled:
            return
        now = self.clock.now
        self._accum(name, cat, dur, dur)
        self._stack[-1][3] += dur
        self.ring.try_push((PH_COMPLETE, name, cat, now - dur, dur,
                            args or None))

    def instant(self, name: str, cat: str = "kernel", **args) -> None:
        """Mark a point on the timeline (no duration, no attribution)."""
        if not self.enabled:
            return
        self.ring.try_push((PH_INSTANT, name, cat, self.clock.now, None,
                            args or None))

    # ------------------------------------------------------------- queries

    @property
    def depth(self) -> int:
        """Open (user-visible) span depth."""
        return max(len(self._stack) - 1, 0)

    def events(self) -> list[TraceEvent]:
        """Drain-free snapshot of the ring's current contents, oldest first."""
        ring = self.ring
        out = []
        mask = ring.capacity - 1
        for i in range(ring._tail, ring._head):
            out.append(ring._slots[i & mask])
        return out

    def attribution(self) -> Attribution:
        """The window's cycle decomposition, computed *now*.

        Open spans (including the implicit cpu root) are closed virtually
        — their partial totals are included without mutating the stack —
        so the report is valid mid-trace and always sums to the window.
        """
        if not self._stack:
            return Attribution(0, 0, {})
        now = self.clock.now if self._t_end is None else self._t_end
        stats = {name: SpanStat(s.category, s.count, s.total_cycles,
                                s.self_cycles)
                 for name, s in self._stats.items()}
        # Virtually close open frames from the innermost outwards: each
        # open frame's total is (now - start); its self time excludes both
        # its closed children (frame[3]) and its one open child (the frame
        # above it on the stack).
        open_child_total = 0
        for name, cat, start, child in reversed(self._stack[1:]):
            total = now - start
            self._accum(name, cat, total, total - child - open_child_total,
                        stats)
            open_child_total = total
        window = now - self._t0
        root_child = self._stack[0][3] + open_child_total
        return Attribution(window, window - root_child, stats)
