"""Self-contained flamegraph SVG writer for folded stacks.

Renders the classic flamegraph layout — one rectangle per (stack-prefix)
node, width proportional to its weighted sample count, children stacked
above parents — from the ``{"frame;frame;...": count}`` dict the
profiler's :meth:`~repro.trace.prof.Profiler.folded` produces.  No
external dependencies and no JavaScript: plain ``<rect>``/``<text>``
elements with ``<title>`` tooltips, loadable in any browser or image
viewer straight from a CI artifact.

Colors are a deterministic warm palette hashed from the frame name
(CRC32, not ``hash()``, which is salted per process), so the same
profile renders the same SVG byte for byte — diffs between runs are
meaningful.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from xml.sax.saxutils import escape

#: layout constants (pixels)
WIDTH = 1200
ROW_HEIGHT = 17
PAD_TOP = 40
PAD_BOTTOM = 24
MIN_RECT_PX = 0.3        # rectangles narrower than this are dropped
CHAR_PX = 6.6            # ~px per character at font-size 11


class _Node:
    __slots__ = ("name", "value", "children")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.children: dict[str, _Node] = {}

    def child(self, name: str) -> "_Node":
        c = self.children.get(name)
        if c is None:
            c = self.children[name] = _Node(name)
        return c


def _build_tree(folded: dict[str, int]) -> _Node:
    root = _Node("all")
    for stack, count in folded.items():
        if count <= 0:
            continue
        root.value += count
        node = root
        for frame in stack.split(";"):
            node = node.child(frame)
            node.value += count
    return root


def _color(name: str) -> str:
    """Deterministic flame palette: hue from yellow to red by name hash."""
    h = zlib.crc32(name.encode("utf-8", "replace"))
    r = 205 + (h & 0x1F)              # 205..236
    g = 60 + ((h >> 5) & 0x7F)        # 60..187
    b = (h >> 12) & 0x37              # 0..55
    return f"rgb({r},{g},{b})"


def _depth(node: _Node) -> int:
    if not node.children:
        return 1
    return 1 + max(_depth(c) for c in node.children.values())


def flamegraph_svg(folded: dict[str, int], *,
                   title: str = "repro flamegraph",
                   width: int = WIDTH) -> str:
    """Render folded stacks to an SVG document string."""
    root = _build_tree(folded)
    total = root.value
    depth = _depth(root) if total else 1
    height = PAD_TOP + depth * ROW_HEIGHT + PAD_BOTTOM
    px_per = (width / total) if total else 0.0

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="#f8f8f8"/>',
        f'<text x="{width // 2}" y="20" text-anchor="middle" '
        f'font-size="14">{escape(title)}</text>',
        f'<text x="{width // 2}" y="{height - 8}" text-anchor="middle" '
        f'fill="#555">{total} weighted samples</text>',
    ]

    def emit(node: _Node, x: float, level: int) -> None:
        w = node.value * px_per
        if w < MIN_RECT_PX:
            return
        # rows grow upwards from the bottom, flamegraph style
        y = PAD_TOP + (depth - 1 - level) * ROW_HEIGHT
        pct = 100.0 * node.value / total if total else 0.0
        label = escape(node.name)
        out.append(
            f'<g><title>{label} ({node.value} samples, '
            f'{pct:.2f}%)</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{max(w - 0.5, MIN_RECT_PX):.2f}" '
            f'height="{ROW_HEIGHT - 1}" fill="{_color(node.name)}" '
            f'rx="1"/>')
        max_chars = int(w / CHAR_PX)
        if max_chars >= 3:
            text = node.name if len(node.name) <= max_chars \
                else node.name[:max_chars - 1] + "…"
            out.append(
                f'<text x="{x + 3:.2f}" y="{y + ROW_HEIGHT - 5}" '
                f'fill="#111">{escape(text)}</text>')
        out.append('</g>')
        cx = x
        for name in sorted(node.children):
            child = node.children[name]
            emit(child, cx, level + 1)
            cx += child.value * px_per

    if total:
        emit(root, 0.0, 0)
    else:
        out.append(f'<text x="{width // 2}" y="{height // 2}" '
                   f'text-anchor="middle" fill="#999">(no samples)</text>')
    out.append("</svg>")
    return "\n".join(out) + "\n"


def write_flamegraph(folded: dict[str, int], path, *,
                     title: str = "repro flamegraph",
                     width: int = WIDTH) -> Path:
    """Serialize :func:`flamegraph_svg` to ``path``; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(flamegraph_svg(folded, title=title, width=width))
    return p
