"""repro.trace — kernel-wide tracepoints, metrics, and cycle attribution.

The simulator's observability layer (cf. ftrace/eBPF in docs/OBSERVABILITY.md):

* :class:`Tracer` — static tracepoints emitting begin/end spans, complete
  events, and instants into a bounded drop-oldest ring buffer, stamped
  with the simulated clock;
* :class:`Attribution` — hierarchical self/total cycle decomposition of a
  traced window, summing exactly to the clock's elapsed cycles, diffable
  between runs;
* :class:`MetricsRegistry` — named counters/gauges/histograms the
  previously scattered subsystem counters register on;
* :func:`chrome_trace` / :func:`write_chrome_trace` — Perfetto-loadable
  Trace Event Format export.

Tracing never charges the simulated clock (bit-identity with tracing on
vs. off is asserted in ``tests/trace/``), and a disabled tracer costs one
attribute check per tracepoint.  Set ``REPRO_TRACE=1`` to boot every
kernel with tracing enabled.
"""

from repro.trace.attribution import Attribution, SpanStat, render_diff
from repro.trace.flamegraph import flamegraph_svg, write_flamegraph
from repro.trace.metrics import (Counter, Gauge, Histogram, Metric,
                                 MetricsRegistry, PercpuCounter)
from repro.trace.perfetto import chrome_trace, write_chrome_trace
from repro.trace.prof import (DEFAULT_PERIOD, ENV_PROF, ENV_PROF_PERIOD,
                              MaxWitness, Profiler)
from repro.trace.tracepoints import (DEFAULT_CAPACITY, PH_BEGIN, PH_COMPLETE,
                                     PH_COUNTER, PH_END, PH_INSTANT,
                                     TraceEvent, Tracer)

#: environment knob: boot kernels with tracing enabled (CI identity job).
ENV_TRACE = "REPRO_TRACE"
#: environment knob: benchmark trace/attribution output directory.
ENV_TRACE_OUT = "REPRO_TRACE_OUT"

__all__ = [
    "Attribution", "SpanStat", "render_diff",
    "Counter", "Gauge", "Histogram", "Metric", "MetricsRegistry",
    "PercpuCounter",
    "chrome_trace", "write_chrome_trace",
    "flamegraph_svg", "write_flamegraph",
    "Profiler", "MaxWitness", "DEFAULT_PERIOD",
    "Tracer", "TraceEvent", "DEFAULT_CAPACITY",
    "PH_BEGIN", "PH_END", "PH_COMPLETE", "PH_INSTANT", "PH_COUNTER",
    "ENV_TRACE", "ENV_TRACE_OUT", "ENV_PROF", "ENV_PROF_PERIOD",
]
