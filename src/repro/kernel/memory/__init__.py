"""Simulated memory subsystem.

Layout (32-bit-style, mirroring the Linux 2.6/x86 split the paper targets):

====================  =========================  ===============================
region                range                      managed by
====================  =========================  ===============================
user space            0x0000_0000 – 0xBFFF_FFFF  per-process ``AddressSpace``
kernel direct map     0xC000_0000 – 0xEFFF_FFFF  :class:`KmallocAllocator`
vmalloc area          0xF000_0000 – 0xFF7F_FFFF  :class:`VmallocAllocator`
====================  =========================  ===============================

All byte access flows through :class:`MMU`, which enforces PTE permissions
and raises :class:`~repro.errors.PageFault` — the hook Kefence (§3.2) builds
on.
"""

from repro.kernel.memory.layout import (
    PAGE_SIZE, PAGE_SHIFT, USER_BASE, USER_END, KERNEL_BASE,
    KMALLOC_BASE, KMALLOC_END, VMALLOC_BASE, VMALLOC_END,
    page_align_down, page_align_up, vpn_of,
)
from repro.kernel.memory.physmem import PhysicalMemory
from repro.kernel.memory.paging import PTE, PageTable, AddressSpace, PERM_R, PERM_W, PERM_X
from repro.kernel.memory.mmu import MMU
from repro.kernel.memory.kmalloc import KmallocAllocator
from repro.kernel.memory.vmalloc import VmallocAllocator, VmallocArea

__all__ = [
    "PAGE_SIZE", "PAGE_SHIFT", "USER_BASE", "USER_END", "KERNEL_BASE",
    "KMALLOC_BASE", "KMALLOC_END", "VMALLOC_BASE", "VMALLOC_END",
    "page_align_down", "page_align_up", "vpn_of",
    "PhysicalMemory", "PTE", "PageTable", "AddressSpace",
    "PERM_R", "PERM_W", "PERM_X", "MMU",
    "KmallocAllocator", "VmallocAllocator", "VmallocArea",
]
