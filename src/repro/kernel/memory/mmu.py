"""The MMU: every simulated byte access goes through here.

Responsibilities:

* translate virtual addresses through an :class:`AddressSpace`,
* enforce PTE permissions (raising :class:`PageFault`),
* run the kernel's page-fault handler chain and retry resolved faults
  (this is how Kefence's "auto-map a page on overflow" continue-mode works),
* model a small TLB and charge miss costs,
* charge the configured per-access penalty for vmalloc-area pages
  (the §3.2 "TLB contention" effect of page-granular allocation).

Fault handlers are callables ``handler(fault: PageFault) -> bool``; returning
True means the fault was resolved and the access should be retried.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

from repro.errors import PageFault
from repro.kernel.clock import Clock, Mode
from repro.kernel.costs import CostModel
from repro.kernel.memory.layout import (KERNEL_BASE, PAGE_SHIFT, PAGE_SIZE,
                                        VMALLOC_BASE,
                                        VMALLOC_END, vpn_of)
from repro.kernel.memory.paging import (PERM_R, PERM_W, PERM_X, AddressSpace,
                                        PTE)
from repro.kernel.memory.physmem import PhysicalMemory

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace import MetricsRegistry, Tracer

FaultHandler = Callable[[PageFault], bool]


class MMU:
    """Byte-level memory access with translation, faults, and a TLB."""

    def __init__(self, physmem: PhysicalMemory, clock: Clock, costs: CostModel,
                 tlb_entries: int = 64, *, tracer: "Tracer | None" = None,
                 metrics: "MetricsRegistry | None" = None):
        self.physmem = physmem
        self.clock = clock
        self.costs = costs
        self.tlb_entries = tlb_entries
        self._tlb: OrderedDict[int, None] = OrderedDict()
        self.fault_handlers: list[FaultHandler] = []
        self._tracer = tracer
        # statistics: plain ints (this is the hottest loop in the whole
        # simulator), published to the metrics registry as callback gauges.
        self.tlb_misses = 0
        self.tlb_hits = 0
        self.faults_taken = 0
        self.faults_resolved = 0
        if metrics is not None:
            metrics.gauge("mmu.tlb_hits", fn=lambda: self.tlb_hits)
            metrics.gauge("mmu.tlb_misses", fn=lambda: self.tlb_misses)
            metrics.gauge("mmu.faults_taken", fn=lambda: self.faults_taken)
            metrics.gauge("mmu.faults_resolved",
                          fn=lambda: self.faults_resolved)

    # -------------------------------------------------------------- faults

    def add_fault_handler(self, handler: FaultHandler) -> None:
        """Install a page-fault handler ahead of the default (which re-raises)."""
        self.fault_handlers.append(handler)

    def remove_fault_handler(self, handler: FaultHandler) -> None:
        self.fault_handlers.remove(handler)

    def _handle_fault(self, fault: PageFault) -> None:
        """Run the handler chain; re-raise if nobody resolves the fault."""
        self.faults_taken += 1
        tracer = self._tracer
        traced = tracer is not None and tracer.enabled
        if traced:
            tracer.begin("mem:fault", "mem", vaddr=fault.vaddr,
                         access=fault.access)
        try:
            self.clock.charge(self.costs.page_fault, Mode.SYSTEM)
            for handler in self.fault_handlers:
                if handler(fault):
                    self.faults_resolved += 1
                    return
            raise fault
        finally:
            if traced:
                tracer.end()

    # --------------------------------------------------------- translation

    def _tlb_access(self, vpn: int) -> None:
        if vpn in self._tlb:
            self._tlb.move_to_end(vpn)
            self.tlb_hits += 1
            return
        self.tlb_misses += 1
        self.clock.charge(self.costs.tlb_miss)
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.complete("mem:tlb_miss", "mem", self.costs.tlb_miss)
        self._tlb[vpn] = None
        if len(self._tlb) > self.tlb_entries:
            self._tlb.popitem(last=False)

    def flush_tlb(self) -> None:
        """Full TLB flush (charged by the scheduler on context switches)."""
        self._tlb.clear()

    def invalidate_tlb_page(self, vaddr: int) -> None:
        self._tlb.pop(vpn_of(vaddr), None)

    def translate(self, aspace: AddressSpace, vaddr: int, access: str) -> PTE:
        """Translate one address, retrying after resolvable faults."""
        while True:
            # aspace.lookup + pte.allows, inlined (hottest simulator path)
            pt = aspace.kernel_pt if vaddr >= KERNEL_BASE else aspace.user_pt
            pte = pt._entries.get(vaddr >> PAGE_SHIFT)
            if pte is not None and pte.present and pte.perms & (
                    PERM_R if access == "r" else
                    PERM_W if access == "w" else PERM_X):
                # TLB hit fast path, inlined: this is the hottest loop in
                # the whole simulator
                vpn = vaddr >> PAGE_SHIFT
                tlb = self._tlb
                if vpn in tlb:
                    tlb.move_to_end(vpn)
                    self.tlb_hits += 1
                else:
                    self.tlb_misses += 1
                    self.clock.charge(self.costs.tlb_miss)
                    tracer = self._tracer
                    if tracer is not None and tracer.enabled:
                        tracer.complete("mem:tlb_miss", "mem",
                                        self.costs.tlb_miss)
                    tlb[vpn] = None
                    if len(tlb) > self.tlb_entries:
                        tlb.popitem(last=False)
                if VMALLOC_BASE <= vaddr < VMALLOC_END:
                    self.clock.charge(self.costs.vmalloc_access_tlb_penalty)
                return pte
            present = pte is not None and pte.present
            guard = pte is not None and pte.guard
            self._handle_fault(PageFault(vaddr, access, present, guard=guard))
            # handler resolved it: loop and re-translate

    # --------------------------------------------------------------- bytes

    def read(self, aspace: AddressSpace, vaddr: int, size: int) -> bytes:
        """Read ``size`` bytes, page by page."""
        off = vaddr & (PAGE_SIZE - 1)
        if off + size <= PAGE_SIZE:
            # single-page fast path: the overwhelmingly common case
            # (scalar loads are 1-8 bytes).  The TLB-hit half of
            # translate() is inlined here; any miss, fault, or vmalloc
            # access falls back to the full path.
            vpn = vaddr >> PAGE_SHIFT
            pt = aspace.kernel_pt if vaddr >= KERNEL_BASE else aspace.user_pt
            pte = pt._entries.get(vpn)
            if pte is not None and pte.present and pte.perms & PERM_R \
                    and vpn in self._tlb \
                    and not VMALLOC_BASE <= vaddr < VMALLOC_END:
                self._tlb.move_to_end(vpn)
                self.tlb_hits += 1
            else:
                pte = self.translate(aspace, vaddr, "r")
            return bytes(self.physmem.frame_bytes(pte.frame)[off:off + size])
        out = bytearray()
        addr = vaddr
        remaining = size
        while remaining > 0:
            pte = self.translate(aspace, addr, "r")
            off = addr & (PAGE_SIZE - 1)
            n = min(remaining, PAGE_SIZE - off)
            out += self.physmem.frame_bytes(pte.frame)[off:off + n]
            addr += n
            remaining -= n
        return bytes(out)

    def write(self, aspace: AddressSpace, vaddr: int, data: bytes) -> None:
        """Write ``data``, page by page."""
        off = vaddr & (PAGE_SIZE - 1)
        n = len(data)
        if off + n <= PAGE_SIZE:
            vpn = vaddr >> PAGE_SHIFT
            pt = aspace.kernel_pt if vaddr >= KERNEL_BASE else aspace.user_pt
            pte = pt._entries.get(vpn)
            if pte is not None and pte.present and pte.perms & PERM_W \
                    and vpn in self._tlb \
                    and not VMALLOC_BASE <= vaddr < VMALLOC_END:
                self._tlb.move_to_end(vpn)
                self.tlb_hits += 1
            else:
                pte = self.translate(aspace, vaddr, "w")
            self.physmem.frame_bytes(pte.frame)[off:off + n] = data
            return
        addr = vaddr
        view = memoryview(data)
        while len(view) > 0:
            pte = self.translate(aspace, addr, "w")
            off = addr & (PAGE_SIZE - 1)
            n = min(len(view), PAGE_SIZE - off)
            self.physmem.frame_bytes(pte.frame)[off:off + n] = view[:n]
            addr += n
            view = view[n:]

    def read_int(self, aspace: AddressSpace, vaddr: int, size: int,
                 signed: bool = False) -> int:
        """Fused scalar load: single-page TLB-hit read decoded straight
        from the frame, skipping the intermediate ``bytes`` copy.  Checks
        and charges are identical to :meth:`read`."""
        off = vaddr & (PAGE_SIZE - 1)
        if off + size <= PAGE_SIZE:
            vpn = vaddr >> PAGE_SHIFT
            pt = aspace.kernel_pt if vaddr >= KERNEL_BASE else aspace.user_pt
            pte = pt._entries.get(vpn)
            if pte is not None and pte.present and pte.perms & PERM_R \
                    and vpn in self._tlb \
                    and not VMALLOC_BASE <= vaddr < VMALLOC_END:
                self._tlb.move_to_end(vpn)
                self.tlb_hits += 1
                data = self.physmem._data.get(pte.frame)
                if data is None:
                    data = self.physmem.frame_bytes(pte.frame)
                return int.from_bytes(data[off:off + size], "little",
                                      signed=signed)
        return int.from_bytes(self.read(aspace, vaddr, size), "little",
                              signed=signed)

    # Fixed-width integer helpers (little-endian, like x86).

    def read_u8(self, aspace: AddressSpace, vaddr: int) -> int:
        return self.read(aspace, vaddr, 1)[0]

    def write_u8(self, aspace: AddressSpace, vaddr: int, value: int) -> None:
        self.write(aspace, vaddr, bytes([value & 0xFF]))

    def read_u32(self, aspace: AddressSpace, vaddr: int) -> int:
        return int.from_bytes(self.read(aspace, vaddr, 4), "little")

    def write_u32(self, aspace: AddressSpace, vaddr: int, value: int) -> None:
        self.write(aspace, vaddr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_i64(self, aspace: AddressSpace, vaddr: int) -> int:
        return int.from_bytes(self.read(aspace, vaddr, 8), "little", signed=True)

    def write_i64(self, aspace: AddressSpace, vaddr: int, value: int) -> None:
        self.write(aspace, vaddr, value.to_bytes(8, "little", signed=True))
