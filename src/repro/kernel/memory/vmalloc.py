"""vmalloc: page-granular allocator in the vmalloc virtual area.

Each allocation occupies whole pages of its own, which is what lets Kefence
(§3.2) align a buffer against a page boundary and plant an unmapped/"guardian"
PTE next to it.  The paper notes two performance consequences that this
module models faithfully:

* vmalloc/vfree are much slower than kmalloc/kfree (page-table edits per
  page) — see the cost model;
* stock vfree must *search* for the area descriptor; the authors "added a
  hash table to store the information about virtual memory buffers" to speed
  it up.  ``use_vfree_hash`` toggles between the two lookup paths so the
  optimization is measurable.

Alignment: ``align='end'`` places the buffer flush against the *end* of its
page span (overflow detection — the common case per §3.2); ``align='start'``
places it at the start (underflow detection).  When the size is a multiple
of the page size, both boundaries land on page edges and guard pages on both
sides catch overflow *and* underflow, as the paper observes.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.errors import AllocatorMisuse, OutOfMemory
from repro.kernel.clock import Clock, Mode
from repro.kernel.costs import CostModel
from repro.kernel.memory.layout import PAGE_SIZE, VMALLOC_BASE, VMALLOC_END, vpn_of
from repro.kernel.memory.paging import PERM_R, PERM_W, PTE, PageTable
from repro.kernel.memory.physmem import PhysicalMemory


@dataclass
class VmallocArea:
    """Descriptor of one vmalloc allocation."""

    base: int              # address returned to the caller (buffer start)
    size: int              # requested byte size
    span_start: int        # first mapped address (page-aligned)
    npages: int            # data pages mapped
    guard_vpns: tuple[int, ...] = ()   # guardian PTE page numbers
    frames: list[int] = field(default_factory=list)
    site: str = "?"        # allocation site (file:line) for overflow reports

    @property
    def end(self) -> int:
        return self.base + self.size


class VmallocAllocator:
    """Page-granular allocator with optional guardian PTEs."""

    def __init__(self, physmem: PhysicalMemory, kernel_pt: PageTable,
                 clock: Clock, costs: CostModel, *, use_vfree_hash: bool = True,
                 mmu=None, faults=None):
        self.physmem = physmem
        self.kernel_pt = kernel_pt
        self.clock = clock
        self.costs = costs
        self.mmu = mmu  # for per-page TLB invalidation on vfree
        self.faults = faults  # FaultRegistry, or None when standalone
        #: area-list spinlock ("vmalloc_lock", Linux's vmlist_lock),
        #: attached by the Kernel after construction; None standalone.
        self.lock = None
        self.use_vfree_hash = use_vfree_hash
        self._cursor = VMALLOC_BASE
        #: base address -> area (the Kefence "hash table")
        self.areas: dict[int, VmallocArea] = {}
        #: guardian vpn -> owning area, for fault attribution
        self.guard_index: dict[int, VmallocArea] = {}
        # statistics (the paper reports outstanding pages / avg alloc size)
        self.total_allocs = 0
        self.total_frees = 0
        self.bytes_requested = 0
        self.outstanding_pages = 0
        self.peak_outstanding_pages = 0

    # ---------------------------------------------------------------- alloc

    def vmalloc(self, size: int, *, guard: bool = False, align: str = "end",
                site: str = "?") -> int:
        """Allocate ``size`` bytes on whole pages.

        With ``guard=True``, guardian PTEs (present, permission-less) are
        installed adjacent to the buffer per ``align``; this is the Kefence
        allocation path.
        """
        if size <= 0:
            raise AllocatorMisuse(f"vmalloc of non-positive size {size}")
        if align not in ("end", "start"):
            raise ValueError(f"align must be 'end' or 'start', not {align!r}")
        if self.faults is not None and \
                self.faults.should_fail("vmalloc", site) is not None:
            # A failed attempt still pays the base cost before giving up.
            self.clock.charge(self.costs.vmalloc_base, Mode.SYSTEM)
            raise OutOfMemory(f"vmalloc({size}) at {site}: fault-injected")
        npages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        nguard = 0
        if guard:
            # A guard on both sides is possible only for page-multiple sizes;
            # otherwise one side is chosen by `align` (§3.2).
            nguard = 2 if size % PAGE_SIZE == 0 else 1

        # Address-range reservation under vmalloc_lock (vmlist_lock).
        guard_ctx = self.lock.guard("vmalloc:reserve") \
            if self.lock is not None else nullcontext()
        with guard_ctx:
            span_start = self._cursor
            total_pages = npages + nguard
            span_end = span_start + total_pages * PAGE_SIZE
            if span_end > VMALLOC_END:
                raise OutOfMemory("vmalloc area exhausted")
            self._cursor = span_end

        self.clock.charge(
            self.costs.vmalloc_base + self.costs.vmalloc_per_page * npages,
            Mode.SYSTEM,
        )

        guard_vpns: list[int] = []
        data_start = span_start
        if guard and size % PAGE_SIZE == 0:
            # guard | data... | guard
            guard_vpns.append(vpn_of(span_start))
            data_start = span_start + PAGE_SIZE
            guard_vpns.append(vpn_of(data_start + npages * PAGE_SIZE))
            base = data_start
        elif guard and align == "end":
            # data... | guard ; buffer flush against its last page's end
            guard_vpns.append(vpn_of(span_start + npages * PAGE_SIZE))
            base = data_start + npages * PAGE_SIZE - size
        elif guard:  # align == 'start'
            # guard | data... ; buffer starts on its first page
            guard_vpns.append(vpn_of(span_start))
            data_start = span_start + PAGE_SIZE
            base = data_start
        else:
            base = span_start

        frames: list[int] = []
        for i in range(npages):
            frame = self.physmem.alloc_frame()
            frames.append(frame)
            self.kernel_pt.map(vpn_of(data_start) + i,
                               PTE(frame, perms=PERM_R | PERM_W))
        area = VmallocArea(base=base, size=size, span_start=span_start,
                           npages=npages, guard_vpns=tuple(guard_vpns),
                           frames=frames, site=site)
        for gv in guard_vpns:
            self.clock.charge(self.costs.guard_page_setup, Mode.SYSTEM)
            # Present but permission-less: any access traps, and `guard=True`
            # lets the fault handler distinguish it from a stray unmapped hit.
            self.kernel_pt.map(gv, PTE(frame=-1, perms=0, guard=True))

        # Publish the area descriptor under vmalloc_lock.
        guard_ctx = self.lock.guard("vmalloc:publish") \
            if self.lock is not None else nullcontext()
        with guard_ctx:
            for gv in guard_vpns:
                self.guard_index[gv] = area
            self.areas[base] = area
        self.total_allocs += 1
        self.bytes_requested += size
        self.outstanding_pages += npages
        self.peak_outstanding_pages = max(self.peak_outstanding_pages,
                                          self.outstanding_pages)
        return base

    # ----------------------------------------------------------------- free

    def _lookup_for_free(self, addr: int) -> VmallocArea | None:
        """Find the area for vfree.  The hash path is O(1); the stock path
        models Linux's linear vm_struct list walk, charged per area
        examined — which is exactly what the Kefence hash table removes."""
        if self.use_vfree_hash:
            return self.areas.get(addr)
        for area in self.areas.values():
            self.clock.charge(self.costs.vfree_walk_per_area, Mode.SYSTEM)
            if area.base == addr:
                return area
        return None

    def vfree(self, addr: int) -> None:
        """Free a vmalloc'ed buffer, unmapping data and guardian pages."""
        guard_ctx = self.lock.guard("vfree") \
            if self.lock is not None else nullcontext()
        with guard_ctx:
            area = self._lookup_for_free(addr)
            if area is None:
                raise AllocatorMisuse(
                    f"vfree of address {addr:#x} not allocated by vmalloc")
            del self.areas[addr]
            for gv in area.guard_vpns:
                self.guard_index.pop(gv, None)
        self.clock.charge(
            self.costs.vfree_base + self.costs.vfree_per_page * area.npages
            + self.costs.vfree_tlb_flush,  # vunmap TLB shootdown
            Mode.SYSTEM,
        )
        data_vpn = vpn_of(area.base)
        for i, frame in enumerate(area.frames):
            self.kernel_pt.unmap(data_vpn + i)
            if self.mmu is not None:
                self.mmu.invalidate_tlb_page((data_vpn + i) << 12)
            self.physmem.free_frame(frame)
        for gv in area.guard_vpns:
            self.kernel_pt.unmap(gv)
        self.outstanding_pages -= area.npages
        self.total_frees += 1

    # ---------------------------------------------------------------- stats

    def area_for_guard_vpn(self, vpn: int) -> VmallocArea | None:
        """The area whose guardian PTE lives at ``vpn`` (fault attribution)."""
        return self.guard_index.get(vpn)

    def area_containing(self, addr: int) -> VmallocArea | None:
        """The live area whose buffer range contains ``addr``, if any."""
        for area in self.areas.values():
            if area.base <= addr < area.end:
                return area
        return None

    @property
    def avg_alloc_size(self) -> float:
        """Mean requested size over all allocations (paper: 80 bytes)."""
        return self.bytes_requested / self.total_allocs if self.total_allocs else 0.0
