"""Address-space layout constants and page arithmetic helpers."""

from __future__ import annotations

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4096

USER_BASE = 0x0000_1000          # first page left unmapped to catch NULL
USER_END = 0xC000_0000
KERNEL_BASE = 0xC000_0000
KMALLOC_BASE = 0xC000_0000
KMALLOC_END = 0xF000_0000
VMALLOC_BASE = 0xF000_0000
VMALLOC_END = 0xFF80_0000


def page_align_down(addr: int) -> int:
    """Largest page boundary <= addr."""
    return addr & ~(PAGE_SIZE - 1)


def page_align_up(addr: int) -> int:
    """Smallest page boundary >= addr."""
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


def vpn_of(addr: int) -> int:
    """Virtual page number containing addr."""
    return addr >> PAGE_SHIFT


def pages_spanned(addr: int, size: int) -> int:
    """Number of pages touched by the byte range [addr, addr+size)."""
    if size <= 0:
        return 0
    return vpn_of(addr + size - 1) - vpn_of(addr) + 1
