"""Physical memory: a bounded pool of 4 KiB frames.

Frames store real bytes (``bytearray``) so overflow detection, zero-copy
sharing, and file data behave like memory, not like bookkeeping.  Frames are
allocated lazily; the pool only tracks counts until a frame's bytes are first
touched.
"""

from __future__ import annotations

from repro.errors import OutOfMemory
from repro.kernel.memory.layout import PAGE_SIZE


class PhysicalMemory:
    """Frame allocator with a hard frame budget.

    Parameters
    ----------
    total_bytes:
        Size of simulated RAM.  Defaults to the paper's 884 MB testbed.
    """

    def __init__(self, total_bytes: int = 884 * 1024 * 1024):
        self.total_frames = total_bytes // PAGE_SIZE
        self._next_frame = 0
        self._free: list[int] = []
        self._data: dict[int, bytearray] = {}
        self.allocated = 0
        self.peak_allocated = 0

    # ----------------------------------------------------------- allocation

    def alloc_frame(self) -> int:
        """Allocate one frame; raises :class:`OutOfMemory` when exhausted."""
        if self._free:
            frame = self._free.pop()
        elif self._next_frame < self.total_frames:
            frame = self._next_frame
            self._next_frame += 1
        else:
            raise OutOfMemory(
                f"physical memory exhausted ({self.total_frames} frames)"
            )
        self.allocated += 1
        self.peak_allocated = max(self.peak_allocated, self.allocated)
        return frame

    def free_frame(self, frame: int) -> None:
        """Return a frame to the pool and drop its contents."""
        self._data.pop(frame, None)
        self._free.append(frame)
        self.allocated -= 1

    # --------------------------------------------------------------- access

    def frame_bytes(self, frame: int) -> bytearray:
        """The backing store of a frame (created zero-filled on first touch)."""
        buf = self._data.get(frame)
        if buf is None:
            buf = bytearray(PAGE_SIZE)
            self._data[frame] = buf
        return buf

    @property
    def free_frames(self) -> int:
        return self.total_frames - self.allocated
