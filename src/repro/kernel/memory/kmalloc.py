"""kmalloc: slab-style size-class allocator over the kernel direct map.

Like Linux's slab allocator, requests are rounded up to a size class and
served from per-class freelists; backing pages are mapped into the shared
kernel page table on demand.  kmalloc'ed objects are packed many-per-page —
which is exactly why Kefence (§3.2) cannot protect them and requires the
kmalloc→vmalloc conversion this module's ``convert_to_vmalloc`` flag enables
at a Kernel level.

Misuse (double free, free of an address never returned by kmalloc) raises
:class:`AllocatorMisuse`, mirroring the slab poisoning checks of a debug
kernel.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.errors import AllocatorMisuse, OutOfMemory
from repro.kernel.clock import Clock, Mode
from repro.kernel.costs import CostModel
from repro.kernel.memory.layout import KMALLOC_BASE, KMALLOC_END, PAGE_SIZE
from repro.kernel.memory.paging import PERM_R, PERM_W, PTE, PageTable
from repro.kernel.memory.physmem import PhysicalMemory

#: Size classes matching Linux's kmalloc caches (32 bytes – 128 KiB).
SIZE_CLASSES = [32, 64, 96, 128, 192, 256, 512, 1024, 2048,
                4096, 8192, 16384, 32768, 65536, 131072]


def size_class_for(size: int) -> int:
    """Smallest size class that fits ``size``."""
    for cls in SIZE_CLASSES:
        if size <= cls:
            return cls
    raise OutOfMemory(f"kmalloc request too large: {size} bytes")


class KmallocAllocator:
    """Slab-like allocator in [KMALLOC_BASE, KMALLOC_END)."""

    def __init__(self, physmem: PhysicalMemory, kernel_pt: PageTable,
                 clock: Clock, costs: CostModel, faults=None):
        self.physmem = physmem
        self.kernel_pt = kernel_pt
        self.clock = clock
        self.costs = costs
        self.faults = faults  # FaultRegistry, or None when standalone
        #: freelist spinlock ("kmalloc_lock"), attached by the Kernel after
        #: construction; None when the allocator is used standalone.
        self.lock = None
        self._brk = KMALLOC_BASE
        self._freelists: dict[int, list[int]] = {cls: [] for cls in SIZE_CLASSES}
        #: addr -> (requested size, size class)
        self.live: dict[int, tuple[int, int]] = {}
        # statistics
        self.total_allocs = 0
        self.total_frees = 0
        self.bytes_requested = 0

    # ------------------------------------------------------------ mapping

    def _grow(self, cls: int) -> int:
        """Carve a fresh chunk of class ``cls`` from the brk, mapping pages."""
        # Align chunks >= one page to page boundaries, as the slab does.
        if cls >= PAGE_SIZE and self._brk % PAGE_SIZE:
            self._brk = (self._brk + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        addr = self._brk
        end = addr + cls
        if end > KMALLOC_END:
            raise OutOfMemory("kmalloc region exhausted")
        # Map any pages the chunk touches that are not yet mapped.
        vpn = addr >> 12
        last_vpn = (end - 1) >> 12
        while vpn <= last_vpn:
            if self.kernel_pt.lookup(vpn) is None:
                frame = self.physmem.alloc_frame()
                self.kernel_pt.map(vpn, PTE(frame, perms=PERM_R | PERM_W))
            vpn += 1
        self._brk = end
        return addr

    # ---------------------------------------------------------------- API

    def kmalloc(self, size: int, site: str = "?") -> int:
        """Allocate ``size`` bytes; returns the kernel virtual address."""
        if size <= 0:
            raise AllocatorMisuse(f"kmalloc of non-positive size {size}")
        cls = size_class_for(size)
        self.clock.charge(self.costs.kmalloc, Mode.SYSTEM)
        if self.faults is not None and \
                self.faults.should_fail("kmalloc", site) is not None:
            raise OutOfMemory(f"kmalloc({size}) at {site}: fault-injected")
        guard = self.lock.guard("kmalloc") if self.lock is not None \
            else nullcontext()
        with guard:
            freelist = self._freelists[cls]
            addr = freelist.pop() if freelist else self._grow(cls)
            self.live[addr] = (size, cls)
        self.total_allocs += 1
        self.bytes_requested += size
        return addr

    def kfree(self, addr: int) -> None:
        """Free a kmalloc'ed address; detects double/invalid frees."""
        self.clock.charge(self.costs.kfree, Mode.SYSTEM)
        guard = self.lock.guard("kfree") if self.lock is not None \
            else nullcontext()
        with guard:
            entry = self.live.pop(addr, None)
            if entry is None:
                raise AllocatorMisuse(
                    f"kfree of address {addr:#x} not allocated by kmalloc")
            _, cls = entry
            self._freelists[cls].append(addr)
        self.total_frees += 1

    def ksize(self, addr: int) -> int:
        """Requested size of a live allocation."""
        entry = self.live.get(addr)
        if entry is None:
            raise AllocatorMisuse(f"ksize of dead address {addr:#x}")
        return entry[0]

    @property
    def live_bytes(self) -> int:
        return sum(size for size, _ in self.live.values())
