"""kmalloc: slab-style size-class allocator over the kernel direct map.

Like Linux's slab allocator, requests are rounded up to a size class and
served from per-class freelists; backing pages are mapped into the shared
kernel page table on demand.  kmalloc'ed objects are packed many-per-page —
which is exactly why Kefence (§3.2) cannot protect them and requires the
kmalloc→vmalloc conversion this module's ``convert_to_vmalloc`` flag enables
at a Kernel level.

Misuse (double free, free of an address never returned by kmalloc) raises
:class:`AllocatorMisuse`, mirroring the slab poisoning checks of a debug
kernel.

SMP kernels enable per-CPU *magazines* (Bonwick-style, simplified): each
CPU fronts the shared freelists with a small per-class cache serviced
without the ``kmalloc_lock``.  A magazine hit charges
``costs.kmalloc_magazine`` (calibrated equal to the uncontended spinlock
pair, so totals match the locked path cycle-for-cycle when nothing
contends); the win at ``cpus>1`` is that hot allocation paths stop
crossing the shared lock, and therefore stop paying cross-CPU contention
on it.  Misses refill a batch from the shared freelist under the lock;
frees overflowing the magazine cap flush half of it back.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.errors import AllocatorMisuse, OutOfMemory
from repro.kernel.clock import Clock, Mode
from repro.kernel.costs import CostModel
from repro.kernel.memory.layout import KMALLOC_BASE, KMALLOC_END, PAGE_SIZE
from repro.kernel.memory.paging import PERM_R, PERM_W, PTE, PageTable
from repro.kernel.memory.physmem import PhysicalMemory

#: Size classes matching Linux's kmalloc caches (32 bytes – 128 KiB).
SIZE_CLASSES = [32, 64, 96, 128, 192, 256, 512, 1024, 2048,
                4096, 8192, 16384, 32768, 65536, 131072]


def size_class_for(size: int) -> int:
    """Smallest size class that fits ``size``."""
    for cls in SIZE_CLASSES:
        if size <= cls:
            return cls
    raise OutOfMemory(f"kmalloc request too large: {size} bytes")


class KmallocAllocator:
    """Slab-like allocator in [KMALLOC_BASE, KMALLOC_END)."""

    def __init__(self, physmem: PhysicalMemory, kernel_pt: PageTable,
                 clock: Clock, costs: CostModel, faults=None):
        self.physmem = physmem
        self.kernel_pt = kernel_pt
        self.clock = clock
        self.costs = costs
        self.faults = faults  # FaultRegistry, or None when standalone
        #: freelist spinlock ("kmalloc_lock"), attached by the Kernel after
        #: construction; None when the allocator is used standalone.
        self.lock = None
        self._brk = KMALLOC_BASE
        self._freelists: dict[int, list[int]] = {cls: [] for cls in SIZE_CLASSES}
        #: addr -> (requested size, size class)
        self.live: dict[int, tuple[int, int]] = {}
        # statistics
        self.total_allocs = 0
        self.total_frees = 0
        self.bytes_requested = 0
        # Per-CPU magazines (SMP only; see enable_magazines).
        self._magazines: list[dict[int, list[int]]] | None = None
        self.magazine_cap = 64
        self.magazine_batch = 8
        self.magazine_hits = 0
        self.magazine_refills = 0
        self.magazine_flushes = 0

    def enable_magazines(self, ncpus: int) -> None:
        """Attach one magazine set per CPU (called by SMP kernels)."""
        if ncpus < 2:
            return
        self._magazines = [{} for _ in range(ncpus)]

    # ------------------------------------------------------------ mapping

    def _grow(self, cls: int) -> int:
        """Carve a fresh chunk of class ``cls`` from the brk, mapping pages."""
        # Align chunks >= one page to page boundaries, as the slab does.
        if cls >= PAGE_SIZE and self._brk % PAGE_SIZE:
            self._brk = (self._brk + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        addr = self._brk
        end = addr + cls
        if end > KMALLOC_END:
            raise OutOfMemory("kmalloc region exhausted")
        # Map any pages the chunk touches that are not yet mapped.
        vpn = addr >> 12
        last_vpn = (end - 1) >> 12
        while vpn <= last_vpn:
            if self.kernel_pt.lookup(vpn) is None:
                frame = self.physmem.alloc_frame()
                self.kernel_pt.map(vpn, PTE(frame, perms=PERM_R | PERM_W))
            vpn += 1
        self._brk = end
        return addr

    # ---------------------------------------------------------------- API

    def kmalloc(self, size: int, site: str = "?") -> int:
        """Allocate ``size`` bytes; returns the kernel virtual address."""
        if size <= 0:
            raise AllocatorMisuse(f"kmalloc of non-positive size {size}")
        cls = size_class_for(size)
        self.clock.charge(self.costs.kmalloc, Mode.SYSTEM)
        if self.faults is not None and \
                self.faults.should_fail("kmalloc", site) is not None:
            raise OutOfMemory(f"kmalloc({size}) at {site}: fault-injected")
        mags = self._magazines
        if mags is not None:
            mag = mags[self.clock.cpu].get(cls)
            if mag:
                # Lock-free per-CPU fast path: no shared state touched.
                addr = mag.pop()
                self.clock.charge(self.costs.kmalloc_magazine, Mode.SYSTEM)
                self.live[addr] = (size, cls)
                self.magazine_hits += 1
                self.total_allocs += 1
                self.bytes_requested += size
                return addr
        guard = self.lock.guard("kmalloc") if self.lock is not None \
            else nullcontext()
        with guard:
            freelist = self._freelists[cls]
            addr = freelist.pop() if freelist else self._grow(cls)
            self.live[addr] = (size, cls)
            if mags is not None and freelist:
                # Refill this CPU's magazine while the lock is held.
                mag = mags[self.clock.cpu].setdefault(cls, [])
                while freelist and len(mag) < self.magazine_batch:
                    mag.append(freelist.pop())
                self.magazine_refills += 1
        self.total_allocs += 1
        self.bytes_requested += size
        return addr

    def kfree(self, addr: int) -> None:
        """Free a kmalloc'ed address; detects double/invalid frees."""
        self.clock.charge(self.costs.kfree, Mode.SYSTEM)
        mags = self._magazines
        if mags is not None:
            entry = self.live.pop(addr, None)
            if entry is None:
                raise AllocatorMisuse(
                    f"kfree of address {addr:#x} not allocated by kmalloc")
            _, cls = entry
            mag = mags[self.clock.cpu].setdefault(cls, [])
            if len(mag) < self.magazine_cap:
                # Lock-free per-CPU fast path.
                self.clock.charge(self.costs.kmalloc_magazine, Mode.SYSTEM)
                mag.append(addr)
            else:
                # Magazine full: flush half of it plus this address back to
                # the shared freelist under the lock.
                guard = self.lock.guard("kfree") if self.lock is not None \
                    else nullcontext()
                with guard:
                    freelist = self._freelists[cls]
                    for _ in range(self.magazine_cap // 2):
                        freelist.append(mag.pop())
                    freelist.append(addr)
                self.magazine_flushes += 1
            self.total_frees += 1
            return
        guard = self.lock.guard("kfree") if self.lock is not None \
            else nullcontext()
        with guard:
            entry = self.live.pop(addr, None)
            if entry is None:
                raise AllocatorMisuse(
                    f"kfree of address {addr:#x} not allocated by kmalloc")
            _, cls = entry
            self._freelists[cls].append(addr)
        self.total_frees += 1

    def ksize(self, addr: int) -> int:
        """Requested size of a live allocation."""
        entry = self.live.get(addr)
        if entry is None:
            raise AllocatorMisuse(f"ksize of dead address {addr:#x}")
        return entry[0]

    @property
    def live_bytes(self) -> int:
        return sum(size for size, _ in self.live.values())
