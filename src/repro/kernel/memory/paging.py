"""Page tables and address spaces.

A :class:`PTE` carries the permission bits and the two flags the paper's
tools hook into: ``guard`` marks a Kefence guardian PTE (§3.2) and ``user``
distinguishes user from kernel mappings (the basis of the uaccess checks).

Kernel mappings (direct map + vmalloc area) live in a single shared
:class:`PageTable`; each :class:`AddressSpace` combines the shared kernel
table with a private user table, exactly as every Linux process shares the
kernel half of its address space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.memory.layout import KERNEL_BASE, PAGE_SHIFT, vpn_of

PERM_R = 1
PERM_W = 2
PERM_X = 4


@dataclass(slots=True)
class PTE:
    """One page-table entry."""

    frame: int
    perms: int = PERM_R | PERM_W
    present: bool = True
    guard: bool = False
    user: bool = False

    def allows(self, access: str) -> bool:
        """Whether this PTE permits an ``'r'``/``'w'``/``'x'`` access."""
        if not self.present:
            return False
        if access == "r":
            need = PERM_R
        elif access == "w":
            need = PERM_W
        else:
            need = PERM_X
        return bool(self.perms & need)


class PageTable:
    """A sparse vpn → PTE map."""

    def __init__(self) -> None:
        self._entries: dict[int, PTE] = {}

    def map(self, vpn: int, pte: PTE) -> None:
        self._entries[vpn] = pte

    def unmap(self, vpn: int) -> PTE | None:
        return self._entries.pop(vpn, None)

    def lookup(self, vpn: int) -> PTE | None:
        return self._entries.get(vpn)

    def mapped_vpns(self) -> list[int]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class AddressSpace:
    """A process view of memory: private user half + shared kernel half."""

    def __init__(self, kernel_pt: PageTable):
        self.user_pt = PageTable()
        self.kernel_pt = kernel_pt

    def table_for(self, vaddr: int) -> PageTable:
        return self.kernel_pt if vaddr >= KERNEL_BASE else self.user_pt

    def lookup(self, vaddr: int) -> PTE | None:
        # hot path: every simulated byte access lands here — avoid the
        # table_for/vpn_of call chain
        pt = self.kernel_pt if vaddr >= KERNEL_BASE else self.user_pt
        return pt._entries.get(vaddr >> PAGE_SHIFT)

    def map_page(self, vaddr: int, pte: PTE) -> None:
        self.table_for(vaddr).map(vpn_of(vaddr), pte)

    def unmap_page(self, vaddr: int) -> PTE | None:
        return self.table_for(vaddr).unmap(vpn_of(vaddr))
