"""Reference counters, instrumentable via the kernel event hook.

The §3.3 monitors verify that "reference counters are incremented and
decremented symmetrically"; this class is the kernel-side object they watch.
Underflow is detected eagerly (it would be a use-after-free in a real
kernel); symmetry over a whole trace is the monitor's job.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvariantViolation
from repro.kernel.locks import EV_REF_DEC, EV_REF_INC

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


class RefCount:
    """An atomic_t-style reference counter with event emission."""

    def __init__(self, kernel: "Kernel", name: str, initial: int = 1,
                 *, instrumented: bool = False):
        if initial < 0:
            raise ValueError("initial refcount must be >= 0")
        self.kernel = kernel
        self.name = name
        self.value = initial
        self.instrumented = instrumented or getattr(
            kernel, "instrument_all_refcounts", False)
        self.incs = 0
        self.decs = 0

    def get(self, site: str = "?") -> int:
        """Increment (take a reference); returns the new value."""
        self.value += 1
        self.incs += 1
        if self.instrumented:
            self.kernel.log_event(self, EV_REF_INC, site)
        return self.value

    def put(self, site: str = "?") -> int:
        """Decrement (drop a reference); returns the new value.
        Dropping below zero is an immediate invariant violation."""
        if self.value == 0:
            raise InvariantViolation(
                "refcount-no-underflow",
                f"'{self.name}' decremented below zero (at {site})",
            )
        self.value -= 1
        self.decs += 1
        if self.instrumented:
            self.kernel.log_event(self, EV_REF_DEC, site)
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"RefCount({self.name!r}, value={self.value})"
