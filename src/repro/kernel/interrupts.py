"""Interrupts: an IRQ controller and a periodic timer.

Two roles in the reproduction:

* the §3.3 monitors verify that "interrupts that are disabled are later
  re-enabled" — :class:`IrqController` emits the disable/enable events
  they watch;
* the paper stresses that the lock-free ring buffer lets one "instrument
  code that is invoked during interrupt handlers without fear that the
  interrupt handler will block" — :class:`TimerInterrupt` runs handlers
  at interrupt time (hooked off the scheduler's preemption points) that
  may themselves emit events, exercising exactly that path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import InvariantViolation
from repro.kernel.clock import Mode
from repro.kernel.locks import EV_IRQ_DISABLE, EV_IRQ_ENABLE

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

#: cycles for cli/sti and for interrupt entry/exit
IRQ_TOGGLE_COST = 20
IRQ_DISPATCH_COST = 400


class IrqController:
    """CPU interrupt-enable state with save/restore nesting.

    Mirrors ``local_irq_save``/``local_irq_restore``: disables nest, and
    the §3.3 invariant is that every disable is eventually matched.

    Interrupt state is architecturally *per-CPU* (the eflags IF bit): on
    an SMP kernel the nesting depth is a per-CPU array indexed by the
    executing CPU, so cpu1 disabling interrupts leaves cpu0's enabled.
    Single-CPU kernels keep the original scalar depth.
    """

    def __init__(self, kernel: "Kernel", *, instrumented: bool = False):
        self.kernel = kernel
        self.instrumented = instrumented
        self.toggles = 0
        ncpus = getattr(kernel, "ncpus", 1)
        self._depths: list[int] | None = [0] * ncpus if ncpus > 1 else None
        self._depth = 0

    @property
    def disable_depth(self) -> int:
        """Nesting depth on the executing CPU."""
        if self._depths is None:
            return self._depth
        return self._depths[self.kernel.clock.cpu]

    @property
    def enabled(self) -> bool:
        return self.disable_depth == 0

    def local_irq_disable(self, site: str = "?") -> None:
        self.kernel.clock.charge(IRQ_TOGGLE_COST, Mode.SYSTEM)
        if self._depths is None:
            self._depth += 1
            depth = self._depth
        else:
            cpu = self.kernel.clock.cpu
            self._depths[cpu] += 1
            depth = self._depths[cpu]
        if depth == 1:
            # irqsoff tracer: the section starts at the 0->1 transition.
            prof = getattr(self.kernel, "prof", None)
            if prof is not None and prof.enabled:
                clock = self.kernel.clock
                prof.irq_disabled(clock.cpu, clock.local_now())
        self.toggles += 1
        ld = getattr(self.kernel, "lockdep", None)
        if ld is not None:
            ld.irq_disable()
        if self.instrumented:
            self.kernel.log_event(self, EV_IRQ_DISABLE, site)

    def local_irq_enable(self, site: str = "?") -> None:
        if self.disable_depth == 0:
            raise InvariantViolation(
                "irq-balanced", f"enable with interrupts already on (at {site})")
        self.kernel.clock.charge(IRQ_TOGGLE_COST, Mode.SYSTEM)
        if self._depths is None:
            self._depth -= 1
            depth = self._depth
        else:
            cpu = self.kernel.clock.cpu
            self._depths[cpu] -= 1
            depth = self._depths[cpu]
        if depth == 0:
            # irqsoff tracer: the section ends at the 1->0 transition.
            prof = getattr(self.kernel, "prof", None)
            if prof is not None and prof.enabled:
                clock = self.kernel.clock
                prof.irq_enabled(clock.cpu, clock.local_now())
        self.toggles += 1
        ld = getattr(self.kernel, "lockdep", None)
        if ld is not None:
            ld.irq_enable()
        if self.instrumented:
            self.kernel.log_event(self, EV_IRQ_ENABLE, site)

    class _Guard:
        def __init__(self, ctl: "IrqController", site: str):
            self._ctl, self._site = ctl, site

        def __enter__(self):
            self._ctl.local_irq_disable(self._site)
            return self._ctl

        def __exit__(self, *exc):
            self._ctl.local_irq_enable(self._site)
            return False

    def irqs_off(self, site: str = "?") -> "_Guard":
        """``with irq.irqs_off():`` — a local_irq_save/restore pair."""
        return IrqController._Guard(self, site)


IrqHandler = Callable[[], None]


class TimerInterrupt:
    """A periodic timer that fires at scheduler preemption points.

    Handlers run "at interrupt time": interrupts are disabled around them
    and they must not block — which they cannot, because the only
    monitoring path available to them is the lock-free ring buffer.
    """

    def __init__(self, kernel: "Kernel", irq: IrqController,
                 period_cycles: int = 1_000_000):
        if period_cycles <= 0:
            raise ValueError("timer period must be positive")
        self.kernel = kernel
        self.irq = irq
        self.period_cycles = period_cycles
        self.handlers: list[IrqHandler] = []
        self.fires = 0
        self._last_fire = kernel.clock.now
        self._armed = False

    def register_handler(self, handler: IrqHandler) -> None:
        self.handlers.append(handler)

    def arm(self) -> None:
        if not self._armed:
            self.kernel.sched.add_preempt_hook(self._on_preempt)
            self._armed = True

    def disarm(self) -> None:
        if self._armed:
            self.kernel.sched.remove_preempt_hook(self._on_preempt)
            self._armed = False

    def _on_preempt(self, task) -> None:
        now = self.kernel.clock.now
        while now - self._last_fire >= self.period_cycles:
            self._last_fire += self.period_cycles
            self.fire()

    def fire(self) -> None:
        """One tick: IRQ entry, handlers with interrupts off, IRQ exit."""
        self.fires += 1
        self.kernel.clock.charge(IRQ_DISPATCH_COST, Mode.SYSTEM)
        ld = getattr(self.kernel, "lockdep", None)
        if ld is not None:
            ld.hardirq_enter()
        try:
            with self.irq.irqs_off("timer:tick"):
                for handler in self.handlers:
                    handler()
        finally:
            if ld is not None:
                ld.hardirq_exit()
