"""CPU topology for the SMP simulation (docs/SMP.md).

A :class:`Kernel` boots with ``cpus=N`` simulated CPUs (or ``REPRO_CPUS``
from the environment).  Each CPU owns a :class:`Cpu` record — its
runqueue, its current task, and its runqueue lock — kept by the
scheduler.  The simulation stays cooperative: exactly one CPU executes
Python code at any moment (:attr:`Clock.cpu`, the "camera"), and
parallelism is *accounted* through the per-CPU local clocks rather than
executed — see the merge rule in :mod:`repro.kernel.clock`.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.locks import SpinLock
    from repro.kernel.process import Task

#: environment knob: default CPU count for every booted kernel (CI smp job).
ENV_CPUS = "REPRO_CPUS"

#: sanity ceiling — the simulation is O(cpus) in several per-CPU sweeps.
MAX_CPUS = 64


def resolve_cpus(cpus: int | None = None) -> int:
    """CPU count for a booting kernel: explicit argument wins, then
    ``REPRO_CPUS``, then 1 (the original single-CPU machine)."""
    if cpus is None:
        raw = os.environ.get(ENV_CPUS, "").strip()
        cpus = int(raw) if raw else 1
    if not 1 <= cpus <= MAX_CPUS:
        raise ValueError(f"cpus must be in [1, {MAX_CPUS}], got {cpus}")
    return cpus


class Cpu:
    """Per-CPU scheduler state: one runqueue, one current task.

    The runqueue lock (``runqueue_lock``, one instance per CPU sharing a
    lockdep class) is only created on SMP kernels; its cycle cost is
    subsumed by ``context_switch`` so taking it charges nothing — what it
    buys is lockdep coverage of the SMP lock hierarchy, including the
    ordered double acquisition work stealing performs.
    """

    __slots__ = ("id", "runqueue", "current", "last_switch", "rq_lock")

    def __init__(self, cid: int):
        self.id = cid
        self.runqueue: list[Task] = []
        self.current: Task | None = None
        #: local-clock timestamp of the last context switch on this CPU.
        self.last_switch = 0
        self.rq_lock: SpinLock | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cur = self.current.pid if self.current is not None else None
        return f"Cpu({self.id}, rq={len(self.runqueue)}, current={cur})"
