"""The simulated-kernel substrate.

Everything the paper's systems run on: a cycle-accounted clock, demand-paged
memory with a faulting MMU, x86-style segmentation, kmalloc/vmalloc, a
preemptive scheduler, a VFS with a dcache, concrete filesystems, and a
syscall layer that meters every boundary crossing.
"""

from repro.kernel.clock import Clock, ClockSnapshot, Mode, Timings
from repro.kernel.costs import (CostModel, DEFAULT_COSTS, DiskProfile,
                                IDE_7200RPM, SCSI_15KRPM)
from repro.kernel.core import Kernel
from repro.kernel.faultinject import (FAILPOINTS, FaultRecord, FaultRegistry,
                                      Injection, arm_from_env)
from repro.kernel.process import Task
from repro.kernel.locks import SpinLock, Semaphore
from repro.kernel.refcount import RefCount

__all__ = [
    "Clock", "ClockSnapshot", "Mode", "Timings",
    "CostModel", "DEFAULT_COSTS", "DiskProfile", "IDE_7200RPM", "SCSI_15KRPM",
    "Kernel", "Task", "SpinLock", "Semaphore", "RefCount",
    "FAILPOINTS", "FaultRecord", "FaultRegistry", "Injection", "arm_from_env",
]
