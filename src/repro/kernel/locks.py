"""Spinlocks and semaphores, instrumentable via the kernel event hook.

The simulation is cooperative, so locks never truly spin in Python; what
matters for the paper is (a) their acquisition *cost* — including genuine
cross-CPU contention on SMP kernels, where overlapping hold intervals on
the per-CPU wall clocks charge bounded spin cycles (docs/SMP.md) — (b)
their *hit counts* (§3.3 reports dcache_lock at ~8,805 hits/second under
PostMark), and (c) the lock/unlock *event stream* the monitors check
invariants over.

Each lock takes the owning kernel's ``log_event`` hook so that when an event
dispatcher is attached (§3.3) every acquire/release is observable, and when
none is attached the hook costs nothing — matching "vanilla" vs
"instrumented" kernels in the evaluation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

# Event type codes shared with the monitor package.
EV_LOCK = 1
EV_UNLOCK = 2
EV_SEM_DOWN = 3
EV_SEM_UP = 4
EV_REF_INC = 5
EV_REF_DEC = 6
EV_IRQ_DISABLE = 7
EV_IRQ_ENABLE = 8


class SpinLock:
    """A kernel spinlock with acquisition accounting and event emission.

    On an SMP kernel (``kernel.ncpus > 1``) acquisitions can be genuinely
    *cross-CPU contended*: the lock remembers which CPU last released it
    and at what local time; when a different CPU whose local clock is
    still *behind* that release acquires the lock, the two hold intervals
    overlap on the simulated wall clock and the acquirer spins.  The spin
    charge is ``min(overlap, last hold, costs.spinlock_contend_cap)`` —
    bounded by the owner's actual critical-section length (a spinner never
    waits longer than the lock was held) and by a backoff/fairness cap, so
    contention costs cycles without serializing the CPUs' local clocks.  Contended cycles accumulate in
    :attr:`contention_cycles` (surfaced to lockprof via the monitor event
    ``value`` field).

    ``charge=False`` builds an accounting-free lock (used for per-CPU
    runqueue locks whose cost is priced into ``context_switch``): it
    still tracks holders and reports to lockdep, but never touches the
    clock and never contends.
    """

    def __init__(self, kernel: "Kernel", name: str, *,
                 instrumented: bool = False, charge: bool = True):
        self.kernel = kernel
        self.name = name
        self.instrumented = instrumented or getattr(
            kernel, "instrument_all_locks", False)
        self.charged = charge
        self.held = False
        self.holder_pid: int | None = None
        self.holder_cpu: int | None = None
        self.acquisitions = 0
        self.contentions = 0
        self.contention_cycles = 0
        self._acquired_at = 0
        self._acquired_local = 0
        self._last_unlock_cpu: int | None = None
        self._last_unlock_local = 0
        self._last_hold_cycles = 0

    @property
    def value(self) -> int:
        """Monitor-event payload: cumulative contended cycles, letting a
        dispatcher callback (lockprof) separate contended acquisitions
        from the uncontended fast path."""
        return self.contention_cycles

    def lock(self, site: str = "?", *, subclass: int = 0) -> None:
        if self.held:
            # One execution context: re-acquiring a held spinlock is a
            # self-deadlock (cross-CPU holds never overlap an acquisition
            # in the cooperative simulation — overlap is modeled below).
            raise InvariantViolation(
                "spinlock-no-recursion",
                f"'{self.name}' re-acquired while held (at {site})",
            )
        ld = getattr(self.kernel, "lockdep", None)
        if ld is not None:
            ld.acquire(self, "spin", site, subclass=subclass)
        clock = self.kernel.clock
        if self.charged:
            if self.kernel.faults.should_fail(
                    "lock.acquire", self.name) is not None:
                # Injected contention: another CPU "held" the lock, so this
                # acquisition spins for a schedule-away-and-back round trip.
                self.contentions += 1
                spin = 2 * self.kernel.costs.context_switch
                self.contention_cycles += spin
                clock.charge(spin)
                tracer = self.kernel.trace
                if tracer.enabled:
                    tracer.complete("lock:contention", "lock", spin,
                                    lock=self.name, site=site)
            if getattr(self.kernel, "ncpus", 1) > 1 and \
                    self._last_unlock_cpu is not None and \
                    self._last_unlock_cpu != clock.cpu:
                # Cross-CPU contention: the previous holder ran on another
                # CPU and, on the wall clock, had not yet released the lock
                # when this CPU reached the acquisition.  A spinner waits
                # for the *remaining hold*, which is at most the owner's
                # whole critical section — not the raw clock skew between
                # the CPUs, which can be arbitrarily large in the
                # cooperative schedule.
                wait = self._last_unlock_local - clock.local_now()
                if wait > 0:
                    hold = max(self._last_hold_cycles,
                               self.kernel.costs.spinlock_pair)
                    spin = min(wait, hold,
                               self.kernel.costs.spinlock_contend_cap)
                    self.contentions += 1
                    self.contention_cycles += spin
                    clock.charge(spin)
                    tracer = self.kernel.trace
                    if tracer.enabled:
                        tracer.complete(
                            "lock:contention", "lock", spin, lock=self.name,
                            site=site, cpu=clock.cpu,
                            holder_cpu=self._last_unlock_cpu)
            clock.charge(self.kernel.costs.spinlock_pair // 2)
        self.held = True
        self.holder_pid = self.kernel.current.pid if self.kernel.current else None
        self.holder_cpu = clock.cpu
        self.acquisitions += 1
        self._acquired_at = clock.now
        self._acquired_local = clock.local_now()
        if self.instrumented:
            self.kernel.log_event(self, EV_LOCK, site)

    def unlock(self, site: str = "?", *, subclass: int = 0) -> None:
        if not self.held:
            raise InvariantViolation(
                "spinlock-balanced",
                f"'{self.name}' released while not held (at {site})",
            )
        ld = getattr(self.kernel, "lockdep", None)
        if ld is not None:
            ld.release(self, "spin", site, subclass=subclass)
        clock = self.kernel.clock
        if self.charged:
            clock.charge(self.kernel.costs.spinlock_pair -
                         self.kernel.costs.spinlock_pair // 2)
            if getattr(self.kernel, "ncpus", 1) > 1:
                self._last_unlock_cpu = clock.cpu
                self._last_unlock_local = clock.local_now()
                self._last_hold_cycles = max(
                    0, self._last_unlock_local - self._acquired_local)
        self.held = False
        self.holder_pid = None
        self.holder_cpu = None
        if self.instrumented:
            self.kernel.log_event(self, EV_UNLOCK, site)

    class _Guard:
        def __init__(self, lk: "SpinLock", site: str, subclass: int = 0):
            self._lk, self._site, self._sub = lk, site, subclass

        def __enter__(self):
            self._lk.lock(self._site, subclass=self._sub)
            return self._lk

        def __exit__(self, *exc):
            self._lk.unlock(self._site, subclass=self._sub)
            return False

    def guard(self, site: str = "?", *, subclass: int = 0) -> "_Guard":
        """``with lock.guard(site):`` — exception-safe lock/unlock pair."""
        return SpinLock._Guard(self, site, subclass)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SpinLock({self.name!r}, held={self.held}, hits={self.acquisitions})"


class Semaphore:
    """A counting semaphore — the kernel's *sleeping* lock.

    The contended ``down()`` slow path blocks on a wait queue through the
    scheduler, exactly like ``__down()``: the task is marked blocked and
    charged the schedule-away-and-back round trip, and the holder's
    ``up()`` wakes the queue.  (Cooperative single-CPU simulation: by the
    time the sleeper runs again the holder has released, so the semaphore
    transfers to the woken task.)  Because acquisition may block,
    semaphores are ``sleep``-kind locks to lockdep — legal to hold across
    blocking, illegal to take in atomic context.
    """

    def __init__(self, kernel: "Kernel", name: str, count: int = 1,
                 *, instrumented: bool = False):
        if count < 0:
            raise ValueError("semaphore count must be >= 0")
        self.kernel = kernel
        self.name = name
        self.count = count
        self.instrumented = instrumented
        self.downs = 0
        self.contended = 0
        self._wq = None   # created on first contention (needs the scheduler)
        #: binary semaphores are mutex-like and get full lockdep order
        #: tracking; counting semaphores are resource counters (multiple
        #: downs by one task are legal) and only get the might_sleep check.
        self._mutex_like = count == 1

    def _wait_queue(self):
        if self._wq is None:
            from repro.kernel.sched import WaitQueue
            self._wq = WaitQueue(self.kernel, f"sem:{self.name}")
        return self._wq

    def down(self, site: str = "?", *, subclass: int = 0) -> None:
        ld = getattr(self.kernel, "lockdep", None)
        if ld is not None:
            if self._mutex_like:
                ld.acquire(self, "sleep", site, subclass=subclass)
            else:
                ld.might_sleep(site, what=f"down() on semaphore "
                                          f"'{self.name}'")
        if self.count == 0:
            # Contended: sleep on the wait queue until the holder's up().
            self.contended += 1
            self.kernel.metrics.counter(
                "sem.contended",
                help="semaphore down() slow paths (blocked)").inc()
            self._wait_queue().sleep(site)
            self.count = 1  # woken: the holder released it meanwhile
        self.count -= 1
        self.downs += 1
        if self.instrumented:
            self.kernel.log_event(self, EV_SEM_DOWN, site)

    def up(self, site: str = "?", *, subclass: int = 0) -> None:
        ld = getattr(self.kernel, "lockdep", None)
        if ld is not None and self._mutex_like:
            ld.release(self, "sleep", site, subclass=subclass)
        self.count += 1
        if self._wq is not None and self._wq.waiters:
            self._wq.wake_all(site)
        if self.instrumented:
            self.kernel.log_event(self, EV_SEM_UP, site)

    class _Guard:
        def __init__(self, sem: "Semaphore", site: str, subclass: int):
            self._sem, self._site, self._sub = sem, site, subclass

        def __enter__(self):
            self._sem.down(self._site, subclass=self._sub)
            return self._sem

        def __exit__(self, *exc):
            self._sem.up(self._site, subclass=self._sub)
            return False

    def guard(self, site: str = "?", *, subclass: int = 0) -> "_Guard":
        """``with sem.guard(site):`` — exception-safe down/up pair."""
        return Semaphore._Guard(self, site, subclass)
