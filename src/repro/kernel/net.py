"""A minimal socket layer and the ``sendfile`` consolidated syscall.

§2.1 motivates syscall consolidation with the canonical server hot path:
"read a file from disk and send it over the network to a remote client.
To speed up this common action, AIX and Linux created a system call called
sendfile ... HTTP servers using these system calls report performance
improvements ranging from 92% to 116%."  §2.4 plans "new system call
suites that cater to [server] workloads".

This module supplies the substrate: loopback socket pairs whose data
lives in kernel buffers, plus ``sendfile(out, in, offset, count)`` — the
file→socket path executed entirely in kernel mode, eliminating the
read/write loop's extra traps and its user-space bounce buffer.

Sockets live in the fd table like any file: :class:`SocketInode` is an
inode whose ``read``/``write`` move bytes through the peer's in-kernel
receive queue, so the generic read/write/close syscalls work unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.errors import EINVAL, EPERM, raise_errno
from repro.kernel.clock import Mode
from repro.kernel.vfs.file import File, O_RDWR
from repro.kernel.vfs.inode import Inode
from repro.kernel.vfs.super import SuperBlock

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

#: simulated NIC/loopback cost per byte moved into a socket buffer
SOCK_COPY_PER_BYTE = 0.3
SOCK_OP_COST = 220

S_IFSOCK = 0o140000


class SockFS(SuperBlock):
    """The anonymous superblock socket inodes hang off (like Linux sockfs)."""

    def __init__(self, kernel: "Kernel"):
        super().__init__(kernel, "sockfs")


class SocketInode(Inode):
    """One endpoint of a connected (loopback) socket pair."""

    def __init__(self, sb: SockFS):
        super().__init__(sb, sb.alloc_ino(), S_IFSOCK | 0o600)
        self.rx: deque[bytes] = deque()
        self.rx_bytes = 0
        self.peer: "SocketInode | None" = None
        self.shutdown = False
        self.bytes_sent = 0
        self.bytes_received = 0

    def _charge(self, nbytes: int) -> None:
        self.sb.kernel.clock.charge(
            SOCK_OP_COST + int(nbytes * SOCK_COPY_PER_BYTE), Mode.SYSTEM)

    # ------------------------------------------------------------- data ops
    # Offsets are meaningless on sockets; streams consume in order.

    def read(self, offset: int, size: int) -> bytes:
        if size < 0:
            raise_errno(EINVAL, "negative socket read")
        out = bytearray()
        while self.rx and len(out) < size:
            chunk = self.rx[0]
            take = min(len(chunk), size - len(out))
            out += chunk[:take]
            if take == len(chunk):
                self.rx.popleft()
            else:
                self.rx[0] = chunk[take:]
        self.rx_bytes -= len(out)
        self.bytes_received += len(out)
        self._charge(len(out))
        return bytes(out)

    def write(self, offset: int, data: bytes) -> int:
        peer = self.peer
        if peer is None or peer.shutdown:
            raise_errno(EPERM, "write on a disconnected socket")
        peer.rx.append(bytes(data))
        peer.rx_bytes += len(data)
        self.bytes_sent += len(data)
        self._charge(len(data))
        return len(data)

    def truncate(self, size: int) -> None:
        raise_errno(EINVAL, "cannot truncate a socket")

    @property
    def pending(self) -> int:
        """Bytes queued for reading on this endpoint."""
        return self.rx_bytes

    def close_endpoint(self) -> None:
        self.shutdown = True


class SocketLayer:
    """Socket syscall extensions installed onto a kernel.

    Installs ``socketpair`` and ``sendfile`` methods onto ``kernel.sys``
    the way a loadable protocol module extends the syscall table.
    """

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.sockfs = SockFS(kernel)
        self.pairs_created = 0
        sys = kernel.sys
        sys.socketpair = self._socketpair_entry
        sys.sendfile = self._sendfile_entry
        sys.do_socketpair = self.do_socketpair
        sys.do_sendfile = self.do_sendfile

    # ------------------------------------------------------------ syscalls

    def _socketpair_entry(self) -> tuple[int, int]:
        return self.kernel.sys._dispatch("socketpair", self.do_socketpair, ())

    def _sendfile_entry(self, out_fd: int, in_fd: int, offset: int,
                        count: int) -> int:
        return self.kernel.sys._dispatch(
            "sendfile",
            lambda: self.do_sendfile(out_fd, in_fd, offset, count),
            (out_fd, in_fd, offset, count))

    def do_socketpair(self) -> tuple[int, int]:
        """Create a connected pair; returns two fds in the current task."""
        task = self.kernel.current
        a = SocketInode(self.sockfs)
        b = SocketInode(self.sockfs)
        a.peer, b.peer = b, a
        self.sockfs.register_inode(a)
        self.sockfs.register_inode(b)
        self.pairs_created += 1
        from repro.kernel.vfs.dentry import Dentry
        fd_a = task.alloc_fd(File(Dentry(f"sock:{a.ino}", None, a), O_RDWR))
        fd_b = task.alloc_fd(File(Dentry(f"sock:{b.ino}", None, b), O_RDWR))
        return fd_a, fd_b

    def do_sendfile(self, out_fd: int, in_fd: int, offset: int,
                    count: int) -> int:
        """file → socket entirely in kernel mode (one trap, no uaccess)."""
        if count < 0 or offset < 0:
            raise_errno(EINVAL, "negative sendfile offset/count")
        sys = self.kernel.sys
        src = sys._file_for(in_fd)
        dst = sys._file_for(out_fd)
        src.check_readable()
        dst.check_writable()
        if isinstance(src.inode, SocketInode):
            raise_errno(EINVAL, "sendfile source must be a regular file")
        sent = 0
        pos = offset
        while sent < count:
            chunk = src.inode.read(pos, min(65536, count - sent))
            if not chunk:
                break
            # in-kernel handoff: page-cache pages feed the socket directly
            self.kernel.clock.charge(
                self.kernel.costs.memcpy_cost(len(chunk)), Mode.SYSTEM)
            dst.inode.write(0, chunk)
            pos += len(chunk)
            sent += len(chunk)
        return sent
