"""x86-style segmentation: descriptors, a descriptor table, checked access.

Cosy (§2.3) protects the kernel from user-supplied functions with
segmentation rather than paging: the function's data (and, in the
full-isolation mode, its code) is confined to a segment, and *any* reference
outside the segment limit raises a protection fault in hardware.  This module
provides exactly that mechanism: a :class:`SegmentDescriptor` with
base/limit/permissions/DPL and a :func:`checked access <SegmentedView.read>`
wrapper over the MMU.

Two Cosy modes map onto it (see :mod:`repro.core.cosy.safety`):

* **full isolation** — code and data in two disjoint segments; calling the
  function costs a far call (:attr:`CostModel.far_call`) but self-modifying
  code is impossible because the code segment is execute-only.
* **data-only isolation** — only the data segment is switched; calls are
  near calls (no extra cost) but the code runs in the kernel segment, so
  protection depends on the code having come from Cosy-GCC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtectionFault
from repro.kernel.memory.mmu import MMU
from repro.kernel.memory.paging import AddressSpace

SEG_READ = 1
SEG_WRITE = 2
SEG_EXEC = 4

#: Descriptor privilege levels.
DPL_KERNEL = 0
DPL_USER = 3


@dataclass(frozen=True)
class SegmentDescriptor:
    """One GDT/LDT entry: a base/limit window with access rights."""

    base: int
    limit: int            # segment size in bytes; valid offsets are [0, limit)
    perms: int = SEG_READ | SEG_WRITE
    dpl: int = DPL_KERNEL
    name: str = "seg"

    def check(self, offset: int, size: int, access: str, selector: int) -> int:
        """Validate an ``access`` of ``size`` bytes at ``offset``; returns the
        linear address.  Raises :class:`ProtectionFault` on violation —
        the hardware check Cosy's isolation relies on."""
        need = {"r": SEG_READ, "w": SEG_WRITE, "x": SEG_EXEC}[access]
        if not (self.perms & need):
            raise ProtectionFault(selector, offset,
                                  f"segment '{self.name}' denies '{access}'")
        if offset < 0 or size < 0 or offset + size > self.limit:
            raise ProtectionFault(
                selector, offset,
                f"offset+size {offset}+{size} exceeds limit {self.limit} "
                f"of segment '{self.name}'",
            )
        return self.base + offset


class SegmentTable:
    """A descriptor table; selectors are indices."""

    def __init__(self) -> None:
        self._descriptors: list[SegmentDescriptor | None] = [None]  # 0 = null

    def install(self, desc: SegmentDescriptor) -> int:
        """Add a descriptor, returning its selector."""
        self._descriptors.append(desc)
        return len(self._descriptors) - 1

    def descriptor(self, selector: int) -> SegmentDescriptor:
        if not (1 <= selector < len(self._descriptors)) or \
                self._descriptors[selector] is None:
            raise ProtectionFault(selector, 0, "null or out-of-range selector")
        return self._descriptors[selector]  # type: ignore[return-value]

    def remove(self, selector: int) -> None:
        if 1 <= selector < len(self._descriptors):
            self._descriptors[selector] = None


class SegmentedView:
    """Memory access through a segment: every read/write is limit-checked.

    This is the only window Cosy gives a user-supplied function onto memory,
    so "any reference outside the isolated segment generates a protection
    fault" (§2.3) holds by construction.
    """

    def __init__(self, mmu: MMU, aspace: AddressSpace,
                 table: SegmentTable, selector: int):
        self.mmu = mmu
        self.aspace = aspace
        self.table = table
        self.selector = selector

    @property
    def descriptor(self) -> SegmentDescriptor:
        return self.table.descriptor(self.selector)

    @property
    def limit(self) -> int:
        return self.descriptor.limit

    def read(self, offset: int, size: int) -> bytes:
        lin = self.descriptor.check(offset, size, "r", self.selector)
        return self.mmu.read(self.aspace, lin, size)

    def write(self, offset: int, data: bytes) -> None:
        lin = self.descriptor.check(offset, len(data), "w", self.selector)
        self.mmu.write(self.aspace, lin, data)

    def read_i64(self, offset: int) -> int:
        return int.from_bytes(self.read(offset, 8), "little", signed=True)

    def write_i64(self, offset: int, value: int) -> None:
        self.write(offset, value.to_bytes(8, "little", signed=True))
