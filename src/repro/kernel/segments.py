"""x86-style segmentation: descriptors, a descriptor table, checked access.

Cosy (§2.3) protects the kernel from user-supplied functions with
segmentation rather than paging: the function's data (and, in the
full-isolation mode, its code) is confined to a segment, and *any* reference
outside the segment limit raises a protection fault in hardware.  This module
provides exactly that mechanism: a :class:`SegmentDescriptor` with
base/limit/permissions/DPL and a :func:`checked access <SegmentedView.read>`
wrapper over the MMU.

Two Cosy modes map onto it (see :mod:`repro.core.cosy.safety`):

* **full isolation** — code and data in two disjoint segments; calling the
  function costs a far call (:attr:`CostModel.far_call`) but self-modifying
  code is impossible because the code segment is execute-only.
* **data-only isolation** — only the data segment is switched; calls are
  near calls (no extra cost) but the code runs in the kernel segment, so
  protection depends on the code having come from Cosy-GCC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtectionFault
from repro.kernel.memory.layout import (KERNEL_BASE, PAGE_SHIFT, PAGE_SIZE,
                                        VMALLOC_BASE, VMALLOC_END)
from repro.kernel.memory.mmu import MMU
from repro.kernel.memory.paging import (PERM_R, PERM_W, AddressSpace)

SEG_READ = 1
SEG_WRITE = 2
SEG_EXEC = 4

#: Descriptor privilege levels.
DPL_KERNEL = 0
DPL_USER = 3


@dataclass(frozen=True, slots=True)
class SegmentDescriptor:
    """One GDT/LDT entry: a base/limit window with access rights."""

    base: int
    limit: int            # segment size in bytes; valid offsets are [0, limit)
    perms: int = SEG_READ | SEG_WRITE
    dpl: int = DPL_KERNEL
    name: str = "seg"

    def check(self, offset: int, size: int, access: str, selector: int) -> int:
        """Validate an ``access`` of ``size`` bytes at ``offset``; returns the
        linear address.  Raises :class:`ProtectionFault` on violation —
        the hardware check Cosy's isolation relies on."""
        if access == "r":
            need = SEG_READ
        elif access == "w":
            need = SEG_WRITE
        else:
            need = SEG_EXEC
        if not (self.perms & need):
            raise ProtectionFault(selector, offset,
                                  f"segment '{self.name}' denies '{access}'")
        if offset < 0 or size < 0 or offset + size > self.limit:
            raise ProtectionFault(
                selector, offset,
                f"offset+size {offset}+{size} exceeds limit {self.limit} "
                f"of segment '{self.name}'",
            )
        return self.base + offset


class SegmentTable:
    """A descriptor table; selectors are indices."""

    def __init__(self) -> None:
        self._descriptors: list[SegmentDescriptor | None] = [None]  # 0 = null

    def install(self, desc: SegmentDescriptor) -> int:
        """Add a descriptor, returning its selector."""
        self._descriptors.append(desc)
        return len(self._descriptors) - 1

    def descriptor(self, selector: int) -> SegmentDescriptor:
        if not (1 <= selector < len(self._descriptors)) or \
                self._descriptors[selector] is None:
            raise ProtectionFault(selector, 0, "null or out-of-range selector")
        return self._descriptors[selector]  # type: ignore[return-value]

    def remove(self, selector: int) -> None:
        if 1 <= selector < len(self._descriptors):
            self._descriptors[selector] = None


class SegmentedView:
    """Memory access through a segment: every read/write is limit-checked.

    This is the only window Cosy gives a user-supplied function onto memory,
    so "any reference outside the isolated segment generates a protection
    fault" (§2.3) holds by construction.
    """

    def __init__(self, mmu: MMU, aspace: AddressSpace,
                 table: SegmentTable, selector: int):
        self.mmu = mmu
        self.aspace = aspace
        self.table = table
        self.selector = selector
        # cached identities (never reassigned by their owners): one
        # attribute hop per access instead of two or three
        self._descs = table._descriptors
        self._physdata = mmu.physmem._data

    @property
    def descriptor(self) -> SegmentDescriptor:
        return self.table.descriptor(self.selector)

    @property
    def limit(self) -> int:
        return self.descriptor.limit

    def read(self, offset: int, size: int) -> bytes:
        # The limit check is inlined on the pass path; descriptor.check
        # re-runs only to raise with the full diagnostic.  Every C-minus
        # load in an isolated function lands here, so the MMU's
        # single-page TLB-hit path is inlined too — misses, faults and
        # straddling accesses fall back to mmu.read.
        sel = self.selector
        descs = self._descs
        desc = descs[sel] if 0 < sel < len(descs) else None
        if desc is None:
            desc = self.table.descriptor(sel)      # raises the right fault
        if offset < 0 or size < 0 or offset + size > desc.limit \
                or not (desc.perms & SEG_READ):
            desc.check(offset, size, "r", sel)
        vaddr = desc.base + offset
        mmu = self.mmu
        off = vaddr & (PAGE_SIZE - 1)
        if off + size <= PAGE_SIZE:
            vpn = vaddr >> PAGE_SHIFT
            aspace = self.aspace
            pt = aspace.kernel_pt if vaddr >= KERNEL_BASE else aspace.user_pt
            pte = pt._entries.get(vpn)
            if pte is not None and pte.present and pte.perms & PERM_R \
                    and vpn in mmu._tlb \
                    and not VMALLOC_BASE <= vaddr < VMALLOC_END:
                mmu._tlb.move_to_end(vpn)
                mmu.tlb_hits += 1
                data = self._physdata.get(pte.frame)
                if data is None:
                    data = mmu.physmem.frame_bytes(pte.frame)
                return bytes(data[off:off + size])
        return mmu.read(self.aspace, vaddr, size)

    def read_int(self, offset: int, size: int, signed: bool = False) -> int:
        """Fused scalar load — :meth:`read` + little-endian decode without
        the intermediate ``bytes`` copy.  Same checks, same charges."""
        sel = self.selector
        descs = self._descs
        desc = descs[sel] if 0 < sel < len(descs) else None
        if desc is None:
            desc = self.table.descriptor(sel)
        if offset < 0 or size < 0 or offset + size > desc.limit \
                or not (desc.perms & SEG_READ):
            desc.check(offset, size, "r", sel)
        vaddr = desc.base + offset
        mmu = self.mmu
        off = vaddr & (PAGE_SIZE - 1)
        if off + size <= PAGE_SIZE:
            vpn = vaddr >> PAGE_SHIFT
            aspace = self.aspace
            pt = aspace.kernel_pt if vaddr >= KERNEL_BASE else aspace.user_pt
            pte = pt._entries.get(vpn)
            if pte is not None and pte.present and pte.perms & PERM_R \
                    and vpn in mmu._tlb \
                    and not VMALLOC_BASE <= vaddr < VMALLOC_END:
                mmu._tlb.move_to_end(vpn)
                mmu.tlb_hits += 1
                data = self._physdata.get(pte.frame)
                if data is None:
                    data = mmu.physmem.frame_bytes(pte.frame)
                return int.from_bytes(data[off:off + size], "little",
                                      signed=signed)
        return int.from_bytes(mmu.read(self.aspace, vaddr, size), "little",
                              signed=signed)

    def write(self, offset: int, data: bytes) -> None:
        sel = self.selector
        descs = self._descs
        desc = descs[sel] if 0 < sel < len(descs) else None
        if desc is None:
            desc = self.table.descriptor(sel)
        size = len(data)
        if offset < 0 or offset + size > desc.limit \
                or not (desc.perms & SEG_WRITE):
            desc.check(offset, size, "w", sel)
        vaddr = desc.base + offset
        mmu = self.mmu
        off = vaddr & (PAGE_SIZE - 1)
        if off + size <= PAGE_SIZE:
            vpn = vaddr >> PAGE_SHIFT
            aspace = self.aspace
            pt = aspace.kernel_pt if vaddr >= KERNEL_BASE else aspace.user_pt
            pte = pt._entries.get(vpn)
            if pte is not None and pte.present and pte.perms & PERM_W \
                    and vpn in mmu._tlb \
                    and not VMALLOC_BASE <= vaddr < VMALLOC_END:
                mmu._tlb.move_to_end(vpn)
                mmu.tlb_hits += 1
                buf = self._physdata.get(pte.frame)
                if buf is None:
                    buf = mmu.physmem.frame_bytes(pte.frame)
                buf[off:off + size] = data
                return
        self.mmu.write(self.aspace, vaddr, data)

    def read_i64(self, offset: int) -> int:
        return int.from_bytes(self.read(offset, 8), "little", signed=True)

    def write_i64(self, offset: int, value: int) -> None:
        self.write(offset, value.to_bytes(8, "little", signed=True))
