"""Tasks (processes) and per-task user memory.

A :class:`Task` owns an address space, a file-descriptor table, and the
kernel-time accounting the Cosy watchdog consumes.  :class:`UserMemory`
gives each task a demand-paged heap and stack so user buffers passed to
syscalls are real simulated memory — uaccess copies move actual bytes, and
the C-subset interpreter's pointers are real user virtual addresses.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.errors import EMFILE, OutOfMemory, raise_errno
from repro.kernel.memory.layout import PAGE_SIZE, vpn_of
from repro.kernel.memory.paging import AddressSpace, PERM_R, PERM_W, PTE

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.vfs.file import File

USER_HEAP_BASE = 0x0800_0000
USER_HEAP_END = 0x4000_0000
USER_STACK_TOP = 0xBFFF_0000
USER_STACK_LIMIT = 0xB000_0000
USER_SHARED_BASE = 0x5000_0000   # Cosy shared buffers are mapped here
USER_SHARED_END = 0x7000_0000

RLIMIT_NOFILE = 1024


class TaskState(enum.Enum):
    RUNNING = "running"
    READY = "ready"
    BLOCKED = "blocked"
    ZOMBIE = "zombie"


class UserMemory:
    """Demand-paged user heap/stack/shared regions for one task."""

    def __init__(self, kernel: "Kernel", aspace: AddressSpace):
        self.kernel = kernel
        self.aspace = aspace
        self._heap_brk = USER_HEAP_BASE
        self._stack_ptr = USER_STACK_TOP
        self._shared_cursor = USER_SHARED_BASE
        self._free: dict[int, list[int]] = {}
        self.live: dict[int, int] = {}  # addr -> size

    def _ensure_mapped(self, addr: int, size: int, perms: int = PERM_R | PERM_W) -> None:
        vpn = vpn_of(addr)
        last = vpn_of(addr + max(size, 1) - 1)
        while vpn <= last:
            if self.aspace.user_pt.lookup(vpn) is None:
                frame = self.kernel.physmem.alloc_frame()
                self.aspace.user_pt.map(vpn, PTE(frame, perms=perms, user=True))
            vpn += 1

    # ----------------------------------------------------------- heap

    def malloc(self, size: int) -> int:
        """User-level malloc: 16-byte-aligned bump allocation with freelists."""
        if size <= 0:
            raise ValueError("malloc of non-positive size")
        bucket = (size + 15) & ~15
        free = self._free.get(bucket)
        if free:
            addr = free.pop()
        else:
            addr = self._heap_brk
            self._heap_brk += bucket
            if self._heap_brk > USER_HEAP_END:
                raise OutOfMemory("user heap exhausted")
            self._ensure_mapped(addr, bucket)
        self.live[addr] = bucket
        return addr

    def free(self, addr: int) -> None:
        bucket = self.live.pop(addr, None)
        if bucket is None:
            raise OutOfMemory(f"free of unallocated user address {addr:#x}")
        self._free.setdefault(bucket, []).append(addr)

    # ----------------------------------------------------------- stack

    def push_frame(self, size: int) -> int:
        """Reserve a stack frame, returning its (lowest) address."""
        aligned = (size + 15) & ~15
        self._stack_ptr -= aligned
        if self._stack_ptr < USER_STACK_LIMIT:
            raise OutOfMemory("user stack overflow")
        self._ensure_mapped(self._stack_ptr, aligned)
        return self._stack_ptr

    def pop_frame(self, size: int) -> None:
        self._stack_ptr += (size + 15) & ~15
        if self._stack_ptr > USER_STACK_TOP:
            raise RuntimeError("user stack underflow")

    @property
    def stack_pointer(self) -> int:
        return self._stack_ptr

    # ---------------------------------------------------------- shared

    def map_shared(self, nbytes: int) -> int:
        """Map a page-aligned region shared with the kernel (Cosy buffers).

        The same frames are mapped at a user address *and* reachable through
        the kernel's direct access path, so data written by the kernel is
        visible to the user without a copy — the §2.3 zero-copy mechanism.
        """
        npages = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
        addr = self._shared_cursor
        self._shared_cursor += npages * PAGE_SIZE
        if self._shared_cursor > USER_SHARED_END:
            raise OutOfMemory("shared-map region exhausted")
        self._ensure_mapped(addr, npages * PAGE_SIZE)
        return addr


class Task:
    """One process."""

    _next_pid = 1

    def __init__(self, kernel: "Kernel", name: str):
        self.kernel = kernel
        self.pid = Task._next_pid
        Task._next_pid += 1
        self.name = name
        self.state = TaskState.READY
        #: CPU whose runqueue holds this task (docs/SMP.md); assigned by
        #: Scheduler.add_task, updated when work stealing migrates it.
        self.cpu = 0
        self.aspace = AddressSpace(kernel.kernel_pt)
        self.mem = UserMemory(kernel, self.aspace)
        self.fds: dict[int, "File"] = {}
        #: per-task descriptor-table limit (setrlimit-style; server tasks
        #: raising it is how 10⁴-client benchmarks stay within POSIX rules).
        self.rlimit_nofile = RLIMIT_NOFILE
        self._next_fd = 0  # invariant: the lowest free descriptor
        self.cwd = None  # set to the root dentry when the task first runs
        # Accounting consumed by the scheduler/watchdog (§2.3).
        self.kernel_entry_cycles: int | None = None
        self.kernel_time_used = 0
        self.syscall_count = 0
        # Per-task time attribution (getrusage-style), filled by dispatch.
        self.utime = 0
        self.stime = 0
        #: scenario tenant tag ("" = untagged); the scenario runner sets
        #: it so profiler samples and scheduling-delay SLOs group by tenant.
        self.tenant = ""
        #: global-clock stamp of the last READY transition (None = not
        #: waiting); consumed by Scheduler._note_scheduled.
        self.last_ready: int | None = None
        #: optional scheduling-delay histogram shared with the tenant's
        #: SLO record (repro.analysis.slo.TenantSlo.sched_delay).
        self.sched_delay = None

    # ------------------------------------------------------ fd management

    def alloc_fd(self, file: "File") -> int:
        """Install a file at the lowest free descriptor (POSIX rule).

        Amortized O(1): ``_next_fd`` tracks the lowest free slot, so a
        server holding thousands of open connections does not rescan its
        whole table per accept.
        """
        fd = self._next_fd
        if fd >= self.rlimit_nofile:
            raise_errno(EMFILE, "fd table full")
        self.fds[fd] = file
        nxt = fd + 1
        while nxt in self.fds:
            nxt += 1
        self._next_fd = nxt
        return fd

    def get_file(self, fd: int) -> "File | None":
        return self.fds.get(fd)

    def release_fd(self, fd: int) -> "File | None":
        if fd in self.fds and fd < self._next_fd:
            self._next_fd = fd
        return self.fds.pop(fd, None)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Task(pid={self.pid}, name={self.name!r}, state={self.state.value})"
