"""printk/syslog: the kernel log Kefence and the monitors report through."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.clock import Clock
    from repro.trace import Tracer

KERN_EMERG, KERN_ALERT, KERN_CRIT, KERN_ERR = 0, 1, 2, 3
KERN_WARNING, KERN_NOTICE, KERN_INFO, KERN_DEBUG = 4, 5, 6, 7

_LEVEL_NAMES = ["EMERG", "ALERT", "CRIT", "ERR",
                "WARNING", "NOTICE", "INFO", "DEBUG"]


@dataclass(frozen=True)
class LogRecord:
    level: int
    cycles: int
    message: str

    def __str__(self) -> str:
        return f"<{_LEVEL_NAMES[self.level]}> [{self.cycles}] {self.message}"


class Syslog:
    """An append-only kernel log with level filtering on read.

    Bound to a :class:`~repro.kernel.clock.Clock`, every record is stamped
    with ``Clock.now`` at emit time (callers used to have to pass the
    cycle count themselves, and the ones that didn't produced ``[0]``
    lines that sorted to the start of any merged timeline).  When a
    :class:`~repro.trace.Tracer` is attached, each line also emits a
    ``syslog`` instant tracepoint so log lines interleave correctly with
    trace spans in the exported timeline.
    """

    def __init__(self, clock: "Clock | None" = None,
                 tracer: "Tracer | None" = None) -> None:
        self.records: list[LogRecord] = []
        self.clock = clock
        self.tracer = tracer

    def printk(self, level: int, message: str, cycles: int | None = None) -> None:
        if not (0 <= level <= KERN_DEBUG):
            raise ValueError(f"bad log level {level}")
        if cycles is None:
            cycles = self.clock.now if self.clock is not None else 0
        self.records.append(LogRecord(level, cycles, message))
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant("syslog", "log", level=_LEVEL_NAMES[level],
                           message=message)

    def at_or_above(self, level: int) -> list[LogRecord]:
        """Records at severity >= ``level`` (numerically <=)."""
        return [r for r in self.records if r.level <= level]

    def grep(self, needle: str) -> list[LogRecord]:
        return [r for r in self.records if needle in r.message]

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
