"""printk/syslog: the kernel log Kefence and the monitors report through."""

from __future__ import annotations

from dataclasses import dataclass

KERN_EMERG, KERN_ALERT, KERN_CRIT, KERN_ERR = 0, 1, 2, 3
KERN_WARNING, KERN_NOTICE, KERN_INFO, KERN_DEBUG = 4, 5, 6, 7

_LEVEL_NAMES = ["EMERG", "ALERT", "CRIT", "ERR",
                "WARNING", "NOTICE", "INFO", "DEBUG"]


@dataclass(frozen=True)
class LogRecord:
    level: int
    cycles: int
    message: str

    def __str__(self) -> str:
        return f"<{_LEVEL_NAMES[self.level]}> [{self.cycles}] {self.message}"


class Syslog:
    """An append-only kernel log with level filtering on read."""

    def __init__(self) -> None:
        self.records: list[LogRecord] = []

    def printk(self, level: int, message: str, cycles: int = 0) -> None:
        if not (0 <= level <= KERN_DEBUG):
            raise ValueError(f"bad log level {level}")
        self.records.append(LogRecord(level, cycles, message))

    def at_or_above(self, level: int) -> list[LogRecord]:
        """Records at severity >= ``level`` (numerically <=)."""
        return [r for r in self.records if r.level <= level]

    def grep(self, needle: str) -> list[LogRecord]:
        return [r for r in self.records if needle in r.message]

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
