"""Deterministic fault injection: failpoints for the simulated kernel.

Linux hardens its error paths with *fault injection* (``failslab``,
``fail_make_request``, BPF error injection): named hooks on the success
path of fallible services that a test can arm to fail on demand.  This
module is the simulator's equivalent, with one extra property the real
facility lacks: **full determinism**.  Every policy is driven either by
hit counters or by a caller-supplied PRNG seed, so an identical seed and
workload reproduces the identical injection trace, byte for byte — which
is what makes failure-path bugs *regression-testable*.

Concepts:

* A **failpoint** is a named site class (``kmalloc``, ``disk.write``, ...)
  the kernel consults on its success path via
  :meth:`FaultRegistry.should_fail`.  With nothing armed the consultation
  is a single attribute check and charges no simulated cycles — a kernel
  with no faults configured behaves identically to one without the
  subsystem.
* An **injection** arms one failpoint with a *policy* (every-Nth hit,
  seeded probability, one-shot at hit K), an optional *site filter*
  (fnmatch glob over the call-site string), an optional cap on total
  injections, and the errno to deliver.  Injections are context managers::

      with kernel.faults.inject("kmalloc", errno=ENOMEM, every=3):
          workload()

* Every decision to inject appends a :class:`FaultRecord` to the
  registry's trace and logs a ``fault-inject:`` line to syslog, so both
  tests and `analysis/report.py` can account for exactly what fired where.

What an injection *means* is defined by the instrumented site:

====================  =====================================================
failpoint             effect when it fires
====================  =====================================================
``kmalloc``           :class:`~repro.errors.OutOfMemory` (ENOMEM at the
                      syscall boundary)
``vmalloc``           same, from the vmalloc area
``disk.read``         :class:`~repro.errors.Errno` EIO from the device
``disk.write``        same, including buffer-cache write-back
``copy_to_user``      Errno EFAULT at the user/kernel boundary
``copy_from_user``    same, inbound
``lock.acquire``      simulated contention: the acquiring task is charged
                      a schedule-away-and-back round trip (no error)
``sched.preempt``     the current quantum is treated as expired (forced
                      preemption; no error)
``net.tx``            the packet is dropped on the NIC TX ring and the
                      connection is reset (later ops see ECONNRESET)
``net.rx``            the packet is dropped during softirq RX delivery,
                      with the same connection-reset effect
``uring.dispatch``    the SQE being dispatched completes with an error CQE
                      (EIO), linked SQEs complete with ECANCELED, and the
                      rest of the batch stays queued — the ring analogue
                      of Cosy partial-failure semantics (``CompoundFault``)
====================  =====================================================

Injected faults still charge their normal cost-model cycles up to the
point of failure (a failing ``disk.write`` already paid the seek; a
failing ``kmalloc`` already paid the allocator cost) — see
``docs/FAULT_INJECTION.md`` and ``docs/COST_MODEL.md``.
"""

from __future__ import annotations

import fnmatch
import os
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.errors import ECONNRESET, EFAULT, EINTR, EIO, ENOMEM, errno_name
from repro.trace.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

#: The kernel-wide failpoint catalog.  ``register`` can add more at runtime
#: (e.g. module-private failpoints), but these always exist.
FAILPOINTS = (
    "kmalloc",
    "vmalloc",
    "disk.read",
    "disk.write",
    "lock.acquire",
    "copy_to_user",
    "copy_from_user",
    "sched.preempt",
    "net.tx",
    "net.rx",
    "uring.dispatch",
)

#: errno delivered when ``inject()`` is not given one explicitly.
DEFAULT_ERRNOS = {
    "kmalloc": ENOMEM,
    "vmalloc": ENOMEM,
    "disk.read": EIO,
    "disk.write": EIO,
    "copy_to_user": EFAULT,
    "copy_from_user": EFAULT,
    # For these two the errno is a label only; the site defines the effect.
    "lock.acquire": EINTR,
    "sched.preempt": EINTR,
    # Dropped packets reset the connection (there is no retransmit layer).
    "net.tx": ECONNRESET,
    "net.rx": ECONNRESET,
    # Delivered as a per-CQE error code, never as a syscall failure.
    "uring.dispatch": EIO,
}

#: Environment knobs for the global low-rate schedule (the CI smoke mode).
ENV_SEED = "REPRO_FAULT_SEED"
ENV_RATE = "REPRO_FAULT_RATE"
ENV_MODE = "REPRO_FAULT_MODE"
DEFAULT_GLOBAL_RATE = 0.002


@dataclass(frozen=True)
class FaultRecord:
    """One entry of the deterministic injection trace."""

    seq: int            # position in the registry's trace
    failpoint: str
    site: str
    hit: int            # the failpoint's hit counter when this fired
    errno: int
    observed: bool      # True = counted only, no failure delivered

    def __str__(self) -> str:
        tag = "observe" if self.observed else "inject"
        return (f"{tag} #{self.seq} {self.failpoint}@{self.site} "
                f"hit={self.hit} -> {errno_name(self.errno)}")


class Failpoint:
    """Per-failpoint counters (the ``/sys/kernel/debug/fail*`` analogue).

    The counters live in the owning registry's
    :class:`~repro.trace.metrics.MetricsRegistry` under
    ``fault.<name>.{hits,injected,observed}``; the attribute names read
    here are thin views so callers and tests keep the classic API.
    """

    def __init__(self, name: str, metrics: MetricsRegistry):
        self.name = name
        self._hits = metrics.counter(
            f"fault.{name}.hits",
            help="evaluations while at least one injection armed")
        self._injected = metrics.counter(
            f"fault.{name}.injected",
            help="decisions that delivered a failure")
        self._observed = metrics.counter(
            f"fault.{name}.observed",
            help="decisions that fired in observe mode")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def injected(self) -> int:
        return self._injected.value

    @property
    def observed(self) -> int:
        return self._observed.value

    def reset(self) -> None:
        self._hits.reset()
        self._injected.reset()
        self._observed.reset()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Failpoint({self.name!r}, hits={self.hits}, "
                f"injected={self.injected}, observed={self.observed})")


class Injection:
    """One armed policy on one failpoint.

    Exactly one of ``every`` / ``probability`` / ``at_call`` selects the
    policy; with none given the injection fires on every matching hit.
    ``times`` caps total firings; ``site`` is an fnmatch glob over the
    call-site string; ``observe=True`` counts and traces the decision but
    delivers success (used by the CI smoke schedule so the tier-1 suite
    exercises the plumbing everywhere with zero behavioral change).
    """

    def __init__(self, registry: "FaultRegistry", failpoint: str, errno: int,
                 *, every: int | None = None, probability: float | None = None,
                 seed: int | None = None, at_call: int | None = None,
                 times: int | None = None, site: str = "*",
                 observe: bool = False):
        chosen = [p for p in (every, probability, at_call) if p is not None]
        if len(chosen) > 1:
            raise ValueError("pick one policy: every=, probability=, or at_call=")
        if every is not None and every < 1:
            raise ValueError("every= must be >= 1")
        if at_call is not None and at_call < 1:
            raise ValueError("at_call= is 1-based and must be >= 1")
        if probability is not None and not (0.0 <= probability <= 1.0):
            raise ValueError("probability= must be in [0, 1]")
        if probability is not None and seed is None:
            raise ValueError("probability= requires seed= (determinism)")
        if times is not None and times < 1:
            raise ValueError("times= must be >= 1")
        self.registry = registry
        self.failpoint = failpoint
        self.errno = errno
        self.every = every
        self.probability = probability
        self.seed = seed
        self.at_call = at_call
        self.times = times
        self.site = site
        self.observe = observe
        self.hits = 0       # matching-site evaluations of *this* injection
        self.injected = 0
        self._rng = random.Random(seed) if probability is not None else None

    # ------------------------------------------------------------ decision

    def matches(self, site: str) -> bool:
        return self.site == "*" or fnmatch.fnmatchcase(site, self.site)

    def decide(self) -> bool:
        """Evaluate the policy for one matching hit."""
        self.hits += 1
        if self.times is not None and self.injected >= self.times:
            return False
        if self.at_call is not None:
            fire = self.hits == self.at_call
        elif self.every is not None:
            fire = self.hits % self.every == 0
        elif self.probability is not None:
            fire = self._rng.random() < self.probability
        else:
            fire = True
        if fire:
            self.injected += 1
        return fire

    # ------------------------------------------------------- arm lifecycle

    def remove(self) -> None:
        self.registry._disarm(self)

    def __enter__(self) -> "Injection":
        return self

    def __exit__(self, *exc) -> bool:
        self.remove()
        return False


class FaultRegistry:
    """The kernel-wide failpoint registry (``kernel.faults``).

    ``kernel`` may be None for standalone policy tests; then injections
    still work but nothing is logged to syslog and trace records carry
    cycle 0.  Counters live in ``metrics`` (the kernel-wide registry when
    attached to a kernel, a private one when standalone).
    """

    def __init__(self, kernel: "Kernel | None" = None, *,
                 metrics: MetricsRegistry | None = None):
        self.kernel = kernel
        if metrics is None:
            metrics = getattr(kernel, "metrics", None) or MetricsRegistry()
        self.metrics = metrics
        self.failpoints: dict[str, Failpoint] = {
            name: Failpoint(name, metrics) for name in FAILPOINTS}
        self._active: dict[str, list[Injection]] = {}
        #: fast-path gate: False ⇒ ``should_fail`` returns after one check.
        self.enabled = False
        self.trace: list[FaultRecord] = []

    # ------------------------------------------------------------ failpoints

    def register(self, name: str) -> Failpoint:
        """Declare an extra (module-private) failpoint."""
        fp = self.failpoints.get(name)
        if fp is None:
            fp = self.failpoints[name] = Failpoint(name, self.metrics)
        return fp

    # -------------------------------------------------------------- arming

    def inject(self, failpoint: str, *, errno: int | None = None,
               every: int | None = None, probability: float | None = None,
               seed: int | None = None, at_call: int | None = None,
               times: int | None = None, site: str = "*",
               observe: bool = False) -> Injection:
        """Arm an injection; returns it (usable as a context manager).

        The injection is live immediately and stays live until its context
        exits, :meth:`Injection.remove` is called, or :meth:`clear`.
        """
        if failpoint not in self.failpoints:
            raise ValueError(
                f"unknown failpoint {failpoint!r}; declared: "
                f"{sorted(self.failpoints)} (use register() for new ones)")
        if errno is None:
            errno = DEFAULT_ERRNOS.get(failpoint, EIO)
        inj = Injection(self, failpoint, errno, every=every,
                        probability=probability, seed=seed, at_call=at_call,
                        times=times, site=site, observe=observe)
        self._active.setdefault(failpoint, []).append(inj)
        self.enabled = True
        return inj

    def _disarm(self, inj: Injection) -> None:
        active = self._active.get(inj.failpoint)
        if active and inj in active:
            active.remove(inj)
            if not active:
                del self._active[inj.failpoint]
        self.enabled = bool(self._active)

    def clear(self) -> None:
        """Disarm every injection (counters and trace are kept)."""
        self._active.clear()
        self.enabled = False

    def reset_counters(self) -> None:
        for fp in self.failpoints.values():
            fp.reset()
        self.trace.clear()

    def active_injections(self) -> Iterator[Injection]:
        for injections in self._active.values():
            yield from injections

    # ------------------------------------------------------------- decision

    def should_fail(self, failpoint: str, site: str = "?") -> int | None:
        """Consult a failpoint on its success path.

        Returns the errno to deliver, or None for success.  This is the
        only call instrumented kernel code makes; with nothing armed it
        costs one attribute check and no simulated cycles.
        """
        if not self.enabled:
            return None
        active = self._active.get(failpoint)
        if not active:
            return None
        fp = self.failpoints[failpoint]
        fp._hits.inc()
        for inj in active:
            if not inj.matches(site):
                continue
            if inj.decide():
                return self._fire(fp, inj, site)
        return None

    def _fire(self, fp: Failpoint, inj: Injection, site: str) -> int | None:
        record = FaultRecord(seq=len(self.trace), failpoint=fp.name,
                             site=site, hit=fp.hits, errno=inj.errno,
                             observed=inj.observe)
        self.trace.append(record)
        tag = "observe" if inj.observe else "inject"
        if self.kernel is not None:
            from repro.kernel.syslog import KERN_WARNING
            self.kernel.printk(
                KERN_WARNING,
                f"fault-inject: {tag} {fp.name}@{site} hit={fp.hits} "
                f"-> {errno_name(inj.errno)}")
            tracer = self.kernel.trace
            if tracer.enabled:
                tracer.instant(f"fault:{fp.name}", "fault", site=site,
                               mode=tag, errno=errno_name(inj.errno))
        if inj.observe:
            fp._observed.inc()
            return None
        fp._injected.inc()
        return inj.errno

    # ------------------------------------------------------------- reporting

    def stats(self) -> dict[str, tuple[int, int, int]]:
        """{failpoint: (hits, injected, observed)} for every failpoint."""
        return {name: (fp.hits, fp.injected, fp.observed)
                for name, fp in sorted(self.failpoints.items())}

    def trace_signature(self) -> list[tuple[str, str, int, int]]:
        """The determinism-relevant projection of the trace: identical
        seed + workload must reproduce this list exactly."""
        return [(r.failpoint, r.site, r.hit, r.errno) for r in self.trace]

    def log_summary(self) -> None:
        """printk one summary line per failpoint that saw traffic."""
        if self.kernel is None:
            return
        from repro.kernel.syslog import KERN_INFO
        for name, (hits, injected, observed) in self.stats().items():
            if hits:
                self.kernel.printk(
                    KERN_INFO,
                    f"fault-inject: summary {name}: hits={hits} "
                    f"injected={injected} observed={observed}")


def arm_from_env(registry: FaultRegistry,
                 environ: dict[str, str] | None = None) -> list[Injection]:
    """Arm the global low-rate schedule if ``REPRO_FAULT_SEED`` is set.

    This is the CI smoke mode: every :class:`Kernel` booted while the
    variable is set gets a seeded probability injection on every
    error-delivering failpoint.  ``REPRO_FAULT_MODE`` selects ``observe``
    (default — decisions are traced and counted but always return success,
    so the tier-1 suite runs unmodified) or ``enforce`` (failures are
    delivered; for suites written to survive them).  ``REPRO_FAULT_RATE``
    overrides the per-hit probability.
    """
    env = os.environ if environ is None else environ
    seed_str = env.get(ENV_SEED)
    if not seed_str:
        return []
    try:
        seed = int(seed_str)
    except ValueError as exc:
        raise ValueError(f"{ENV_SEED} must be an integer, got {seed_str!r}") from exc
    rate = float(env.get(ENV_RATE, DEFAULT_GLOBAL_RATE))
    mode = env.get(ENV_MODE, "observe")
    if mode not in ("observe", "enforce"):
        raise ValueError(f"{ENV_MODE} must be 'observe' or 'enforce', got {mode!r}")
    observe = mode == "observe"
    injections = []
    for i, name in enumerate(("kmalloc", "vmalloc", "disk.read", "disk.write",
                              "copy_to_user", "copy_from_user")):
        # Distinct derived seeds keep the failpoints' streams independent
        # while the whole schedule stays a function of one published seed.
        injections.append(registry.inject(
            name, probability=rate, seed=seed * 1000003 + i, observe=observe))
    return injections
