"""UringQueue: the user-side ring library (the liburing analogue).

Everything here runs in *user mode*: SQE stores and CQE loads go through
the MMU at user rates into the shared ring area, and per-byte
``user_touch_per_byte`` cycles model the application formatting and
parsing entries.  The only traps are ``uring_enter`` calls — one per
batch in enter mode, and only the rare ``NEED_WAKEUP`` unpark in sqpoll
mode.  Harvesting completions is always trap-free: the library reads
``cq_tail`` straight out of shared memory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import EAGAIN, raise_errno
from repro.kernel.clock import Mode
from repro.kernel.uring.ring import (CQ_TAIL_OFF, FLAGS_OFF, CQ_HEAD_OFF,
                                     RING_NEED_WAKEUP, SQ_HEAD_OFF,
                                     SQ_TAIL_OFF, Uring)
from repro.kernel.uring.sqe import (CQE_SIZE, SQE_SIZE, Cqe, Sqe, decode_cqe)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


class UringQueue:
    """User-space handle on one ring pair (created after ``uring_setup``)."""

    def __init__(self, kernel: "Kernel", fd: int):
        from repro.kernel.uring.ring import UringInode
        self.kernel = kernel
        self.fd = fd
        file = kernel.current.get_file(fd)
        if file is None or not isinstance(file.inode, UringInode):
            raise ValueError(f"fd {fd} is not a uring fd")
        self.ring: Uring = file.inode.ring
        self.shared = self.ring.shared
        #: user-authoritative indices (mirrored to the header)
        self.sq_tail = 0
        self.cq_head = 0
        self._unpublished = 0

    # ----------------------------------------------------- user ring access

    def _read_u32(self, off: int) -> int:
        return int.from_bytes(self.shared.read_user(off, 4), "little")

    def _write_u32(self, off: int, value: int) -> None:
        self.shared.write_user(off, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def _touch(self, nbytes: int) -> None:
        self.kernel.clock.charge(
            int(nbytes * self.kernel.costs.user_touch_per_byte), Mode.USER)

    # ------------------------------------------------------------ data area

    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Reserve space in the ring's data area; returns the offset."""
        return self.shared.alloc(nbytes, align)

    def place(self, data: bytes, align: int = 8) -> int:
        """Allocate, fill (at user rates), and return the offset."""
        offset = self.alloc(len(data), align)
        self.shared.write_user(offset, data)
        self._touch(len(data))
        return offset

    def read_data(self, offset: int, nbytes: int) -> bytes:
        """Read completed-op payload out of the data area (user rates)."""
        data = self.shared.read_user(offset, nbytes)
        self._touch(len(data))
        return data

    # ----------------------------------------------------------- submission

    def sq_space(self) -> int:
        """Free SQE slots (reads the kernel's ``sq_head`` trap-free)."""
        head = self._read_u32(SQ_HEAD_OFF)
        return self.ring.sq_entries - ((self.sq_tail - head) & 0xFFFFFFFF)

    def prep(self, sqe: Sqe) -> bool:
        """Queue one SQE; False when the SQ is full (backpressure — submit
        and retry after the kernel consumes the backlog)."""
        if self.sq_space() <= 0:
            return False
        slot = self.sq_tail % self.ring.sq_entries
        self.shared.write_user(self.ring.sq_off + slot * SQE_SIZE,
                               sqe.encode())
        self._touch(SQE_SIZE)
        self.sq_tail = (self.sq_tail + 1) & 0xFFFFFFFF
        self._unpublished += 1
        return True

    def publish(self) -> int:
        """Publish queued SQEs by storing ``sq_tail`` (no trap)."""
        if self._unpublished:
            self._write_u32(SQ_TAIL_OFF, self.sq_tail)
            self._unpublished = 0
        return self.sq_tail

    def submit(self, min_complete: int = 0) -> int:
        """Publish and hand the batch to the kernel; returns SQEs consumed.

        Enter mode: one ``uring_enter`` trap per call.  Sqpoll mode: the
        publish store is all the poller needs — the library only checks
        the ``NEED_WAKEUP`` flag and pays a trap when the poller parked.
        In the cooperative simulation the poller's next iteration is run
        inline here (and from :meth:`harvest`), charged to the poller's
        CPU, never to a trap.
        """
        self.publish()
        ring = self.ring
        if not ring.sqpoll:
            return self.kernel.sys.uring_enter(self.fd,
                                               min_complete=min_complete)
        flags = self._read_u32(FLAGS_OFF)
        self._touch(4)
        if flags & RING_NEED_WAKEUP:
            return self.kernel.sys.uring_enter(self.fd, wakeup=True,
                                               min_complete=min_complete)
        assert ring.layer is not None
        return ring.layer.sqpoll_run(ring, min_complete=min_complete)

    # ----------------------------------------------------------- completion

    def cq_pending(self) -> int:
        """Completions awaiting harvest (reads ``cq_tail`` trap-free)."""
        tail = self._read_u32(CQ_TAIL_OFF)
        return (tail - self.cq_head) & 0xFFFFFFFF

    def harvest(self, maxevents: int | None = None) -> list[Cqe]:
        """Drain ready CQEs with zero crossings.

        In sqpoll mode an empty completion queue gives the poller one
        inline iteration (its chance to notice published SQEs) before
        reporting nothing.
        """
        ring = self.ring
        n = self.cq_pending()
        if n == 0 and ring.sqpoll and not ring.parked:
            assert ring.layer is not None
            ring.layer.sqpoll_run(ring)
            n = self.cq_pending()
        if maxevents is not None:
            n = min(n, maxevents)
        out: list[Cqe] = []
        for _ in range(n):
            slot = self.cq_head % ring.cq_entries
            raw = self.shared.read_user(ring.cq_off + slot * CQE_SIZE,
                                        CQE_SIZE)
            self._touch(CQE_SIZE)
            out.append(decode_cqe(raw))
            self.cq_head = (self.cq_head + 1) & 0xFFFFFFFF
        if out:
            self._write_u32(CQ_HEAD_OFF, self.cq_head)
        return out

    def enter(self, min_complete: int = 0) -> int:
        """An explicit ``uring_enter`` trap (flushes armed ops and the
        CQ-overflow backlog; blocks for ``min_complete`` completions)."""
        self.publish()
        return self.kernel.sys.uring_enter(self.fd, min_complete=min_complete)

    def require_space(self, n: int) -> None:
        """Raise EAGAIN unless ``n`` SQE slots are free (test helper for
        the SQ-full backpressure contract)."""
        if self.sq_space() < n:
            raise_errno(EAGAIN, "submission queue full")
