"""Ring state: the shared-memory layout and the kernel-side ring object.

One :class:`Uring` owns a single :class:`~repro.core.cosy.shared_buffer
.SharedBuffer` laid out as::

    +--------+-----------------------+---------------------+------------+
    | header | SQE array             | CQE array           | data area  |
    | 24 B   | sq_entries x 64 B     | cq_entries x 16 B   | rest       |
    +--------+-----------------------+---------------------+------------+

The header holds four free-running u32 indices (``slot = index %
entries``) plus a flags word:

========  =====================================================
offset    field
========  =====================================================
0         ``sq_head`` — kernel-consumed; user reads it to size the
          submission window (SQ is full when ``tail - head == entries``)
4         ``sq_tail`` — user-produced; published once per batch
8         ``cq_head`` — user-consumed during harvesting
12        ``cq_tail`` — kernel-produced; user reads it trap-free to see
          how many completions are pending
16        ``flags`` — ``RING_NEED_WAKEUP`` when the sqpoll poller parked
========  =====================================================

Both sides keep authoritative Python mirrors of the indices they own and
read the other side's index out of shared memory, so every crossing of
ring state is a charged memory access (user rates through the MMU on the
user side, in-kernel memcpy on the kernel side) and *never* a uaccess
copy or a trap — that absence is the subsystem being measured.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.core.cosy.shared_buffer import SharedBuffer
from repro.kernel.locks import SpinLock
from repro.kernel.net.epoll import EPOLLIN
from repro.kernel.uring.sqe import CQE_SIZE, SQE_SIZE, Cqe
from repro.kernel.vfs.inode import Inode
from repro.kernel.vfs.super import SuperBlock

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.process import Task
    from repro.kernel.uring.layer import UringLayer

#: header field offsets / size (see module docstring)
SQ_HEAD_OFF = 0
SQ_TAIL_OFF = 4
CQ_HEAD_OFF = 8
CQ_TAIL_OFF = 12
FLAGS_OFF = 16
HEADER_SIZE = 24

#: header flags
RING_NEED_WAKEUP = 0x1

#: UringFS inode numbers start here so they can never collide with sockfs
#: inos — epoll pins registrations by ino (the PR 6 fd-reuse fix), and a
#: uring fd and a socket fd on one epoll set must stay distinguishable.
URING_INO_BASE = 1 << 32


class Uring:
    """Kernel-side state of one submission/completion ring pair."""

    def __init__(self, kernel: "Kernel", owner: "Task", *,
                 sq_entries: int, cq_entries: int, files: int,
                 data_bytes: int, sqpoll: bool, sq_cpu: int, sq_idle: int):
        self.kernel = kernel
        self.owner = owner
        self.inode: "UringInode | None" = None
        self.layer: "UringLayer | None" = None
        self.sq_entries = sq_entries
        self.cq_entries = cq_entries
        size = (HEADER_SIZE + sq_entries * SQE_SIZE
                + cq_entries * CQE_SIZE + data_bytes)
        self.shared = SharedBuffer(kernel, owner, size=size)
        self.shared.alloc(HEADER_SIZE)
        self.sq_off = self.shared.alloc(sq_entries * SQE_SIZE)
        self.cq_off = self.shared.alloc(cq_entries * CQE_SIZE)
        # later shared.alloc()/place() calls hand out data-area space
        self.shared.write_user(0, bytes(HEADER_SIZE))
        #: fixed-file table: ring-private slots holding owner-task fds
        #: (io_uring "direct descriptors"); -1 = empty slot
        self.fixed: list[int] = [-1] * files
        #: kernel-authoritative indices (mirrored to the header)
        self.sq_head = 0
        self.cq_tail = 0
        #: CQ-overflow backlog, flushed ahead of new completions
        self.overflow: deque[Cqe] = deque()
        #: armed ops (blocked single-shots + multishots), FIFO
        self.pending: list = []
        #: guards CQE posting (consistent irqsave discipline — the ring is
        #: polled from epoll_wait and sqpoll contexts on other CPUs)
        self.lock = SpinLock(kernel, "uring_ring")
        self.sqpoll = sqpoll
        self.sq_cpu = sq_cpu
        self.sq_idle = sq_idle
        self.idle_polls = 0
        self.parked = False
        self.closed = False
        self.submitted = 0
        self.completed = 0

    # --------------------------------------------- kernel-side ring access

    def k_read_u32(self, off: int) -> int:
        return int.from_bytes(self.shared.read_kernel(off, 4), "little")

    def k_write_u32(self, off: int, value: int) -> None:
        self.shared.write_kernel(off, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def cq_space(self) -> int:
        """Free CQE slots (kernel view; the user advances ``cq_head``)."""
        head = self.k_read_u32(CQ_HEAD_OFF)
        return self.cq_entries - ((self.cq_tail - head) & 0xFFFFFFFF)

    def cq_pending(self) -> int:
        """CQEs published but not yet harvested (kernel view)."""
        head = self.k_read_u32(CQ_HEAD_OFF)
        return ((self.cq_tail - head) & 0xFFFFFFFF) + len(self.overflow)

    def fixed_fd(self, slot: int) -> int:
        if not 0 <= slot < len(self.fixed):
            return -1
        return self.fixed[slot]


class UringFS(SuperBlock):
    """Anonymous superblock behind uring fds (one per kernel, lazy)."""

    def __init__(self, kernel: "Kernel"):
        super().__init__(kernel, "uringfs")
        self._next_ino = URING_INO_BASE


class UringInode(Inode):
    """The anonymous inode a uring fd names.

    Pollable: :meth:`epoll_events` reports EPOLLIN while harvested-able
    CQEs are pending, which lets hybrid epoll+uring event loops park one
    uring fd inside an epoll interest set (satellite of docs/URING.md).
    """

    def __init__(self, sb: UringFS, ring: Uring):
        super().__init__(sb, sb.alloc_ino(), 0o600)
        self.ring = ring
        ring.inode = self

    def epoll_events(self) -> int:
        """Level-triggered readiness mask for epoll integration.

        Models the kernel's poll callback on a uring fd: armed ops whose
        wait condition was satisfied since the last flush complete here
        (no trap — this already runs in kernel context), then EPOLLIN
        reports whether CQEs await harvesting.
        """
        ring = self.ring
        if ring.closed or ring.layer is None:
            return 0
        ring.layer.poll_ring(ring)
        return EPOLLIN if ring.cq_pending() else 0

    def release_file(self, file) -> None:
        """Closing the uring fd tears the ring down: armed ops are
        dropped, fixed files closed, and the anonymous inode unregistered
        (the same churn-leak discipline as socket endpoints)."""
        ring = self.ring
        ring.closed = True
        ring.pending.clear()
        ring.overflow.clear()
        if ring.layer is not None:
            ring.layer.release_ring(ring)
        self.sb.drop_inode(self)
