"""io_uring-style async syscall rings (docs/URING.md).

Submission/completion rings in user/kernel shared memory: the user
library (:class:`UringQueue`) queues fixed-size SQEs and harvests CQEs
without trapping; the kernel side (:class:`UringLayer`) consumes whole
batches per ``uring_enter`` — or, with sqpoll, from a kernel-side poller
with *zero* boundary crossings in the steady state.
"""

from repro.kernel.uring.layer import UringLayer
from repro.kernel.uring.queue import UringQueue
from repro.kernel.uring.ring import (RING_NEED_WAKEUP, URING_INO_BASE, Uring,
                                     UringFS, UringInode)
from repro.kernel.uring.sqe import (CQE_F_MORE, CQE_SIZE, F_FIXED_FILE,
                                    F_LINK, F_MULTISHOT, OP_ACCEPT, OP_CLOSE,
                                    OP_NOP, OP_OPENAT, OP_READ, OP_RECV,
                                    OP_SEND, OP_SENDFILE, OP_WRITE, SQE_SIZE,
                                    Cqe, Sqe, decode_cqe, decode_sqe)

__all__ = [
    "UringLayer", "UringQueue", "Uring", "UringFS", "UringInode",
    "RING_NEED_WAKEUP", "URING_INO_BASE",
    "Sqe", "Cqe", "decode_sqe", "decode_cqe", "SQE_SIZE", "CQE_SIZE",
    "OP_NOP", "OP_ACCEPT", "OP_RECV", "OP_SEND", "OP_SENDFILE", "OP_READ",
    "OP_WRITE", "OP_CLOSE", "OP_OPENAT",
    "F_LINK", "F_MULTISHOT", "F_FIXED_FILE", "CQE_F_MORE",
]
