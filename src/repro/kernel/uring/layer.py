"""UringLayer: the async-syscall-ring syscall layer (docs/URING.md).

Two syscalls get installed onto the kernel, SocketLayer-style:

``uring_setup``
    Create a ring pair in shared memory and return a pollable fd.

``uring_enter``
    The *only* recurring trap: publish/consume a whole batch of SQEs in
    one boundary crossing, optionally blocking until ``min_complete``
    completions are available.  With sqpoll the trap disappears from the
    steady state entirely — a kernel-side poller consumes published SQEs
    from its own CPU, and user space only traps to unpark it.

Operation dispatch reuses the existing syscall bodies (``sendfile_files``,
``_open_nocopy``, ``do_close``, the socket inode data path), so every
cycle an operation costs through the classic path is costed identically
here — what uring removes is exactly the per-call trap/uaccess overhead,
never the work.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING

from repro.errors import (EBADF, ECANCELED, EDEADLK, EINVAL, EOPNOTSUPP,
                          Errno, raise_errno)
from repro.kernel.clock import Mode
from repro.kernel.net.socket import EV_SOCK_ACCEPT, SocketInode, SockState
from repro.kernel.uring.ring import (CQ_TAIL_OFF, FLAGS_OFF, RING_NEED_WAKEUP,
                                     SQ_HEAD_OFF, SQ_TAIL_OFF, Uring, UringFS,
                                     UringInode)
from repro.kernel.uring.sqe import (CQE_SIZE, F_FIXED_FILE, F_LINK,
                                    F_MULTISHOT, OP_ACCEPT, OP_CLOSE,
                                    OP_NOP, OP_OPENAT, OP_READ, OP_RECV,
                                    OP_SEND, OP_SENDFILE, OP_WRITE,
                                    SQE_SIZE, Cqe, Sqe, decode_sqe)
from repro.kernel.vfs.dentry import Dentry
from repro.kernel.vfs.file import File, O_RDWR

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.net.syscalls import SocketLayer


class _Armed:
    """An accept/recv waiting for its readiness condition.

    Armed ops are *poll-driven*: they are re-checked at every
    ``uring_enter``, every sqpoll iteration, and every epoll poll of the
    uring fd — there are no per-socket wakers, which keeps the ring
    entirely outside the scheduler's wait-queue machinery.
    """

    __slots__ = ("sqe", "rest", "fail", "multishot")

    def __init__(self, sqe: Sqe, rest: list[Sqe],
                 fail: tuple[int, int] | None = None):
        self.sqe = sqe
        self.rest = rest                       # F_LINK continuation
        self.fail = fail                       # injected fault in the rest
        self.multishot = bool(sqe.flags & F_MULTISHOT)


class UringLayer:
    """io_uring-style submission/completion rings for the simulated kernel.

    Not part of the kernel core: installed explicitly, like
    :class:`~repro.kernel.net.syscalls.SocketLayer` —
    ``UringLayer(kernel)`` — so kernels that never touch uring stay
    bit-identical to pre-uring oracles.
    """

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.fs = UringFS(kernel)
        self.rings: list[Uring] = []
        self._install()

    def _install(self) -> None:
        sys = self.kernel.sys
        sys.uring_setup = self._setup_entry
        sys.uring_enter = self._enter_entry
        sys.do_uring_setup = self.do_uring_setup
        sys.do_uring_enter = self.do_uring_enter
        # Register on the kernel so observers (the profiler's CQ-backlog
        # counter track) can find the live rings without importing uring.
        self.kernel.uring = self

    # ----------------------------------------------------- syscall entries

    def _setup_entry(self, sq_entries: int, **kwargs) -> int:
        return self.kernel.sys._dispatch(
            "uring_setup", lambda: self.do_uring_setup(sq_entries, **kwargs),
            (sq_entries,))

    def _enter_entry(self, fd: int, to_submit: int | None = None,
                     min_complete: int = 0, *, wakeup: bool = False) -> int:
        return self.kernel.sys._dispatch(
            "uring_enter",
            lambda: self.do_uring_enter(fd, to_submit, min_complete,
                                        wakeup=wakeup),
            (fd, min_complete))

    # ------------------------------------------------------------- helpers

    def _stack(self) -> "SocketLayer":
        do_accept = getattr(self.kernel.sys, "do_accept", None)
        if do_accept is None:
            raise_errno(EOPNOTSUPP, "uring needs a network stack installed")
        return do_accept.__self__

    def _ring_for(self, fd: int) -> Uring:
        file = self.kernel.sys._file_for(fd)
        inode = file.inode
        if not isinstance(inode, UringInode):
            raise_errno(EINVAL, f"fd {fd} is not a uring fd")
        return inode.ring

    @contextmanager
    def _as_owner(self, ring: Uring):
        """Run with the ring owner's fd table as ``kernel.current``.

        The sqpoll poller (and epoll polling another task's uring fd)
        executes in kernel context on some CPU; operations it dispatches
        must resolve descriptors against the *ring owner*, exactly like
        io_uring's ``sqo_task`` reference.
        """
        cpu = self.kernel.sched.cpus[self.kernel.clock.cpu]
        prev = cpu.current
        cpu.current = ring.owner
        try:
            yield
        finally:
            cpu.current = prev

    def _counter(self, name: str):
        return self.kernel.metrics.counter(name)

    # --------------------------------------------------------------- setup

    def do_uring_setup(self, sq_entries: int, *, cq_entries: int | None = None,
                       files: int = 16, data_bytes: int = 1 << 16,
                       sqpoll: bool = False, sq_cpu: int | None = None,
                       sq_idle: int = 16) -> int:
        """Create a ring pair; returns its (pollable) fd."""
        if sq_entries <= 0 or (cq_entries is not None and cq_entries <= 0):
            raise_errno(EINVAL, "ring entries must be positive")
        if cq_entries is None:
            cq_entries = 2 * sq_entries
        if sq_cpu is None:
            sq_cpu = self.kernel.clock.cpu
        if not 0 <= sq_cpu < self.kernel.ncpus:
            raise_errno(EINVAL, f"sq_cpu {sq_cpu} out of range")
        ring = Uring(self.kernel, self.kernel.current,
                     sq_entries=sq_entries, cq_entries=cq_entries,
                     files=files, data_bytes=data_bytes, sqpoll=sqpoll,
                     sq_cpu=sq_cpu, sq_idle=sq_idle)
        ring.layer = self
        inode = UringInode(self.fs, ring)
        fd = self.kernel.current.alloc_fd(
            File(Dentry(f"uring:{inode.ino}", None, inode), O_RDWR))
        self.fs.register_inode(inode)
        self.rings.append(ring)
        self._counter("uring.rings").inc()
        return fd

    # --------------------------------------------------------------- enter

    def do_uring_enter(self, fd: int, to_submit: int | None = None,
                       min_complete: int = 0, *, wakeup: bool = False) -> int:
        """One trap: consume published SQEs, flush armed ops, optionally
        wait for ``min_complete`` harvestable completions."""
        ring = self._ring_for(fd)
        costs = self.kernel.costs
        self.kernel.clock.charge(costs.uring_enter, Mode.SYSTEM)
        self._counter("uring.enters").inc()
        if wakeup and ring.sqpoll:
            self._unpark(ring)
        consumed = 0
        with self._as_owner(ring):
            self._flush_overflow(ring)
            self._flush_armed(ring)
            consumed = self._process(ring, to_submit)
            self._flush_armed(ring)
            while ring.cq_pending() < min_complete:
                # Block for completions: the NIC pump is the only event
                # source, exactly like blocking accept/epoll_wait.
                if not self._stack().nic.kick():
                    raise_errno(EDEADLK,
                                "uring_enter waiting with nothing in flight")
                self.kernel.clock.charge(costs.sqpoll_poll, Mode.SYSTEM)
                self._flush_armed(ring)
        return consumed

    def _unpark(self, ring: Uring) -> None:
        ring.parked = False
        ring.idle_polls = 0
        flags = ring.k_read_u32(FLAGS_OFF)
        if flags & RING_NEED_WAKEUP:
            ring.k_write_u32(FLAGS_OFF, flags & ~RING_NEED_WAKEUP)
        self._counter("uring.wakeups").inc()

    # -------------------------------------------------------------- sqpoll

    def sqpoll_run(self, ring: Uring, min_complete: int = 0) -> int:
        """One iteration of the kernel-side submission poller.

        Runs on ``ring.sq_cpu`` and charges only kernel cycles there —
        no trap, no boundary crossing.  The simulation is cooperative:
        the user library invokes the next iteration at its submit/harvest
        points, which models "the poller got around to looking" without a
        real preemptive kernel thread.
        """
        if ring.closed or ring.parked:
            return 0
        clock = self.kernel.clock
        costs = self.kernel.costs
        consumed = 0
        with clock.on_cpu(ring.sq_cpu):
            clock.charge(costs.sqpoll_poll, Mode.SYSTEM)
            self._counter("uring.sqpoll_polls").inc()
            if self.kernel.trace.enabled:
                self.kernel.trace.instant("uring:sqpoll", cat="uring",
                                          cpu=ring.sq_cpu)
            with self._as_owner(ring):
                before = ring.cq_tail + len(ring.overflow)
                self._flush_overflow(ring)
                self._flush_armed(ring)
                consumed = self._process(ring, None)
                while ring.cq_pending() < min_complete:
                    if not self._stack().nic.kick():
                        break
                    clock.charge(costs.sqpoll_poll, Mode.SYSTEM)
                    self._flush_armed(ring)
                progressed = consumed or (ring.cq_tail
                                          + len(ring.overflow)) != before
            if progressed:
                ring.idle_polls = 0
            else:
                ring.idle_polls += 1
                if ring.idle_polls >= ring.sq_idle:
                    self._park(ring)
        return consumed

    def _park(self, ring: Uring) -> None:
        """Idle poller parks: stop burning its CPU and require a real
        ``uring_enter(wakeup=True)`` trap to restart."""
        ring.parked = True
        flags = ring.k_read_u32(FLAGS_OFF)
        ring.k_write_u32(FLAGS_OFF, flags | RING_NEED_WAKEUP)
        self._counter("uring.sqpoll_parks").inc()
        if self.kernel.trace.enabled:
            self.kernel.trace.instant("uring:sqpoll", cat="uring",
                                      parked=True)

    # ---------------------------------------------------- epoll integration

    def poll_ring(self, ring: Uring) -> None:
        """Poll callback for epoll on a uring fd: give armed ops their
        chance to complete, then flush any backlogged CQEs."""
        if ring.closed:
            return
        with self._as_owner(ring):
            self._flush_overflow(ring)
            self._flush_armed(ring)

    def release_ring(self, ring: Uring) -> None:
        """Teardown on the last close of the uring fd: fixed files are
        ring references and die with it."""
        with self._as_owner(ring):
            for slot, rfd in enumerate(ring.fixed):
                if rfd < 0:
                    continue
                ring.fixed[slot] = -1
                try:
                    self.kernel.sys.do_close(rfd)
                except Errno:
                    pass  # owner already closed it through the fd table
        if ring in self.rings:
            self.rings.remove(ring)

    # ---------------------------------------------------------- submission

    def _fetch_sqe(self, ring: Uring) -> Sqe:
        """Pull one SQE off the submission queue (kernel-side access)."""
        slot = ring.sq_head % ring.sq_entries
        self.kernel.clock.charge(self.kernel.costs.uring_sqe, Mode.SYSTEM)
        raw = ring.shared.read_kernel(ring.sq_off + slot * SQE_SIZE, SQE_SIZE)
        ring.sq_head = (ring.sq_head + 1) & 0xFFFFFFFF
        return decode_sqe(raw)

    def _process(self, ring: Uring, to_submit: int | None) -> int:
        """Consume published SQEs, chain by chain.

        A ``uring.dispatch`` fault on any SQE posts its errno as that
        CQE's ``res``, cancels the rest of the chain, and stops the batch
        — unconsumed SQEs stay queued, mirroring CompoundFault's
        partial-batch semantics for Cosy programs.
        """
        tail = ring.k_read_u32(SQ_TAIL_OFF)
        avail = (tail - ring.sq_head) & 0xFFFFFFFF
        if to_submit is not None:
            avail = min(avail, to_submit)
        if not avail:
            return 0
        if self.kernel.trace.enabled:
            self.kernel.trace.instant("uring:submit", cat="uring", n=avail)
        consumed = 0
        stop = False
        while consumed < avail and not stop:
            # gather one F_LINK chain (chains never split across batches:
            # the library publishes whole chains, so a link bit on the
            # last available SQE is a malformed submission)
            chain: list[Sqe] = []
            failed: tuple[int, int] | None = None   # (chain idx, -errno)
            while True:
                sqe = self._fetch_sqe(ring)
                consumed += 1
                ring.submitted += 1
                if failed is None:
                    errno = self.kernel.faults.should_fail("uring.dispatch",
                                                           site=sqe.opname)
                    if errno is not None:
                        failed = (len(chain), -errno)
                        self._counter("uring.dispatch_errors").inc()
                chain.append(sqe)
                if not sqe.flags & F_LINK or consumed >= avail:
                    break
            self._counter("uring.sqes").inc(len(chain))
            ring.k_write_u32(SQ_HEAD_OFF, ring.sq_head)
            self._run_chain(ring, chain, fail=failed)
            if failed is not None:
                stop = True        # partial batch: leave the rest queued
        return consumed

    def _run_chain(self, ring: Uring, chain: list[Sqe],
                   fail: tuple[int, int] | None = None) -> None:
        """Execute a chain front to back; a failing link (or RECV EOF)
        cancels every follower with ECANCELED.

        ``fail`` carries an injected dispatch fault as ``(index, res)``:
        the faulted SQE completes with ``res`` instead of executing.  It
        rides along through armed-op continuations so CQEs still land in
        submission order even when an earlier link had to wait.
        """
        for i, sqe in enumerate(chain):
            rest = chain[i + 1:]
            if fail is not None and fail[0] == i:
                self._post(ring, sqe.user_data, fail[1])
                self._cancel(ring, rest)
                return
            rest_fail = None
            if fail is not None and fail[0] > i:
                rest_fail = (fail[0] - (i + 1), fail[1])
            multishot = bool(sqe.flags & F_MULTISHOT)
            if multishot and (sqe.opcode not in (OP_ACCEPT, OP_RECV)
                              or sqe.flags & F_LINK):
                self._post(ring, sqe.user_data, -EINVAL)
                self._cancel(ring, rest)
                return
            if sqe.opcode in (OP_ACCEPT, OP_RECV):
                armed = _Armed(sqe, rest, fail=rest_fail)
                if not self._try_armed(ring, armed):
                    ring.pending.append(armed)
                return                 # the armed op owns the rest
            try:
                res = self._exec(ring, sqe)
            except Errno as e:
                res = -e.errno
            self._post(ring, sqe.user_data, res)
            if res < 0:
                self._cancel(ring, rest)
                return

    def _cancel(self, ring: Uring, rest: list[Sqe]) -> None:
        for sqe in rest:
            self._post(ring, sqe.user_data, -ECANCELED)
        if rest:
            self._counter("uring.cancelled").inc(len(rest))

    # ----------------------------------------------------------- armed ops

    def _flush_armed(self, ring: Uring) -> None:
        """Re-check every armed op (the poll-driven wait model)."""
        if not ring.pending:
            return
        done = []
        for armed in list(ring.pending):
            if self._try_armed(ring, armed):
                done.append(armed)
        for armed in done:
            if armed in ring.pending:
                ring.pending.remove(armed)

    def _try_armed(self, ring: Uring, armed: _Armed) -> bool:
        """One readiness check; True when the op finished (disarm)."""
        sqe = armed.sqe
        try:
            if sqe.opcode == OP_ACCEPT:
                return self._try_accept(ring, armed)
            return self._try_recv(ring, armed)
        except Errno as e:
            self._post(ring, sqe.user_data, -e.errno)
            self._cancel(ring, armed.rest)
            return True

    def _try_accept(self, ring: Uring, armed: _Armed) -> bool:
        stack = self._stack()
        sqe = armed.sqe
        listener = self._sock(stack, sqe)
        if listener.state is not SockState.LISTENING:
            raise_errno(EINVAL, "uring accept on a non-listening socket")
        while listener.accept_queue:
            with self.kernel.irq.irqs_off("uring:accept"):
                with listener.rxq_lock.guard("uring:accept"):
                    child = listener.accept_queue.popleft()
            stack._charge_op()
            try:
                child_fd = stack._alloc_sock_fd(child)
            except Errno as e:
                # mirror do_accept: an accepted-but-undeliverable child
                # must not wedge the peer — abort the connection
                stack.accept_emfile += 1
                self._counter("net.accept_emfile").inc()
                stack.reset_connection(child, site="uring-accept-emfile")
                child.close_endpoint("uring:accept-emfile")
                self._post(ring, sqe.user_data, -e.errno,
                           more=armed.multishot)
                if armed.multishot:
                    return False       # stay armed; stop this flush
                self._cancel(ring, armed.rest)
                return True
            stack.accepts += 1
            self.kernel.log_event(child, EV_SOCK_ACCEPT, "uring:accept")
            self._post(ring, sqe.user_data, child_fd, more=armed.multishot)
            if not armed.multishot:
                self._run_chain(ring, armed.rest, fail=armed.fail)
                return True
        return False                   # multishot drains and stays armed

    def _try_recv(self, ring: Uring, armed: _Armed) -> bool:
        stack = self._stack()
        sqe = armed.sqe
        sock = self._sock(stack, sqe)
        if not (sock.rx or sock.peer_closed or sock.reset or sock.rd_closed):
            return False
        data = sock.read(0, sqe.len)   # charges sock_op + per-byte copy
        if data:
            # straight into the shared data area — in-kernel memcpy,
            # never a uaccess copyout
            ring.shared.write_kernel(sqe.addr, data)
        res = len(data)
        if armed.multishot:
            if res == 0:
                self._post(ring, sqe.user_data, 0)    # EOF: final CQE
                return True
            self._post(ring, sqe.user_data, res, more=True)
            return False
        self._post(ring, sqe.user_data, res)
        if res == 0:
            self._cancel(ring, armed.rest)            # EOF breaks the chain
        else:
            self._run_chain(ring, armed.rest, fail=armed.fail)
        return True

    def _sock(self, stack: "SocketLayer", sqe: Sqe) -> SocketInode:
        fd = sqe.fd
        if sqe.flags & F_FIXED_FILE:
            raise_errno(EINVAL, "fixed files are not sockets")
        return stack._sock_for(fd)

    # ----------------------------------------------------------- execution

    def _resolve(self, ring: Uring, fd: int, fixed: bool) -> File:
        """Map an SQE file reference (task fd or fixed-file slot) to a
        :class:`File` of the ring owner."""
        if fixed:
            real = ring.fixed_fd(fd)
            if real < 0:
                raise_errno(EBADF, f"empty fixed-file slot {fd}")
            fd = real
        return self.kernel.sys._file_for(fd)

    def _exec(self, ring: Uring, sqe: Sqe) -> int:
        """Dispatch one synchronous opcode; returns the CQE ``res``."""
        op = sqe.opcode
        fixed = bool(sqe.flags & F_FIXED_FILE)
        sys = self.kernel.sys
        if op == OP_NOP:
            return 0
        if op == OP_SEND:
            sock = self._sock(self._stack(), sqe)
            data = ring.shared.read_kernel(sqe.addr, sqe.len)
            return sock.write(0, data)
        if op == OP_SENDFILE:
            dst = sys._file_for(sqe.fd)
            src = self._resolve(ring, sqe.addr, fixed)
            return self._stack().sendfile_files(dst, src, sqe.off, sqe.len)
        if op == OP_READ:
            file = self._resolve(ring, sqe.fd, fixed)
            file.check_readable()
            data = file.inode.read(sqe.off, sqe.len)
            if data:
                ring.shared.write_kernel(sqe.addr, data)
            return len(data)
        if op == OP_WRITE:
            file = self._resolve(ring, sqe.fd, fixed)
            file.check_writable()
            data = ring.shared.read_kernel(sqe.addr, sqe.len)
            return file.inode.write(sqe.off, data)
        if op == OP_CLOSE:
            if fixed:
                real = ring.fixed_fd(sqe.fd)
                if real < 0:
                    raise_errno(EBADF, f"empty fixed-file slot {sqe.fd}")
                ring.fixed[sqe.fd] = -1
                return sys.do_close(real)
            return sys.do_close(sqe.fd)
        if op == OP_OPENAT:
            raw = ring.shared.read_kernel(sqe.addr, sqe.len)
            path = raw.split(b"\0", 1)[0].decode()
            # no charge_from_user: the path never crosses the boundary —
            # it is already in shared memory (the Cosy saving, again)
            new_fd = sys._open_nocopy(path, sqe.off)
            if sqe.fd >= 0:
                if sqe.fd >= len(ring.fixed):
                    sys.do_close(new_fd)
                    raise_errno(EBADF, f"fixed-file slot {sqe.fd} out of range")
                old = ring.fixed[sqe.fd]
                ring.fixed[sqe.fd] = new_fd
                if old >= 0:
                    sys.do_close(old)
            return new_fd
        raise_errno(EINVAL, f"unknown uring opcode {op}")

    # ----------------------------------------------------------- completion

    def _flush_overflow(self, ring: Uring) -> None:
        if not ring.overflow:
            return
        with self.kernel.irq.irqs_off("uring:cq"):
            with ring.lock.guard("uring:cq"):
                self._drain_overflow_locked(ring)

    def _drain_overflow_locked(self, ring: Uring) -> None:
        while ring.overflow and ring.cq_space() > 0:
            self._publish_locked(ring, ring.overflow.popleft())

    def _publish_locked(self, ring: Uring, cqe: Cqe) -> None:
        slot = ring.cq_tail % ring.cq_entries
        self.kernel.clock.charge(self.kernel.costs.uring_cqe, Mode.SYSTEM)
        ring.shared.write_kernel(ring.cq_off + slot * CQE_SIZE, cqe.encode())
        ring.cq_tail = (ring.cq_tail + 1) & 0xFFFFFFFF
        ring.k_write_u32(CQ_TAIL_OFF, ring.cq_tail)

    def _post(self, ring: Uring, user_data: int, res: int,
              more: bool = False) -> None:
        """Publish one CQE (overflow backlog keeps completions lossless
        when the user is slow to harvest)."""
        from repro.kernel.uring.sqe import CQE_F_MORE
        cqe = Cqe(user_data, res, CQE_F_MORE if more else 0)
        with self.kernel.irq.irqs_off("uring:cq"):
            with ring.lock.guard("uring:cq"):
                self._drain_overflow_locked(ring)
                if ring.overflow or ring.cq_space() <= 0:
                    ring.overflow.append(cqe)
                    self._counter("uring.cq_overflows").inc()
                else:
                    self._publish_locked(ring, cqe)
        ring.completed += 1
        self._counter("uring.cqes").inc()
        if self.kernel.trace.enabled:
            self.kernel.trace.instant("uring:complete", cat="uring",
                                      res=res)
