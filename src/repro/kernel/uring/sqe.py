"""SQE/CQE wire format: fixed-size entries in the shared rings.

Submission-queue entries are 64 bytes and completion-queue entries 16
bytes — the io_uring sizes — packed little-endian like everything else in
the simulated machine.  Both sides of the boundary decode the same bytes
from the same frames (the ring area is a :class:`~repro.core.cosy
.shared_buffer.SharedBuffer`), so submitting an operation costs the user
one 64-byte store into shared memory and the kernel one 64-byte fetch out
of it — never a ``copy_from_user``.

Field use per opcode (offsets into the owning ring's data area unless
said otherwise):

=============  =========================================================
opcode         fd / off / addr / len
=============  =========================================================
``NOP``        all ignored; completes immediately with ``res=0``
``ACCEPT``     fd = listening socket.  Completes with the accepted fd.
``RECV``       fd = connected socket, addr = destination buffer offset,
               len = max bytes.  Completes with bytes received (0 = EOF).
``SEND``       fd = connected socket, addr = source offset, len = count.
``SENDFILE``   fd = destination socket fd, addr = source fd (or fixed
               slot with ``F_FIXED_FILE``), off = file offset, len =
               count.  Completes with bytes sent.
``READ``       fd = file (or fixed slot), addr = destination offset,
               off = file offset, len = count (pread-style, no f_pos).
``WRITE``      fd = file (or fixed slot), addr = source offset,
               off = file offset, len = count.
``CLOSE``      fd = fd to close (or fixed slot with ``F_FIXED_FILE``).
``OPENAT``     addr = offset of a NUL-terminated path in the data area,
               len = max path bytes, off = open flags, fd = fixed-file
               slot to install the result into (-1 = ordinary fd).
=============  =========================================================

Flags: ``F_LINK`` chains this SQE to the next one (failure cancels the
rest of the chain with ECANCELED); ``F_MULTISHOT`` keeps ACCEPT/RECV
armed, posting one CQE per connection/burst with ``CQE_F_MORE`` set;
``F_FIXED_FILE`` makes the opcode's file reference index the ring's
fixed-file table instead of the task's fd table.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

#: opcodes
OP_NOP = 0
OP_ACCEPT = 1
OP_RECV = 2
OP_SEND = 3
OP_SENDFILE = 4
OP_READ = 5
OP_WRITE = 6
OP_CLOSE = 7
OP_OPENAT = 8

OP_NAMES = {
    OP_NOP: "nop", OP_ACCEPT: "accept", OP_RECV: "recv", OP_SEND: "send",
    OP_SENDFILE: "sendfile", OP_READ: "read", OP_WRITE: "write",
    OP_CLOSE: "close", OP_OPENAT: "openat",
}

#: SQE flags
F_LINK = 0x01
F_MULTISHOT = 0x02
F_FIXED_FILE = 0x04

#: CQE flags
CQE_F_MORE = 0x01

#: opcode(B) flags(B) pad(H) fd(i) off(q) addr(q) len(i) user_data(Q),
#: padded to the io_uring entry size.
_SQE_FMT = "<BBHiqqiQ28x"
_CQE_FMT = "<Qii"

SQE_SIZE = struct.calcsize(_SQE_FMT)       # 64
CQE_SIZE = struct.calcsize(_CQE_FMT)       # 16
assert SQE_SIZE == 64 and CQE_SIZE == 16


@dataclass(frozen=True)
class Sqe:
    """One decoded submission-queue entry."""

    opcode: int
    flags: int = 0
    fd: int = 0
    off: int = 0
    addr: int = 0
    len: int = 0
    user_data: int = 0

    def encode(self) -> bytes:
        return struct.pack(_SQE_FMT, self.opcode, self.flags, 0, self.fd,
                           self.off, self.addr, self.len, self.user_data)

    @property
    def opname(self) -> str:
        return OP_NAMES.get(self.opcode, f"op{self.opcode}")


def decode_sqe(raw: bytes) -> Sqe:
    opcode, flags, _, fd, off, addr, length, user_data = struct.unpack(
        _SQE_FMT, raw)
    return Sqe(opcode, flags, fd, off, addr, length, user_data)


@dataclass(frozen=True)
class Cqe:
    """One decoded completion-queue entry.

    ``res`` is the operation result: >= 0 on success, ``-errno`` on
    failure — exactly one CQE per submitted SQE (multishot parents post
    one per completion, each carrying ``CQE_F_MORE`` until the last).
    """

    user_data: int
    res: int
    flags: int = 0

    def encode(self) -> bytes:
        return struct.pack(_CQE_FMT, self.user_data, self.res, self.flags)

    @property
    def more(self) -> bool:
        return bool(self.flags & CQE_F_MORE)


def decode_cqe(raw: bytes) -> Cqe:
    user_data, res, flags = struct.unpack(_CQE_FMT, raw)
    return Cqe(user_data, res, flags)
