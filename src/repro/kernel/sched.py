"""Preemptive scheduler with per-CPU runqueues, stealing, and watchdog hooks.

The simulation is cooperative (syscalls run inline), so "preemption" here
means: at preemption points (syscall dispatch, long in-kernel loops such as
Cosy compound execution), the scheduler checks whether the quantum expired
and, if so, charges a context switch, flushes the TLB, and runs the
registered *preempt hooks*.

Cosy's safety design (§2.3) hangs off exactly this mechanism: "a preemptive
kernel ... checks the running time of a Cosy process inside the kernel every
time it is scheduled out", killing compounds that exceed their kernel-time
budget.  The Cosy kernel extension registers such a hook.

SMP (docs/SMP.md): each simulated CPU owns a :class:`~repro.kernel.cpu.Cpu`
record with its own runqueue and current task.  Tasks are placed on the CPU
of the spawning context by default (so single-flow workloads never leave
cpu0 and stay bit-identical to the pre-SMP kernel) or pinned explicitly.
``switch_to`` a task on another CPU moves the *camera* — the executing-CPU
index on the clock — to that CPU; if the task is already that CPU's current
task the switch charges nothing, which is how cross-CPU parallelism is
accounted.  When a CPU's runqueue drains at a preemption point, it pulls
work from the most-loaded CPU (deterministic idle-balance stealing: victim
chosen by load then lowest id, locks taken in CPU-id order).  Cross-CPU
enqueues and wakeups send resched IPIs that charge both the sender and the
target CPU's local clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.kernel.clock import Mode
from repro.kernel.cpu import Cpu
from repro.kernel.interrupts import IRQ_DISPATCH_COST
from repro.kernel.process import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

PreemptHook = Callable[[Task], None]


class WaitQueue:
    """A kernel wait queue head (``wait_queue_head_t``).

    Blocking socket operations sleep here until the NIC's softirq delivery
    makes their condition true.  The simulation is cooperative, so
    :meth:`sleep` does not transfer control to other Python code; it charges
    the performance-visible effect of blocking — being scheduled away and
    back (two context switches plus the TLB refill) — and the caller
    re-checks its wake condition in a loop, exactly like the kernel's
    ``wait_event`` macro re-tests its expression after every wakeup.
    """

    def __init__(self, kernel: "Kernel", name: str = "?"):
        self.kernel = kernel
        self.name = name
        self.waiters = 0
        self.sleeps = 0
        self.wakeups = 0

    def sleep(self, site: str = "?") -> None:
        """Block the current task until the next :meth:`wake_all`."""
        kernel = self.kernel
        task = kernel.current
        ld = getattr(kernel, "lockdep", None)
        if ld is not None:
            ld.might_sleep(site, what=f"sleeping on wait queue '{self.name}'")
        tracer = kernel.trace
        traced = tracer.enabled
        if traced:
            tracer.begin("sched:block", "sched", wq=self.name, site=site,
                         pid=task.pid if task is not None else None)
        self.sleeps += 1
        self.waiters += 1
        if task is not None:
            task.state = TaskState.BLOCKED
        kernel.clock.charge(2 * kernel.costs.context_switch)
        kernel.mmu.flush_tlb()
        kernel.sched.count_switches(2)
        # ...woken: back on the CPU with the condition worth re-checking.
        self.waiters -= 1
        if task is not None:
            task.state = TaskState.RUNNING
        if traced:
            tracer.end()

    def wake_all(self, site: str = "?") -> None:
        """Mark the queue's condition changed (wake_up_interruptible)."""
        self.wakeups += 1
        tracer = self.kernel.trace
        if tracer.enabled:
            tracer.instant("sched:wakeup", "sched", wq=self.name, site=site)


class Scheduler:
    """Round-robin scheduler over per-CPU runqueues."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        ncpus = getattr(kernel, "ncpus", 1)
        self.ncpus = ncpus
        self.cpus: list[Cpu] = [Cpu(c) for c in range(ncpus)]
        if ncpus > 1:
            from repro.kernel.locks import SpinLock
            for cpu in self.cpus:
                # Zero-cost: the rq critical section is priced into
                # context_switch; the lock exists for lockdep coverage.
                cpu.rq_lock = SpinLock(kernel, "runqueue_lock", charge=False)
        self.preempt_hooks: list[PreemptHook] = []
        # sched.* counters live in per-CPU metrics shards (summed classic
        # view); the attribute names below stay read-compatible.
        metrics = kernel.metrics
        self._switches = metrics.percpu_counter(
            "sched.context_switches", help="context switches (all causes)")
        self._preempts = metrics.percpu_counter(
            "sched.preemptions", help="expired-quantum preemption points")
        self._steals = metrics.percpu_counter(
            "sched.steals", help="tasks pulled from another CPU's runqueue")
        self._ipis = metrics.percpu_counter(
            "sched.ipis", help="resched IPIs sent between CPUs")
        #: kernel-wide READY->RUNNING scheduling delay.  Always-on: the
        #: observations are pure clock arithmetic (zero simulated cost)
        #: and must be identical traced or untraced so same-seed scenario
        #: runs stay bit-identical.  Delays are measured on the *global*
        #: clock (total work done machine-wide between ready and run),
        #: which is monotonic across CPUs where local clocks are not —
        #: at cpus=1 it equals the literal wall delay.
        self._delay_hist = metrics.histogram(
            "sched.delay", help="READY->RUNNING scheduling delay (cycles)")

    # ---------------------------------------------------------- classic view

    @property
    def context_switches(self) -> int:
        return self._switches.value

    @property
    def preemptions(self) -> int:
        return self._preempts.value

    @property
    def steals(self) -> int:
        return self._steals.value

    @property
    def ipis(self) -> int:
        return self._ipis.value

    def count_switches(self, n: int) -> None:
        """Account ``n`` context switches to the executing CPU (used by
        wait queues, which charge the away-and-back round trip)."""
        self._switches.inc(n)

    @property
    def current(self) -> Task | None:
        """The task executing on the current CPU (the camera's CPU)."""
        return self.cpus[self.kernel.clock.cpu].current

    @property
    def runqueue(self) -> list[Task]:
        """All runnable tasks.  On a single-CPU kernel this is cpu0's
        actual runqueue (the historical attribute); on SMP it is a merged
        read-only snapshot — mutate through the scheduler API."""
        if self.ncpus == 1:
            return self.cpus[0].runqueue
        return [t for cpu in self.cpus for t in cpu.runqueue]

    # ------------------------------------------------------------- tasks

    def add_task(self, task: Task, cpu: int | None = None) -> None:
        """Enqueue ``task`` on a CPU (default: the spawning context's)."""
        clock = self.kernel.clock
        c = clock.cpu if cpu is None else cpu
        if not 0 <= c < self.ncpus:
            raise ValueError(f"cpu {c} out of range [0, {self.ncpus})")
        task.cpu = c
        st = self.cpus[c]
        if st.rq_lock is not None:
            # The lock covers the runqueue list only; current-task handoff
            # happens outside it (lockdep attributes holds to the task
            # executing at acquire time, which must match at release).
            with st.rq_lock.guard("sched:add_task"):
                st.runqueue.append(task)
        else:
            st.runqueue.append(task)
        if st.current is None:
            st.current = task
            task.state = TaskState.RUNNING
        else:
            # Enqueued behind a running task: the wakeup-latency clock
            # starts now and stops when switch_to makes it current.
            task.last_ready = clock.now
        if self.ncpus > 1 and c != clock.cpu:
            # Remote enqueue: kick the target CPU to notice the new task.
            self.send_ipi(c, reason="enqueue")

    def remove_task(self, task: Task) -> None:
        task.state = TaskState.ZOMBIE
        st = self.cpus[getattr(task, "cpu", 0)]
        if task in st.runqueue:
            st.runqueue.remove(task)
        if st.current is task:
            st.current = st.runqueue[0] if st.runqueue else None

    def switch_to(self, task: Task) -> None:
        """Explicit context switch (charges full switch cost, flushes TLB).

        Switching to a task on *another* CPU moves the camera there; if
        the task is already that CPU's current task nothing is charged —
        it was running in parallel all along and execution simply resumes
        from its side (docs/SMP.md).
        """
        kernel = self.kernel
        clock = kernel.clock
        c = getattr(task, "cpu", 0)
        st = self.cpus[c]
        if c != clock.cpu:
            clock.set_cpu(c)
            if task is st.current:
                tracer = kernel.trace
                if tracer.enabled:
                    tracer.instant("sched:camera", "sched", cpu=c,
                                   pid=task.pid)
                return
        elif task is st.current:
            return
        prev = st.current
        if prev is not None:
            prev.state = TaskState.READY
            prev.last_ready = clock.now
        kernel.clock.charge(kernel.costs.context_switch)
        kernel.mmu.flush_tlb()
        self._switches.inc()
        tracer = kernel.trace
        if tracer.enabled:
            tracer.complete("sched:switch", "sched",
                            kernel.costs.context_switch,
                            prev=prev.pid if prev is not None else None,
                            next=task.pid)
        st.current = task
        task.state = TaskState.RUNNING
        st.last_switch = clock.local_now()
        self._note_scheduled(task, clock)

    def _note_scheduled(self, task: Task, clock) -> None:
        """Record ``task``'s READY->RUNNING delay: into the kernel-wide
        ``sched.delay`` histogram, the task's own (tenant SLO) histogram
        if one is attached, and the profiler's wakeup tracer when armed."""
        t0 = task.last_ready
        if t0 is None:
            return
        task.last_ready = None
        delay = clock.now - t0
        self._delay_hist.observe(delay)
        h = task.sched_delay
        if h is not None:
            h.observe(delay)
        prof = getattr(self.kernel, "prof", None)
        if prof is not None and prof.enabled:
            prof.sched_wakeup(task, delay)

    # ----------------------------------------------------------------- SMP

    def send_ipi(self, target: int, reason: str = "resched") -> None:
        """One inter-processor interrupt: the sender pays the APIC write,
        the target pays the interrupt dispatch on its own local clock."""
        kernel = self.kernel
        clock = kernel.clock
        if self.ncpus == 1 or target == clock.cpu:
            return
        clock.charge(kernel.costs.ipi, Mode.SYSTEM)
        with clock.on_cpu(target):
            clock.charge(IRQ_DISPATCH_COST, Mode.SYSTEM)
        self._ipis.inc()
        tracer = kernel.trace
        if tracer.enabled:
            tracer.instant("sched:ipi", "sched", target=target, reason=reason)

    def balance(self) -> Task | None:
        """Idle-balance entry point: if the executing CPU has no spare
        READY task, try to steal one.  Returns the migrated task."""
        st = self.cpus[self.kernel.clock.cpu]
        return self._idle_balance(st)

    def _spare_ready(self, st: Cpu) -> int:
        """READY tasks on ``st`` beyond its current one (stealable load)."""
        return sum(1 for t in st.runqueue
                   if t is not st.current and t.state == TaskState.READY)

    def _idle_balance(self, st: Cpu) -> Task | None:
        """Pull one READY task from the most-loaded other CPU.

        Fully deterministic: the victim is the CPU with the most spare
        READY tasks (ties broken by lowest id), the migrated task is the
        first READY one in the victim's queue order, and the two runqueue
        locks are taken in CPU-id order (the second acquisition carries a
        lockdep subclass, the blessed same-class nesting).
        """
        if self.ncpus == 1:
            return None
        kernel = self.kernel
        victim = None
        best = 0
        for other in self.cpus:
            if other is st:
                continue
            spare = self._spare_ready(other)
            if spare > best:
                victim, best = other, spare
        if victim is None:
            return None
        first, second = (st, victim) if st.id < victim.id else (victim, st)
        assert first.rq_lock is not None and second.rq_lock is not None
        with first.rq_lock.guard("sched:steal"):
            with second.rq_lock.guard("sched:steal", subclass=1):
                stolen = next((t for t in victim.runqueue
                               if t is not victim.current
                               and t.state == TaskState.READY), None)
                if stolen is None:
                    return None
                victim.runqueue.remove(stolen)
                stolen.cpu = st.id
                st.runqueue.append(stolen)
        kernel.clock.charge(kernel.costs.task_migration, Mode.SYSTEM)
        self._steals.inc()
        tracer = kernel.trace
        if tracer.enabled:
            tracer.instant("sched:steal", "sched", src=victim.id, dst=st.id,
                           pid=stolen.pid)
        return stolen

    # --------------------------------------------------------- preemption

    def add_preempt_hook(self, hook: PreemptHook) -> None:
        self.preempt_hooks.append(hook)

    def remove_preempt_hook(self, hook: PreemptHook) -> None:
        self.preempt_hooks.remove(hook)

    def maybe_preempt(self) -> bool:
        """Preemption point.  Returns True if the quantum expired.

        Hooks run with the outgoing task — this is the moment the Cosy
        watchdog examines the task's in-kernel time.

        The simulation executes tasks cooperatively (workload code *is* the
        current task), so an expired quantum does not hand control to other
        Python code; instead, when other tasks are runnable on this CPU,
        the full cost of being scheduled away and back — two context
        switches and the TLB refill — is charged here, which is the
        performance-visible effect of timesharing.  Explicit transfers use
        :meth:`switch_to`.  On SMP, a CPU whose runqueue has drained uses
        the expired quantum to idle-balance (steal) instead.
        """
        kernel = self.kernel
        clock = kernel.clock
        st = self.cpus[clock.cpu]
        now = clock.local_now()
        prof = getattr(kernel, "prof", None)
        if prof is not None and prof.enabled:
            # preemptoff tracer: each visit here is a preemption
            # opportunity; the gap since the previous one is how long
            # this CPU could not reschedule.
            prof.preempt_point(clock.cpu, now)
        # Injected "preemption": the quantum is treated as already expired.
        forced = kernel.faults.should_fail("sched.preempt", "tick") is not None
        if not forced and now - st.last_switch < kernel.costs.sched_quantum:
            return False
        tracer = kernel.trace
        traced = tracer.enabled
        if traced:
            tracer.begin("sched:preempt", "sched", forced=forced)
        try:
            kernel.clock.charge(kernel.costs.sched_tick)
            self._preempts.inc()
            task = st.current
            if task is not None:
                for hook in list(self.preempt_hooks):
                    hook(task)
            others_ready = any(t is not task and t.state == TaskState.READY
                               for t in st.runqueue)
            if others_ready:
                kernel.clock.charge(2 * kernel.costs.context_switch)
                kernel.mmu.flush_tlb()
                self._switches.inc(2)
            elif self.ncpus > 1:
                self._idle_balance(st)
            st.last_switch = clock.local_now()
        finally:
            if traced:
                tracer.end()
        return True
