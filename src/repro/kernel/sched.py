"""Preemptive scheduler with watchdog hooks.

The simulation is cooperative (syscalls run inline), so "preemption" here
means: at preemption points (syscall dispatch, long in-kernel loops such as
Cosy compound execution), the scheduler checks whether the quantum expired
and, if so, charges a context switch, flushes the TLB, and runs the
registered *preempt hooks*.

Cosy's safety design (§2.3) hangs off exactly this mechanism: "a preemptive
kernel ... checks the running time of a Cosy process inside the kernel every
time it is scheduled out", killing compounds that exceed their kernel-time
budget.  The Cosy kernel extension registers such a hook.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.kernel.process import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

PreemptHook = Callable[[Task], None]


class WaitQueue:
    """A kernel wait queue head (``wait_queue_head_t``).

    Blocking socket operations sleep here until the NIC's softirq delivery
    makes their condition true.  The simulation is cooperative, so
    :meth:`sleep` does not transfer control to other Python code; it charges
    the performance-visible effect of blocking — being scheduled away and
    back (two context switches plus the TLB refill) — and the caller
    re-checks its wake condition in a loop, exactly like the kernel's
    ``wait_event`` macro re-tests its expression after every wakeup.
    """

    def __init__(self, kernel: "Kernel", name: str = "?"):
        self.kernel = kernel
        self.name = name
        self.waiters = 0
        self.sleeps = 0
        self.wakeups = 0

    def sleep(self, site: str = "?") -> None:
        """Block the current task until the next :meth:`wake_all`."""
        kernel = self.kernel
        task = kernel.current
        ld = getattr(kernel, "lockdep", None)
        if ld is not None:
            ld.might_sleep(site, what=f"sleeping on wait queue '{self.name}'")
        tracer = kernel.trace
        traced = tracer.enabled
        if traced:
            tracer.begin("sched:block", "sched", wq=self.name, site=site,
                         pid=task.pid if task is not None else None)
        self.sleeps += 1
        self.waiters += 1
        if task is not None:
            task.state = TaskState.BLOCKED
        kernel.clock.charge(2 * kernel.costs.context_switch)
        kernel.mmu.flush_tlb()
        kernel.sched.context_switches += 2
        # ...woken: back on the CPU with the condition worth re-checking.
        self.waiters -= 1
        if task is not None:
            task.state = TaskState.RUNNING
        if traced:
            tracer.end()

    def wake_all(self, site: str = "?") -> None:
        """Mark the queue's condition changed (wake_up_interruptible)."""
        self.wakeups += 1
        tracer = self.kernel.trace
        if tracer.enabled:
            tracer.instant("sched:wakeup", "sched", wq=self.name, site=site)


class Scheduler:
    """Round-robin scheduler over the kernel's task list."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.runqueue: list[Task] = []
        self.current: Task | None = None
        self._last_switch = 0
        self.preempt_hooks: list[PreemptHook] = []
        self.context_switches = 0
        self.preemptions = 0

    # ------------------------------------------------------------- tasks

    def add_task(self, task: Task) -> None:
        self.runqueue.append(task)
        if self.current is None:
            self.current = task
            task.state = TaskState.RUNNING

    def remove_task(self, task: Task) -> None:
        task.state = TaskState.ZOMBIE
        if task in self.runqueue:
            self.runqueue.remove(task)
        if self.current is task:
            self.current = self.runqueue[0] if self.runqueue else None

    def switch_to(self, task: Task) -> None:
        """Explicit context switch (charges full switch cost, flushes TLB)."""
        if task is self.current:
            return
        if self.current is not None:
            self.current.state = TaskState.READY
        prev = self.current
        self.kernel.clock.charge(self.kernel.costs.context_switch)
        self.kernel.mmu.flush_tlb()
        self.context_switches += 1
        tracer = self.kernel.trace
        if tracer.enabled:
            tracer.complete("sched:switch", "sched",
                            self.kernel.costs.context_switch,
                            prev=prev.pid if prev is not None else None,
                            next=task.pid)
        self.current = task
        task.state = TaskState.RUNNING
        self._last_switch = self.kernel.clock.now

    # --------------------------------------------------------- preemption

    def add_preempt_hook(self, hook: PreemptHook) -> None:
        self.preempt_hooks.append(hook)

    def remove_preempt_hook(self, hook: PreemptHook) -> None:
        self.preempt_hooks.remove(hook)

    def maybe_preempt(self) -> bool:
        """Preemption point.  Returns True if the quantum expired.

        Hooks run with the outgoing task — this is the moment the Cosy
        watchdog examines the task's in-kernel time.

        The simulation executes tasks cooperatively (workload code *is* the
        current task), so an expired quantum does not hand control to other
        Python code; instead, when other tasks are runnable, the full cost
        of being scheduled away and back — two context switches and the TLB
        refill — is charged here, which is the performance-visible effect
        of timesharing.  Explicit transfers use :meth:`switch_to`.
        """
        now = self.kernel.clock.now
        # Injected "preemption": the quantum is treated as already expired.
        forced = self.kernel.faults.should_fail("sched.preempt", "tick") is not None
        if not forced and now - self._last_switch < self.kernel.costs.sched_quantum:
            return False
        tracer = self.kernel.trace
        traced = tracer.enabled
        if traced:
            tracer.begin("sched:preempt", "sched", forced=forced)
        try:
            self.kernel.clock.charge(self.kernel.costs.sched_tick)
            self.preemptions += 1
            task = self.current
            if task is not None:
                for hook in list(self.preempt_hooks):
                    hook(task)
            others_ready = any(t is not task and t.state == TaskState.READY
                               for t in self.runqueue)
            if others_ready:
                self.kernel.clock.charge(2 * self.kernel.costs.context_switch)
                self.kernel.mmu.flush_tlb()
                self.context_switches += 2
            self._last_switch = self.kernel.clock.now
        finally:
            if traced:
                tracer.end()
        return True
