"""Syscall dispatch: the user/kernel boundary.

Public methods (``read``, ``open``, ...) are what *user programs* call; each
pays the libc-stub cost, the trap cost, and dispatch overhead, then runs the
``do_*`` handler in kernel mode, emits a trace record, and hits a preemption
point.  The ``do_*`` handlers themselves are importable by the Cosy kernel
extension, which is how compound execution legally skips the boundary costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ENOMEM, Errno, OutOfMemory, errno_name
from repro.kernel.clock import Mode
from repro.kernel.syscalls.consolidated import ConsolidatedMixin
from repro.kernel.syscalls.dir_ops import DirOpsMixin
from repro.kernel.syscalls.file_ops import FileOpsMixin
from repro.kernel.syscalls.table import syscall_nr
from repro.kernel.syscalls.uaccess import UserCopy

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


@dataclass(frozen=True)
class SyscallRecord:
    """One traced syscall invocation (the §2.2 strace/audit substitute)."""

    seq: int
    pid: int
    nr: int
    name: str
    args: tuple
    start_cycles: int
    duration_cycles: int
    bytes_to_user: int
    bytes_from_user: int
    errno: int | None

    @property
    def bytes_copied(self) -> int:
        return self.bytes_to_user + self.bytes_from_user


Tracer = Callable[[SyscallRecord], None]


class SyscallInterface(FileOpsMixin, DirOpsMixin, ConsolidatedMixin):
    """The syscall table, bound to one kernel instance."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.ucopy = UserCopy(kernel)
        self.tracers: list[Tracer] = []
        self._seq = 0
        self.total_syscalls = 0

    # ------------------------------------------------------------- tracing

    def add_tracer(self, tracer: Tracer) -> None:
        self.tracers.append(tracer)

    def remove_tracer(self, tracer: Tracer) -> None:
        self.tracers.remove(tracer)

    # ------------------------------------------------------------ dispatch

    def _dispatch(self, name: str, thunk: Callable[[], Any],
                  args: tuple = ()) -> Any:
        kernel = self.kernel
        clock = kernel.clock
        costs = kernel.costs
        task = kernel.current
        if task is None:
            raise RuntimeError("no current task; spawn one before making syscalls")
        tracer = kernel.trace
        traced = tracer.enabled
        if traced:
            tracer.begin("syscall:" + name, "syscall", pid=task.pid)
        # User-side stub (libc wrapper, register setup, errno handling).
        clock.charge(costs.user_syscall_stub, Mode.USER)
        task.utime += costs.user_syscall_stub
        start = clock.now
        start_system = clock.system
        copy_snap = self.ucopy.stats.snapshot()
        # Trap into the kernel.
        clock.charge(costs.syscall_trap, Mode.SYSTEM)
        errno: int | None = None
        task.syscall_count += 1
        self.total_syscalls += 1
        clock.push_mode(Mode.SYSTEM)
        try:
            clock.charge(costs.syscall_dispatch)
            if traced:
                # The boundary-crossing quantum: libc stub + trap +
                # dispatch, all charged since the span opened.
                tracer.complete("syscall:boundary", "boundary",
                                costs.user_syscall_stub + costs.syscall_trap
                                + costs.syscall_dispatch)
            try:
                result = thunk()
            except Errno as e:
                errno = e.errno
                raise
            except OutOfMemory as e:
                # Allocation failure inside a handler surfaces to user space
                # as -ENOMEM, never as a bare kernel exception type.
                errno = ENOMEM
                raise Errno(ENOMEM, errno_name(ENOMEM), str(e)) from e
        finally:
            clock.pop_mode()
            task.stime += clock.system - start_system
            prof = getattr(kernel, "prof", None)
            if prof is not None and prof.enabled:
                # per-syscall-number latency histogram: trap to return
                prof.observe_syscall(name, syscall_nr(name),
                                     clock.now - start)
            if self.tracers:
                delta = self.ucopy.stats.since(copy_snap)
                self._seq += 1
                record = SyscallRecord(
                    seq=self._seq, pid=task.pid, nr=syscall_nr(name), name=name,
                    args=args, start_cycles=start,
                    duration_cycles=clock.now - start,
                    bytes_to_user=delta.to_user_bytes,
                    bytes_from_user=delta.from_user_bytes, errno=errno,
                )
                for t in self.tracers:
                    t(record)
            kernel.sched.maybe_preempt()
            if traced:
                tracer.end(errno=errno)
        return result

    # ---------------------------------------------------- public syscalls
    # Thin wrappers: name + args summary for the tracer, body in do_*.

    def open(self, path: str, flags: int = 0, mode: int = 0o644) -> int:
        return self._dispatch("open", lambda: self.do_open(path, flags, mode),
                              (path, flags))

    def close(self, fd: int) -> int:
        return self._dispatch("close", lambda: self.do_close(fd), (fd,))

    def creat(self, path: str, mode: int = 0o644) -> int:
        return self._dispatch("creat", lambda: self.do_creat(path, mode), (path,))

    def read(self, fd: int, count: int) -> bytes:
        return self._dispatch("read", lambda: self.do_read(fd, count), (fd, count))

    def write(self, fd: int, data: bytes) -> int:
        return self._dispatch("write", lambda: self.do_write(fd, data),
                              (fd, len(data)))

    def pread(self, fd: int, count: int, offset: int) -> bytes:
        return self._dispatch("pread", lambda: self.do_pread(fd, count, offset),
                              (fd, count, offset))

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        return self._dispatch("pwrite", lambda: self.do_pwrite(fd, data, offset),
                              (fd, len(data), offset))

    def lseek(self, fd: int, offset: int, whence: int = 0) -> int:
        return self._dispatch("lseek", lambda: self.do_lseek(fd, offset, whence),
                              (fd, offset, whence))

    def stat(self, path: str):
        return self._dispatch("stat", lambda: self.do_stat(path), (path,))

    def fstat(self, fd: int):
        return self._dispatch("fstat", lambda: self.do_fstat(fd), (fd,))

    def truncate(self, path: str, size: int) -> int:
        return self._dispatch("truncate", lambda: self.do_truncate(path, size),
                              (path, size))

    def ftruncate(self, fd: int, size: int) -> int:
        return self._dispatch("ftruncate", lambda: self.do_ftruncate(fd, size),
                              (fd, size))

    def getdents(self, fd: int, bufsize: int = 32768):
        return self._dispatch("getdents", lambda: self.do_getdents(fd, bufsize),
                              (fd, bufsize))

    def mkdir(self, path: str, mode: int = 0o755) -> int:
        return self._dispatch("mkdir", lambda: self.do_mkdir(path, mode), (path,))

    def rmdir(self, path: str) -> int:
        return self._dispatch("rmdir", lambda: self.do_rmdir(path), (path,))

    def unlink(self, path: str) -> int:
        return self._dispatch("unlink", lambda: self.do_unlink(path), (path,))

    def rename(self, old_path: str, new_path: str) -> int:
        return self._dispatch("rename",
                              lambda: self.do_rename(old_path, new_path),
                              (old_path, new_path))

    def getpid(self) -> int:
        return self._dispatch("getpid", self.do_getpid, ())

    def sync(self) -> int:
        return self._dispatch("sync", self.do_sync, ())

    def fsync(self, fd: int) -> int:
        return self._dispatch("fsync", lambda: self.do_fsync(fd), (fd,))

    # ------------------------------------------ consolidated syscalls (§2.2)

    def readdirplus(self, path: str, bufsize: int = 1 << 22, start: int = 0):
        return self._dispatch("readdirplus",
                              lambda: self.do_readdirplus(path, bufsize, start),
                              (path, bufsize, start))

    def open_read_close(self, path: str, count: int = -1, offset: int = 0) -> bytes:
        return self._dispatch(
            "open_read_close",
            lambda: self.do_open_read_close(path, count, offset),
            (path, count, offset))

    def open_write_close(self, path: str, data: bytes, **kw) -> int:
        return self._dispatch(
            "open_write_close",
            lambda: self.do_open_write_close(path, data, **kw),
            (path, len(data)))

    def open_fstat(self, path: str, flags: int = 0):
        return self._dispatch("open_fstat",
                              lambda: self.do_open_fstat(path, flags),
                              (path, flags))
