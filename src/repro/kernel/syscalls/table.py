"""Syscall numbering (loosely following x86 Linux, with the paper's new
consolidated syscalls assigned numbers past the standard table)."""

from __future__ import annotations

SYSCALL_NRS: dict[str, int] = {
    "exit": 1,
    "read": 3,
    "write": 4,
    "open": 5,
    "close": 6,
    "creat": 8,
    "unlink": 10,
    "fsync": 118,
    "lseek": 19,
    "getpid": 20,
    "sync": 36,
    "rename": 38,
    "mkdir": 39,
    "rmdir": 40,
    "truncate": 92,
    "ftruncate": 93,
    "stat": 106,
    "fstat": 108,
    "getdents": 141,
    "select": 142,
    "pread": 180,
    "pwrite": 181,
    "sendfile": 187,
    "epoll_create": 254,
    "epoll_ctl": 255,
    "epoll_wait": 256,
    # --- network stack (socketcall family numbers) ---
    "socket": 359,
    "socketpair": 360,
    "bind": 361,
    "connect": 362,
    "listen": 363,
    "accept": 364,
    "shutdown": 373,
    # --- async syscall rings (io_uring family numbers) ---
    "uring_setup": 425,
    "uring_enter": 426,
    # --- the paper's consolidated syscalls (§2.2) ---
    "readdirplus": 440,
    "open_read_close": 441,
    "open_write_close": 442,
    "open_fstat": 443,
    # --- the Cosy compound-execution entry point (§2.3) ---
    "cosy_exec": 450,
}

_NAMES = {nr: name for name, nr in SYSCALL_NRS.items()}


def syscall_nr(name: str) -> int:
    return SYSCALL_NRS[name]


def syscall_name(nr: int) -> str:
    return _NAMES.get(nr, f"sys_{nr}")
