"""System-call layer.

The dispatcher charges the user/kernel boundary costs the paper's
optimizations eliminate; :mod:`uaccess` meters every byte that crosses the
boundary (the §2.2 interactive-workload experiment is an accounting of
exactly those bytes); :mod:`consolidated` holds the new syscalls the paper
introduces (readdirplus and friends).
"""

from repro.kernel.syscalls.uaccess import UserCopy, CopyStats
from repro.kernel.syscalls.table import SYSCALL_NRS, syscall_nr, syscall_name
from repro.kernel.syscalls.interface import SyscallInterface, SyscallRecord

__all__ = ["UserCopy", "CopyStats", "SYSCALL_NRS", "syscall_nr",
           "syscall_name", "SyscallInterface", "SyscallRecord"]
