"""The paper's consolidated syscalls (§2.2).

Each replaces a frequently-observed *sequence* of syscalls with one call,
saving (a) all but one boundary crossing and (b) redundant data copies —
most notably in ``readdirplus``, where the user program no longer copies
each file name out of the kernel only to pass it straight back in to stat:

    readdir + N×stat:  names out, then N×(path in + stat out)
    readdirplus:       (name + stat) out, once per file

The byte arithmetic of that saving is what the §2.2 interactive-workload
experiment measures (51.8 MB → 32.3 MB, 171,975 → 17,251 calls).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import EINVAL, ENOTDIR, raise_errno
from repro.kernel.clock import Mode
from repro.kernel.vfs.file import O_APPEND, O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY
from repro.kernel.vfs.inode import DirEntry
from repro.kernel.vfs.stat import STAT_SIZE, Stat

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


class ConsolidatedMixin:
    """readdirplus / open_read_close / open_write_close / open_fstat."""

    kernel: "Kernel"

    def do_readdirplus(self, path: str, bufsize: int = 1 << 22,
                       start: int = 0) -> list[tuple[DirEntry, Stat]]:
        """Names *and* attributes of entries in ``path``, in one call.

        The NFSv3-style combination of readdir with per-entry stat: the
        kernel walks the directory once, stats each child in kernel mode
        (no traps, no path re-copies), and streams (dirent, stat) pairs to
        the user buffer.  ``start`` is a continuation cookie: huge
        directories are listed by repeating the call with the count of
        entries already received.
        """
        if bufsize <= 0:
            raise_errno(EINVAL, "readdirplus bufsize must be positive")
        if start < 0:
            raise_errno(EINVAL, "negative readdirplus cookie")
        self.ucopy.charge_from_user(len(path) + 1)  # type: ignore[attr-defined]
        task = self.kernel.current
        dentry = self.kernel.vfs.path_walk(path, task.cwd)
        if not dentry.inode.is_dir:
            raise_errno(ENOTDIR, path)
        costs = self.kernel.costs
        out: list[tuple[DirEntry, Stat]] = []
        used = 0
        vfs = self.kernel.vfs
        for entry in dentry.inode.readdir()[start:]:
            need = entry.encoded_size() + STAT_SIZE
            if used + need > bufsize:
                break
            # The kernel still resolves each child through the dcache
            # before it can stat it: probe under dcache_lock, and on a
            # miss call the filesystem under the directory's i_sem with
            # no spinlock held (lookup_one_len under i_mutex).
            self.kernel.clock.charge(costs.dcache_lookup, Mode.SYSTEM)
            with vfs.dcache_lock.guard("readdirplus"):
                cached = dentry.d_lookup(entry.name)
            if cached is not None:
                child = cached.inode
            else:
                with dentry.inode.i_sem.guard("readdirplus"):
                    child = dentry.inode.lookup(entry.name)
            if child is None:  # raced with a concurrent unlink
                continue
            self.kernel.clock.charge(costs.dirent_emit + costs.stat_fill,
                                     Mode.SYSTEM)
            out.append((entry, child.getattr()))
            used += need
        if out:
            self.ucopy.charge_to_user(used)  # type: ignore[attr-defined]
        return out

    def do_open_read_close(self, path: str, count: int = -1,
                           offset: int = 0) -> bytes:
        """open + read (up to ``count`` bytes, whole file if -1) + close."""
        if offset < 0:
            raise_errno(EINVAL, "negative offset")
        self.ucopy.charge_from_user(len(path) + 1)  # type: ignore[attr-defined]
        fd = self._open_nocopy(path, O_RDONLY)  # type: ignore[attr-defined]
        try:
            file = self._file_for(fd)  # type: ignore[attr-defined]
            if count < 0:
                count = max(0, file.inode.size - offset)
            data = file.inode.read(offset, count)
            self.ucopy.charge_to_user(len(data))  # type: ignore[attr-defined]
            return data
        finally:
            self.do_close(fd)  # type: ignore[attr-defined]

    def do_open_write_close(self, path: str, data: bytes, *,
                            append: bool = False, create: bool = True,
                            truncate: bool = True) -> int:
        """open(+O_CREAT/O_TRUNC/O_APPEND) + write + close."""
        self.ucopy.charge_from_user(len(path) + 1)  # type: ignore[attr-defined]
        flags = O_WRONLY
        if create:
            flags |= O_CREAT
        if truncate and not append:
            flags |= O_TRUNC
        if append:
            flags |= O_APPEND
        fd = self._open_nocopy(path, flags)  # type: ignore[attr-defined]
        try:
            self.ucopy.charge_from_user(len(data))  # type: ignore[attr-defined]
            file = self._file_for(fd)  # type: ignore[attr-defined]
            pos = file.inode.size if append else 0
            return file.inode.write(pos, data)
        finally:
            self.do_close(fd)  # type: ignore[attr-defined]

    def do_open_fstat(self, path: str, flags: int = O_RDONLY
                      ) -> tuple[int, Stat]:
        """open + fstat, returning the open fd along with the attributes."""
        self.ucopy.charge_from_user(len(path) + 1)  # type: ignore[attr-defined]
        fd = self._open_nocopy(path, flags)  # type: ignore[attr-defined]
        file = self._file_for(fd)  # type: ignore[attr-defined]
        self.kernel.clock.charge(self.kernel.costs.stat_fill, Mode.SYSTEM)
        st = file.inode.getattr()
        self.ucopy.charge_to_user(STAT_SIZE)  # type: ignore[attr-defined]
        return fd, st
