"""User↔kernel copy metering (copy_to_user / copy_from_user).

Every byte that crosses the boundary is charged the uaccess cycle cost and
counted in :class:`CopyStats`.  The §2.2 interactive-workload result — "the
total amount of data transferred between user and kernel space was
51,807,520 bytes" — is read directly off these counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import raise_errno
from repro.kernel.clock import Mode

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


@dataclass
class CopyStats:
    """Running totals of boundary crossings."""

    to_user_bytes: int = 0
    from_user_bytes: int = 0
    to_user_calls: int = 0
    from_user_calls: int = 0

    @property
    def total_bytes(self) -> int:
        return self.to_user_bytes + self.from_user_bytes

    def snapshot(self) -> "CopyStats":
        return CopyStats(self.to_user_bytes, self.from_user_bytes,
                         self.to_user_calls, self.from_user_calls)

    def since(self, snap: "CopyStats") -> "CopyStats":
        return CopyStats(
            self.to_user_bytes - snap.to_user_bytes,
            self.from_user_bytes - snap.from_user_bytes,
            self.to_user_calls - snap.to_user_calls,
            self.from_user_calls - snap.from_user_calls,
        )


class UserCopy:
    """The kernel's window onto user memory.

    Syscall handlers express user I/O through this object whether the user
    buffer is a real simulated address or (for harness ergonomics) a Python
    value whose *size* is what matters; both paths charge identical costs.
    """

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.stats = CopyStats()

    # ---------------------------------------------------- size-based charges

    def charge_from_user(self, nbytes: int, site: str = "?") -> None:
        """Account for copying ``nbytes`` of user data into the kernel."""
        if nbytes < 0:
            raise ValueError("negative copy size")
        errno = self.kernel.faults.should_fail("copy_from_user", site)
        if errno is not None:
            raise_errno(errno, "copy_from_user: fault-injected")
        cycles = self.kernel.costs.uaccess_cost(nbytes)
        self.kernel.clock.charge(cycles, Mode.SYSTEM)
        tracer = self.kernel.trace
        if tracer.enabled:
            tracer.complete("mem:copy_from_user", "copy", cycles,
                            bytes=nbytes)
        self.stats.from_user_bytes += nbytes
        self.stats.from_user_calls += 1

    def charge_to_user(self, nbytes: int, site: str = "?") -> None:
        """Account for copying ``nbytes`` of kernel data out to user space."""
        if nbytes < 0:
            raise ValueError("negative copy size")
        errno = self.kernel.faults.should_fail("copy_to_user", site)
        if errno is not None:
            raise_errno(errno, "copy_to_user: fault-injected")
        cycles = self.kernel.costs.uaccess_cost(nbytes)
        self.kernel.clock.charge(cycles, Mode.SYSTEM)
        tracer = self.kernel.trace
        if tracer.enabled:
            tracer.complete("mem:copy_to_user", "copy", cycles, bytes=nbytes)
        self.stats.to_user_bytes += nbytes
        self.stats.to_user_calls += 1

    # ------------------------------------------------- address-based copies
    # The charge (and its failpoint) comes first: an injected EFAULT means
    # the access itself failed, so no bytes may move.

    def copy_from_user(self, uaddr: int, nbytes: int) -> bytes:
        """Copy real bytes out of the current task's user memory."""
        task = self.kernel.current
        self.charge_from_user(nbytes)
        return self.kernel.mmu.read(task.aspace, uaddr, nbytes)

    def copy_to_user(self, uaddr: int, data: bytes) -> None:
        """Copy real bytes into the current task's user memory."""
        task = self.kernel.current
        self.charge_to_user(len(data))
        self.kernel.mmu.write(task.aspace, uaddr, data)

    def strncpy_from_user(self, uaddr: int, maxlen: int = 4096) -> str:
        """Copy a NUL-terminated string from user memory."""
        task = self.kernel.current
        out = bytearray()
        addr = uaddr
        while len(out) < maxlen:
            b = self.kernel.mmu.read(task.aspace, addr, 1)
            if b == b"\0":
                break
            out += b
            addr += 1
        self.charge_from_user(len(out) + 1)
        return out.decode()
