"""Directory syscall handlers: getdents and namespace operations."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import EINVAL, ENOTDIR, raise_errno
from repro.kernel.clock import Mode
from repro.kernel.vfs.inode import DirEntry

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


class DirOpsMixin:
    """getdents/mkdir/rmdir/unlink/rename."""

    kernel: "Kernel"

    def do_getdents(self, fd: int, bufsize: int = 32768) -> list[DirEntry]:
        """Fill a user dirent buffer; returns the entries that fit.

        ``file.pos`` is the index of the next entry to emit, so repeated
        calls stream a large directory exactly like getdents64(2); an empty
        return means end-of-directory.
        """
        if bufsize <= 0:
            raise_errno(EINVAL, "getdents bufsize must be positive")
        file = self._file_for(fd)  # type: ignore[attr-defined]
        if not file.inode.is_dir:
            raise_errno(ENOTDIR, "getdents on non-directory")
        entries = file.inode.readdir()
        out: list[DirEntry] = []
        used = 0
        costs = self.kernel.costs
        for entry in entries[file.pos:]:
            need = entry.encoded_size()
            if used + need > bufsize:
                break
            self.kernel.clock.charge(costs.dirent_emit, Mode.SYSTEM)
            out.append(entry)
            used += need
        if out:
            self.ucopy.charge_to_user(used)  # type: ignore[attr-defined]
        file.pos += len(out)
        return out

    def do_mkdir(self, path: str, mode: int = 0o755) -> int:
        self.ucopy.charge_from_user(len(path) + 1)  # type: ignore[attr-defined]
        self.kernel.vfs.mkdir(path, self.kernel.current.cwd)
        return 0

    def do_rmdir(self, path: str) -> int:
        self.ucopy.charge_from_user(len(path) + 1)  # type: ignore[attr-defined]
        self.kernel.vfs.rmdir(path, self.kernel.current.cwd)
        return 0

    def do_unlink(self, path: str) -> int:
        self.ucopy.charge_from_user(len(path) + 1)  # type: ignore[attr-defined]
        self.kernel.vfs.unlink(path, self.kernel.current.cwd)
        return 0

    def do_rename(self, old_path: str, new_path: str) -> int:
        self.ucopy.charge_from_user(len(old_path) + 1)  # type: ignore[attr-defined]
        self.ucopy.charge_from_user(len(new_path) + 1)  # type: ignore[attr-defined]
        self.kernel.vfs.rename(old_path, new_path, self.kernel.current.cwd)
        return 0
