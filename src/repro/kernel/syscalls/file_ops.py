"""File syscall handlers (the ``do_*`` bodies run in kernel mode).

Handlers never charge trap/stub costs themselves — the dispatcher does —
so the Cosy kernel extension (§2.3) can invoke the same handlers directly
and legitimately skip the boundary costs: "the system call invocation by
the Cosy kernel module is the same as a normal process and hence all the
necessary checks are performed."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import EBADF, EINVAL, EISDIR, ENOENT, Errno, raise_errno
from repro.kernel.clock import Mode
from repro.kernel.vfs.file import (File, O_ACCMODE, O_APPEND, O_CREAT, O_RDONLY,
                                   O_TRUNC, O_WRONLY, SEEK_CUR, SEEK_END, SEEK_SET)
from repro.kernel.vfs.stat import S_IFREG, STAT_SIZE, Stat

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


class FileOpsMixin:
    """open/close/read/write/lseek/stat and friends."""

    kernel: "Kernel"

    # ------------------------------------------------------------- open

    def do_open(self, path: str, flags: int = O_RDONLY, mode: int = 0o644) -> int:
        self.ucopy.charge_from_user(len(path) + 1)
        return self._open_nocopy(path, flags, mode)

    def _open_nocopy(self, path: str, flags: int, mode: int = 0o644) -> int:
        """Open without the path-copy charge (shared with consolidated calls,
        which copy the path exactly once for the whole compound)."""
        task = self.kernel.current
        vfs = self.kernel.vfs
        try:
            dentry = vfs.path_walk(path, task.cwd)
        except Errno as e:
            if e.errno == ENOENT and (flags & O_CREAT):
                dentry = vfs.create(path, mode | S_IFREG, task.cwd)
            else:
                raise
        inode = dentry.inode
        if inode.is_dir and (flags & O_ACCMODE) != O_RDONLY:
            raise_errno(EISDIR, path)
        if (flags & O_TRUNC) and inode.is_reg:
            inode.truncate(0)
        file = File(dentry, flags)
        inode.i_count.get("sys_open")
        try:
            inode.open_file(file)
        except BaseException:
            # open_file failed (e.g. injected ENOMEM in a stackable FS's
            # private-data allocation): drop the reference we just took.
            inode.i_count.put("sys_open")
            raise
        try:
            return task.alloc_fd(file)
        except BaseException:
            inode.release_file(file)
            inode.i_count.put("sys_open")
            raise

    def do_close(self, fd: int) -> int:
        task = self.kernel.current
        file = task.release_fd(fd)
        if file is None:
            raise_errno(EBADF, f"close({fd})")
        file.inode.release_file(file)
        file.inode.i_count.put("sys_close")
        return 0

    def do_creat(self, path: str, mode: int = 0o644) -> int:
        return self.do_open(path, O_CREAT | O_WRONLY | O_TRUNC, mode)

    # ------------------------------------------------------------- read/write

    def _file_for(self, fd: int) -> File:
        file = self.kernel.current.get_file(fd)
        if file is None:
            raise_errno(EBADF, f"fd {fd}")
        return file

    def do_read(self, fd: int, count: int) -> bytes:
        if count < 0:
            raise_errno(EINVAL, "negative read count")
        file = self._file_for(fd)
        file.check_readable()
        data = file.inode.read(file.pos, count)
        file.pos += len(data)
        self.ucopy.charge_to_user(len(data))
        return data

    def do_write(self, fd: int, data: bytes) -> int:
        file = self._file_for(fd)
        file.check_writable()
        self.ucopy.charge_from_user(len(data))
        pos = file.inode.size if (file.flags & O_APPEND) else file.pos
        n = file.inode.write(pos, data)
        file.pos = pos + n
        return n

    def do_pread(self, fd: int, count: int, offset: int) -> bytes:
        if count < 0 or offset < 0:
            raise_errno(EINVAL, "negative count/offset")
        file = self._file_for(fd)
        file.check_readable()
        data = file.inode.read(offset, count)
        self.ucopy.charge_to_user(len(data))
        return data

    def do_pwrite(self, fd: int, data: bytes, offset: int) -> int:
        if offset < 0:
            raise_errno(EINVAL, "negative offset")
        file = self._file_for(fd)
        file.check_writable()
        self.ucopy.charge_from_user(len(data))
        return file.inode.write(offset, data)

    def do_lseek(self, fd: int, offset: int, whence: int = SEEK_SET) -> int:
        file = self._file_for(fd)
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = file.pos + offset
        elif whence == SEEK_END:
            new = file.inode.size + offset
        else:
            raise_errno(EINVAL, f"whence={whence}")
        if new < 0:
            raise_errno(EINVAL, "seek before start of file")
        file.pos = new
        return new

    # ------------------------------------------------------------- metadata

    def do_stat(self, path: str) -> Stat:
        self.ucopy.charge_from_user(len(path) + 1)
        task = self.kernel.current
        dentry = self.kernel.vfs.path_walk(path, task.cwd)
        self.kernel.clock.charge(self.kernel.costs.stat_fill, Mode.SYSTEM)
        st = dentry.inode.getattr()
        self.ucopy.charge_to_user(STAT_SIZE)
        return st

    def do_fstat(self, fd: int) -> Stat:
        file = self._file_for(fd)
        self.kernel.clock.charge(self.kernel.costs.stat_fill, Mode.SYSTEM)
        st = file.inode.getattr()
        self.ucopy.charge_to_user(STAT_SIZE)
        return st

    def do_truncate(self, path: str, size: int) -> int:
        if size < 0:
            raise_errno(EINVAL, "negative truncate size")
        self.ucopy.charge_from_user(len(path) + 1)
        dentry = self.kernel.vfs.path_walk(path, self.kernel.current.cwd)
        dentry.inode.truncate(size)
        return 0

    def do_ftruncate(self, fd: int, size: int) -> int:
        if size < 0:
            raise_errno(EINVAL, "negative truncate size")
        file = self._file_for(fd)
        file.check_writable()
        file.inode.truncate(size)
        return 0

    # ------------------------------------------------------------- misc

    def do_getpid(self) -> int:
        return self.kernel.current.pid

    def do_sync(self) -> int:
        for sb in self.kernel.vfs.mounted_superblocks:
            sb.sync()
        return 0

    def do_fsync(self, fd: int) -> int:
        """Flush one file's filesystem to stable storage (mail-server
        durability: §2.4's workload-tailored suites need it)."""
        file = self._file_for(fd)
        file.inode.sb.sync()
        return 0
