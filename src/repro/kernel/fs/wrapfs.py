"""Wrapfs: a stackable pass-through filesystem (FiST-style, §3.2).

Wrapfs redirects every operation to a lower filesystem, but — like the real
Wrapfs the paper instruments — it allocates dynamic kernel memory as it
works: per-object private data for each wrapped inode and file, a copy of
each file name it looks up, and temporary page buffers that file data is
staged through.  That allocation pattern (many small, short-lived buffers;
the paper measured an 80-byte average) is exactly what the Kefence
evaluation exercises.

All allocation goes through a pluggable *allocator facade* (``malloc(size,
site)`` / ``free(addr)``), so the same module runs over kmalloc ("vanilla
Wrapfs") or over Kefence's guarded vmalloc ("instrumented Wrapfs") without
code changes — the paper's compiler flag that rewrites kmalloc→vmalloc.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.kernel.clock import Mode
from repro.kernel.fs.disk import BLOCK_SIZE
from repro.kernel.locks import Semaphore
from repro.kernel.vfs.inode import DirEntry, Inode
from repro.kernel.vfs.stat import Stat
from repro.kernel.vfs.super import SuperBlock

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

INODE_PRIVATE_SIZE = 64
FILE_PRIVATE_SIZE = 48


class AllocatorFacade(Protocol):
    """What Wrapfs needs from a memory allocator."""

    def malloc(self, size: int, site: str = "?") -> int: ...
    def free(self, addr: int) -> None: ...


class WrapfsInode(Inode):
    """Wraps a lower inode; every op is delegated after local bookkeeping."""

    def __init__(self, sb: "WrapfsSuperBlock", lower: Inode):
        super().__init__(sb, lower.ino, lower.mode)
        self.lower = lower
        self.wsb: "WrapfsSuperBlock" = sb
        # Per-object private data, as real Wrapfs attaches to each inode.
        self.private = sb.allocator.malloc(INODE_PRIVATE_SIZE, "wrapfs:inode_private")

    # ------------------------------------------------------------- helpers

    def _name_buffer(self, name: str) -> int:
        """Allocate and fill a kernel copy of a file name (freed by caller)."""
        buf = self.wsb.allocator.malloc(len(name) + 1, "wrapfs:name")
        self.sb.kernel.clock.charge(
            self.sb.kernel.costs.memcpy_cost(len(name) + 1), Mode.SYSTEM)
        return buf

    def _wrap(self, lower: Inode | None) -> "WrapfsInode | None":
        return self.wsb.wrap_inode(lower)

    # ------------------------------------------------- namespace operations

    def lookup(self, name: str) -> "WrapfsInode | None":
        buf = self._name_buffer(name)
        try:
            return self._wrap(self.lower.lookup(name))
        finally:
            self.wsb.allocator.free(buf)

    def create(self, name: str, mode: int) -> "WrapfsInode":
        buf = self._name_buffer(name)
        try:
            lower_child = self.lower.create(name, mode)
            try:
                return self._wrap(lower_child)
            except BaseException:
                # Creating the wrapper failed (e.g. ENOMEM on its private
                # data): unwind the lower create so the operation is atomic
                # — otherwise the file exists below but the dcache keeps a
                # stale negative dentry and a retry hits EEXIST.
                self.lower.unlink(name)
                raise
        finally:
            self.wsb.allocator.free(buf)

    def mkdir(self, name: str) -> "WrapfsInode":
        buf = self._name_buffer(name)
        try:
            lower_child = self.lower.mkdir(name)
            try:
                return self._wrap(lower_child)
            except BaseException:
                self.lower.rmdir(name)
                raise
        finally:
            self.wsb.allocator.free(buf)

    def unlink(self, name: str) -> None:
        buf = self._name_buffer(name)
        try:
            lower_child = self.lower.lookup(name)
            self.lower.unlink(name)
            if lower_child is not None:
                self.wsb.unwrap_inode(lower_child)
        finally:
            self.wsb.allocator.free(buf)

    def rmdir(self, name: str) -> None:
        buf = self._name_buffer(name)
        try:
            lower_child = self.lower.lookup(name)
            self.lower.rmdir(name)
            if lower_child is not None:
                self.wsb.unwrap_inode(lower_child)
        finally:
            self.wsb.allocator.free(buf)

    def rename(self, old_name: str, new_dir: Inode, new_name: str) -> None:
        if not isinstance(new_dir, WrapfsInode):
            raise TypeError("rename target must be a Wrapfs directory")
        buf1 = self._name_buffer(old_name)
        try:
            buf2 = self._name_buffer(new_name)
            try:
                self.lower.rename(old_name, new_dir.lower, new_name)
            finally:
                self.wsb.allocator.free(buf2)
        finally:
            self.wsb.allocator.free(buf1)

    def readdir(self) -> list[DirEntry]:
        return self.lower.readdir()

    # -------------------------------------------------------- data operations

    def read(self, offset: int, size: int) -> bytes:
        """Read via a temporary page buffer, as stackable FSes stage pages."""
        out = bytearray()
        pagebuf = self.wsb.allocator.malloc(BLOCK_SIZE, "wrapfs:page_buffer")
        try:
            pos = offset
            remaining = size
            while remaining > 0:
                n = min(remaining, BLOCK_SIZE)
                chunk = self.lower.read(pos, n)
                self.sb.kernel.clock.charge(
                    self.sb.kernel.costs.memcpy_cost(len(chunk)), Mode.SYSTEM)
                out += chunk
                if len(chunk) < n:
                    break
                pos += n
                remaining -= n
        finally:
            self.wsb.allocator.free(pagebuf)
        return bytes(out)

    def write(self, offset: int, data: bytes) -> int:
        pagebuf = self.wsb.allocator.malloc(BLOCK_SIZE, "wrapfs:page_buffer")
        try:
            pos = offset
            view = memoryview(data)
            written = 0
            while len(view) > 0:
                n = min(len(view), BLOCK_SIZE)
                self.sb.kernel.clock.charge(
                    self.sb.kernel.costs.memcpy_cost(n), Mode.SYSTEM)
                written += self.lower.write(pos, bytes(view[:n]))
                pos += n
                view = view[n:]
        finally:
            self.wsb.allocator.free(pagebuf)
        self.size = self.lower.size
        return written

    def truncate(self, size: int) -> None:
        self.lower.truncate(size)
        self.size = self.lower.size

    def getattr(self) -> Stat:
        st = self.lower.getattr()
        return st

    # ------------------------------------------------- open-file lifecycle

    def open_file(self, file) -> None:
        """Attach Wrapfs per-file private data, as the real module does."""
        file.private = self.wsb.allocator.malloc(FILE_PRIVATE_SIZE,
                                                 "wrapfs:file_private")

    def release_file(self, file) -> None:
        if file.private is not None:
            self.wsb.allocator.free(file.private)
            file.private = None


class WrapfsSuperBlock(SuperBlock):
    """A Wrapfs instance stacked over ``lower_sb``."""

    def __init__(self, kernel: "Kernel", lower_sb: SuperBlock,
                 allocator: AllocatorFacade, name: str = "wrapfs"):
        super().__init__(kernel, name)
        self.lower_sb = lower_sb
        self.allocator = allocator
        self._wrappers: dict[int, WrapfsInode] = {}
        #: serializes the wrapper registry.  A sleeping lock, not a spin
        #: lock: creating a wrapper allocates private data with kmalloc,
        #: which may block under memory pressure.
        self.wrap_sem = Semaphore(kernel, "wrapfs_wrap")
        if lower_sb.root_inode is None:
            raise ValueError("lower filesystem has no root")
        self.root_inode = self.wrap_inode(lower_sb.root_inode)

    def wrap_inode(self, lower: Inode | None) -> WrapfsInode | None:
        """Get-or-create the wrapper for a lower inode (interning keeps
        wrapper identity stable, like real Wrapfs's inode hash)."""
        if lower is None:
            return None
        with self.wrap_sem.guard("wrapfs:wrap_inode"):
            wrapper = self._wrappers.get(lower.ino)
            if wrapper is None:
                wrapper = WrapfsInode(self, lower)
                self._wrappers[lower.ino] = wrapper
                self.register_inode(wrapper)
        return wrapper

    def unwrap_inode(self, lower: Inode) -> None:
        """Drop the wrapper of a deleted lower inode, freeing private data."""
        with self.wrap_sem.guard("wrapfs:unwrap_inode"):
            wrapper = self._wrappers.pop(lower.ino, None)
            if wrapper is not None:
                if wrapper.private is not None:
                    self.allocator.free(wrapper.private)
                    wrapper.private = None
                super().drop_inode(wrapper)

    def sync(self) -> None:
        self.lower_sb.sync()

    def statfs(self) -> dict:
        return self.lower_sb.statfs()
