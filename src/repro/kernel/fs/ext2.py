"""An ext2-like block filesystem over the simulated disk.

Files own lists of data blocks allocated from a free-block bitmap; all data
access goes through the buffer cache, so cold reads pay disk latency (IOWAIT)
and warm reads pay only CPU.  Directory entries and inode metadata are kept
as in-memory structures but charged block-mapping CPU costs, which is the
level of fidelity the paper's experiments need (they compare instrumented
vs. vanilla modules *on the same FS*).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import (EEXIST, EISDIR, ENOENT, ENOSPC, ENOTDIR, ENOTEMPTY,
                          raise_errno)
from repro.kernel.clock import Mode
from repro.kernel.fs.disk import BLOCK_SIZE, BufferCache, Disk
from repro.kernel.locks import SpinLock
from repro.kernel.vfs.inode import DT_DIR, DT_REG, DirEntry, Inode
from repro.kernel.vfs.stat import S_IFDIR, S_IFREG
from repro.kernel.vfs.super import SuperBlock

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


class Ext2Inode(Inode):
    """An inode whose file data lives in disk blocks."""

    def __init__(self, sb: "Ext2SuperBlock", ino: int, mode: int):
        super().__init__(sb, ino, mode)
        self.blocks_list: list[int] = [] if self.is_reg else []
        self.entries: dict[str, Ext2Inode] | None = {} if self.is_dir else None
        self.ext2_sb: "Ext2SuperBlock" = sb

    # -------------------------------------------------- directory operations

    def _require_dir(self) -> dict[str, "Ext2Inode"]:
        if self.entries is None:
            raise_errno(ENOTDIR, f"inode {self.ino} is not a directory")
        return self.entries

    def _charge_dirop(self) -> None:
        self.sb.kernel.clock.charge(self.sb.kernel.costs.block_map, Mode.SYSTEM)

    def lookup(self, name: str) -> "Ext2Inode | None":
        self._charge_dirop()
        return self._require_dir().get(name)

    def create(self, name: str, mode: int) -> "Ext2Inode":
        entries = self._require_dir()
        if name in entries:
            raise_errno(EEXIST, name)
        self._charge_dirop()
        inode = Ext2Inode(self.ext2_sb, self.sb.alloc_ino(), mode | S_IFREG)
        self.sb.register_inode(inode)
        entries[name] = inode
        self.touch_mtime()
        return inode

    def mkdir(self, name: str) -> "Ext2Inode":
        entries = self._require_dir()
        if name in entries:
            raise_errno(EEXIST, name)
        self._charge_dirop()
        inode = Ext2Inode(self.ext2_sb, self.sb.alloc_ino(), S_IFDIR | 0o755)
        self.sb.register_inode(inode)
        entries[name] = inode
        self.nlink += 1
        self.touch_mtime()
        return inode

    def unlink(self, name: str) -> None:
        entries = self._require_dir()
        child = entries.get(name)
        if child is None:
            raise_errno(ENOENT, name)
        if child.is_dir:
            raise_errno(EISDIR, name)
        self._charge_dirop()
        del entries[name]
        child.nlink -= 1
        if child.nlink == 0:
            self.sb.drop_inode(child)
        self.touch_mtime()

    def rmdir(self, name: str) -> None:
        entries = self._require_dir()
        child = entries.get(name)
        if child is None:
            raise_errno(ENOENT, name)
        if not child.is_dir:
            raise_errno(ENOTDIR, name)
        if child.entries:
            raise_errno(ENOTEMPTY, name)
        self._charge_dirop()
        del entries[name]
        self.nlink -= 1
        self.sb.drop_inode(child)
        self.touch_mtime()

    def rename(self, old_name: str, new_dir: Inode, new_name: str) -> None:
        entries = self._require_dir()
        child = entries.get(old_name)
        if child is None:
            raise_errno(ENOENT, old_name)
        if not isinstance(new_dir, Ext2Inode):
            raise_errno(ENOTDIR, "cross-filesystem rename")
        self._charge_dirop()
        target = new_dir._require_dir()
        existing = target.get(new_name)
        if existing is not None and existing.is_dir:
            raise_errno(EISDIR, new_name)
        del entries[old_name]
        if existing is not None:
            existing.nlink -= 1
            if existing.nlink == 0:
                self.sb.drop_inode(existing)
        target[new_name] = child
        self.touch_mtime()
        new_dir.touch_mtime()

    def readdir(self) -> list[DirEntry]:
        entries = self._require_dir()
        # Reading a directory touches its blocks (one per ~128 entries).
        nblocks = max(1, (len(entries) + 127) // 128)
        for _ in range(nblocks):
            self._charge_dirop()
        return [
            DirEntry(name, child.ino, DT_DIR if child.is_dir else DT_REG)
            for name, child in entries.items()
        ]

    # -------------------------------------------------------- data operations

    def _block_for(self, index: int, *, allocate: bool) -> int | None:
        """Logical block index -> physical block, optionally allocating."""
        self.sb.kernel.clock.charge(self.sb.kernel.costs.block_map, Mode.SYSTEM)
        while allocate and index >= len(self.blocks_list):
            self.blocks_list.append(self.ext2_sb.alloc_block())
        if index < len(self.blocks_list):
            return self.blocks_list[index]
        return None

    def read(self, offset: int, size: int) -> bytes:
        if self.is_dir:
            raise_errno(EISDIR, "read of a directory")
        size = max(0, min(size, self.size - offset))
        out = bytearray()
        pos = offset
        while len(out) < size:
            bidx, boff = divmod(pos, BLOCK_SIZE)
            phys = self._block_for(bidx, allocate=False)
            n = min(size - len(out), BLOCK_SIZE - boff)
            if phys is None:
                out += bytes(n)  # hole
            else:
                out += self.ext2_sb.bcache.read(phys)[boff:boff + n]
            pos += n
        self.sb.kernel.clock.charge(
            self.sb.kernel.costs.memcpy_cost(len(out)), Mode.SYSTEM)
        self.touch_atime()
        return bytes(out)

    def write(self, offset: int, data: bytes) -> int:
        if self.is_dir:
            raise_errno(EISDIR, "write of a directory")
        pos = offset
        view = memoryview(data)
        while len(view) > 0:
            bidx, boff = divmod(pos, BLOCK_SIZE)
            phys = self._block_for(bidx, allocate=True)
            n = min(len(view), BLOCK_SIZE - boff)
            self.ext2_sb.bcache.write(phys, bytes(view[:n]), boff)
            pos += n
            view = view[n:]
        self.size = max(self.size, offset + len(data))
        self.sb.kernel.clock.charge(
            self.sb.kernel.costs.memcpy_cost(len(data)), Mode.SYSTEM)
        self.touch_mtime()
        return len(data)

    def truncate(self, size: int) -> None:
        if self.is_dir:
            raise_errno(EISDIR, "truncate of a directory")
        needed = (size + BLOCK_SIZE - 1) // BLOCK_SIZE
        while len(self.blocks_list) > needed:
            self.ext2_sb.free_block(self.blocks_list.pop())
        self.size = size
        self.touch_mtime()


class Ext2SuperBlock(SuperBlock):
    """An ext2-like filesystem instance over a disk."""

    def __init__(self, kernel: "Kernel", disk: Disk | None = None,
                 name: str = "ext2", *, cache_blocks: int = 8192):
        super().__init__(kernel, name)
        self.disk = disk if disk is not None else Disk(kernel, nblocks=1 << 20)
        self.bcache = BufferCache(kernel, self.disk, capacity_blocks=cache_blocks)
        #: guards the block free list only; always released before the
        #: buffer cache is touched (lock order: ext2_balloc -> bcache_lock
        #: never holds, because the sections do not overlap).
        self.balloc_lock = SpinLock(kernel, "ext2_balloc")
        self._free_blocks = list(range(self.disk.nblocks - 1, -1, -1))
        root = Ext2Inode(self, self.alloc_ino(), S_IFDIR | 0o755)
        self.register_inode(root)
        self.root_inode = root

    def alloc_block(self) -> int:
        with self.balloc_lock.guard("ext2:alloc_block"):
            if not self._free_blocks:
                raise_errno(ENOSPC, "filesystem full")
            block = self._free_blocks.pop()
        try:
            # A fresh block's prior contents are dead: no read-modify-write.
            # The buffer cache is touched with the freelist lock dropped.
            self.bcache.adopt_zeroed(block)
        except BaseException:
            # Adopting can force an eviction whose write-back fails (EIO);
            # return the block to the free list so it isn't leaked.
            self.bcache.invalidate(block)
            with self.balloc_lock.guard("ext2:alloc_block"):
                self._free_blocks.append(block)
            raise
        return block

    def free_block(self, block: int) -> None:
        self.bcache.invalidate(block)
        with self.balloc_lock.guard("ext2:free_block"):
            self._free_blocks.append(block)

    def drop_inode(self, inode: Inode) -> None:
        if isinstance(inode, Ext2Inode):
            for block in inode.blocks_list:
                self.free_block(block)
            inode.blocks_list.clear()
        super().drop_inode(inode)

    def statfs(self) -> dict:
        return {
            "files": len(self.inodes),
            "blocks": self.disk.nblocks,
            "bfree": len(self._free_blocks),
        }

    def sync(self) -> None:
        self.bcache.sync()
