"""Concrete filesystems for the simulated kernel.

* :mod:`ramfs` — memory-only, no disk costs; used for CPU-bound experiments.
* :mod:`ext2` — block filesystem over a :class:`~repro.kernel.fs.disk.Disk`
  with a buffer cache; stands in for the paper's Ext2/Ext3/Reiserfs targets.
* :mod:`wrapfs` — the stackable pass-through filesystem the Kefence and
  KGCC evaluations instrument.
"""

from repro.kernel.fs.disk import Disk, BufferCache
from repro.kernel.fs.ramfs import RamfsSuperBlock
from repro.kernel.fs.ext2 import Ext2SuperBlock
from repro.kernel.fs.wrapfs import WrapfsSuperBlock

__all__ = ["Disk", "BufferCache", "RamfsSuperBlock", "Ext2SuperBlock",
           "WrapfsSuperBlock"]
