"""Block device with a seek/rotate/transfer latency model, plus a buffer cache.

Disk service time comes from the :class:`~repro.kernel.costs.DiskProfile` in
the cost model and is charged to the clock's IOWAIT bucket — this is what
separates "system time" from "elapsed time" in the I/O-bound experiments
(PostMark in §3.3/§3.4), where the paper observes system time constant while
elapsed time balloons.

The :class:`BufferCache` is a write-back LRU cache of blocks; sequential
access is detected per-device so streaming transfers skip the seek penalty.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.errors import EIO, raise_errno
from repro.kernel.clock import Mode
from repro.kernel.locks import SpinLock

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

BLOCK_SIZE = 4096


class Disk:
    """A block device: fixed-size blocks, latency charged per request.

    ``profile`` overrides the cost model's default disk (e.g. a SCSI log
    drive alongside the IDE data drive, as in the paper's §3.3 setup).
    """

    def __init__(self, kernel: "Kernel", nblocks: int, *, name: str = "hda",
                 profile=None):
        self.kernel = kernel
        self.nblocks = nblocks
        self.name = name
        self.profile = profile
        self._blocks: dict[int, bytes] = {}
        self._last_block = -2  # sequential-access detection
        self.reads = 0
        self.writes = 0

    def _charge(self, block: int, op: str) -> int:
        sequential = block == self._last_block + 1
        self._last_block = block
        profile = self.profile or self.kernel.costs.disk
        seconds = profile.access_seconds(BLOCK_SIZE, sequential=sequential)
        cycles = int(seconds * self.kernel.costs.hz)
        self.kernel.clock.charge(cycles, Mode.IOWAIT)
        tracer = self.kernel.trace
        if tracer.enabled:
            tracer.complete(f"disk:{op}", "io", cycles, dev=self.name,
                            block=block, sequential=sequential)
        return cycles

    def read_block(self, block: int) -> bytes:
        if not (0 <= block < self.nblocks):
            raise_errno(EIO, f"read of block {block} beyond device {self.name}")
        self.reads += 1
        self._charge(block, "read")
        # Media error after the request was issued: the seek was still paid.
        errno = self.kernel.faults.should_fail("disk.read", self.name)
        if errno is not None:
            raise_errno(errno, f"read of block {block} on {self.name}: "
                               f"fault-injected")
        return self._blocks.get(block, bytes(BLOCK_SIZE))

    def write_block(self, block: int, data: bytes) -> None:
        if not (0 <= block < self.nblocks):
            raise_errno(EIO, f"write of block {block} beyond device {self.name}")
        if len(data) != BLOCK_SIZE:
            raise ValueError(f"block write must be {BLOCK_SIZE} bytes, got {len(data)}")
        self.writes += 1
        self._charge(block, "write")
        errno = self.kernel.faults.should_fail("disk.write", self.name)
        if errno is not None:
            raise_errno(errno, f"write of block {block} on {self.name}: "
                               f"fault-injected")
        self._blocks[block] = bytes(data)


class BufferCache:
    """Write-back LRU block cache in front of a :class:`Disk`.

    ``bcache_lock`` (one lockdep class across devices) guards the cache
    index and dirty set only — disk I/O always runs with the lock
    dropped, so critical sections stay a hash probe long and eviction
    write-back can never nest inside another cache operation.
    """

    def __init__(self, kernel: "Kernel", disk: Disk, capacity_blocks: int = 8192):
        self.kernel = kernel
        self.disk = disk
        self.capacity = capacity_blocks
        self.lock = SpinLock(kernel, "bcache_lock")
        self._cache: OrderedDict[int, bytearray] = OrderedDict()
        self._dirty: set[int] = set()
        self.hits = 0
        self.misses = 0
        metrics = kernel.metrics
        metrics.gauge(f"bcache.{disk.name}.hits", fn=lambda: self.hits)
        metrics.gauge(f"bcache.{disk.name}.misses", fn=lambda: self.misses)
        metrics.gauge(f"disk.{disk.name}.reads", fn=lambda: disk.reads)
        metrics.gauge(f"disk.{disk.name}.writes", fn=lambda: disk.writes)

    def _pop_victims(self) -> list[tuple[int, bytearray]]:
        """Detach LRU blocks past capacity; caller holds ``bcache_lock``.
        Clean victims are simply dropped; dirty ones are returned for
        write-back after the lock is released."""
        victims: list[tuple[int, bytearray]] = []
        while len(self._cache) > self.capacity:
            block, data = self._cache.popitem(last=False)
            if block in self._dirty:
                self._dirty.discard(block)
                victims.append((block, data))
        return victims

    def _writeback(self, victims: list[tuple[int, bytearray]]) -> None:
        """Write evicted dirty blocks out; called with the lock dropped."""
        for i, (block, data) in enumerate(victims):
            try:
                self.disk.write_block(block, bytes(data))
            except Exception:
                # Failed write-back must not lose the only copy of the
                # data: put this and every not-yet-written victim back
                # (dirty, at the LRU head) so a later flush can retry,
                # then let the error reach whoever forced the eviction.
                with self.lock.guard("bcache:evict"):
                    for blk, buf in victims[i:]:
                        self._cache[blk] = buf
                        self._cache.move_to_end(blk, last=False)
                        self._dirty.add(blk)
                raise

    def read(self, block: int) -> bytearray:
        """Return the cached block (read-through on miss)."""
        self.kernel.clock.charge(self.kernel.costs.bcache_lookup, Mode.SYSTEM)
        with self.lock.guard("bcache:read"):
            buf = self._cache.get(block)
            if buf is not None:
                self._cache.move_to_end(block)
                self.hits += 1
                return buf
            self.misses += 1
        data = self.disk.read_block(block)     # I/O with the lock dropped
        with self.lock.guard("bcache:read"):
            buf = self._cache.get(block)       # re-check: raced fill wins
            if buf is None:
                buf = bytearray(data)
                self._cache[block] = buf
            victims = self._pop_victims()
        self._writeback(victims)
        return buf

    def write(self, block: int, data: bytes, offset: int = 0) -> None:
        """Write into the cached block, marking it dirty (write-back)."""
        if offset + len(data) > BLOCK_SIZE:
            raise ValueError("write crosses block boundary")
        if offset == 0 and len(data) == BLOCK_SIZE:
            # A full overwrite need not read the old contents from disk.
            self.kernel.clock.charge(self.kernel.costs.bcache_lookup,
                                     Mode.SYSTEM)
            with self.lock.guard("bcache:write"):
                buf = self._cache.get(block)
                if buf is not None:
                    self._cache.move_to_end(block)
                    self.hits += 1
                    buf[:] = data
                    self._dirty.add(block)
                    return
                self.misses += 1
                self._cache[block] = bytearray(data)
                self._dirty.add(block)
                victims = self._pop_victims()
            self._writeback(victims)
        else:
            buf = self.read(block)             # takes the lock internally
            with self.lock.guard("bcache:write"):
                buf[offset:offset + len(data)] = data
                self._dirty.add(block)

    def adopt_zeroed(self, block: int) -> None:
        """Install a freshly-allocated block as zero-filled, without a disk
        read — the filesystem knows a new block's old contents are dead."""
        self.kernel.clock.charge(self.kernel.costs.bcache_lookup, Mode.SYSTEM)
        with self.lock.guard("bcache:adopt"):
            if block in self._cache:
                return
            self._cache[block] = bytearray(BLOCK_SIZE)
            victims = self._pop_victims()
        self._writeback(victims)

    def invalidate(self, block: int) -> None:
        """Drop a block without writeback (after its file was deleted)."""
        with self.lock.guard("bcache:invalidate"):
            self._cache.pop(block, None)
            self._dirty.discard(block)

    def sync(self) -> None:
        """Flush all dirty blocks, in block order (elevator-style).

        A failed write leaves its block (and all not-yet-written blocks)
        dirty, so the error propagates as errno and a retry after the
        fault clears flushes the remainder — nothing is silently dropped.
        """
        with self.lock.guard("bcache:sync"):
            pending = sorted(self._dirty)
        for block in pending:
            with self.lock.guard("bcache:sync"):
                buf = self._cache.get(block)
                data = bytes(buf) if buf is not None else None
            if data is not None:
                self.disk.write_block(block, data)
            with self.lock.guard("bcache:sync"):
                self._dirty.discard(block)
