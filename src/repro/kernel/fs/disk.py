"""Block device with a seek/rotate/transfer latency model, plus a buffer cache.

Disk service time comes from the :class:`~repro.kernel.costs.DiskProfile` in
the cost model and is charged to the clock's IOWAIT bucket — this is what
separates "system time" from "elapsed time" in the I/O-bound experiments
(PostMark in §3.3/§3.4), where the paper observes system time constant while
elapsed time balloons.

The :class:`BufferCache` is a write-back LRU cache of blocks; sequential
access is detected per-device so streaming transfers skip the seek penalty.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.errors import EIO, raise_errno
from repro.kernel.clock import Mode

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

BLOCK_SIZE = 4096


class Disk:
    """A block device: fixed-size blocks, latency charged per request.

    ``profile`` overrides the cost model's default disk (e.g. a SCSI log
    drive alongside the IDE data drive, as in the paper's §3.3 setup).
    """

    def __init__(self, kernel: "Kernel", nblocks: int, *, name: str = "hda",
                 profile=None):
        self.kernel = kernel
        self.nblocks = nblocks
        self.name = name
        self.profile = profile
        self._blocks: dict[int, bytes] = {}
        self._last_block = -2  # sequential-access detection
        self.reads = 0
        self.writes = 0

    def _charge(self, block: int, op: str) -> int:
        sequential = block == self._last_block + 1
        self._last_block = block
        profile = self.profile or self.kernel.costs.disk
        seconds = profile.access_seconds(BLOCK_SIZE, sequential=sequential)
        cycles = int(seconds * self.kernel.costs.hz)
        self.kernel.clock.charge(cycles, Mode.IOWAIT)
        tracer = self.kernel.trace
        if tracer.enabled:
            tracer.complete(f"disk:{op}", "io", cycles, dev=self.name,
                            block=block, sequential=sequential)
        return cycles

    def read_block(self, block: int) -> bytes:
        if not (0 <= block < self.nblocks):
            raise_errno(EIO, f"read of block {block} beyond device {self.name}")
        self.reads += 1
        self._charge(block, "read")
        # Media error after the request was issued: the seek was still paid.
        errno = self.kernel.faults.should_fail("disk.read", self.name)
        if errno is not None:
            raise_errno(errno, f"read of block {block} on {self.name}: "
                               f"fault-injected")
        return self._blocks.get(block, bytes(BLOCK_SIZE))

    def write_block(self, block: int, data: bytes) -> None:
        if not (0 <= block < self.nblocks):
            raise_errno(EIO, f"write of block {block} beyond device {self.name}")
        if len(data) != BLOCK_SIZE:
            raise ValueError(f"block write must be {BLOCK_SIZE} bytes, got {len(data)}")
        self.writes += 1
        self._charge(block, "write")
        errno = self.kernel.faults.should_fail("disk.write", self.name)
        if errno is not None:
            raise_errno(errno, f"write of block {block} on {self.name}: "
                               f"fault-injected")
        self._blocks[block] = bytes(data)


class BufferCache:
    """Write-back LRU block cache in front of a :class:`Disk`."""

    def __init__(self, kernel: "Kernel", disk: Disk, capacity_blocks: int = 8192):
        self.kernel = kernel
        self.disk = disk
        self.capacity = capacity_blocks
        self._cache: OrderedDict[int, bytearray] = OrderedDict()
        self._dirty: set[int] = set()
        self.hits = 0
        self.misses = 0
        metrics = kernel.metrics
        metrics.gauge(f"bcache.{disk.name}.hits", fn=lambda: self.hits)
        metrics.gauge(f"bcache.{disk.name}.misses", fn=lambda: self.misses)
        metrics.gauge(f"disk.{disk.name}.reads", fn=lambda: disk.reads)
        metrics.gauge(f"disk.{disk.name}.writes", fn=lambda: disk.writes)

    def _evict_if_needed(self) -> None:
        while len(self._cache) > self.capacity:
            block, data = self._cache.popitem(last=False)
            if block in self._dirty:
                try:
                    self.disk.write_block(block, bytes(data))
                except Exception:
                    # Failed write-back must not lose the only copy of the
                    # data: keep the block cached (and dirty) at the LRU
                    # head so a later flush can retry, then let the error
                    # reach whoever forced the eviction.
                    self._cache[block] = data
                    self._cache.move_to_end(block, last=False)
                    raise
                self._dirty.discard(block)

    def read(self, block: int) -> bytearray:
        """Return the cached block (read-through on miss)."""
        self.kernel.clock.charge(self.kernel.costs.bcache_lookup, Mode.SYSTEM)
        buf = self._cache.get(block)
        if buf is not None:
            self._cache.move_to_end(block)
            self.hits += 1
            return buf
        self.misses += 1
        buf = bytearray(self.disk.read_block(block))
        self._cache[block] = buf
        self._evict_if_needed()
        return buf

    def write(self, block: int, data: bytes, offset: int = 0) -> None:
        """Write into the cached block, marking it dirty (write-back)."""
        if offset + len(data) > BLOCK_SIZE:
            raise ValueError("write crosses block boundary")
        # A full overwrite need not read the old contents from disk.
        if offset == 0 and len(data) == BLOCK_SIZE and block not in self._cache:
            self.kernel.clock.charge(self.kernel.costs.bcache_lookup, Mode.SYSTEM)
            self.misses += 1
            self._cache[block] = bytearray(data)
            self._evict_if_needed()
        else:
            buf = self.read(block)
            buf[offset:offset + len(data)] = data
        self._dirty.add(block)

    def adopt_zeroed(self, block: int) -> None:
        """Install a freshly-allocated block as zero-filled, without a disk
        read — the filesystem knows a new block's old contents are dead."""
        self.kernel.clock.charge(self.kernel.costs.bcache_lookup, Mode.SYSTEM)
        if block not in self._cache:
            self._cache[block] = bytearray(BLOCK_SIZE)
            self._evict_if_needed()

    def invalidate(self, block: int) -> None:
        """Drop a block without writeback (after its file was deleted)."""
        self._cache.pop(block, None)
        self._dirty.discard(block)

    def sync(self) -> None:
        """Flush all dirty blocks, in block order (elevator-style).

        A failed write leaves its block (and all not-yet-written blocks)
        dirty, so the error propagates as errno and a retry after the
        fault clears flushes the remainder — nothing is silently dropped.
        """
        for block in sorted(self._dirty):
            self.disk.write_block(block, bytes(self._cache[block]))
            self._dirty.discard(block)
