"""ramfs: a memory-only filesystem with no disk costs.

Used where the paper's experiments are CPU-bound (the Cosy micro-benchmarks,
the readdirplus sweep's warm-cache runs): all data lives in page-cache-like
bytearrays and only copy/lookup CPU costs are charged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import EEXIST, EISDIR, ENOENT, ENOTDIR, ENOTEMPTY, raise_errno
from repro.kernel.clock import Mode
from repro.kernel.vfs.inode import DT_DIR, DT_REG, DirEntry, Inode
from repro.kernel.vfs.stat import S_IFDIR, S_IFREG
from repro.kernel.vfs.super import SuperBlock

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


class RamfsInode(Inode):
    """An inode whose data/children live in Python memory."""

    def __init__(self, sb: "RamfsSuperBlock", ino: int, mode: int):
        super().__init__(sb, ino, mode)
        self.data = bytearray() if self.is_reg else None
        self.entries: dict[str, RamfsInode] | None = {} if self.is_dir else None

    # -------------------------------------------------- directory operations

    def _require_dir(self) -> dict[str, "RamfsInode"]:
        if self.entries is None:
            raise_errno(ENOTDIR, f"inode {self.ino} is not a directory")
        return self.entries

    def lookup(self, name: str) -> "RamfsInode | None":
        return self._require_dir().get(name)

    def create(self, name: str, mode: int) -> "RamfsInode":
        entries = self._require_dir()
        if name in entries:
            raise_errno(EEXIST, name)
        inode = RamfsInode(self.sb, self.sb.alloc_ino(), mode | S_IFREG)
        self.sb.register_inode(inode)
        entries[name] = inode
        self.touch_mtime()
        return inode

    def mkdir(self, name: str) -> "RamfsInode":
        entries = self._require_dir()
        if name in entries:
            raise_errno(EEXIST, name)
        inode = RamfsInode(self.sb, self.sb.alloc_ino(), S_IFDIR | 0o755)
        self.sb.register_inode(inode)
        entries[name] = inode
        self.nlink += 1
        self.touch_mtime()
        return inode

    def unlink(self, name: str) -> None:
        entries = self._require_dir()
        child = entries.get(name)
        if child is None:
            raise_errno(ENOENT, name)
        if child.is_dir:
            raise_errno(EISDIR, name)
        del entries[name]
        child.nlink -= 1
        if child.nlink == 0:
            self.sb.drop_inode(child)
        self.touch_mtime()

    def rmdir(self, name: str) -> None:
        entries = self._require_dir()
        child = entries.get(name)
        if child is None:
            raise_errno(ENOENT, name)
        if not child.is_dir:
            raise_errno(ENOTDIR, name)
        if child.entries:
            raise_errno(ENOTEMPTY, name)
        del entries[name]
        self.nlink -= 1
        self.sb.drop_inode(child)
        self.touch_mtime()

    def rename(self, old_name: str, new_dir: Inode, new_name: str) -> None:
        entries = self._require_dir()
        child = entries.get(old_name)
        if child is None:
            raise_errno(ENOENT, old_name)
        if not isinstance(new_dir, RamfsInode):
            raise_errno(ENOTDIR, "cross-filesystem rename")
        target_entries = new_dir._require_dir()
        # An existing regular-file target is replaced, as rename(2) specifies.
        existing = target_entries.get(new_name)
        if existing is not None and existing.is_dir:
            raise_errno(EISDIR, new_name)
        del entries[old_name]
        if existing is not None:
            existing.nlink -= 1
            if existing.nlink == 0:
                self.sb.drop_inode(existing)
        target_entries[new_name] = child
        self.touch_mtime()
        new_dir.touch_mtime()

    def readdir(self) -> list[DirEntry]:
        entries = self._require_dir()
        return [
            DirEntry(name, child.ino, DT_DIR if child.is_dir else DT_REG)
            for name, child in entries.items()
        ]

    # -------------------------------------------------------- data operations

    def read(self, offset: int, size: int) -> bytes:
        if self.data is None:
            raise_errno(EISDIR, "read of a directory")
        chunk = bytes(self.data[offset:offset + size])
        self.sb.kernel.clock.charge(
            self.sb.kernel.costs.memcpy_cost(len(chunk)), Mode.SYSTEM)
        self.touch_atime()
        return chunk

    def write(self, offset: int, data: bytes) -> int:
        if self.data is None:
            raise_errno(EISDIR, "write of a directory")
        if offset > len(self.data):
            self.data.extend(b"\0" * (offset - len(self.data)))
        self.data[offset:offset + len(data)] = data
        self.size = len(self.data)
        self.sb.kernel.clock.charge(
            self.sb.kernel.costs.memcpy_cost(len(data)), Mode.SYSTEM)
        self.touch_mtime()
        return len(data)

    def truncate(self, size: int) -> None:
        if self.data is None:
            raise_errno(EISDIR, "truncate of a directory")
        if size < len(self.data):
            del self.data[size:]
        else:
            self.data.extend(b"\0" * (size - len(self.data)))
        self.size = size
        self.touch_mtime()


class RamfsSuperBlock(SuperBlock):
    """A ramfs instance."""

    def __init__(self, kernel: "Kernel", name: str = "ramfs"):
        super().__init__(kernel, name)
        root = RamfsInode(self, self.alloc_ino(), S_IFDIR | 0o755)
        self.register_inode(root)
        self.root_inode = root
