"""epoll-style readiness: O(ready) event collection for event-loop servers.

select(2) makes the kernel rescan the *entire* interest set on every call
— cost proportional to open connections, paid per request.  epoll keeps
the interest set registered in the kernel across calls, so ``epoll_wait``
pays only for the events it reports.  The cost model mirrors that split
(``select_per_fd`` × interest size vs ``epoll_wait_base`` +
``epoll_per_event`` × ready count), which is exactly the curve
``benchmarks/bench_net.py`` measures.

The Python-side scan uses a rotating cursor so repeated waits are fair to
late descriptors and, in the benchmark's wave pattern, cheap to find.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import EBADF, EINVAL, raise_errno
from repro.kernel.net.socket import SocketInode
from repro.kernel.sched import WaitQueue
from repro.kernel.vfs.inode import Inode

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.net.socket import SockFS

#: event mask bits (subset of <sys/epoll.h>)
EPOLLIN = 0x001
EPOLLOUT = 0x004
EPOLLERR = 0x008
EPOLLHUP = 0x010

#: epoll_ctl ops
EPOLL_CTL_ADD = 1
EPOLL_CTL_DEL = 2
EPOLL_CTL_MOD = 3

#: bytes copied to user per reported event (fd + mask, packed)
EVENT_BYTES = 12


def socket_events(sock: SocketInode) -> int:
    """Current level-triggered readiness mask for one socket."""
    mask = 0
    if sock.readable_ready:
        mask |= EPOLLIN
    if sock.writable_ready:
        mask |= EPOLLOUT
    if sock.reset:
        mask |= EPOLLERR
    if sock.peer_closed or sock.closed:
        mask |= EPOLLHUP
    return mask


class EpollInode(Inode):
    """The anonymous inode behind an epoll fd: the interest set."""

    def __init__(self, sb: "SockFS"):
        super().__init__(sb, sb.alloc_ino(), 0o600)
        self.interest: dict[int, int] = {}      # fd -> requested mask
        #: fd -> ino of the socket registered under that fd.  Descriptor
        #: numbers are reused (POSIX lowest-free rule), so after a close
        #: without EPOLL_CTL_DEL the same fd can name a *different* socket;
        #: the ino pins which endpoint the registration was for.
        self._identity: dict[int, int] = {}
        self._order: list[int] = []             # registration order + tombstones
        self._cursor = 0
        self.waits = 0
        self.events_reported = 0
        self.stale_replaced = 0
        self.stale_skipped = 0
        #: blocking epoll_wait callers sleep here until delivery wakes them
        self.wq = WaitQueue(sb.kernel, f"epoll:{self.ino}")

    # ----------------------------------------------------------- interest

    def _is_stale(self, fd: int, ino: int | None) -> bool:
        """True when ``fd``'s registration names a different socket than the
        one currently installed at ``fd`` (close + fd reuse)."""
        registered = self._identity.get(fd)
        return (registered is not None and ino is not None
                and registered != ino)

    def ctl_add(self, fd: int, mask: int, ino: int | None = None) -> None:
        if fd in self.interest:
            if not self._is_stale(fd, ino):
                raise_errno(EINVAL, f"fd {fd} already in epoll set")
            # The registered socket is gone and the descriptor number was
            # reused: the dead entry must not block the new registration.
            self._forget(fd)
            self.stale_replaced += 1
        self.interest[fd] = mask
        if ino is not None:
            self._identity[fd] = ino
        # A prior DEL/forget leaves a tombstone in the order list; once the
        # fd goes live again that entry would make collect() report the same
        # descriptor twice per scan, so re-registration must not append a
        # second one.
        if fd not in self._order:
            self._order.append(fd)

    def ctl_mod(self, fd: int, mask: int, ino: int | None = None) -> None:
        if fd not in self.interest or self._is_stale(fd, ino):
            raise_errno(EBADF, f"fd {fd} not in epoll set")
        self.interest[fd] = mask

    def ctl_del(self, fd: int) -> None:
        if self.interest.pop(fd, None) is None:
            raise_errno(EBADF, f"fd {fd} not in epoll set")
        self._identity.pop(fd, None)
        self._compact()

    def _forget(self, fd: int) -> None:
        self.interest.pop(fd, None)
        self._identity.pop(fd, None)
        self._compact()

    def _compact(self) -> None:
        # the order list keeps a tombstone; compact when mostly dead
        if len(self._order) > 32 and len(self._order) > 2 * len(self.interest):
            self._order = [f for f in self._order if f in self.interest]
            self._cursor = 0

    # ------------------------------------------------------------- polling

    def collect(self, resolve, maxevents: int) -> list[tuple[int, int]]:
        """Scan from the fairness cursor; returns up to ``maxevents``
        (fd, ready_mask) pairs.  ``resolve(fd)`` maps fd to a pollable
        inode: a :class:`SocketInode`, or any inode exposing an
        ``epoll_events()`` readiness mask (uring fds — docs/URING.md)."""
        order = self._order
        n = len(order)
        if n == 0:
            return []
        found: list[tuple[int, int]] = []
        start = self._cursor % n
        last_idx: int | None = None
        for i in range(n):
            idx = (start + i) % n
            fd = order[idx]
            want = self.interest.get(fd)
            if want is None:
                continue  # tombstone
            sock = resolve(fd)
            if sock is None:
                continue  # fd closed without EPOLL_CTL_DEL: auto-forgotten
            registered = self._identity.get(fd)
            if registered is not None and sock.ino != registered:
                # fd reused for a different socket: the dead registration
                # must not report that stranger's readiness
                self.stale_skipped += 1
                continue
            if isinstance(sock, SocketInode):
                mask = socket_events(sock)
            else:
                mask = sock.epoll_events()
            ready = mask & (want | EPOLLERR | EPOLLHUP)
            if ready:
                found.append((fd, ready))
                last_idx = idx
                if len(found) >= maxevents:
                    break
        if last_idx is not None:
            self._cursor = (last_idx + 1) % n
        self.events_reported += len(found)
        return found

    # ------------------------------------------------------------ lifecycle

    def release_file(self, file) -> None:
        """Closing the epoll fd discards the interest set and unregisters
        the anonymous inode (same churn-leak fix as socket endpoints)."""
        self.interest.clear()
        self._identity.clear()
        self._order.clear()
        self.sb.drop_inode(self)
