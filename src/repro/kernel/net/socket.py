"""Stream sockets: TCP-like endpoints living in the VFS fd table.

The original reproduction shipped only connected socket *pairs*; growing
the §2.1 server story ("read a file from disk and send it over the network
to a remote client") to real request loops needs listeners, connection
establishment, and readiness — this module supplies the endpoint object.

:class:`SocketInode` is an inode, so the generic read/write/close syscalls
work unchanged; connection state (listen backlog, accept queue, shutdown
halves, reset flag) lives here, while packet movement is the NIC's job
(:mod:`repro.kernel.net.nic`) and the syscall surface is
:class:`repro.kernel.net.syscalls.SocketLayer`.

Lifecycle events (``sock.accept``/``sock.close``/``sock.drop``) are emitted
through the kernel's §3.3 ``log_event`` hook with the codes below, so the
event monitors observe the subsystem exactly like locks and refcounts.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING

from repro.errors import ECONNRESET, EINVAL, EPIPE, ENOTCONN, raise_errno
from repro.kernel.clock import Mode
from repro.kernel.locks import SpinLock
from repro.kernel.sched import WaitQueue
from repro.kernel.vfs.inode import Inode
from repro.kernel.vfs.super import SuperBlock

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.net.syscalls import SocketLayer
    from repro.kernel.vfs.file import File

S_IFSOCK = 0o140000

# Event type codes shared with the monitor package (9.. continues the
# EV_* numbering started in repro.kernel.locks).
EV_SOCK_ACCEPT = 9
EV_SOCK_CLOSE = 10
EV_SOCK_DROP = 11

#: shutdown(2) `how` values
SHUT_RD, SHUT_WR, SHUT_RDWR = 0, 1, 2


class SockState(enum.Enum):
    FRESH = "fresh"              # socket() called, not yet connected
    LISTENING = "listening"
    CONNECTING = "connecting"    # SYN sent, no SYN+ACK/RST yet
    ESTABLISHED = "established"
    CLOSED = "closed"


class SockFS(SuperBlock):
    """The anonymous superblock socket inodes hang off (like Linux sockfs)."""

    def __init__(self, kernel: "Kernel"):
        super().__init__(kernel, "sockfs")
        #: back-pointer set by the SocketLayer that owns this sockfs.
        self.stack: "SocketLayer | None" = None


class SocketInode(Inode):
    """One stream-socket endpoint."""

    def __init__(self, sb: SockFS, *, blocking: bool = False,
                 rcvbuf: int | None = None):
        super().__init__(sb, sb.alloc_ino(), S_IFSOCK | 0o600)
        self.rx: deque[bytes] = deque()
        self.rx_bytes = 0
        self.peer: "SocketInode | None" = None
        self.state = SockState.FRESH
        #: blocking endpoints sleep on ``wq`` until softirq delivery wakes
        #: them; non-blocking reads return ``b""`` when the queue is empty.
        self.blocking = blocking
        #: receive-buffer cap in bytes; None = unlimited (socketpair mode).
        self.rcvbuf = rcvbuf
        self.port: int | None = None
        self.backlog = 0
        self.accept_queue: deque["SocketInode"] = deque()
        #: connection torn down by RST / a dropped packet
        self.reset = False
        #: this side called connect() and got RST'd (backlog overflow)
        self.connect_refused = False
        #: FIN received: the peer will send no more data (EOF after drain)
        self.peer_closed = False
        self.closed = False
        self.rd_closed = False
        self.wr_closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.wq = WaitQueue(sb.kernel, f"sock:{self.ino}")
        #: guards the receive and accept queues.  Written from softirq
        #: delivery and read from process context, so every acquisition is
        #: irqsave (``kernel.irq.irqs_off``) — never held across anything
        #: that can transmit or sleep.
        self.rxq_lock = SpinLock(sb.kernel, "sock_rxq")

    # ------------------------------------------------------------ plumbing

    @property
    def stack(self) -> "SocketLayer":
        stack = self.sb.stack
        if stack is None:  # pragma: no cover - wiring error
            raise RuntimeError("socket inode without an owning SocketLayer")
        return stack

    @property
    def value(self) -> int:
        """Payload the event dispatcher snapshots into records: queue depth."""
        return self.rx_bytes

    @property
    def pending(self) -> int:
        """Bytes queued for reading on this endpoint."""
        return self.rx_bytes

    def _charge(self, nbytes: int) -> None:
        costs = self.sb.kernel.costs
        self.sb.kernel.clock.charge(
            costs.sock_op + int(nbytes * costs.sock_copy_per_byte),
            Mode.SYSTEM)

    # ----------------------------------------------------------- readiness

    @property
    def readable_ready(self) -> bool:
        """Would read()/accept() return without blocking?"""
        if self.state is SockState.LISTENING:
            return bool(self.accept_queue)
        return (self.rx_bytes > 0 or self.peer_closed or self.reset
                or self.rd_closed)

    @property
    def writable_ready(self) -> bool:
        if self.state is not SockState.ESTABLISHED or self.wr_closed:
            return False
        peer = self.peer
        if peer is None or peer.closed or peer.rd_closed:
            return False
        return peer.rcvbuf is None or peer.rx_bytes < peer.rcvbuf

    # ------------------------------------------------------------- data ops
    # Offsets are meaningless on sockets; streams consume in order.

    def read(self, offset: int, size: int) -> bytes:
        if size < 0:
            raise_errno(EINVAL, "negative socket read")
        if self.reset:
            raise_errno(ECONNRESET, "read on reset connection")
        if self.rd_closed:
            return b""
        if not self.rx and not self.peer_closed and self.blocking:
            self.stack.wait_readable(self)
            if self.reset:
                raise_errno(ECONNRESET, "connection reset while blocked")
        out = bytearray()
        kernel = self.sb.kernel
        with kernel.irq.irqs_off("sock:read"):
            with self.rxq_lock.guard("sock:read"):
                while self.rx and len(out) < size:
                    chunk = self.rx[0]
                    take = min(len(chunk), size - len(out))
                    out += chunk[:take]
                    if take == len(chunk):
                        self.rx.popleft()
                    else:
                        self.rx[0] = chunk[take:]
                self.rx_bytes -= len(out)
        self.bytes_received += len(out)
        self._charge(len(out))
        return bytes(out)

    def write(self, offset: int, data: bytes) -> int:
        if self.reset:
            raise_errno(ECONNRESET, "write on reset connection")
        if self.closed or self.wr_closed:
            raise_errno(EPIPE, "write after shutdown")
        peer = self.peer
        if peer is None:
            if self.state in (SockState.FRESH, SockState.CONNECTING,
                              SockState.LISTENING):
                raise_errno(ENOTCONN, "socket is not connected")
            raise_errno(EPIPE, "write on a disconnected socket")
        if peer.closed or peer.rd_closed:
            # The reader is gone: deliverance is impossible.  Raising (not
            # short-writing) is what lets sendfile abort mid-transfer.
            raise_errno(EPIPE, "peer endpoint is closed")
        self._charge(len(data))
        if data:
            self.stack.send_data(self, bytes(data))
        self.bytes_sent += len(data)
        return len(data)

    def truncate(self, size: int) -> None:
        raise_errno(EINVAL, "cannot truncate a socket")

    # ------------------------------------------------------------ lifecycle

    def close_endpoint(self, site: str = "sock:close") -> None:
        """Tear down this endpoint: FIN the peer, refuse queued connections."""
        if self.closed:
            return
        self.closed = True
        self.rd_closed = True
        self.wr_closed = True
        self.state = SockState.CLOSED
        kernel = self.sb.kernel
        kernel.log_event(self, EV_SOCK_CLOSE, site)
        stack = self.sb.stack
        if stack is None:
            return
        if self.port is not None:
            stack.release_port(self.port, self)
        # Detach the backlog under the queue lock, then tear the children
        # down with it dropped (teardown transmits FIN/RST packets).
        with kernel.irq.irqs_off("sock:close"):
            with self.rxq_lock.guard("sock:close"):
                pending = list(self.accept_queue)
                self.accept_queue.clear()
        for child in pending:
            # connections completed but never accepted are reset AND
            # closed: no fd will ever reference them, so leaving the
            # endpoint open would strand its inode in sockfs forever
            stack.reset_connection(child, site="sock:close-backlog")
            child.close_endpoint("sock:close-backlog")
        if self.peer is not None and not self.peer.closed:
            stack.send_fin(self)
        # A closed endpoint can never be looked up again; leaving it in the
        # sockfs registry is the leak connection-churn scenarios trip over
        # (sockfs.inodes grows without bound).
        self.sb.drop_inode(self)

    def release_file(self, file: "File") -> None:
        """VFS close hook: closing the last fd closes the endpoint."""
        self.close_endpoint()
