"""A simulated NIC: TX/RX descriptor rings with softirq delivery.

Every byte between two sockets rides a :class:`Packet` through this
device, which is where the network's costs live (see docs/NETWORK.md and
docs/COST_MODEL.md):

* ``nic_tx_per_packet`` + ``net_per_byte`` when the driver queues a packet
  on the TX ring (descriptor fill + DMA/wire cost);
* ``IRQ_DISPATCH_COST`` for the hardware interrupt that moves TX
  descriptors to the RX ring (the loopback "wire");
* ``softirq_entry`` + ``nic_rx_per_packet`` for NET_RX_SOFTIRQ draining
  the RX ring into socket receive queues.

Delivery is driven by the interrupt layer.  In ``deliver="irq"`` mode
(default) every transmit raises the interrupt immediately, so data is
visible to the peer as soon as the sender's syscall returns — loopback
semantics, and what the socketpair tests expect.  In ``deliver="tick"``
mode packets sit in the rings until the timer interrupt fires
(:meth:`repro.kernel.net.syscalls.SocketLayer.attach_timer`) or a blocking
reader pumps the device — NAPI-style deferred delivery.

Multiqueue RX (``queues>1``, SMP kernels — docs/SMP.md): the device keeps
one RX ring per queue and the hardware interrupt *steers* each frame to a
queue RSS-style — SYNs hash by destination port, established-flow frames
by destination socket ino — so one flow always lands on one queue.  Queue
*q*'s NET_RX softirq runs on CPU *q*: the drain charges that CPU's local
clock (an IPI is raised first when the interrupt fired elsewhere), which
is what lets ``bench_net`` shard clients across cores and earn genuine
aggregate speedup.  ``queues=1`` (the default) is byte-identical to the
pre-SMP single-ring device.

Failure injection: the ``net.tx`` failpoint fires per packet on transmit,
``net.rx`` per packet during softirq delivery.  A dropped packet resets
the connection (there is no retransmit layer) and emits a ``sock.drop``
monitor event — see docs/FAULT_INJECTION.md.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.kernel.clock import Mode
from repro.kernel.interrupts import IRQ_DISPATCH_COST, IrqController
from repro.kernel.locks import SpinLock

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.net.socket import SocketInode
    from repro.kernel.net.syscalls import SocketLayer

#: maximum payload bytes per packet (Ethernet-ish MTU)
MTU = 1500


@dataclass
class Packet:
    """One frame on the simulated wire."""

    kind: str                          # "syn" | "syn+ack" | "rst" | "fin" | "data"
    src: "SocketInode | None"
    dst: "SocketInode | None"          # None for SYN: routed by port
    port: int = 0
    payload: bytes = field(default=b"", repr=False)

    def __len__(self) -> int:
        return len(self.payload)


class Nic:
    """The loopback network device: descriptor rings and an interrupt."""

    def __init__(self, kernel: "Kernel", stack: "SocketLayer", *,
                 tx_slots: int = 256, rx_slots: int = 256,
                 deliver: str = "irq", queues: int = 1):
        if deliver not in ("irq", "tick"):
            raise ValueError(f"unknown delivery mode {deliver!r}")
        ncpus = getattr(kernel, "ncpus", 1)
        if not 1 <= queues <= max(ncpus, 1):
            raise ValueError(
                f"queues must be in 1..{ncpus} (got {queues})")
        self.kernel = kernel
        self.stack = stack
        self.tx_slots = tx_slots
        self.rx_slots = rx_slots
        self.deliver = deliver
        self.nqueues = queues
        self.irq = IrqController(kernel)
        #: guards all descriptor rings.  Taken by the hardware interrupt,
        #: so every acquisition is irqsave (inside ``irq.irqs_off``) — the
        #: lockdep irq-safety discipline for driver locks.  Never held
        #: across ``stack.deliver``/``drop_packet``, which can transmit.
        #: On SMP kernels this is the lock cross-CPU softirq drains
        #: genuinely contend on (lockprof's ``contention_cycles``).
        self.lock = SpinLock(kernel, "nic_lock")
        self.tx_ring: deque[Packet] = deque()
        self.rx_rings: list[deque[Packet]] = [deque() for _ in range(queues)]
        # Per-CPU sharded device counters (docs/OBSERVABILITY.md): the
        # softirq increments the executing CPU's shard; readers see the
        # summed view through the read-only properties below.
        m = kernel.metrics
        self._c_tx_packets = m.percpu_counter(
            "net.tx_packets", help="packets queued on the TX ring")
        self._c_rx_packets = m.percpu_counter(
            "net.rx_packets", help="packets delivered by NET_RX softirq")
        self._c_tx_bytes = m.percpu_counter(
            "net.tx_bytes", help="payload bytes queued on the TX ring")
        self._c_rx_bytes = m.percpu_counter(
            "net.rx_bytes", help="payload bytes delivered to sockets")
        self._c_dropped = m.percpu_counter(
            "net.dropped", help="packets dropped (faults, overflow, resets)")
        self._c_interrupts = m.percpu_counter(
            "net.interrupts", help="NIC hardware interrupts raised")
        self._in_kick = False

    # ------------------------------------------------------------- counters

    @property
    def tx_packets(self) -> int:
        return self._c_tx_packets.value

    @property
    def rx_packets(self) -> int:
        return self._c_rx_packets.value

    @property
    def tx_bytes(self) -> int:
        return self._c_tx_bytes.value

    @property
    def rx_bytes(self) -> int:
        return self._c_rx_bytes.value

    @property
    def dropped(self) -> int:
        return self._c_dropped.value

    @property
    def interrupts(self) -> int:
        return self._c_interrupts.value

    def count_drop(self, n: int = 1) -> None:
        """Record a dropped packet (called by the stack's drop path)."""
        self._c_dropped.inc(n)

    @property
    def rx_ring(self) -> deque[Packet]:
        """Queue 0's RX ring (the only ring on single-queue devices)."""
        return self.rx_rings[0]

    @property
    def pending(self) -> int:
        """Packets queued in any ring (in flight on the 'wire')."""
        return len(self.tx_ring) + sum(len(r) for r in self.rx_rings)

    def _queue_for(self, pkt: Packet) -> int:
        """RSS steering: which RX queue receives this frame."""
        if self.nqueues == 1:
            return 0
        if pkt.dst is not None:
            return pkt.dst.ino % self.nqueues
        return pkt.port % self.nqueues

    # ------------------------------------------------------------- transmit

    def transmit(self, pkt: Packet, site: str = "?") -> bool:
        """Driver entry: queue one packet on the TX ring.

        Returns False when the packet was dropped (injected ``net.tx``
        fault or ring overflow); the connection is already reset then.
        """
        costs = self.kernel.costs
        tx_cycles = costs.nic_tx_per_packet + int(len(pkt) * costs.net_per_byte)
        self.kernel.clock.charge(tx_cycles, Mode.SYSTEM)
        tracer = self.kernel.trace
        if tracer.enabled:
            tracer.complete("net:tx", "net", tx_cycles, kind=pkt.kind,
                            bytes=len(pkt), site=site)
        if self.kernel.faults.should_fail("net.tx", site) is not None:
            self.stack.drop_packet(pkt, f"net.tx@{site}")
            return False
        with self.irq.irqs_off("nic:tx"):
            with self.lock.guard("nic:tx"):
                overflow = len(self.tx_ring) >= self.tx_slots
                if not overflow:
                    self.tx_ring.append(pkt)
                    self._c_tx_packets.inc()
                    self._c_tx_bytes.inc(len(pkt))
        if overflow:
            self.stack.drop_packet(pkt, "tx-ring-overflow")
            return False
        if self.deliver == "irq":
            self.kick()
        return True

    # ------------------------------------------------------------- delivery

    def kick(self) -> bool:
        """Raise the NIC interrupt: hardirq ring move + softirq delivery.

        Drains until all rings are empty — delivery may generate response
        packets (SYN → SYN+ACK/RST), which are drained in the same pass.
        On a multiqueue device each queue's softirq runs on its own CPU
        (camera moves there; remote queues get an IPI first).
        Returns True if any packet reached a socket.
        """
        if self._in_kick:
            # transmit() from inside delivery: the outer drain loop will
            # pick the new packet up; interrupts are already being handled.
            return False
        if not self.tx_ring and not any(self.rx_rings):
            return False
        self._in_kick = True
        progressed = False
        clock = self.kernel.clock
        tracer = self.kernel.trace
        ld = getattr(self.kernel, "lockdep", None)
        multiq = self.nqueues > 1
        try:
            while self.tx_ring or any(self.rx_rings):
                if self.tx_ring:
                    # Hardware interrupt: the "wire" steers TX descriptors
                    # onto the receive rings with interrupts disabled.
                    self._c_interrupts.inc()
                    clock.charge(IRQ_DISPATCH_COST, Mode.SYSTEM)
                    if tracer.enabled:
                        tracer.complete("net:hardirq", "net",
                                        IRQ_DISPATCH_COST,
                                        packets=len(self.tx_ring))
                    if ld is not None:
                        ld.hardirq_enter()
                    try:
                        overflowed: list[Packet] = []
                        with self.irq.irqs_off("nic:hardirq"):
                            with self.lock.guard("nic:hardirq"):
                                while self.tx_ring:
                                    pkt = self.tx_ring.popleft()
                                    ring = self.rx_rings[self._queue_for(pkt)]
                                    if len(ring) >= self.rx_slots:
                                        overflowed.append(pkt)
                                        continue
                                    ring.append(pkt)
                            # Still at interrupt time, but the ring lock is
                            # dropped: drop_packet touches socket state.
                            for pkt in overflowed:
                                self.stack.drop_packet(pkt,
                                                       "rx-ring-overflow")
                    finally:
                        if ld is not None:
                            ld.hardirq_exit()
                # Softirq: drain each queue's RX ring into socket queues,
                # on the queue's own CPU when the device is multiqueue.
                for q in range(self.nqueues):
                    if multiq and not self.rx_rings[q]:
                        continue
                    if multiq and q != clock.cpu:
                        self.kernel.sched.send_ipi(q, "net_rx")
                    cpu_ctx = clock.on_cpu(q) if multiq else nullcontext()
                    with cpu_ctx:
                        if self._softirq_drain(q):
                            progressed = True
        finally:
            self._in_kick = False
        return progressed

    def _softirq_drain(self, q: int) -> bool:
        """NET_RX softirq for queue ``q`` on the executing CPU."""
        clock = self.kernel.clock
        costs = self.kernel.costs
        tracer = self.kernel.trace
        ld = getattr(self.kernel, "lockdep", None)
        ring = self.rx_rings[q]
        progressed = False
        traced = ring and tracer.enabled
        if traced:
            tracer.begin("net:softirq", "net", packets=len(ring))
        if ld is not None:
            ld.softirq_enter()
        try:
            if ring:
                clock.charge(costs.softirq_entry, Mode.SYSTEM)
            while True:
                with self.irq.irqs_off("nic:softirq"):
                    with self.lock.guard("nic:softirq"):
                        pkt = ring.popleft() if ring else None
                if pkt is None:
                    break
                clock.charge(costs.nic_rx_per_packet, Mode.SYSTEM)
                if self.kernel.faults.should_fail(
                        "net.rx", pkt.kind) is not None:
                    self.stack.drop_packet(pkt, f"net.rx@{pkt.kind}")
                    continue
                self._c_rx_packets.inc()
                self._c_rx_bytes.inc(len(pkt))
                # Deliver with no NIC lock held: the stack may transmit
                # responses (SYN -> SYN+ACK) re-entering this device.
                self.stack.deliver(pkt)
                progressed = True
        finally:
            if ld is not None:
                ld.softirq_exit()
            if traced:
                tracer.end()
        return progressed
