"""A simulated NIC: TX/RX descriptor rings with softirq delivery.

Every byte between two sockets rides a :class:`Packet` through this
device, which is where the network's costs live (see docs/NETWORK.md and
docs/COST_MODEL.md):

* ``nic_tx_per_packet`` + ``net_per_byte`` when the driver queues a packet
  on the TX ring (descriptor fill + DMA/wire cost);
* ``IRQ_DISPATCH_COST`` for the hardware interrupt that moves TX
  descriptors to the RX ring (the loopback "wire");
* ``softirq_entry`` + ``nic_rx_per_packet`` for NET_RX_SOFTIRQ draining
  the RX ring into socket receive queues.

Delivery is driven by the interrupt layer.  In ``deliver="irq"`` mode
(default) every transmit raises the interrupt immediately, so data is
visible to the peer as soon as the sender's syscall returns — loopback
semantics, and what the socketpair tests expect.  In ``deliver="tick"``
mode packets sit in the rings until the timer interrupt fires
(:meth:`repro.kernel.net.syscalls.SocketLayer.attach_timer`) or a blocking
reader pumps the device — NAPI-style deferred delivery.

Failure injection: the ``net.tx`` failpoint fires per packet on transmit,
``net.rx`` per packet during softirq delivery.  A dropped packet resets
the connection (there is no retransmit layer) and emits a ``sock.drop``
monitor event — see docs/FAULT_INJECTION.md.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.kernel.clock import Mode
from repro.kernel.interrupts import IRQ_DISPATCH_COST, IrqController
from repro.kernel.locks import SpinLock

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.net.socket import SocketInode
    from repro.kernel.net.syscalls import SocketLayer

#: maximum payload bytes per packet (Ethernet-ish MTU)
MTU = 1500


@dataclass
class Packet:
    """One frame on the simulated wire."""

    kind: str                          # "syn" | "syn+ack" | "rst" | "fin" | "data"
    src: "SocketInode | None"
    dst: "SocketInode | None"          # None for SYN: routed by port
    port: int = 0
    payload: bytes = field(default=b"", repr=False)

    def __len__(self) -> int:
        return len(self.payload)


class Nic:
    """The loopback network device: two rings and an interrupt."""

    def __init__(self, kernel: "Kernel", stack: "SocketLayer", *,
                 tx_slots: int = 256, rx_slots: int = 256,
                 deliver: str = "irq"):
        if deliver not in ("irq", "tick"):
            raise ValueError(f"unknown delivery mode {deliver!r}")
        self.kernel = kernel
        self.stack = stack
        self.tx_slots = tx_slots
        self.rx_slots = rx_slots
        self.deliver = deliver
        self.irq = IrqController(kernel)
        #: guards both descriptor rings.  Taken by the hardware interrupt,
        #: so every acquisition is irqsave (inside ``irq.irqs_off``) — the
        #: lockdep irq-safety discipline for driver locks.  Never held
        #: across ``stack.deliver``/``drop_packet``, which can transmit.
        self.lock = SpinLock(kernel, "nic_lock")
        self.tx_ring: deque[Packet] = deque()
        self.rx_ring: deque[Packet] = deque()
        self.tx_packets = 0
        self.rx_packets = 0
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.dropped = 0
        self.interrupts = 0
        self._in_kick = False

    @property
    def pending(self) -> int:
        """Packets queued in either ring (in flight on the 'wire')."""
        return len(self.tx_ring) + len(self.rx_ring)

    # ------------------------------------------------------------- transmit

    def transmit(self, pkt: Packet, site: str = "?") -> bool:
        """Driver entry: queue one packet on the TX ring.

        Returns False when the packet was dropped (injected ``net.tx``
        fault or ring overflow); the connection is already reset then.
        """
        costs = self.kernel.costs
        tx_cycles = costs.nic_tx_per_packet + int(len(pkt) * costs.net_per_byte)
        self.kernel.clock.charge(tx_cycles, Mode.SYSTEM)
        tracer = self.kernel.trace
        if tracer.enabled:
            tracer.complete("net:tx", "net", tx_cycles, kind=pkt.kind,
                            bytes=len(pkt), site=site)
        if self.kernel.faults.should_fail("net.tx", site) is not None:
            self.stack.drop_packet(pkt, f"net.tx@{site}")
            return False
        with self.irq.irqs_off("nic:tx"):
            with self.lock.guard("nic:tx"):
                overflow = len(self.tx_ring) >= self.tx_slots
                if not overflow:
                    self.tx_ring.append(pkt)
                    self.tx_packets += 1
                    self.tx_bytes += len(pkt)
        if overflow:
            self.stack.drop_packet(pkt, "tx-ring-overflow")
            return False
        if self.deliver == "irq":
            self.kick()
        return True

    # ------------------------------------------------------------- delivery

    def kick(self) -> bool:
        """Raise the NIC interrupt: hardirq ring move + softirq delivery.

        Drains until both rings are empty — delivery may generate response
        packets (SYN → SYN+ACK/RST), which are drained in the same pass.
        Returns True if any packet reached a socket.
        """
        if self._in_kick:
            # transmit() from inside delivery: the outer drain loop will
            # pick the new packet up; interrupts are already being handled.
            return False
        if not self.tx_ring and not self.rx_ring:
            return False
        self._in_kick = True
        progressed = False
        clock = self.kernel.clock
        costs = self.kernel.costs
        tracer = self.kernel.trace
        ld = getattr(self.kernel, "lockdep", None)
        try:
            while self.tx_ring or self.rx_ring:
                if self.tx_ring:
                    # Hardware interrupt: the "wire" moves TX descriptors
                    # onto the receive ring with interrupts disabled.
                    self.interrupts += 1
                    clock.charge(IRQ_DISPATCH_COST, Mode.SYSTEM)
                    if tracer.enabled:
                        tracer.complete("net:hardirq", "net",
                                        IRQ_DISPATCH_COST,
                                        packets=len(self.tx_ring))
                    if ld is not None:
                        ld.hardirq_enter()
                    try:
                        overflowed: list[Packet] = []
                        with self.irq.irqs_off("nic:hardirq"):
                            with self.lock.guard("nic:hardirq"):
                                while self.tx_ring:
                                    pkt = self.tx_ring.popleft()
                                    if len(self.rx_ring) >= self.rx_slots:
                                        overflowed.append(pkt)
                                        continue
                                    self.rx_ring.append(pkt)
                            # Still at interrupt time, but the ring lock is
                            # dropped: drop_packet touches socket state.
                            for pkt in overflowed:
                                self.stack.drop_packet(pkt,
                                                       "rx-ring-overflow")
                    finally:
                        if ld is not None:
                            ld.hardirq_exit()
                # Softirq: drain the RX ring into socket queues.
                traced = self.rx_ring and tracer.enabled
                if traced:
                    tracer.begin("net:softirq", "net",
                                 packets=len(self.rx_ring))
                if ld is not None:
                    ld.softirq_enter()
                try:
                    if self.rx_ring:
                        clock.charge(costs.softirq_entry, Mode.SYSTEM)
                    while True:
                        with self.irq.irqs_off("nic:softirq"):
                            with self.lock.guard("nic:softirq"):
                                pkt = self.rx_ring.popleft() \
                                    if self.rx_ring else None
                        if pkt is None:
                            break
                        clock.charge(costs.nic_rx_per_packet, Mode.SYSTEM)
                        if self.kernel.faults.should_fail(
                                "net.rx", pkt.kind) is not None:
                            self.stack.drop_packet(pkt, f"net.rx@{pkt.kind}")
                            continue
                        self.rx_packets += 1
                        self.rx_bytes += len(pkt)
                        # Deliver with no NIC lock held: the stack may
                        # transmit responses (SYN -> SYN+ACK) re-entering
                        # this device.
                        self.stack.deliver(pkt)
                        progressed = True
                finally:
                    if ld is not None:
                        ld.softirq_exit()
                    if traced:
                        tracer.end()
        finally:
            self._in_kick = False
        return progressed
