"""Simulated network stack: sockets, NIC, readiness, syscall surface.

Layering (top to bottom; see docs/NETWORK.md):

* :class:`SocketLayer` — syscall entries + ``do_*`` handlers, the port
  table, and the protocol upper half fed by the NIC softirq;
* :class:`SocketInode` / :class:`EpollInode` — VFS objects behind socket
  and epoll fds;
* :class:`Nic` — TX/RX descriptor rings, hardirq/softirq delivery, and
  the per-packet/per-byte cost accounting.

``from repro.kernel.net import SocketLayer`` remains the one-line way to
load the whole stack onto a kernel, as it was when this package was a
single socketpair module.
"""

from repro.kernel.net.epoll import (EPOLL_CTL_ADD, EPOLL_CTL_DEL,
                                    EPOLL_CTL_MOD, EPOLLERR, EPOLLHUP,
                                    EPOLLIN, EPOLLOUT, EpollInode,
                                    socket_events)
from repro.kernel.net.nic import MTU, Nic, Packet
from repro.kernel.net.socket import (EV_SOCK_ACCEPT, EV_SOCK_CLOSE,
                                     EV_SOCK_DROP, SHUT_RD, SHUT_RDWR,
                                     SHUT_WR, SockFS, SockState, SocketInode)
from repro.kernel.net.syscalls import SocketLayer

__all__ = [
    "EPOLL_CTL_ADD", "EPOLL_CTL_DEL", "EPOLL_CTL_MOD",
    "EPOLLERR", "EPOLLHUP", "EPOLLIN", "EPOLLOUT",
    "EV_SOCK_ACCEPT", "EV_SOCK_CLOSE", "EV_SOCK_DROP",
    "EpollInode", "MTU", "Nic", "Packet",
    "SHUT_RD", "SHUT_RDWR", "SHUT_WR",
    "SockFS", "SockState", "SocketInode", "SocketLayer", "socket_events",
]
