"""The socket syscall surface: a loadable protocol module for the kernel.

§2.1 motivates syscall consolidation with the canonical server hot path:
"read a file from disk and send it over the network to a remote client ...
HTTP servers using these system calls report performance improvements
ranging from 92% to 116%."  §2.4 plans "new system call suites that cater
to [server] workloads".  This module supplies the substrate those claims
are measured on: stream sockets with listen/accept/connect/shutdown,
``sendfile``, ``select``, and the epoll readiness suite — all installed
onto ``kernel.sys`` the way a loadable protocol module extends the
syscall table.

The ``do_*`` handlers are plain methods, so the Cosy kernel extension can
invoke them directly inside a compound (one trap for a whole
accept→read→open→sendfile→close request loop) exactly as it does for the
file syscalls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import (EAGAIN, EADDRINUSE, ECONNREFUSED, ECONNRESET,
                          EDEADLK, EINVAL, EISCONN, ENOTCONN, EOPNOTSUPP,
                          Errno, raise_errno)
from repro.kernel.clock import Mode
from repro.kernel.net.epoll import (EPOLL_CTL_ADD, EPOLL_CTL_DEL,
                                    EPOLL_CTL_MOD, EPOLLIN, EVENT_BYTES,
                                    EpollInode)
from repro.kernel.net.nic import MTU, Nic, Packet
from repro.kernel.net.socket import (EV_SOCK_ACCEPT, SHUT_RD, SHUT_RDWR,
                                     SHUT_WR, SockFS, SockState, SocketInode)
from repro.kernel.vfs.dentry import Dentry
from repro.kernel.vfs.file import File, O_RDWR

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.interrupts import TimerInterrupt


class SocketLayer:
    """Socket syscall extensions installed onto a kernel.

    Also the "network stack" object: it owns the sockfs superblock, the
    port table, and the NIC, and is the NIC's upper-half protocol handler
    (:meth:`deliver`).
    """

    def __init__(self, kernel: "Kernel", *, deliver: str = "irq",
                 default_rcvbuf: int | None = None, queues: int = 1):
        self.kernel = kernel
        self.sockfs = SockFS(kernel)
        self.sockfs.stack = self
        self.nic = Nic(kernel, self, deliver=deliver, queues=queues)
        #: bound ports: port -> owning socket
        self.ports: dict[int, SocketInode] = {}
        #: rcvbuf cap for stack-created sockets (None = unlimited)
        self.default_rcvbuf = default_rcvbuf
        self.pairs_created = 0
        self.connections = 0
        self.accepts = 0
        self.drops = 0
        #: connections refused with an RST (no listener, or backlog full)
        self.refused = 0
        #: refusals specifically due to a full accept backlog
        self.backlog_overflows = 0
        #: RST segments put on the wire
        self.rst_tx = 0
        #: accepted connections aborted because the acceptor was out of fds
        self.accept_emfile = 0
        self._install()

    def _install(self) -> None:
        sys = self.kernel.sys
        sys.socketpair = self._socketpair_entry
        sys.sendfile = self._sendfile_entry
        sys.socket = self._socket_entry
        sys.bind = self._bind_entry
        sys.listen = self._listen_entry
        sys.connect = self._connect_entry
        sys.accept = self._accept_entry
        sys.shutdown = self._shutdown_entry
        sys.select = self._select_entry
        sys.epoll_create = self._epoll_create_entry
        sys.epoll_ctl = self._epoll_ctl_entry
        sys.epoll_wait = self._epoll_wait_entry
        sys.do_socketpair = self.do_socketpair
        sys.do_sendfile = self.do_sendfile
        sys.do_socket = self.do_socket
        sys.do_bind = self.do_bind
        sys.do_listen = self.do_listen
        sys.do_connect = self.do_connect
        sys.do_accept = self.do_accept
        sys.do_shutdown = self.do_shutdown
        sys.do_select = self.do_select
        sys.do_epoll_create = self.do_epoll_create
        sys.do_epoll_ctl = self.do_epoll_ctl
        sys.do_epoll_wait = self.do_epoll_wait

    def attach_timer(self, timer: "TimerInterrupt") -> None:
        """Drive deferred (``deliver="tick"``) RX processing off the timer
        interrupt: each tick raises the NIC interrupt (NAPI-style)."""
        timer.register_handler(self.nic.kick)

    # ----------------------------------------------------- syscall entries

    def _socketpair_entry(self) -> tuple[int, int]:
        return self.kernel.sys._dispatch("socketpair", self.do_socketpair, ())

    def _sendfile_entry(self, out_fd: int, in_fd: int, offset: int,
                        count: int) -> int:
        return self.kernel.sys._dispatch(
            "sendfile",
            lambda: self.do_sendfile(out_fd, in_fd, offset, count),
            (out_fd, in_fd, offset, count))

    def _socket_entry(self, *, blocking: bool = True) -> int:
        return self.kernel.sys._dispatch(
            "socket", lambda: self.do_socket(blocking=blocking), ())

    def _bind_entry(self, fd: int, port: int) -> int:
        return self.kernel.sys._dispatch(
            "bind", lambda: self.do_bind(fd, port), (fd, port))

    def _listen_entry(self, fd: int, backlog: int = 128) -> int:
        return self.kernel.sys._dispatch(
            "listen", lambda: self.do_listen(fd, backlog), (fd, backlog))

    def _connect_entry(self, fd: int, port: int) -> int:
        return self.kernel.sys._dispatch(
            "connect", lambda: self.do_connect(fd, port), (fd, port))

    def _accept_entry(self, fd: int) -> int:
        return self.kernel.sys._dispatch(
            "accept", lambda: self.do_accept(fd), (fd,))

    def _shutdown_entry(self, fd: int, how: int) -> int:
        return self.kernel.sys._dispatch(
            "shutdown", lambda: self.do_shutdown(fd, how), (fd, how))

    def _select_entry(self, fds, start: int = 0, limit: int = 1):
        return self.kernel.sys._dispatch(
            "select", lambda: self.do_select(fds, start, limit),
            (len(fds), start, limit))

    def _epoll_create_entry(self) -> int:
        return self.kernel.sys._dispatch(
            "epoll_create", self.do_epoll_create, ())

    def _epoll_ctl_entry(self, epfd: int, op: int, fd: int,
                         mask: int = EPOLLIN) -> int:
        return self.kernel.sys._dispatch(
            "epoll_ctl", lambda: self.do_epoll_ctl(epfd, op, fd, mask),
            (epfd, op, fd, mask))

    def _epoll_wait_entry(self, epfd: int, maxevents: int = 64,
                          timeout: int = -1):
        return self.kernel.sys._dispatch(
            "epoll_wait",
            lambda: self.do_epoll_wait(epfd, maxevents, timeout),
            (epfd, maxevents, timeout))

    # ------------------------------------------------------------- helpers

    def _sock_for(self, fd: int) -> SocketInode:
        file = self.kernel.sys._file_for(fd)
        inode = file.inode
        if not isinstance(inode, SocketInode):
            raise_errno(EOPNOTSUPP, f"fd {fd} is not a socket")
        return inode

    def _epoll_for(self, fd: int) -> EpollInode:
        file = self.kernel.sys._file_for(fd)
        inode = file.inode
        if not isinstance(inode, EpollInode):
            raise_errno(EINVAL, f"fd {fd} is not an epoll instance")
        return inode

    def _alloc_sock_fd(self, sock: SocketInode) -> int:
        return self.kernel.current.alloc_fd(
            File(Dentry(f"sock:{sock.ino}", None, sock), O_RDWR))

    def _charge_op(self) -> None:
        self.kernel.clock.charge(self.kernel.costs.sock_op, Mode.SYSTEM)

    # ---------------------------------------------------- socket creation

    def do_socket(self, *, blocking: bool = True) -> int:
        """Create an unconnected stream socket; returns its fd."""
        self._charge_op()
        sock = SocketInode(self.sockfs, blocking=blocking,
                           rcvbuf=self.default_rcvbuf)
        # fd first: if the table is full (EMFILE) the inode must not stay
        # registered in sockfs with nothing referencing it.
        fd = self._alloc_sock_fd(sock)
        self.sockfs.register_inode(sock)
        return fd

    def do_socketpair(self) -> tuple[int, int]:
        """Create a connected pair; returns two fds in the current task.

        Pair endpoints are non-blocking with unlimited receive buffers —
        the loopback-pipe semantics the sendfile workloads rely on.
        """
        task = self.kernel.current
        a = SocketInode(self.sockfs)
        b = SocketInode(self.sockfs)
        a.state = b.state = SockState.ESTABLISHED
        a.peer, b.peer = b, a
        self.sockfs.register_inode(a)
        self.sockfs.register_inode(b)
        self.pairs_created += 1
        fd_a = task.alloc_fd(File(Dentry(f"sock:{a.ino}", None, a), O_RDWR))
        fd_b = task.alloc_fd(File(Dentry(f"sock:{b.ino}", None, b), O_RDWR))
        return fd_a, fd_b

    # ------------------------------------------------- connection plumbing

    def do_bind(self, fd: int, port: int) -> int:
        sock = self._sock_for(fd)
        if sock.state is not SockState.FRESH:
            raise_errno(EINVAL, "bind on a connected/listening socket")
        if port <= 0:
            raise_errno(EINVAL, f"bad port {port}")
        if port in self.ports:
            raise_errno(EADDRINUSE, f"port {port}")
        self._charge_op()
        self.ports[port] = sock
        sock.port = port
        return 0

    def do_listen(self, fd: int, backlog: int = 128) -> int:
        sock = self._sock_for(fd)
        if sock.port is None:
            raise_errno(EINVAL, "listen before bind")
        if sock.state is not SockState.FRESH:
            raise_errno(EINVAL, "listen on a connected socket")
        self._charge_op()
        sock.state = SockState.LISTENING
        sock.backlog = max(1, int(backlog))
        return 0

    def do_connect(self, fd: int, port: int) -> int:
        sock = self._sock_for(fd)
        if sock.state is SockState.ESTABLISHED:
            raise_errno(EISCONN, "already connected")
        if sock.state is not SockState.FRESH:
            raise_errno(EINVAL, f"connect in state {sock.state.value}")
        self._charge_op()
        sock.state = SockState.CONNECTING
        self.connections += 1
        self.nic.transmit(Packet("syn", sock, None, port=port), site="syn")
        # Loopback handshake: resolve synchronously (deferred-delivery mode
        # pumps the device here; there is no remote host to wait for).
        while (sock.state is SockState.CONNECTING and not sock.reset
               and not sock.connect_refused):
            if not self.nic.kick():
                break
        if sock.connect_refused:
            sock.state = SockState.CLOSED
            raise_errno(ECONNREFUSED, f"port {port}")
        if sock.reset:
            raise_errno(ECONNRESET, "connection reset during handshake")
        if sock.state is not SockState.ESTABLISHED:
            raise_errno(EAGAIN, "handshake still in flight")
        return 0

    def do_accept(self, fd: int) -> int:
        listener = self._sock_for(fd)
        if listener.state is not SockState.LISTENING:
            raise_errno(EINVAL, "accept on a non-listening socket")
        while not listener.accept_queue:
            if not listener.blocking:
                raise_errno(EAGAIN, "accept queue empty")
            listener.wq.sleep("sock:accept")
            if not self.nic.kick():
                raise_errno(EDEADLK,
                            "blocking accept with no connection in flight")
        with self.kernel.irq.irqs_off("sock:accept"):
            with listener.rxq_lock.guard("sock:accept"):
                child = listener.accept_queue.popleft()
        self._charge_op()
        try:
            child_fd = self._alloc_sock_fd(child)
        except Errno:
            # The child was already ESTABLISHED when it left the backlog;
            # with no fd it would leak and wedge the peer forever.  Abort
            # the connection like a real kernel tearing down an accept it
            # could not complete.
            self.accept_emfile += 1
            self.kernel.metrics.counter("net.accept_emfile").inc()
            self.reset_connection(child, site="accept-emfile")
            child.close_endpoint("sock:accept-emfile")
            raise
        self.accepts += 1
        self.kernel.log_event(child, EV_SOCK_ACCEPT, "sock:accept")
        return child_fd

    def do_shutdown(self, fd: int, how: int) -> int:
        sock = self._sock_for(fd)
        if how not in (SHUT_RD, SHUT_WR, SHUT_RDWR):
            raise_errno(EINVAL, f"shutdown how={how}")
        if sock.state is not SockState.ESTABLISHED:
            raise_errno(ENOTCONN, "shutdown on unconnected socket")
        self._charge_op()
        if how in (SHUT_RD, SHUT_RDWR):
            sock.rd_closed = True
        if how in (SHUT_WR, SHUT_RDWR) and not sock.wr_closed:
            sock.wr_closed = True
            self.send_fin(sock)
        return 0

    # ------------------------------------------------------------ sendfile

    def do_sendfile(self, out_fd: int, in_fd: int, offset: int,
                    count: int) -> int:
        """file → socket entirely in kernel mode (one trap, no uaccess)."""
        sys = self.kernel.sys
        src = sys._file_for(in_fd)
        dst = sys._file_for(out_fd)
        return self.sendfile_files(dst, src, offset, count)

    def sendfile_files(self, dst: File, src: File, offset: int,
                       count: int) -> int:
        """The sendfile body, on resolved files (shared with the uring
        SENDFILE opcode, whose input file may live in a fixed-file slot
        rather than the fd table).

        Every chunk is a preemption point, so a peer that disappears
        mid-transfer is observed: the next chunk's socket write raises
        EPIPE instead of silently short-writing.  On a *non-blocking*
        socket a full TX ring yields a short write (or EAGAIN when
        nothing was sent yet) instead of overrunning the ring — which
        would drop the packet and reset the connection.
        """
        if count < 0 or offset < 0:
            raise_errno(EINVAL, "negative sendfile offset/count")
        src.check_readable()
        dst.check_writable()
        if isinstance(src.inode, SocketInode):
            raise_errno(EINVAL, "sendfile source must be a regular file")
        dst_inode = dst.inode
        nonblock_sock = (isinstance(dst_inode, SocketInode)
                         and not dst_inode.blocking)
        sent = 0
        pos = offset
        while sent < count:
            chunk = src.inode.read(pos, min(65536, count - sent))
            if not chunk:
                break
            if nonblock_sock:
                need = (len(chunk) + MTU - 1) // MTU
                if len(self.nic.tx_ring) + need > self.nic.tx_slots:
                    if sent:
                        break
                    raise_errno(EAGAIN,
                                "TX ring full on non-blocking socket")
            self.kernel.sched.maybe_preempt()
            # in-kernel handoff: page-cache pages feed the socket directly
            self.kernel.clock.charge(
                self.kernel.costs.memcpy_cost(len(chunk)), Mode.SYSTEM)
            dst_inode.write(0, chunk)
            pos += len(chunk)
            sent += len(chunk)
        return sent

    # ------------------------------------------------------------ readiness

    def do_select(self, fds, start: int = 0, limit: int = 1) -> list[int]:
        """Scan the whole interest set; return up to ``limit`` ready fds.

        The kernel walks *every* descriptor on *every* call — the
        O(interest) cost charged here is the select half of the
        select-vs-epoll story.  The scan starts at index ``start``
        (callers keep a rotating cursor for fairness) and the reported
        set is capped at ``limit`` ready fds.
        """
        nfds = len(fds)
        if nfds == 0 or limit <= 0:
            raise_errno(EINVAL, "empty fd set / bad limit")
        sys = self.kernel.sys
        fdset_bytes = (nfds + 7) // 8
        sys.ucopy.charge_from_user(3 * fdset_bytes)  # read/write/except sets
        self.kernel.clock.charge(nfds * self.kernel.costs.select_per_fd,
                                 Mode.SYSTEM)
        self.nic.kick()
        task = self.kernel.current
        ready: list[int] = []
        for i in range(nfds):
            fd = fds[(start + i) % nfds]
            file = task.get_file(fd)
            if file is None:
                raise_errno(EINVAL, f"select on closed fd {fd}")
            inode = file.inode
            if isinstance(inode, SocketInode) and inode.readable_ready:
                ready.append(fd)
                if len(ready) >= limit:
                    break
        sys.ucopy.charge_to_user(fdset_bytes)
        return ready

    def do_epoll_create(self) -> int:
        self.kernel.clock.charge(self.kernel.costs.epoll_op, Mode.SYSTEM)
        ep = EpollInode(self.sockfs)
        self.sockfs.register_inode(ep)
        return self.kernel.current.alloc_fd(
            File(Dentry(f"epoll:{ep.ino}", None, ep), O_RDWR))

    def do_epoll_ctl(self, epfd: int, op: int, fd: int,
                     mask: int = EPOLLIN) -> int:
        ep = self._epoll_for(epfd)
        # The target must be pollable: a socket, or any inode exposing the
        # epoll_events() readiness protocol (uring fds — docs/URING.md).
        file = self.kernel.sys._file_for(fd)
        inode = file.inode
        if not isinstance(inode, SocketInode) \
                and not hasattr(inode, "epoll_events"):
            raise_errno(EOPNOTSUPP, f"fd {fd} is not pollable")
        self.kernel.clock.charge(self.kernel.costs.epoll_op, Mode.SYSTEM)
        if op == EPOLL_CTL_ADD:
            ep.ctl_add(fd, mask, ino=inode.ino)
        elif op == EPOLL_CTL_MOD:
            ep.ctl_mod(fd, mask, ino=inode.ino)
        elif op == EPOLL_CTL_DEL:
            ep.ctl_del(fd)
        else:
            raise_errno(EINVAL, f"epoll_ctl op={op}")
        return 0

    def do_epoll_wait(self, epfd: int, maxevents: int = 64,
                      timeout: int = -1) -> list[tuple[int, int]]:
        """Collect ready events: O(ready) cost, unlike select's O(interest).

        ``timeout=0`` polls; ``timeout=-1`` blocks until at least one event
        is ready (EDEADLK if nothing is in flight to ever wake us).
        """
        ep = self._epoll_for(epfd)
        if maxevents <= 0:
            raise_errno(EINVAL, "maxevents must be positive")
        costs = self.kernel.costs
        self.kernel.clock.charge(costs.epoll_wait_base, Mode.SYSTEM)
        self.nic.kick()
        task = self.kernel.current

        def resolve(fd: int):
            file = task.get_file(fd)
            if file is None:
                return None
            inode = file.inode
            if isinstance(inode, SocketInode) \
                    or hasattr(inode, "epoll_events"):
                return inode
            return None

        events = ep.collect(resolve, maxevents)
        while not events and timeout != 0:
            ep.wq.sleep("epoll:wait")
            if not self.nic.kick():
                raise_errno(EDEADLK,
                            "blocking epoll_wait with nothing in flight")
            events = ep.collect(resolve, maxevents)
        ep.waits += 1
        metrics = self.kernel.metrics
        metrics.counter("epoll.waits").inc()
        metrics.counter("epoll.events").inc(len(events))
        self.kernel.clock.charge(costs.epoll_per_event * len(events),
                                 Mode.SYSTEM)
        if events:
            self.kernel.sys.ucopy.charge_to_user(len(events) * EVENT_BYTES)
        return events

    # -------------------------------------------------- NIC upper half
    # Called from softirq context (Nic.kick) for every delivered packet.

    def deliver(self, pkt: Packet) -> None:
        kind = pkt.kind
        if kind == "syn":
            self._deliver_syn(pkt)
        elif kind == "syn+ack":
            dst = pkt.dst
            if dst is not None and dst.state is SockState.CONNECTING:
                dst.state = SockState.ESTABLISHED
            if dst is not None:
                dst.wq.wake_all()
        elif kind == "rst":
            dst = pkt.dst
            if dst is None:
                return
            if dst.state is SockState.CONNECTING:
                dst.connect_refused = True
            else:
                dst.reset = True
            dst.wq.wake_all()
        elif kind == "fin":
            dst = pkt.dst
            if dst is not None:
                dst.peer_closed = True
                dst.wq.wake_all()
        elif kind == "data":
            dst = pkt.dst
            if dst is None or dst.closed or dst.rd_closed:
                self.drop_packet(pkt, "recv-on-closed")
                return
            # Queue under the socket's receive-queue lock (irqsave: this
            # runs in softirq context); drop_packet transmits an RST, so
            # it must run with the lock dropped.
            with self.kernel.irq.irqs_off("net:deliver"):
                with dst.rxq_lock.guard("net:deliver"):
                    overflow = (dst.rcvbuf is not None
                                and dst.rx_bytes + len(pkt) > dst.rcvbuf)
                    if not overflow:
                        dst.rx.append(pkt.payload)
                        dst.rx_bytes += len(pkt.payload)
            if overflow:
                self.drop_packet(pkt, "rcvbuf-overflow")
                return
            dst.wq.wake_all()

    def _deliver_syn(self, pkt: Packet) -> None:
        listener = self.ports.get(pkt.port)
        src = pkt.src
        if (listener is None or listener.state is not SockState.LISTENING
                or len(listener.accept_queue) >= listener.backlog):
            # no listener / backlog overflow: refuse the connection
            metrics = self.kernel.metrics
            self.refused += 1
            metrics.counter("net.conn_refused").inc()
            if (listener is not None
                    and listener.state is SockState.LISTENING):
                self.backlog_overflows += 1
                metrics.counter("net.backlog_overflow").inc()
            self.rst_tx += 1
            metrics.counter("net.rst_tx").inc()
            self.nic.transmit(Packet("rst", None, src), site="syn-refused")
            return
        child = SocketInode(self.sockfs, blocking=listener.blocking,
                            rcvbuf=listener.rcvbuf)
        child.state = SockState.ESTABLISHED
        self.sockfs.register_inode(child)
        child.peer = src
        if src is not None:
            src.peer = child
        with self.kernel.irq.irqs_off("net:deliver-syn"):
            with listener.rxq_lock.guard("net:deliver-syn"):
                listener.accept_queue.append(child)
        listener.wq.wake_all()
        self.nic.transmit(Packet("syn+ack", child, src), site="syn+ack")

    # ------------------------------------------------------- stack services

    def send_data(self, sock: SocketInode, data: bytes) -> None:
        """Segment a stream write into MTU-sized packets and transmit."""
        peer = sock.peer
        for off in range(0, len(data), MTU):
            ok = self.nic.transmit(
                Packet("data", sock, peer, payload=data[off:off + MTU]),
                site="data")
            if not ok or sock.reset:
                raise_errno(ECONNRESET, "connection reset (packet dropped)")

    def send_fin(self, sock: SocketInode) -> None:
        """Tell the peer no more data is coming (drop ⇒ reset, no raise)."""
        self.nic.transmit(Packet("fin", sock, sock.peer), site="fin")

    def wait_readable(self, sock: SocketInode) -> None:
        """Block until data/EOF/reset arrives; the NIC pump is the waker."""
        while True:
            if sock.rx or sock.peer_closed or sock.reset:
                return
            sock.wq.sleep("sock:read")
            if not self.nic.kick():
                raise_errno(EDEADLK,
                            "blocking read with no data in flight")

    def reset_connection(self, sock: SocketInode, site: str = "?") -> None:
        """Abort both ends of a connection (RST semantics)."""
        for s in (sock, sock.peer):
            if s is None or s.reset:
                continue
            s.reset = True
            s.wq.wake_all()

    def drop_packet(self, pkt: Packet, why: str) -> None:
        """Account a dropped packet and reset the affected connection."""
        from repro.kernel.net.socket import EV_SOCK_DROP
        self.drops += 1
        self.nic.count_drop()
        obj = pkt.dst if pkt.dst is not None else pkt.src
        if obj is not None:
            self.kernel.log_event(obj, EV_SOCK_DROP, f"net:{why}")
        for s in (pkt.src, pkt.dst):
            if s is not None:
                self.reset_connection(s, site=why)

    def release_port(self, port: int, sock: SocketInode) -> None:
        if self.ports.get(port) is sock:
            del self.ports[port]
