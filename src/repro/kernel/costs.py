"""Cost model: cycle prices for every mechanism the simulator charges.

The paper's results are driven by a handful of hardware costs — the
user/kernel boundary crossing, per-byte copies across that boundary, page
faults, segment loads, TLB pressure, and disk latency.  This module collects
them into one dataclass so experiments can vary them explicitly and so
DESIGN.md §5 has a single calibration point.

Defaults are calibrated to the paper's testbed (1.7 GHz Pentium 4, IDE
7200 RPM disk, Linux 2.6) using contemporary measurements of trap costs
(~1000–1500 cycles for int 0x80 entry+exit on the P4's long pipeline) and
memcpy bandwidth.  Absolute values need only be plausible; the experiments'
*shapes* depend on the ratios (trap cost ≫ per-byte copy cost ≫ ALU op).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class DiskProfile:
    """Seek/rotation/transfer model for one disk, in seconds and bytes/s."""

    name: str
    avg_seek_s: float
    half_rotation_s: float
    transfer_bps: float

    def access_seconds(self, nbytes: int, *, sequential: bool) -> float:
        """Service time for one request.  Sequential requests skip the seek
        and rotational delay (the head is already positioned)."""
        t = nbytes / self.transfer_bps
        if not sequential:
            t += self.avg_seek_s + self.half_rotation_s
        return t


#: The paper's §3.2/§3.3 test disks.
IDE_7200RPM = DiskProfile("ide-7200rpm", avg_seek_s=8.5e-3,
                          half_rotation_s=4.17e-3, transfer_bps=40e6)
SCSI_15KRPM = DiskProfile("scsi-15krpm", avg_seek_s=3.8e-3,
                          half_rotation_s=2.0e-3, transfer_bps=70e6)


@dataclass
class CostModel:
    """All cycle prices used by the simulated kernel.

    Attributes are grouped by subsystem; each is the number of cycles charged
    per event unless the name says ``per_byte`` or ``per_page``.
    """

    # -- CPU / trap costs ---------------------------------------------------
    #: one user→kernel→user boundary crossing (trap entry + exit + register
    #: save/restore + cache/TLB disturbance).  The paper calls these
    #: "context switches"; on a P4 this is on the order of 1200 cycles.
    syscall_trap: int = 1200
    #: fixed in-kernel dispatch overhead per syscall (table lookup, audit).
    syscall_dispatch: int = 150
    #: full process context switch (scheduler, address-space switch).
    context_switch: int = 4000
    #: page-fault trap + handler entry.
    page_fault: int = 2200
    #: loading a segment register / far call into an isolated segment.
    segment_load: int = 120
    #: far call + return between segments (Cosy full-isolation mode, §2.3).
    far_call: int = 340
    #: TLB miss refill.
    tlb_miss: int = 90

    # -- copy costs ----------------------------------------------------------
    #: per-byte cost of copy_{to,from}_user (boundary copy with access_ok).
    uaccess_per_byte: float = 0.55
    #: fixed cost per copy_{to,from}_user call.
    uaccess_setup: int = 90
    #: per-byte in-kernel memcpy.
    memcpy_per_byte: float = 0.25

    # -- allocators ----------------------------------------------------------
    kmalloc: int = 90
    kfree: int = 70
    #: vmalloc is much dearer: page allocation + page-table edits, per page.
    vmalloc_base: int = 450
    vmalloc_per_page: int = 400
    vfree_base: int = 350
    vfree_per_page: int = 260
    #: vunmap must invalidate the freed range in the TLB (shootdown).
    vfree_tlb_flush: int = 950
    #: stock vfree walks the vm_struct list linearly; cost per area
    #: examined (the Kefence hash table removes this walk entirely, §3.2).
    vfree_walk_per_area: int = 55
    #: Kefence guardian-PTE installation/removal, per allocation.
    guard_page_setup: int = 160
    #: extra TLB pressure for page-granular allocations, charged per access
    #: to a vmalloc'ed object (the §3.2 "TLB contention" effect).
    vmalloc_access_tlb_penalty: int = 14

    # -- scheduler -----------------------------------------------------------
    #: scheduler tick quantum in cycles (100 Hz timer at 1.7 GHz).
    sched_quantum: int = 17_000_000
    #: cost of one timer-tick/preemption check.
    sched_tick: int = 300

    # -- SMP (docs/SMP.md; all are dead weight at cpus=1) ---------------------
    #: one inter-processor interrupt: APIC write on the sender plus the
    #: dispatch on the target (the target side is charged IRQ_DISPATCH_COST
    #: to its own local clock).
    ipi: int = 1500
    #: migrating a stolen task to another CPU's runqueue (cache-line and
    #: working-set migration, charged to the thief).
    task_migration: int = 1800
    #: upper bound on the cycles one contended spinlock acquisition spins
    #: before the backoff/fairness model hands the lock over; the actual
    #: charge is min(remaining hold time, this cap).
    spinlock_contend_cap: int = 8000
    #: per-CPU kmalloc magazine hit (lock-free fast path).  Calibrated to
    #: the uncontended spinlock pair so magazine and shared-freelist paths
    #: cost the same when nothing contends — the win at cpus>1 is avoided
    #: *contention*, not a cheaper uncontended path.
    kmalloc_magazine: int = 48

    # -- VFS / FS ------------------------------------------------------------
    #: path-component lookup in the dcache (hash + compare), per component.
    dcache_lookup: int = 220
    #: spinlock acquire+release pair (uncontended).
    spinlock_pair: int = 48
    #: inode stat fill-in.
    stat_fill: int = 260
    #: per-dirent formatting cost in readdir/getdents.
    dirent_emit: int = 95
    #: per-block FS mapping logic (bmap).
    block_map: int = 130
    #: buffer-cache hash lookup.
    bcache_lookup: int = 110

    # -- network stack (docs/NETWORK.md) -------------------------------------
    #: fixed per-socket-operation kernel cost (protocol bookkeeping, socket
    #: lock) — the old flat charge the socketpair stub used, kept as the
    #: per-op floor for every socket read/write/accept/connect.
    sock_op: int = 220
    #: per-byte cost of moving data into/out of a socket buffer (skb copy).
    sock_copy_per_byte: float = 0.3
    #: driver cost of queueing one packet on the NIC TX ring (descriptor
    #: fill, doorbell write).
    nic_tx_per_packet: int = 600
    #: hardirq+driver cost of pulling one packet off the RX ring.
    nic_rx_per_packet: int = 800
    #: per-byte wire/DMA cost charged while a packet traverses the NIC.
    net_per_byte: float = 0.2
    #: entering softirq context to drain the RX ring (NET_RX_SOFTIRQ).
    softirq_entry: int = 350
    #: select() cost per descriptor *scanned* — the whole interest set is
    #: walked on every call, which is the O(n) the epoll story is about.
    select_per_fd: int = 55
    #: epoll_create/epoll_ctl bookkeeping (rb-tree insert/remove).
    epoll_op: int = 180
    #: epoll_wait fixed cost (ready-list check, wait-queue arm).
    epoll_wait_base: int = 400
    #: epoll_wait cost per *ready* event reported — O(ready), not O(interest).
    epoll_per_event: int = 60

    # -- uring (docs/URING.md) ------------------------------------------------
    #: fetching, validating, and demuxing one SQE from the submission ring.
    #: Cheaper than ``cosy_decode_op``×args + ``cosy_dispatch``: the entry is
    #: a fixed 64-byte struct demuxed by a one-byte opcode — no interpreter,
    #: no operand slots, no jump table walk.
    uring_sqe: int = 65
    #: formatting and publishing one CQE on the completion ring (slot fill +
    #: tail store with release ordering).
    uring_cqe: int = 30
    #: in-kernel cost of one ``io_uring_enter`` call beyond the generic trap
    #: + dispatch: ring head/tail synchronization, the armed-op flush scan,
    #: and min_complete wait bookkeeping.  A heavyweight syscall — what
    #: sqpoll mode exists to avoid.
    uring_enter: int = 1500
    #: one sqpoll iteration over a ring (fetch head/tail, check for work);
    #: charged to the poller's CPU whether or not SQEs were found.
    sqpoll_poll: int = 60

    # -- user-level application modelling ------------------------------------
    #: user-space overhead wrapped around each syscall invocation (libc stub,
    #: errno handling, loop bookkeeping in the calling program).
    user_syscall_stub: int = 260
    #: per-byte cost for user code to *process* data it read (checksum, parse).
    user_touch_per_byte: float = 0.3

    # -- C-subset execution ---------------------------------------------------
    #: cost of one C-subset AST operation.  The tree-walking interpreter
    #: visits roughly one node per simple machine instruction a compiler
    #: would emit, so one cycle per visit keeps interpreted "application
    #: compute" in a realistic ratio to trap/copy costs.
    cminus_op: int = 1
    #: extra per-op decode cost when the op arrives encoded in a Cosy compound.
    cosy_decode_op: int = 40
    #: Cosy compound fixed setup (buffer validation, watchdog arm).
    cosy_setup: int = 500

    # -- KGCC runtime ---------------------------------------------------------
    #: fixed cost of one bounds check.  BCC-style checks are out-of-line
    #: calls into the runtime (argument setup, spills, branchy validation),
    #: not single inline compares — hundreds of cycles on the P4.
    kgcc_check: int = 200
    #: per-node cost of a splay-tree access during a check.
    kgcc_splay_node: int = 30
    #: cost of registering/unregistering an object in the address map.
    kgcc_register: int = 260

    # -- load-time verifier -----------------------------------------------------
    #: fixed cost of verifying one function at module-load time (CFG build,
    #: worklist setup).  Charged once per register_function, never per call —
    #: the whole point of the eBPF-style design is moving the cost here.
    verifier_load_base: int = 5_000
    #: per-AST-node cost of the abstract-interpretation fixpoint.
    verifier_per_node: int = 120

    # -- event monitor (§3.3) --------------------------------------------------
    #: log_event fast path when no dispatcher is attached (compiled-out).
    monitor_disabled: int = 0
    #: event dispatch (indirect call to callbacks).
    monitor_dispatch: int = 40
    #: ring-buffer enqueue (lock-free reserve + commit).
    monitor_ring_enqueue: int = 60
    #: per-record cost for the chardev read path (copy_to_user of one record
    #: is charged separately via uaccess costs).
    monitor_chardev_record: int = 40
    #: user-space polling loop iteration with no data available.
    monitor_poll_empty: int = 700

    # -- disk -----------------------------------------------------------------
    disk: DiskProfile = field(default_factory=lambda: IDE_7200RPM)
    #: CPU frequency used to convert disk seconds into iowait cycles.
    hz: float = 1.7e9

    # ------------------------------------------------------------------ utils

    def uaccess_cost(self, nbytes: int) -> int:
        """Cycles for one user↔kernel copy of ``nbytes``."""
        return self.uaccess_setup + int(nbytes * self.uaccess_per_byte)

    def memcpy_cost(self, nbytes: int) -> int:
        """Cycles for one in-kernel memcpy of ``nbytes``."""
        return int(nbytes * self.memcpy_per_byte)

    def verifier_cost(self, nodes: int) -> int:
        """One-time cycles to verify a function of ``nodes`` AST nodes at
        load time (see docs/VERIFIER.md and docs/COST_MODEL.md)."""
        return self.verifier_load_base + nodes * self.verifier_per_node

    def disk_cycles(self, nbytes: int, *, sequential: bool) -> int:
        """I/O-wait cycles for one disk request."""
        return int(self.disk.access_seconds(nbytes, sequential=sequential) * self.hz)

    def with_(self, **overrides) -> "CostModel":
        """A copy of this model with selected fields replaced."""
        return replace(self, **overrides)


#: Default model used by ``Kernel()`` when none is passed.
DEFAULT_COSTS = CostModel()
