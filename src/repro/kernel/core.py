"""The :class:`Kernel`: wiring for the whole simulated machine.

One ``Kernel`` is one booted machine: clock + cost model, physical memory,
the shared kernel page table and MMU, the kmalloc/vmalloc allocators, a GDT,
the VFS, the scheduler, the syscall interface, syslog, and the event-hook
socket the §3.3 monitoring framework plugs into.

Typical setup::

    k = Kernel()
    k.mount_root(RamfsSuperBlock(k))
    task = k.spawn("app")
    fd = k.sys.open("/hello", O_CREAT | O_WRONLY)
    k.sys.write(fd, b"hi")
    k.sys.close(fd)
"""

from __future__ import annotations

import os
from typing import Any, Callable

from repro.cminus.compile import CodeCache
from repro.kernel.clock import Clock
from repro.kernel.costs import DEFAULT_COSTS, CostModel
from repro.kernel.cpu import resolve_cpus
from repro.kernel.faultinject import FaultRegistry, arm_from_env
from repro.kernel.interrupts import IrqController
from repro.kernel.locks import SpinLock
from repro.kernel.memory.kmalloc import KmallocAllocator
from repro.kernel.memory.mmu import MMU
from repro.kernel.memory.paging import PageTable
from repro.kernel.memory.physmem import PhysicalMemory
from repro.kernel.memory.vmalloc import VmallocAllocator
from repro.kernel.process import Task
from repro.kernel.sched import Scheduler
from repro.kernel.segments import SegmentTable
from repro.kernel.syscalls.interface import SyscallInterface
from repro.kernel.syslog import KERN_INFO, Syslog
from repro.kernel.vfs.namei import VFS
from repro.kernel.vfs.super import SuperBlock
from repro.safety.lockdep import ENV_LOCKDEP, LockdepValidator
from repro.trace import ENV_PROF, ENV_TRACE, MetricsRegistry, Profiler, Tracer

#: signature of the event hook: (obj, event_type, site) — see §3.3.
EventHook = Callable[[Any, int, str], None]


class KmallocFacade:
    """Adapter giving Wrapfs-style modules a malloc/free view of kmalloc."""

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel

    def malloc(self, size: int, site: str = "?") -> int:
        return self._kernel.kmalloc.kmalloc(size, site)

    def free(self, addr: int) -> None:
        self._kernel.kmalloc.kfree(addr)


class Kernel:
    """A booted simulated machine."""

    def __init__(self, costs: CostModel | None = None,
                 ram_bytes: int = 884 * 1024 * 1024,
                 lockdep: bool | None = None,
                 cpus: int | None = None,
                 profile: bool | None = None):
        self.costs = costs if costs is not None else DEFAULT_COSTS
        #: simulated CPU count (docs/SMP.md): explicit argument wins, then
        #: REPRO_CPUS, then 1.  cpus=1 is bit-identical to the pre-SMP
        #: machine; cpus>1 adds per-CPU runqueues, local clocks, softirq
        #: contexts, allocator magazines, and metrics shards.
        self.ncpus = resolve_cpus(cpus)
        self.clock = Clock(hz=self.costs.hz, cpus=self.ncpus)
        #: kernel-wide metrics registry (repro.trace): the one namespace the
        #: subsystem counters (TLB, code cache, epoll, failpoints) live in.
        #: Clock-aware so per-CPU counter shards follow the executing CPU.
        self.metrics = MetricsRegistry(clock=self.clock)
        #: kernel-wide tracepoint engine (repro.trace); disabled by default,
        #: and free (one attribute check per tracepoint) while disabled.
        self.trace = Tracer(self.clock)
        self.syslog = Syslog(clock=self.clock, tracer=self.trace)
        #: kernel-wide failpoint registry; dormant until an injection arms it.
        self.faults = FaultRegistry(self, metrics=self.metrics)
        #: lock dependency validator (repro.safety.lockdep); None = compiled
        #: out (every hook site is a getattr-and-None-check, zero cycles).
        #: ``lockdep=True`` records violations; booting under REPRO_LOCKDEP=1
        #: is strict — the first violation raises LockdepError.  An explicit
        #: argument wins over the environment (so self-tests of known-bad
        #: patterns can record under a strict CI run).
        if lockdep is None:
            self.lockdep = LockdepValidator(self, strict=True) \
                if os.environ.get(ENV_LOCKDEP) else None
        else:
            self.lockdep = LockdepValidator(self, strict=False) \
                if lockdep else None
        #: CPU interrupt-enable state (local_irq_save/restore nesting).
        self.irq = IrqController(self)
        self.physmem = PhysicalMemory(ram_bytes)
        self.kernel_pt = PageTable()
        self.mmu = MMU(self.physmem, self.clock, self.costs,
                       tracer=self.trace, metrics=self.metrics)
        self.kmalloc = KmallocAllocator(self.physmem, self.kernel_pt,
                                        self.clock, self.costs,
                                        faults=self.faults)
        self.vmalloc = VmallocAllocator(self.physmem, self.kernel_pt,
                                        self.clock, self.costs, mmu=self.mmu,
                                        faults=self.faults)
        # The allocators are built from pieces (no kernel reference), so
        # their freelist locks are attached here, post-construction.
        self.kmalloc.lock = SpinLock(self, "kmalloc_lock")
        self.vmalloc.lock = SpinLock(self, "vmalloc_lock")
        if self.ncpus > 1:
            # SMP: per-CPU kmalloc magazines front the shared freelists.
            self.kmalloc.enable_magazines(self.ncpus)
        self.gdt = SegmentTable()
        #: kernel-wide cache of closure-compiled C-minus programs, keyed by
        #: (program, instrumentation generation) — see repro.cminus.compile.
        self.code_cache = CodeCache(metrics=self.metrics)
        self.vfs = VFS(self)
        self.sched = Scheduler(self)
        self.sys = SyscallInterface(self)
        #: sampling profiler + latency tracers (docs/PROFILING.md);
        #: dormant (zero charge-path cost) until enabled.  Like the
        #: tracer, it only ever *reads* the clock: booting with
        #: ``profile=True`` / ``REPRO_PROF=1`` must not move the
        #: simulated clock by a single cycle.
        self.prof = Profiler(self)
        self._register_prof_counters()
        self.kma = KmallocFacade(self)
        self.tasks: list[Task] = []
        #: event dispatcher socket (§3.3); None = instrumentation compiled out.
        self.event_hook: EventHook | None = None
        #: compile-time-style switches: newly created locks/refcounts emit
        #: events when these are set (the §3.3 "instrumented kernel" builds).
        self.instrument_all_locks = False
        self.instrument_all_refcounts = False
        # CI smoke mode: REPRO_FAULT_SEED arms a seeded low-rate schedule.
        arm_from_env(self.faults)
        # CI trace mode: REPRO_TRACE=1 boots with tracing enabled, which
        # must not move the simulated clock by a single cycle.
        if os.environ.get(ENV_TRACE):
            self.trace.enable()
        # Profiling mode: explicit argument wins, then REPRO_PROF.  The
        # sampler's context is the tracepoint span stacks, so profiling
        # implies tracing.
        if profile is None:
            profile = bool(os.environ.get(ENV_PROF))
        if profile:
            if not self.trace.enabled:
                self.trace.enable()
            self.prof.enable()
        self.printk(KERN_INFO, "kernel booted")

    def _register_prof_counters(self) -> None:
        """Wire the Perfetto counter-track allowlist: zero-cost reads over
        state the subsystems already keep, sampled at each profile tick."""
        prof = self.prof
        for c in range(self.ncpus):
            st = self.sched.cpus[c]
            prof.add_counter(f"sched.runqueue.cpu{c}",
                             lambda st=st: len(st.runqueue))
        prof.add_counter("mmu.tlb_misses", lambda: self.mmu.tlb_misses)

        def cq_backlog() -> int:
            uring = getattr(self, "uring", None)
            if uring is None:
                return 0
            return sum(ring.cq_pending() for ring in uring.rings)

        prof.add_counter("uring.cq_backlog", cq_backlog)

    # ------------------------------------------------------------- plumbing

    @property
    def current(self) -> Task | None:
        return self.sched.current

    def spawn(self, name: str, cpu: int | None = None) -> Task:
        """Create a task and put it on a runqueue.

        Default placement is the CPU of the spawning context, so a
        single-flow workload stays on cpu0 exactly as before SMP; pass
        ``cpu=`` to pin (sharded benchmarks spread their workers).
        """
        task = Task(self, name)
        task.cwd = self.vfs.root
        self.tasks.append(task)
        self.sched.add_task(task, cpu=cpu)
        return task

    def exit_task(self, task: Task) -> None:
        for fd in list(task.fds):
            file = task.fds.pop(fd)
            file.inode.release_file(file)
            file.inode.i_count.put("exit")
        self.sched.remove_task(task)

    def mount_root(self, sb: SuperBlock):
        root = self.vfs.mount_root(sb)
        for task in self.tasks:
            if task.cwd is None:
                task.cwd = root
        return root

    def printk(self, level: int, message: str) -> None:
        self.syslog.printk(level, message)   # syslog stamps Clock.now itself

    # ------------------------------------------------------ event hook (§3.3)

    def log_event(self, obj: Any, event_type: int, site: str = "?") -> None:
        """The kernel-wide ``log_event`` call of Figure 1.

        With no dispatcher attached this is free — matching a kernel built
        without instrumentation; the monitor framework attaches a dispatcher
        to make events observable.
        """
        hook = self.event_hook
        if hook is None:
            return
        hook(obj, event_type, site)

    def attach_event_dispatcher(self, hook: EventHook) -> None:
        if self.event_hook is not None:
            raise RuntimeError("an event dispatcher is already attached")
        self.event_hook = hook

    def detach_event_dispatcher(self) -> None:
        self.event_hook = None

    # ----------------------------------------------------------- measurement

    def measure(self):
        """Context manager measuring elapsed/system/user over a block::

            with k.measure() as m:
                workload()
            print(m.timings.elapsed)
        """
        return _Measurement(self)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Kernel(cycles={self.clock.now}, tasks={len(self.tasks)}, "
                f"syscalls={self.sys.total_syscalls})")


class _Measurement:
    """Result holder for :meth:`Kernel.measure`."""

    def __init__(self, kernel: Kernel):
        self._kernel = kernel
        self.timings = None
        self.delta = None
        self.copies = None

    def __enter__(self):
        self._clock_snap = self._kernel.clock.snapshot()
        self._copy_snap = self._kernel.sys.ucopy.stats.snapshot()
        self._syscalls0 = self._kernel.sys.total_syscalls
        return self

    def __exit__(self, *exc):
        from repro.kernel.clock import Timings
        self.delta = self._kernel.clock.since(self._clock_snap)
        self.timings = Timings.from_delta(self._kernel.clock, self.delta)
        self.copies = self._kernel.sys.ucopy.stats.since(self._copy_snap)
        self.syscalls = self._kernel.sys.total_syscalls - self._syscalls0
        return False
