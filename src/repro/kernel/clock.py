"""Virtual cycle clock with user/system/I-O-wait accounting.

Every performance number in the paper is a wall-clock ("elapsed"), "system",
or "user" time.  The simulator reproduces that three-way split: all work is
charged to the :class:`Clock` in CPU cycles tagged with an execution
:class:`Mode`, and elapsed time is the sum of all three buckets (at
``cpus=1``, the paper's single-CPU P4 testbed).

The clock also drives the scheduler's preemption checks and the Cosy
kernel-time watchdog: both register *deadlines* and poll :meth:`Clock.now`.

SMP time model (docs/SMP.md)
----------------------------
With ``cpus > 1`` the clock keeps one *local* counter triple per CPU next
to the global totals, and :attr:`cpu` names the CPU currently executing
(the simulation is cooperative, so exactly one CPU runs Python code at a
time; the others are "running" work whose cycles were already charged to
their local counters).  The merge rule:

* every charge lands in the global bucket **and** the executing CPU's
  local bucket, so ``now`` (the global sum) equals the sum of all local
  times — the total work done, as if serialized;
* :meth:`local_now` is one CPU's position on the wall — all CPUs start
  at 0 and advance independently;
* :attr:`wall_now` is the *frontier*: ``max(local_now(c))``, the
  simulated wall-clock time of the whole machine.  Aggregate speedup of
  a sharded workload is ``now / wall_now``.

At ``cpus=1`` the per-CPU counters are not allocated, ``local_now() ==
wall_now == now``, and every code path is bit-identical to the pre-SMP
clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Mode(enum.Enum):
    """Which accounting bucket a charge lands in."""

    USER = "user"        # cycles spent executing application code
    SYSTEM = "system"    # cycles spent inside the kernel
    IOWAIT = "iowait"    # cycles the CPU idles waiting for the disk


@dataclass
class ClockSnapshot:
    """Immutable copy of the clock's counters, for interval measurements."""

    user: int
    system: int
    iowait: int

    @property
    def elapsed(self) -> int:
        return self.user + self.system + self.iowait


class Clock:
    """Monotonic virtual cycle counter.

    Parameters
    ----------
    hz:
        Simulated CPU frequency, used only to convert cycles to seconds for
        reporting.  Defaults to the paper's 1.7 GHz Pentium 4.
    cpus:
        Number of simulated CPUs.  ``1`` (the default) keeps the original
        single-CPU accounting untouched; ``>1`` additionally shards every
        charge into the executing CPU's local counters.
    """

    def __init__(self, hz: float = 1.7e9, cpus: int = 1):
        if cpus < 1:
            raise ValueError(f"need at least one CPU, got {cpus}")
        self.hz = float(hz)
        self.cpus = int(cpus)
        #: index of the CPU currently executing (the "camera"); charges land
        #: in this CPU's local counters.  Moved by the scheduler and by
        #: per-CPU softirq processing.
        self.cpu = 0
        self.user = 0
        self.system = 0
        self.iowait = 0
        self._mode_stack: list[Mode] = [Mode.USER]
        #: sampling-profiler slot (repro.trace.prof): when armed, every
        #: charge offers the profiler a read-only look at the clock.  The
        #: sampler never charges, so the counters above are bit-identical
        #: with profiling on or off.
        self._sampler = None
        if self.cpus > 1:
            self._pc_user: list[int] | None = [0] * self.cpus
            self._pc_system: list[int] | None = [0] * self.cpus
            self._pc_iowait: list[int] | None = [0] * self.cpus
        else:
            # Single CPU: no shards, local time degenerates to global time.
            self._pc_user = self._pc_system = self._pc_iowait = None

    # ------------------------------------------------------------- charging

    @property
    def mode(self) -> Mode:
        """The current execution mode (top of the mode stack)."""
        return self._mode_stack[-1]

    def charge(self, cycles: int, mode: Mode | None = None) -> None:
        """Advance time by ``cycles``, charged to ``mode`` (default: current).

        Cycles must be non-negative; zero-cost charges are permitted so call
        sites do not need to special-case disabled cost-model entries.
        """
        if cycles < 0:
            raise ValueError(f"negative charge: {cycles}")
        m = mode or self._mode_stack[-1]
        if m is Mode.USER:
            self.user += cycles
            if self._pc_user is not None:
                self._pc_user[self.cpu] += cycles
        elif m is Mode.SYSTEM:
            self.system += cycles
            if self._pc_system is not None:
                self._pc_system[self.cpu] += cycles
        else:
            self.iowait += cycles
            if self._pc_iowait is not None:
                self._pc_iowait[self.cpu] += cycles
        s = self._sampler
        if s is not None:
            s.tick()

    def charge_system(self, cycles: int) -> None:
        """:meth:`charge` with ``Mode.SYSTEM`` pre-resolved — the
        per-op/per-batch accounting hot path of the C-minus engines."""
        if cycles < 0:
            raise ValueError(f"negative charge: {cycles}")
        self.system += cycles
        if self._pc_system is not None:
            self._pc_system[self.cpu] += cycles
        s = self._sampler
        if s is not None:
            s.tick()

    def push_mode(self, mode: Mode) -> None:
        """Enter an execution mode (e.g. USER→SYSTEM on a trap)."""
        self._mode_stack.append(mode)

    def pop_mode(self) -> Mode:
        """Leave the current mode; the base USER mode can never be popped."""
        if len(self._mode_stack) == 1:
            raise RuntimeError("cannot pop the base execution mode")
        return self._mode_stack.pop()

    class _ModeCtx:
        def __init__(self, clock: "Clock", mode: Mode):
            self._clock, self._mode = clock, mode

        def __enter__(self):
            self._clock.push_mode(self._mode)
            return self._clock

        def __exit__(self, *exc):
            self._clock.pop_mode()
            return False

    def in_mode(self, mode: Mode) -> "_ModeCtx":
        """Context manager form of push/pop for exception safety."""
        return Clock._ModeCtx(self, mode)

    # --------------------------------------------------------- CPU identity

    def set_cpu(self, cpu: int) -> None:
        """Move execution (the charge destination) to ``cpu``."""
        if not 0 <= cpu < self.cpus:
            raise ValueError(f"cpu {cpu} out of range [0, {self.cpus})")
        self.cpu = cpu

    class _CpuCtx:
        def __init__(self, clock: "Clock", cpu: int):
            self._clock, self._cpu = clock, cpu
            self._prev = clock.cpu

        def __enter__(self):
            self._prev = self._clock.cpu
            self._clock.set_cpu(self._cpu)
            return self._clock

        def __exit__(self, *exc):
            self._clock.cpu = self._prev
            return False

    def on_cpu(self, cpu: int) -> "_CpuCtx":
        """Temporarily execute on ``cpu`` (per-CPU softirq processing)."""
        return Clock._CpuCtx(self, cpu)

    # ------------------------------------------------------------ reporting

    @property
    def now(self) -> int:
        """Total elapsed cycles (sum over all CPUs: the serialized total)."""
        return self.user + self.system + self.iowait

    def local_now(self, cpu: int | None = None) -> int:
        """One CPU's local time (default: the executing CPU).

        At ``cpus=1`` this is :attr:`now`; at ``cpus>1`` it is that CPU's
        position on the simulated wall clock.
        """
        if self._pc_user is None:
            return self.user + self.system + self.iowait
        c = self.cpu if cpu is None else cpu
        assert self._pc_system is not None and self._pc_iowait is not None
        return self._pc_user[c] + self._pc_system[c] + self._pc_iowait[c]

    @property
    def wall_now(self) -> int:
        """Simulated wall-clock time: the frontier ``max(local_now(c))``."""
        if self._pc_user is None:
            return self.user + self.system + self.iowait
        return max(self.local_now(c) for c in range(self.cpus))

    def local_snapshot(self, cpu: int | None = None) -> ClockSnapshot:
        """Immutable copy of one CPU's local counters."""
        if self._pc_user is None:
            return ClockSnapshot(self.user, self.system, self.iowait)
        c = self.cpu if cpu is None else cpu
        assert self._pc_system is not None and self._pc_iowait is not None
        return ClockSnapshot(self._pc_user[c], self._pc_system[c],
                             self._pc_iowait[c])

    def percpu(self) -> list[ClockSnapshot]:
        """Per-CPU local counter snapshots (length :attr:`cpus`)."""
        return [self.local_snapshot(c) for c in range(self.cpus)]

    def snapshot(self) -> ClockSnapshot:
        return ClockSnapshot(self.user, self.system, self.iowait)

    def since(self, snap: ClockSnapshot) -> ClockSnapshot:
        """Counter deltas since ``snap``."""
        return ClockSnapshot(
            self.user - snap.user, self.system - snap.system, self.iowait - snap.iowait
        )

    def seconds(self, cycles: int) -> float:
        """Convert a cycle count to seconds at the simulated frequency."""
        return cycles / self.hz

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Clock(user={self.user}, system={self.system}, "
            f"iowait={self.iowait}, mode={self.mode.value})"
        )


@dataclass
class Timings:
    """Elapsed/system/user seconds, as the paper reports them."""

    elapsed: float
    system: float
    user: float
    iowait: float = 0.0

    @staticmethod
    def from_delta(clock: Clock, delta: ClockSnapshot) -> "Timings":
        return Timings(
            elapsed=clock.seconds(delta.elapsed),
            system=clock.seconds(delta.system),
            user=clock.seconds(delta.user),
            iowait=clock.seconds(delta.iowait),
        )

    def improvement_over(self, baseline: "Timings") -> "dict[str, float]":
        """Percentage improvement of ``self`` relative to ``baseline``
        (positive = ``self`` is faster), per bucket, as the paper quotes."""

        def pct(new: float, old: float) -> float:
            return 0.0 if old == 0 else 100.0 * (old - new) / old

        return {
            "elapsed": pct(self.elapsed, baseline.elapsed),
            "system": pct(self.system, baseline.system),
            "user": pct(self.user, baseline.user),
        }

    def overhead_over(self, baseline: "Timings") -> "dict[str, float]":
        """Percentage overhead of ``self`` relative to ``baseline``
        (positive = ``self`` is slower)."""

        def pct(new: float, old: float) -> float:
            return 0.0 if old == 0 else 100.0 * (new - old) / old

        return {
            "elapsed": pct(self.elapsed, baseline.elapsed),
            "system": pct(self.system, baseline.system),
            "user": pct(self.user, baseline.user),
        }
