"""Virtual cycle clock with user/system/I-O-wait accounting.

Every performance number in the paper is a wall-clock ("elapsed"), "system",
or "user" time.  The simulator reproduces that three-way split: all work is
charged to the :class:`Clock` in CPU cycles tagged with an execution
:class:`Mode`, and elapsed time is the sum of all three buckets (the
simulated machine is single-CPU, like the paper's P4 testbed).

The clock also drives the scheduler's preemption checks and the Cosy
kernel-time watchdog: both register *deadlines* and poll :meth:`Clock.now`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Mode(enum.Enum):
    """Which accounting bucket a charge lands in."""

    USER = "user"        # cycles spent executing application code
    SYSTEM = "system"    # cycles spent inside the kernel
    IOWAIT = "iowait"    # cycles the CPU idles waiting for the disk


@dataclass
class ClockSnapshot:
    """Immutable copy of the clock's counters, for interval measurements."""

    user: int
    system: int
    iowait: int

    @property
    def elapsed(self) -> int:
        return self.user + self.system + self.iowait


class Clock:
    """Monotonic virtual cycle counter.

    Parameters
    ----------
    hz:
        Simulated CPU frequency, used only to convert cycles to seconds for
        reporting.  Defaults to the paper's 1.7 GHz Pentium 4.
    """

    def __init__(self, hz: float = 1.7e9):
        self.hz = float(hz)
        self.user = 0
        self.system = 0
        self.iowait = 0
        self._mode_stack: list[Mode] = [Mode.USER]

    # ------------------------------------------------------------- charging

    @property
    def mode(self) -> Mode:
        """The current execution mode (top of the mode stack)."""
        return self._mode_stack[-1]

    def charge(self, cycles: int, mode: Mode | None = None) -> None:
        """Advance time by ``cycles``, charged to ``mode`` (default: current).

        Cycles must be non-negative; zero-cost charges are permitted so call
        sites do not need to special-case disabled cost-model entries.
        """
        if cycles < 0:
            raise ValueError(f"negative charge: {cycles}")
        m = mode or self._mode_stack[-1]
        if m is Mode.USER:
            self.user += cycles
        elif m is Mode.SYSTEM:
            self.system += cycles
        else:
            self.iowait += cycles

    def charge_system(self, cycles: int) -> None:
        """:meth:`charge` with ``Mode.SYSTEM`` pre-resolved — the
        per-op/per-batch accounting hot path of the C-minus engines."""
        if cycles < 0:
            raise ValueError(f"negative charge: {cycles}")
        self.system += cycles

    def push_mode(self, mode: Mode) -> None:
        """Enter an execution mode (e.g. USER→SYSTEM on a trap)."""
        self._mode_stack.append(mode)

    def pop_mode(self) -> Mode:
        """Leave the current mode; the base USER mode can never be popped."""
        if len(self._mode_stack) == 1:
            raise RuntimeError("cannot pop the base execution mode")
        return self._mode_stack.pop()

    class _ModeCtx:
        def __init__(self, clock: "Clock", mode: Mode):
            self._clock, self._mode = clock, mode

        def __enter__(self):
            self._clock.push_mode(self._mode)
            return self._clock

        def __exit__(self, *exc):
            self._clock.pop_mode()
            return False

    def in_mode(self, mode: Mode) -> "_ModeCtx":
        """Context manager form of push/pop for exception safety."""
        return Clock._ModeCtx(self, mode)

    # ------------------------------------------------------------ reporting

    @property
    def now(self) -> int:
        """Total elapsed cycles."""
        return self.user + self.system + self.iowait

    def snapshot(self) -> ClockSnapshot:
        return ClockSnapshot(self.user, self.system, self.iowait)

    def since(self, snap: ClockSnapshot) -> ClockSnapshot:
        """Counter deltas since ``snap``."""
        return ClockSnapshot(
            self.user - snap.user, self.system - snap.system, self.iowait - snap.iowait
        )

    def seconds(self, cycles: int) -> float:
        """Convert a cycle count to seconds at the simulated frequency."""
        return cycles / self.hz

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Clock(user={self.user}, system={self.system}, "
            f"iowait={self.iowait}, mode={self.mode.value})"
        )


@dataclass
class Timings:
    """Elapsed/system/user seconds, as the paper reports them."""

    elapsed: float
    system: float
    user: float
    iowait: float = 0.0

    @staticmethod
    def from_delta(clock: Clock, delta: ClockSnapshot) -> "Timings":
        return Timings(
            elapsed=clock.seconds(delta.elapsed),
            system=clock.seconds(delta.system),
            user=clock.seconds(delta.user),
            iowait=clock.seconds(delta.iowait),
        )

    def improvement_over(self, baseline: "Timings") -> "dict[str, float]":
        """Percentage improvement of ``self`` relative to ``baseline``
        (positive = ``self`` is faster), per bucket, as the paper quotes."""

        def pct(new: float, old: float) -> float:
            return 0.0 if old == 0 else 100.0 * (old - new) / old

        return {
            "elapsed": pct(self.elapsed, baseline.elapsed),
            "system": pct(self.system, baseline.system),
            "user": pct(self.user, baseline.user),
        }

    def overhead_over(self, baseline: "Timings") -> "dict[str, float]":
        """Percentage overhead of ``self`` relative to ``baseline``
        (positive = ``self`` is slower)."""

        def pct(new: float, old: float) -> float:
            return 0.0 if old == 0 else 100.0 * (new - old) / old

        return {
            "elapsed": pct(self.elapsed, baseline.elapsed),
            "system": pct(self.system, baseline.system),
            "user": pct(self.user, baseline.user),
        }
