"""Virtual File System layer.

Mirrors the Linux 2.6 VFS the paper instruments: inodes with per-FS
operations, a dentry cache guarded by the global ``dcache_lock`` (the lock
§3.3 instruments under PostMark), open-file objects, and path resolution.

Concrete filesystems live in :mod:`repro.kernel.fs`.
"""

from repro.kernel.vfs.stat import Stat, S_IFDIR, S_IFREG, S_IFMT, is_dir, is_reg
from repro.kernel.vfs.inode import Inode, DirEntry
from repro.kernel.vfs.dentry import Dentry
from repro.kernel.vfs.file import File, O_RDONLY, O_WRONLY, O_RDWR, O_CREAT, O_TRUNC, O_APPEND
from repro.kernel.vfs.super import SuperBlock
from repro.kernel.vfs.namei import VFS

__all__ = [
    "Stat", "S_IFDIR", "S_IFREG", "S_IFMT", "is_dir", "is_reg",
    "Inode", "DirEntry", "Dentry", "File", "SuperBlock", "VFS",
    "O_RDONLY", "O_WRONLY", "O_RDWR", "O_CREAT", "O_TRUNC", "O_APPEND",
]
