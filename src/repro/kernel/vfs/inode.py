"""Inodes and directory entries.

:class:`Inode` is the VFS-facing object; concrete filesystems subclass it
and override the operation methods.  Default implementations raise the
errno a real kernel would return (e.g. reading a directory → EISDIR).

Every inode carries an instrumentable :class:`RefCount` (``i_count``) — one
of the kernel objects the §3.3 monitors watch — and an opaque ``private``
field that stackable filesystems (Wrapfs) point at dynamically allocated
per-object data, which is what the Kefence evaluation (§3.2) protects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import EISDIR, ENOTDIR, EPERM, raise_errno
from repro.kernel.locks import Semaphore
from repro.kernel.refcount import RefCount
from repro.kernel.vfs.stat import Stat, is_dir, is_reg

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.vfs.super import SuperBlock

DT_REG = 8
DT_DIR = 4


@dataclass(frozen=True)
class DirEntry:
    """One readdir record (name, inode number, d_type)."""

    name: str
    ino: int
    dtype: int

    def encoded_size(self) -> int:
        """Bytes this dirent occupies in a getdents user buffer
        (fixed header of 19 bytes + name + NUL, like linux_dirent64)."""
        return 19 + len(self.name.encode()) + 1


class Inode:
    """Base VFS inode."""

    def __init__(self, sb: "SuperBlock", ino: int, mode: int):
        self.sb = sb
        self.ino = ino
        self.mode = mode
        self.nlink = 2 if is_dir(mode) else 1
        self.uid = 0
        self.gid = 0
        self.size = 0
        self.atime = self.mtime = self.ctime = sb.kernel.clock.now
        self.i_count = RefCount(sb.kernel, f"i_count:{sb.name}:{ino}")
        self.private: int | None = None  # kernel address of FS-private data
        self._i_sem: Semaphore | None = None   # lazy: most inodes never need it

    @property
    def i_sem(self) -> Semaphore:
        """Per-inode semaphore serializing directory modifications and the
        lookup slow path — the *sleeping* lock held across filesystem calls,
        so ``dcache_lock`` critical sections can stay tiny.  All instances
        share one lockdep class (``i_sem``); nested acquisitions (rename
        across directories) annotate a subclass, as Linux does."""
        if self._i_sem is None:
            self._i_sem = Semaphore(self.sb.kernel, "i_sem")
        return self._i_sem

    # ------------------------------------------------- namespace operations

    def lookup(self, name: str) -> "Inode | None":
        """Find a child by name (directories only)."""
        raise_errno(ENOTDIR, f"lookup in non-directory inode {self.ino}")

    def create(self, name: str, mode: int) -> "Inode":
        raise_errno(ENOTDIR, f"create in non-directory inode {self.ino}")
        raise AssertionError

    def mkdir(self, name: str) -> "Inode":
        raise_errno(ENOTDIR, f"mkdir in non-directory inode {self.ino}")
        raise AssertionError

    def unlink(self, name: str) -> None:
        raise_errno(ENOTDIR, f"unlink in non-directory inode {self.ino}")

    def rmdir(self, name: str) -> None:
        raise_errno(ENOTDIR, f"rmdir in non-directory inode {self.ino}")

    def rename(self, old_name: str, new_dir: "Inode", new_name: str) -> None:
        raise_errno(ENOTDIR, f"rename in non-directory inode {self.ino}")

    def readdir(self) -> list[DirEntry]:
        raise_errno(ENOTDIR, f"readdir of non-directory inode {self.ino}")
        raise AssertionError

    # ------------------------------------------------------ data operations

    def read(self, offset: int, size: int) -> bytes:
        if is_dir(self.mode):
            raise_errno(EISDIR, "read of a directory")
        raise_errno(EPERM, f"inode {self.ino} does not support read")
        raise AssertionError

    def write(self, offset: int, data: bytes) -> int:
        if is_dir(self.mode):
            raise_errno(EISDIR, "write of a directory")
        raise_errno(EPERM, f"inode {self.ino} does not support write")
        raise AssertionError

    def truncate(self, size: int) -> None:
        raise_errno(EPERM, f"inode {self.ino} does not support truncate")

    # -------------------------------------------------- open-file lifecycle

    def open_file(self, file) -> None:
        """Called when a File is opened on this inode (FS hook; stackable
        filesystems attach per-file private data here)."""

    def release_file(self, file) -> None:
        """Called when the last descriptor on a File is closed."""

    # -------------------------------------------------------------- attrs

    def getattr(self) -> Stat:
        """Fill a stat record (charged by the syscall layer)."""
        return Stat(
            ino=self.ino, mode=self.mode, nlink=self.nlink, uid=self.uid,
            gid=self.gid, size=self.size,
            blocks=(self.size + 511) // 512,
            atime=self.atime, mtime=self.mtime, ctime=self.ctime,
        )

    def touch_atime(self) -> None:
        self.atime = self.sb.kernel.clock.now

    def touch_mtime(self) -> None:
        now = self.sb.kernel.clock.now
        self.mtime = now
        self.ctime = now

    @property
    def is_dir(self) -> bool:
        return is_dir(self.mode)

    @property
    def is_reg(self) -> bool:
        return is_reg(self.mode)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "dir" if self.is_dir else "reg"
        return f"Inode({self.sb.name}:{self.ino} {kind} size={self.size})"
