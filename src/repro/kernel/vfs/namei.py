"""Path resolution, the dcache, and mounts.

``VFS.path_walk`` resolves one component at a time: take ``dcache_lock``,
probe the dcache, and on a miss call the filesystem's ``lookup`` and insert
the result (positive or negative).  Namespace-changing operations (create,
unlink, rename, ...) hammer the same structures, which is why PostMark — a
create/delete-heavy workload — hits ``dcache_lock`` at thousands of
acquisitions per second in the paper's §3.3 measurement.

Locking (validated by ``repro.safety.lockdep`` ahead of SMP):

* ``dcache_lock`` is a *spinlock* guarding only dcache probes and
  insert/drop — never held across a filesystem call, which may block
  (buffer-cache I/O, allocator pressure);
* the per-directory ``inode.i_sem`` (a sleeping semaphore, one lockdep
  class for all instances) serializes the lookup slow path and all
  namespace modifications of that directory, and *is* held across
  filesystem calls — the Linux split;
* cross-directory renames take ``s_vfs_rename_sem`` first, then both
  directory ``i_sem``s (the second with a lockdep subclass annotation,
  mirroring ``lock_rename``).

Lock order: ``s_vfs_rename_sem`` -> ``i_sem`` -> ``dcache_lock``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.errors import EEXIST, EINVAL, ENOENT, ENOTDIR, ENOTEMPTY, raise_errno
from repro.kernel.clock import Mode
from repro.kernel.locks import Semaphore, SpinLock
from repro.kernel.vfs.dentry import Dentry

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.vfs.super import SuperBlock


def split_path(path: str) -> list[str]:
    """Normalize a path into components ('.' removed; '..' resolved lexically)."""
    parts: list[str] = []
    for comp in path.split("/"):
        if comp in ("", "."):
            continue
        if comp == "..":
            if parts:
                parts.pop()
            continue
        parts.append(comp)
    return parts


class VFS:
    """The mounted-filesystem namespace."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.dcache_lock = SpinLock(kernel, "dcache_lock")
        #: serializes cross-directory renames so the pairwise i_sem
        #: acquisition below cannot deadlock (Linux: s_vfs_rename_sem).
        self.rename_sem = Semaphore(kernel, "s_vfs_rename_sem")
        self.root: Dentry | None = None
        self.root_sb: "SuperBlock | None" = None
        #: mountpoint dentry id -> mounted superblock's root dentry
        self._mounts: dict[int, Dentry] = {}
        #: every mounted superblock (root first), for sync(2)
        self.mounted_superblocks: list["SuperBlock"] = []
        # Negative dentries are useful (they cache failed lookups) but
        # unbounded they let a pathological workload — stat() over a
        # large set of missing names — grow the dcache without limit.
        # Cap them, FIFO-evicting the oldest cached miss.
        self.negative_cap = 256
        self._negatives: "OrderedDict[int, Dentry]" = OrderedDict()
        # dcache statistics
        self.dcache_hits = 0
        self.dcache_misses = 0
        self.negative_evicted = 0

    # -------------------------------------------------------------- mounts

    def mount_root(self, sb: "SuperBlock") -> Dentry:
        """Mount ``sb`` as the root filesystem."""
        if sb.root_inode is None:
            raise ValueError("superblock has no root inode")
        self.root_sb = sb
        self.root = Dentry("", None, sb.root_inode)
        self.mounted_superblocks.append(sb)
        return self.root

    def mount(self, path: str, sb: "SuperBlock") -> Dentry:
        """Mount ``sb`` over the directory at ``path``."""
        if sb.root_inode is None:
            raise ValueError("superblock has no root inode")
        mp = self.path_walk(path)
        if mp.inode is None or not mp.inode.is_dir:
            raise_errno(ENOTDIR, f"mountpoint {path} is not a directory")
        mounted_root = Dentry(mp.name, mp.parent, sb.root_inode)
        self._mounts[id(mp)] = mounted_root
        self.mounted_superblocks.append(sb)
        return mounted_root

    def umount(self, path: str) -> None:
        mp = self.path_walk(path, follow_mount=False)
        if id(mp) not in self._mounts:
            raise_errno(EINVAL, f"{path} is not a mountpoint")
        root = self._mounts.pop(id(mp))
        root.d_invalidate_tree()

    def _cross_mount(self, dentry: Dentry) -> Dentry:
        return self._mounts.get(id(dentry), dentry)

    # ----------------------------------------------------------- path walk

    def path_walk(self, path: str, cwd: Dentry | None = None,
                  *, follow_mount: bool = True) -> Dentry:
        """Resolve ``path`` to a dentry; raises ENOENT/ENOTDIR on failure.

        Returns a *positive* dentry.  Use :meth:`walk_parent` when the final
        component may not exist (create paths).
        """
        dentry = self._walk(path, cwd, want_parent=False,
                            follow_mount=follow_mount)
        if dentry.is_negative:
            raise_errno(ENOENT, path)
        return dentry

    def walk_parent(self, path: str, cwd: Dentry | None = None
                    ) -> tuple[Dentry, str]:
        """Resolve to (parent dentry, final component name)."""
        comps = split_path(path)
        if not comps:
            raise_errno(EINVAL, f"path {path!r} has no final component")
        parent_comps = comps[:-1]
        if path.startswith("/"):
            parent = self.path_walk("/" + "/".join(parent_comps))
        else:
            # Relative path: an empty parent means the cwd itself.
            parent = self.path_walk("/".join(parent_comps) or ".", cwd)
        if parent.inode is None or not parent.inode.is_dir:
            raise_errno(ENOTDIR, "/" + "/".join(parent_comps))
        return parent, comps[-1]

    def _walk(self, path: str, cwd: Dentry | None, *, want_parent: bool,
              follow_mount: bool) -> Dentry:
        if self.root is None:
            raise RuntimeError("no root filesystem mounted")
        costs = self.kernel.costs
        clock = self.kernel.clock
        if path.startswith("/") or cwd is None:
            current = self.root
        else:
            current = cwd
        current = self._cross_mount(current)
        comps = split_path(path)
        for i, name in enumerate(comps):
            if current.inode is None:
                raise_errno(ENOENT, "/".join(comps[:i]))
            if not current.inode.is_dir:
                raise_errno(ENOTDIR, "/".join(comps[:i]))
            clock.charge(costs.dcache_lookup, Mode.SYSTEM)
            with self.dcache_lock.guard("namei:walk"):
                child = current.d_lookup(name)
            if child is not None:
                self.dcache_hits += 1
            else:
                self.dcache_misses += 1
                # Slow path: serialize per directory with its i_sem, and
                # call the filesystem — which may block — with no spinlock
                # held.  Re-probe under i_sem: a concurrent walker may have
                # completed the same lookup while we waited.
                with current.inode.i_sem.guard("namei:walk"):
                    with self.dcache_lock.guard("namei:walk"):
                        child = current.d_lookup(name)
                    if child is None:
                        inode = current.inode.lookup(name)
                        child = Dentry(name, current, inode,
                                       kernel=self.kernel)
                        with self.dcache_lock.guard("namei:walk"):
                            current.d_add(child)
                            if inode is None:
                                self._cache_negative(child)
            if follow_mount:
                child = self._cross_mount(child)
            if child.is_negative and i < len(comps) - 1:
                raise_errno(ENOENT, "/".join(comps[: i + 1]))
            current = child
        return current

    def _cache_negative(self, dentry: Dentry) -> None:
        """Track a cached lookup miss, evicting the oldest past the cap.

        Caller holds ``dcache_lock``.  An entry replaced in the meantime
        (create() installs a positive dentry over the miss) is skipped
        at eviction time via the identity check.
        """
        self._negatives[id(dentry)] = dentry
        while len(self._negatives) > self.negative_cap:
            _, victim = self._negatives.popitem(last=False)
            if victim.parent.d_lookup(victim.name) is victim:
                victim.parent.d_drop(victim.name)
                self.negative_evicted += 1

    def dcache_stats(self) -> dict[str, int]:
        return {
            "hits": self.dcache_hits,
            "misses": self.dcache_misses,
            "negative_cached": sum(
                1 for d in self._negatives.values()
                if d.parent.d_lookup(d.name) is d),
            "negative_evicted": self.negative_evicted,
        }

    # ------------------------------------------------- namespace operations
    # All serialize on the parent directory's i_sem (held across the
    # filesystem call); dcache_lock guards only the dcache update.

    def create(self, path: str, mode: int, cwd: Dentry | None = None) -> Dentry:
        """Create a regular file; EEXIST if it already exists."""
        parent, name = self.walk_parent(path, cwd)
        with parent.inode.i_sem.guard("namei:create"):
            with self.dcache_lock.guard("namei:create"):
                existing = parent.d_lookup(name)
            if existing is not None:
                if not existing.is_negative:
                    raise_errno(EEXIST, path)
            elif parent.inode.lookup(name) is not None:
                raise_errno(EEXIST, path)
            inode = parent.inode.create(name, mode)
            dentry = Dentry(name, parent, inode)
            with self.dcache_lock.guard("namei:create"):
                parent.d_add(dentry)
        return dentry

    def mkdir(self, path: str, cwd: Dentry | None = None) -> Dentry:
        parent, name = self.walk_parent(path, cwd)
        with parent.inode.i_sem.guard("namei:mkdir"):
            with self.dcache_lock.guard("namei:mkdir"):
                existing = parent.d_lookup(name)
            if existing is not None:
                if not existing.is_negative:
                    raise_errno(EEXIST, path)
            elif parent.inode.lookup(name) is not None:
                raise_errno(EEXIST, path)
            inode = parent.inode.mkdir(name)
            dentry = Dentry(name, parent, inode)
            with self.dcache_lock.guard("namei:mkdir"):
                parent.d_add(dentry)
        return dentry

    def unlink(self, path: str, cwd: Dentry | None = None) -> None:
        parent, name = self.walk_parent(path, cwd)
        with parent.inode.i_sem.guard("namei:unlink"):
            if parent.inode.lookup(name) is None:
                raise_errno(ENOENT, path)
            parent.inode.unlink(name)
            with self.dcache_lock.guard("namei:unlink"):
                parent.d_drop(name)

    def rmdir(self, path: str, cwd: Dentry | None = None) -> None:
        parent, name = self.walk_parent(path, cwd)
        with parent.inode.i_sem.guard("namei:rmdir"):
            child = parent.inode.lookup(name)
            if child is None:
                raise_errno(ENOENT, path)
            if not child.is_dir:
                raise_errno(ENOTDIR, path)
            if child.readdir():
                raise_errno(ENOTEMPTY, path)
            parent.inode.rmdir(name)
            with self.dcache_lock.guard("namei:rmdir"):
                parent.d_drop(name)

    def rename(self, old_path: str, new_path: str,
               cwd: Dentry | None = None) -> None:
        old_parent, old_name = self.walk_parent(old_path, cwd)
        new_parent, new_name = self.walk_parent(new_path, cwd)
        if old_parent.inode is new_parent.inode:
            with old_parent.inode.i_sem.guard("namei:rename"):
                self._do_rename(old_parent, old_name,
                                new_parent, new_name, old_path)
        else:
            # Cross-directory: s_vfs_rename_sem makes the pairwise i_sem
            # acquisition safe; the nested i_sem carries a lockdep
            # subclass (Linux's lock_rename / I_MUTEX_PARENT2).
            with self.rename_sem.guard("namei:rename"):
                with old_parent.inode.i_sem.guard("namei:rename"):
                    with new_parent.inode.i_sem.guard("namei:rename",
                                                      subclass=1):
                        self._do_rename(old_parent, old_name,
                                        new_parent, new_name, old_path)

    def _do_rename(self, old_parent: Dentry, old_name: str,
                   new_parent: Dentry, new_name: str, old_path: str) -> None:
        """Rename body; caller holds the directory i_sem(s)."""
        if old_parent.inode.lookup(old_name) is None:
            raise_errno(ENOENT, old_path)
        old_parent.inode.rename(old_name, new_parent.inode, new_name)
        with self.dcache_lock.guard("namei:rename"):
            moved = old_parent.d_drop(old_name)
            new_parent.d_drop(new_name)
            if moved is not None and not moved.is_negative:
                moved.name = new_name
                moved.parent = new_parent
                new_parent.d_add(moved)
