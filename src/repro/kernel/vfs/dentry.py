"""Dentries: the directory-entry cache nodes.

The dcache maps (parent, name) → inode so repeated path walks avoid
filesystem lookups.  Namespace operations on it are serialized by the global
``dcache_lock`` owned by :class:`repro.kernel.vfs.namei.VFS` — the exact
lock the paper's event-monitoring evaluation (§3.3) instruments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.refcount import RefCount

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.vfs.inode import Inode


class Dentry:
    """One cached name → inode binding, linked into a tree.

    Every dentry — negative ones included — carries a live ``d_count``:
    a negative dentry is pinned by the dcache exactly like a positive
    one, and code holding it across a create/unlink must be able to
    take and drop references without special-casing.  Negative dentries
    have no inode to borrow a kernel from, so their creator passes the
    kernel explicitly.
    """

    def __init__(self, name: str, parent: "Dentry | None",
                 inode: "Inode | None", kernel: "Kernel | None" = None):
        self.name = name
        self.parent = parent if parent is not None else self
        self.inode = inode
        self.children: dict[str, "Dentry"] = {}
        if kernel is None:
            if inode is None:
                raise ValueError(
                    f"negative dentry {name!r} needs an explicit kernel "
                    "for its d_count")
            kernel = inode.sb.kernel
        self.d_count = RefCount(kernel, f"d_count:{name or '/'}")

    # ------------------------------------------------------------ cache ops

    def d_lookup(self, name: str) -> "Dentry | None":
        """Cache hit test (caller holds dcache_lock)."""
        return self.children.get(name)

    def d_add(self, child: "Dentry") -> None:
        self.children[child.name] = child

    def d_drop(self, name: str) -> "Dentry | None":
        """Remove a child binding (on unlink/rmdir/rename)."""
        return self.children.pop(name, None)

    def d_invalidate_tree(self) -> None:
        """Drop all cached descendants (e.g. on unmount)."""
        for child in list(self.children.values()):
            child.d_invalidate_tree()
        self.children.clear()

    # ------------------------------------------------------------- helpers

    @property
    def is_negative(self) -> bool:
        """A negative dentry caches a failed lookup."""
        return self.inode is None

    def path(self) -> str:
        """Absolute path of this dentry (for diagnostics)."""
        if self.parent is self:
            return "/"
        parts: list[str] = []
        node: Dentry = self
        while node.parent is not node:
            parts.append(node.name)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dentry({self.path()!r}, neg={self.is_negative})"
