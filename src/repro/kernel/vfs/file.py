"""Open-file objects and open(2) flag bits."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import EBADF, raise_errno

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.vfs.dentry import Dentry

O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_ACCMODE = 0o3
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000

SEEK_SET, SEEK_CUR, SEEK_END = 0, 1, 2


class File:
    """One open file description (struct file): dentry + position + flags."""

    def __init__(self, dentry: "Dentry", flags: int):
        if dentry.inode is None:
            raise ValueError("cannot open a negative dentry")
        self.dentry = dentry
        self.flags = flags
        self.pos = 0
        self.private: int | None = None  # stackable-FS per-file data address
        self.refs = 1

    @property
    def inode(self):
        return self.dentry.inode

    @property
    def readable(self) -> bool:
        return (self.flags & O_ACCMODE) in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & O_ACCMODE) in (O_WRONLY, O_RDWR)

    def check_readable(self) -> None:
        if not self.readable:
            raise_errno(EBADF, "file not open for reading")

    def check_writable(self) -> None:
        if not self.writable:
            raise_errno(EBADF, "file not open for writing")

    def __repr__(self) -> str:  # pragma: no cover
        return f"File({self.dentry.path()!r}, pos={self.pos}, flags={self.flags:#o})"
