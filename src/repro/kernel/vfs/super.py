"""Superblocks: per-filesystem-instance state and inode numbering."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.vfs.inode import Inode


class SuperBlock:
    """Base class for a mounted filesystem instance.

    Subclasses must create a root inode in ``__init__`` and assign it to
    :attr:`root_inode`.
    """

    def __init__(self, kernel: "Kernel", name: str):
        self.kernel = kernel
        self.name = name
        self._next_ino = 1
        self.root_inode: "Inode | None" = None
        self.inodes: dict[int, "Inode"] = {}

    def alloc_ino(self) -> int:
        ino = self._next_ino
        self._next_ino += 1
        return ino

    def register_inode(self, inode: "Inode") -> None:
        self.inodes[inode.ino] = inode

    def drop_inode(self, inode: "Inode") -> None:
        """Called when an inode's link count reaches zero; subclasses free
        backing storage here."""
        self.inodes.pop(inode.ino, None)

    def statfs(self) -> dict:
        """Free-space information; overridden by block filesystems."""
        return {"files": len(self.inodes)}

    def sync(self) -> None:
        """Flush dirty state to backing store (no-op for memory FSes)."""

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(name={self.name!r}, inodes={len(self.inodes)})"
