"""struct stat and file-mode bits (subset of <sys/stat.h>)."""

from __future__ import annotations

import struct
from dataclasses import dataclass

S_IFMT = 0o170000
S_IFDIR = 0o040000
S_IFREG = 0o100000


def is_dir(mode: int) -> bool:
    return (mode & S_IFMT) == S_IFDIR


def is_reg(mode: int) -> bool:
    return (mode & S_IFMT) == S_IFREG


#: On-wire encoding of a stat record as copied to user space; its size is
#: what the consolidation experiments (§2.2) count as per-call copy volume.
_STAT_FMT = "<QIIIIQQQQQ"
STAT_SIZE = struct.calcsize(_STAT_FMT)  # 64 bytes, close to Linux's stat64


@dataclass
class Stat:
    """The metadata a stat() call returns."""

    ino: int
    mode: int
    nlink: int
    uid: int
    gid: int
    size: int
    blocks: int
    atime: int
    mtime: int
    ctime: int

    def pack(self) -> bytes:
        """Serialize for copy_to_user."""
        return struct.pack(
            _STAT_FMT, self.ino, self.mode, self.nlink, self.uid, self.gid,
            self.size, self.blocks, self.atime, self.mtime, self.ctime,
        )

    @staticmethod
    def unpack(data: bytes) -> "Stat":
        if len(data) < STAT_SIZE:
            raise ValueError(f"stat buffer too small: {len(data)} < {STAT_SIZE}")
        fields = struct.unpack(_STAT_FMT, data[:STAT_SIZE])
        return Stat(*fields)
