"""KgccFs: a filesystem module whose hot paths are real C-subset code,
compiled either "with vanilla GCC" or "with KGCC" (§3.4's evaluation
subject — the paper instruments Reiserfs; we instrument this stackable
module over the same lower filesystem in both configurations).

What runs as C code (per directory, in kernel memory):

* a directory-entry table of fixed 64-byte slots
  (``flag u8 | ino u8[8] | name char[55]``);
* ``find_entry`` — the linear dirent scan every lookup/create/unlink does
  (this is where a metadata-heavy workload like PostMark lives);
* ``add_entry`` / ``clear_entry`` — slot updates on create/delete;
* ``grow`` — table reallocation with an element-copy loop.

In the KGCC build the same AST is instrumented (deref/index/arith checks
against the splay-tree address map) and then optimized with the check
eliminations of §3.4; the module's heap objects (tables, the name scratch
buffer) are registered with the runtime, exactly as KGCC registers a
module's allocations.

Bulk file data (read/write) is charged analytically in the KGCC build:
a compiled copy loop executes one bounds check per word, and every
iteration's check is identical, so its cost is
``words x (check + splay-root touch)`` — charging that directly avoids
interpreting megabytes of copy loop while preserving the measured cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cminus import parse
from repro.cminus.compile import CompiledEngine
from repro.cminus.memaccess import KernelMemAccess
from repro.kernel.clock import Mode
from repro.kernel.vfs.inode import DirEntry, Inode
from repro.kernel.vfs.super import SuperBlock
from repro.safety.kgcc.instrument import instrument
from repro.safety.kgcc.optimize import optimize
from repro.safety.kgcc.runtime import KgccRuntime

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

SLOT_SIZE = 64
NAME_MAX = 54
INITIAL_SLOTS = 16

MODULE_SOURCE = """
int streq(char *a, char *b, int maxlen) {
    for (int i = 0; i < maxlen; i++) {
        if (a[i] != b[i]) return 0;
        if (a[i] == 0) return 1;
    }
    return 1;
}

int find_entry(char *table, int nslots, char *name) {
    for (int i = 0; i < nslots; i++) {
        char *slot = table + i * 64;
        if (slot[0]) {
            if (streq(slot + 9, name, 55)) return i;
        }
    }
    return -1;
}

int add_entry(char *table, int nslots, char *name, int ino) {
    for (int i = 0; i < nslots; i++) {
        char *slot = table + i * 64;
        if (slot[0] == 0) {
            slot[0] = 1;
            int v = ino;
            for (int j = 0; j < 8; j++) {
                slot[1 + j] = v % 256;
                v = v / 256;
            }
            int k = 0;
            while (name[k] && k < 54) {
                slot[9 + k] = name[k];
                k++;
            }
            slot[9 + k] = 0;
            return i;
        }
    }
    return -1;
}

int clear_entry(char *table, int idx) {
    char *slot = table + idx * 64;
    slot[0] = 0;
    return 0;
}

int entry_ino(char *table, int idx) {
    char *slot = table + idx * 64;
    int v = 0;
    for (int j = 7; j >= 0; j--) {
        int b = slot[1 + j];
        if (b < 0) b += 256;
        v = v * 256 + b;
    }
    return v;
}

int count_entries(char *table, int nslots) {
    int n = 0;
    for (int i = 0; i < nslots; i++) {
        char *slot = table + i * 64;
        if (slot[0]) n++;
    }
    return n;
}

int copy_table(char *dst, char *src, int nbytes) {
    for (int i = 0; i < nbytes; i++) dst[i] = src[i];
    return nbytes;
}
"""


class _ModuleEngine:
    """The compiled module: one interpreter + optional KGCC runtime."""

    def __init__(self, kernel: "Kernel", checked: bool):
        self.kernel = kernel
        self.checked = checked
        self.mem = KernelMemAccess(kernel)
        program = parse(MODULE_SOURCE)
        self.runtime: KgccRuntime | None = None
        kwargs = {}
        if checked:
            report = instrument(program, filename="kgccfs.c")
            optimize(program)
            self.runtime = KgccRuntime(kernel, mode=Mode.SYSTEM,
                                       skip_names=report.unregistered)
            self.report = report
            kwargs = dict(check_runtime=self.runtime, var_hooks=self.runtime)
        else:
            self.report = None
        cminus_op = kernel.costs.cminus_op
        charge = kernel.clock.charge
        self.interp = CompiledEngine(
            program, self.mem,
            on_op_batch=lambda n: charge(n * cminus_op, Mode.SYSTEM),
            cache=kernel.code_cache,
            **kwargs)
        # shared scratch buffer for passing names into module code
        self.scratch = self.mem.malloc(NAME_MAX + 2)
        self._register(self.scratch, NAME_MAX + 2, "kgccfs:scratch")

    def _register(self, addr: int, size: int, site: str) -> None:
        if self.runtime is not None:
            self.runtime.map.register(addr, size, "heap", site)

    def _unregister(self, addr: int) -> None:
        if self.runtime is not None:
            self.runtime.map.unregister(addr)

    def alloc_table(self, nslots: int) -> int:
        addr = self.mem.malloc(nslots * SLOT_SIZE)
        self.mem.write(addr, b"\0" * (nslots * SLOT_SIZE))
        self._register(addr, nslots * SLOT_SIZE, "kgccfs:dir_table")
        return addr

    def free_table(self, addr: int) -> None:
        self._unregister(addr)
        self.mem.free(addr)

    def put_name(self, name: str) -> int:
        raw = name.encode()[:NAME_MAX] + b"\0"
        self.mem.write(self.scratch, raw)
        return self.scratch

    #: checks a compiled block-mapping routine executes per 4 KiB block
    #: (indirect-block array indexing, inode field accesses).  Bulk data
    #: copying itself happens in the *uninstrumented* core kernel's page
    #: cache, exactly as with a KGCC-compiled Reiserfs, so data volume
    #: contributes only this per-block metadata cost.
    CHECKS_PER_BLOCK = 12

    def charge_data_checks(self, nbytes: int) -> None:
        """Analytic check cost for the module's per-block mapping logic."""
        if self.runtime is None:
            return
        nblocks = max(1, (nbytes + 4095) // 4096)
        nchecks = nblocks * self.CHECKS_PER_BLOCK
        costs = self.kernel.costs
        self.kernel.clock.charge(
            nchecks * (costs.kgcc_check + 2 * costs.kgcc_splay_node),
            Mode.SYSTEM)
        self.runtime.checks_executed += nchecks


class _DirTable:
    """Per-directory slot table living in module kernel memory."""

    def __init__(self, engine: _ModuleEngine):
        self.engine = engine
        self.nslots = INITIAL_SLOTS
        self.addr = engine.alloc_table(self.nslots)

    def find(self, name: str) -> int:
        return self.engine.interp.call(
            "find_entry", self.addr, self.nslots, self.engine.put_name(name))

    def add(self, name: str, ino: int) -> None:
        idx = self.engine.interp.call(
            "add_entry", self.addr, self.nslots,
            self.engine.put_name(name), ino)
        if idx < 0:
            self._grow()
            self.add(name, ino)

    def remove(self, name: str) -> bool:
        idx = self.find(name)
        if idx < 0:
            return False
        self.engine.interp.call("clear_entry", self.addr, idx)
        return True

    def count(self) -> int:
        return self.engine.interp.call("count_entries", self.addr, self.nslots)

    def _grow(self) -> None:
        new_nslots = self.nslots * 2
        new_addr = self.engine.alloc_table(new_nslots)
        self.engine.mem.write(
            new_addr, b"\0" * (new_nslots * SLOT_SIZE))
        self.engine.interp.call("copy_table", new_addr, self.addr,
                                self.nslots * SLOT_SIZE)
        self.engine.free_table(self.addr)
        self.addr = new_addr
        self.nslots = new_nslots

    def release(self) -> None:
        self.engine.free_table(self.addr)


class KgccFsInode(Inode):
    """Wraps a lower inode; directory metadata flows through module code."""

    PRIVATE_SIZE = 64

    def __init__(self, sb: "KgccFsSuperBlock", lower: Inode):
        super().__init__(sb, lower.ino, lower.mode)
        self.lower = lower
        self.ksb: "KgccFsSuperBlock" = sb
        # per-inode private data, registered in the KGCC address map like
        # every other module allocation (these are what populate the splay
        # tree under real workloads)
        self.private = sb.engine.mem.malloc(self.PRIVATE_SIZE)
        sb.engine._register(self.private, self.PRIVATE_SIZE,
                            "kgccfs:inode_private")
        self.table = _DirTable(sb.engine) if lower.is_dir else None
        if self.table is not None:
            # adopt any entries that already exist on the lower FS
            for entry in lower.readdir():
                self.table.add(entry.name, entry.ino)

    # ------------------------------------------------- namespace operations

    def lookup(self, name: str) -> "KgccFsInode | None":
        if self.table is not None and self.table.find(name) < 0:
            return None
        return self.ksb.wrap_inode(self.lower.lookup(name))

    def create(self, name: str, mode: int) -> "KgccFsInode":
        inode = self.lower.create(name, mode)
        self.table.add(name, inode.ino)
        return self.ksb.wrap_inode(inode)

    def mkdir(self, name: str) -> "KgccFsInode":
        inode = self.lower.mkdir(name)
        self.table.add(name, inode.ino)
        return self.ksb.wrap_inode(inode)

    def unlink(self, name: str) -> None:
        lower_child = self.lower.lookup(name)
        self.lower.unlink(name)
        self.table.remove(name)
        if lower_child is not None:
            self.ksb.unwrap_inode(lower_child)

    def rmdir(self, name: str) -> None:
        lower_child = self.lower.lookup(name)
        self.lower.rmdir(name)
        self.table.remove(name)
        if lower_child is not None:
            self.ksb.unwrap_inode(lower_child)

    def rename(self, old_name: str, new_dir: Inode, new_name: str) -> None:
        if not isinstance(new_dir, KgccFsInode):
            raise TypeError("rename target must be a KgccFs directory")
        child_ino_idx = self.table.find(old_name)
        self.lower.rename(old_name, new_dir.lower, new_name)
        self.table.remove(old_name)
        new_dir.table.remove(new_name)
        if child_ino_idx >= 0:
            lower_child = new_dir.lower.lookup(new_name)
            new_dir.table.add(new_name,
                              lower_child.ino if lower_child else 0)

    def readdir(self) -> list[DirEntry]:
        # the module walks its table (charged), then serves entries
        if self.table is not None:
            self.table.count()
        return self.lower.readdir()

    # -------------------------------------------------------- data operations

    def read(self, offset: int, size: int) -> bytes:
        data = self.lower.read(offset, size)
        self.ksb.engine.charge_data_checks(len(data))
        return data

    def write(self, offset: int, data: bytes) -> int:
        self.ksb.engine.charge_data_checks(len(data))
        n = self.lower.write(offset, data)
        self.size = self.lower.size
        return n

    def truncate(self, size: int) -> None:
        self.lower.truncate(size)
        self.size = self.lower.size

    def getattr(self):
        return self.lower.getattr()


class KgccFsSuperBlock(SuperBlock):
    """A KgccFs instance stacked over ``lower_sb``.

    ``checked=False`` is the "vanilla GCC" build; ``checked=True`` the
    KGCC build with all runtime checks live.
    """

    def __init__(self, kernel: "Kernel", lower_sb: SuperBlock, *,
                 checked: bool, name: str = "kgccfs"):
        super().__init__(kernel, name)
        self.engine = _ModuleEngine(kernel, checked)
        self.lower_sb = lower_sb
        self._wrappers: dict[int, KgccFsInode] = {}
        if lower_sb.root_inode is None:
            raise ValueError("lower filesystem has no root")
        self.root_inode = self.wrap_inode(lower_sb.root_inode)

    def wrap_inode(self, lower: Inode | None) -> KgccFsInode | None:
        if lower is None:
            return None
        wrapper = self._wrappers.get(lower.ino)
        if wrapper is None:
            wrapper = KgccFsInode(self, lower)
            self._wrappers[lower.ino] = wrapper
            self.register_inode(wrapper)
        return wrapper

    def unwrap_inode(self, lower: Inode) -> None:
        wrapper = self._wrappers.pop(lower.ino, None)
        if wrapper is not None:
            if wrapper.table is not None:
                wrapper.table.release()
            if wrapper.private is not None:
                self.engine._unregister(wrapper.private)
                self.engine.mem.free(wrapper.private)
                wrapper.private = None
            super().drop_inode(wrapper)

    def sync(self) -> None:
        self.lower_sb.sync()

    def statfs(self) -> dict:
        return self.lower_sb.statfs()
