"""Run-time code modification (§3.5's second planned technology,
implemented).

"Second, we plan to develop a means for direct, code-level modification of
an executable, like the Linux kernel, at run-time.  A binary would be
augmented with its parse tree and compiler-level intermediate
representation (IR). ... New code could be inserted by using the existing
parse tree and symbol tables to convert it to IR, then compiling that IR
to binary code and modifying the appropriate sections of the program's
text segment."

In this reproduction a loaded module *is* its parse tree (the interpreter
executes the AST directly), so the mechanism the paper sketches becomes
concrete: :class:`HotPatcher` compiles replacement source against the
module's existing symbol table (its other functions and struct
definitions stay visible), optionally re-runs KGCC instrumentation over
the new body, and swaps it into the live program — the next call executes
the new code.  Module state (globals, open resources) survives the patch,
which is the whole point of patching a running kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cminus import ast_nodes as ast
from repro.cminus.compile import bump_generation
from repro.cminus.parser import _Parser
from repro.cminus.lexer import tokenize
from repro.errors import CMinusError
from repro.safety.kgcc.instrument import InstrumentationReport, _Instrumenter


@dataclass
class PatchRecord:
    """One applied patch, kept for rollback."""

    function: str
    old_def: ast.FuncDef
    new_def: ast.FuncDef
    generation: int
    checks_added: int = 0


class HotPatcher:
    """Patch functions of a live (possibly instrumented) program."""

    def __init__(self, program: ast.Program,
                 report: InstrumentationReport | None = None,
                 filename: str = "<hotpatch>"):
        self.program = program
        self.report = report
        self.filename = filename
        self.history: list[PatchRecord] = []
        self._generation = 0

    # ------------------------------------------------------------- patching

    def patch_function(self, name: str, new_source: str) -> PatchRecord:
        """Replace function ``name`` with the definition in ``new_source``.

        ``new_source`` contains exactly one function definition; it is
        parsed with the live program's struct table in scope, must keep the
        function's arity (callers are not rewritten), and — when the module
        was built with KGCC — is instrumented before insertion, so patched
        code is just as checked as compiled-in code.
        """
        old = self.program.funcs.get(name)
        if old is None:
            raise CMinusError(f"cannot patch unknown function '{name}'")
        new_def = self._parse_single_function(new_source, name)
        if len(new_def.params) != len(old.params):
            raise CMinusError(
                f"patch changes arity of '{name}' "
                f"({len(old.params)} -> {len(new_def.params)}); "
                f"callers would break")
        self._generation += 1
        record = PatchRecord(function=name, old_def=old, new_def=new_def,
                             generation=self._generation)
        if self.report is not None:
            record.checks_added = self._instrument_patch(new_def)
        self.program.funcs[name] = new_def
        # stale compiled code must never run the old body
        bump_generation(self.program)
        self.history.append(record)
        return record

    def rollback(self, record: PatchRecord | None = None) -> None:
        """Undo the given patch (default: the most recent one)."""
        if record is None:
            if not self.history:
                raise CMinusError("no patches to roll back")
            record = self.history[-1]
        if self.program.funcs.get(record.function) is not record.new_def:
            raise CMinusError(
                f"'{record.function}' was re-patched since; roll back the "
                f"newer patch first")
        self.program.funcs[record.function] = record.old_def
        bump_generation(self.program)
        self.history.remove(record)

    # ------------------------------------------------------------- internals

    def _parse_single_function(self, source: str, expected: str) -> ast.FuncDef:
        parser = _Parser(tokenize(source))
        # the live program's struct definitions stay in scope for the patch
        parser.structs = {tag: s for tag, s in self.program.structs.items()}
        sub = parser.parse_program()
        if expected not in sub.funcs:
            raise CMinusError(
                f"patch source does not define '{expected}' "
                f"(found: {sorted(sub.funcs) or 'nothing'})")
        if len(sub.funcs) != 1 or sub.globals:
            raise CMinusError(
                "a patch must contain exactly one function definition")
        return sub.funcs[expected]

    def _instrument_patch(self, new_def: ast.FuncDef) -> int:
        """Run the KGCC pass over just the patched function, merging the
        new check sites into the module's existing report."""
        from repro.safety.kgcc.instrument import FuncTypes

        # Sibling symbols and structs stay visible for type inference.
        shim = ast.Program(funcs={new_def.name: new_def},
                           globals=[], structs=dict(self.program.structs))
        for fname, fdef in self.program.funcs.items():
            shim.funcs.setdefault(fname, fdef)
        inst = _Instrumenter(shim, f"{self.filename}:gen{self._generation}")
        inst._types = FuncTypes(shim, new_def)
        new_def.body = inst._instr_stmt(new_def.body)
        report = inst.report
        for site, nodes in report.sites.items():
            self.report.sites.setdefault(site, []).extend(nodes)
        self.report.checks_inserted += report.checks_inserted
        self.report.deref_checks += report.deref_checks
        self.report.arith_checks += report.arith_checks
        return report.checks_inserted
