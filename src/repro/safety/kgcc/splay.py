"""A splay tree keyed by integer (object base addresses).

"KGCC currently stores the address map of allocated objects in a splay
tree, which brings the most recently accessed node to the top during each
operation.  This results in nearly optimal performance when there is
reference locality." (§3.5)

Classic recursive splay with the zig/zig-zig/zig-zag cases.  The tree
counts node *visits* so the KGCC runtime can charge
:attr:`CostModel.kgcc_splay_node` per touched node — making the locality
effect measurable: hot loops touch a depth-1 root, random access walks
long paths.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class _Node:
    __slots__ = ("key", "value", "left", "right")

    def __init__(self, key: int, value: Any):
        self.key = key
        self.value = value
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None


class SplayTree:
    """Map from int key to value with splay-to-root on every access."""

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size = 0
        self.visits = 0          # nodes touched (cost driver)
        self.operations = 0

    # ----------------------------------------------------------- internals

    def _splay(self, root: Optional[_Node], key: int) -> Optional[_Node]:
        """Splay ``key`` (or the last node on its search path) to the root.

        Standard recursive zig / zig-zig / zig-zag formulation.
        """
        if root is None or root.key == key:
            if root is not None:
                self.visits += 1
            return root
        self.visits += 1
        if key < root.key:
            if root.left is None:
                return root
            if key < root.left.key:            # zig-zig (left-left)
                root.left.left = self._splay(root.left.left, key)
                root = self._rotate_right(root)
            elif key > root.left.key:          # zig-zag (left-right)
                root.left.right = self._splay(root.left.right, key)
                if root.left.right is not None:
                    root.left = self._rotate_left(root.left)
            return root if root.left is None else self._rotate_right(root)
        else:
            if root.right is None:
                return root
            if key > root.right.key:           # zig-zig (right-right)
                root.right.right = self._splay(root.right.right, key)
                root = self._rotate_left(root)
            elif key < root.right.key:         # zig-zag (right-left)
                root.right.left = self._splay(root.right.left, key)
                if root.right.left is not None:
                    root.right = self._rotate_right(root.right)
            return root if root.right is None else self._rotate_left(root)

    @staticmethod
    def _rotate_right(node: _Node) -> _Node:
        left = node.left
        node.left = left.right
        left.right = node
        return left

    @staticmethod
    def _rotate_left(node: _Node) -> _Node:
        right = node.right
        node.right = right.left
        right.left = node
        return right

    # ----------------------------------------------------------------- API

    def insert(self, key: int, value: Any) -> None:
        """Insert or replace."""
        self.operations += 1
        self._root = self._splay(self._root, key)
        if self._root is None:
            self._root = _Node(key, value)
            self._size = 1
            return
        if self._root.key == key:
            self._root.value = value
            return
        node = _Node(key, value)
        if key < self._root.key:
            node.right = self._root
            node.left = self._root.left
            self._root.left = None
        else:
            node.left = self._root
            node.right = self._root.right
            self._root.right = None
        self._root = node
        self._size += 1

    def find(self, key: int) -> Any | None:
        """Exact lookup (splays)."""
        self.operations += 1
        self._root = self._splay(self._root, key)
        if self._root is not None and self._root.key == key:
            return self._root.value
        return None

    def find_le(self, key: int) -> tuple[int, Any] | None:
        """Greatest (key', value) with key' <= key (splays)."""
        self.operations += 1
        self._root = self._splay(self._root, key)
        if self._root is None:
            return None
        if self._root.key <= key:
            return self._root.key, self._root.value
        # root is the successor; predecessor is the max of the left subtree
        node = self._root.left
        if node is None:
            return None
        while node.right is not None:
            self.visits += 1
            node = node.right
        return node.key, node.value

    def remove(self, key: int) -> Any | None:
        """Delete; returns the removed value or None."""
        self.operations += 1
        self._root = self._splay(self._root, key)
        if self._root is None or self._root.key != key:
            return None
        removed = self._root.value
        if self._root.left is None:
            self._root = self._root.right
        else:
            right = self._root.right
            self._root = self._splay(self._root.left, key)
            self._root.right = right
        self._size -= 1
        return removed

    # ------------------------------------------------------------ inspection

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self.find(key) is not None

    def items(self) -> Iterator[tuple[int, Any]]:
        """In-order traversal (does not splay)."""
        stack: list[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def depth(self) -> int:
        """Current tree height (diagnostics for the locality experiments)."""
        def _d(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            return 1 + max(_d(node.left), _d(node.right))
        return _d(self._root)
