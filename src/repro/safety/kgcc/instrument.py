"""The KGCC instrumentation pass: insert checks into the AST.

"All operations that can potentially cause bounds violations, like pointer
arithmetic, string operations, memory copying, etc. are preceded by
checks."  Here the pass wraps:

* every dereference (``*p``) and index (``a[i]``) in a ``deref`` check,
* every side-effect-free pointer ``+``/``-`` in an ``arith`` check (which
  is where OOB peers get created),

and decides, per the paper's heuristic, which stack objects need
registration at all: "KGCC does not check stack objects whose addresses
are not taken at any point in the code" — scalars that are never
address-taken are neither registered nor checked.

The pass runs a lightweight flow-insensitive type inference (declared
types only) so it knows which ``+``/``-`` expressions are pointer
arithmetic and what the access width of each dereference is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cminus import ast_nodes as ast
from repro.cminus.compile import bump_generation
from repro.cminus.ctypes import ArrayType, CType, INT, PointerType, StructType


@dataclass
class InstrumentationReport:
    """What the pass did — feeds E9's check-count statistics."""

    checks_inserted: int = 0
    deref_checks: int = 0
    arith_checks: int = 0
    sites: dict[str, list[ast.Check]] = field(default_factory=dict)
    #: variables exempted from registration (address never taken, scalar)
    unregistered: set[str] = field(default_factory=set)
    registered_vars: int = 0
    #: the instrumented program — lets check-toggling passes (dynamic
    #: deinstrumentation) bump its code-cache generation
    program: "ast.Program | None" = None

    def nodes_at(self, site: str) -> list[ast.Check]:
        return self.sites.get(site, [])

    def all_checks(self) -> list[ast.Check]:
        return [c for nodes in self.sites.values() for c in nodes]


class FuncTypes:
    """name -> declared CType for one function (flow-insensitive).

    Public because the load-time verifier reuses it to scale pointer
    arithmetic and size memory accesses exactly the way this pass does.
    """

    def __init__(self, program: ast.Program, fdef: ast.FuncDef):
        self.types: dict[str, CType] = {}
        for decl in program.globals:
            self.types[decl.name] = decl.ctype
        for param in fdef.params:
            self.types[param.name] = param.ctype
        for node in ast.walk(fdef.body):
            if isinstance(node, ast.VarDecl):
                self.types[node.name] = node.ctype

    def type_of(self, expr: ast.Expr) -> CType | None:
        if isinstance(expr, ast.Ident):
            return self.types.get(expr.name)
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.StrLit):
            return PointerType()
        if isinstance(expr, ast.Check):
            return self.type_of(expr.inner)
        if isinstance(expr, ast.Deref):
            t = self.type_of(expr.ptr)
            if isinstance(t, PointerType):
                return t.pointee
            if isinstance(t, ArrayType):
                return t.elem
            return None
        if isinstance(expr, ast.Index):
            t = self.type_of(expr.base)
            if isinstance(t, PointerType):
                return t.pointee
            if isinstance(t, ArrayType):
                return t.elem
            return None
        if isinstance(expr, ast.AddrOf):
            inner = self.type_of(expr.target)
            return PointerType(inner) if inner is not None else PointerType()
        if isinstance(expr, ast.Member):
            base = self.type_of(expr.base)
            struct = base.pointee if isinstance(base, PointerType) else base
            if isinstance(struct, StructType):
                try:
                    return struct.field(expr.field_name)[1]
                except KeyError:
                    return None
            return None
        if isinstance(expr, ast.BinOp) and expr.op in ("+", "-"):
            lt = self.type_of(expr.left)
            rt = self.type_of(expr.right)
            for t in (lt, rt):
                if isinstance(t, PointerType):
                    return t
                if isinstance(t, ArrayType):
                    return t.decay()
            return INT
        if isinstance(expr, (ast.Assign, ast.PostIncDec, ast.UnOp)):
            target = getattr(expr, "target", None) or getattr(expr, "operand", None)
            return self.type_of(target) if target is not None else None
        return INT


#: backwards-compatible alias (pre-verifier name)
_FuncTypes = FuncTypes


def _side_effect_free(expr: ast.Expr) -> bool:
    if isinstance(expr, (ast.IntLit, ast.StrLit, ast.Ident)):
        return True
    if isinstance(expr, ast.BinOp):
        return _side_effect_free(expr.left) and _side_effect_free(expr.right)
    if isinstance(expr, ast.UnOp):
        return expr.op not in ("++", "--") and _side_effect_free(expr.operand)
    if isinstance(expr, ast.Deref):
        return _side_effect_free(expr.ptr)
    if isinstance(expr, ast.Index):
        return _side_effect_free(expr.base) and _side_effect_free(expr.index)
    if isinstance(expr, ast.AddrOf):
        return _side_effect_free(expr.target)
    if isinstance(expr, ast.SizeOf):
        return True
    return False  # calls, assignments, ++/--


class _Instrumenter:
    def __init__(self, program: ast.Program, filename: str):
        self.program = program
        self.filename = filename
        self.report = InstrumentationReport()
        self._types: FuncTypes | None = None

    # ---------------------------------------------------------------- sites

    def _make_check(self, kind: str, inner: ast.Expr, size: int,
                    line: int) -> ast.Check:
        site = f"{self.filename}:{line}:{kind}"
        check = ast.Check(line=line, kind=kind, inner=inner,
                          access_size=size, site=site)
        self.report.sites.setdefault(site, []).append(check)
        self.report.checks_inserted += 1
        if kind == "deref":
            self.report.deref_checks += 1
        else:
            self.report.arith_checks += 1
        return check

    # ----------------------------------------------------------- traversal

    def run(self) -> InstrumentationReport:
        # Which names ever have their address taken (per whole program —
        # conservative and simple, like the paper's whole-function test)?
        addr_taken: set[str] = set()
        for func in self.program.funcs.values():
            for node in ast.walk(func.body):
                if isinstance(node, ast.AddrOf) and isinstance(
                        node.target, ast.Ident):
                    addr_taken.add(node.target.name)
                if isinstance(node, ast.Call):
                    for a in node.args:
                        if isinstance(a, ast.Ident):
                            addr_taken.add(a.name)  # may escape via the call
        for func in self.program.funcs.values():
            self._types = FuncTypes(self.program, func)
            func.body = self._instr_stmt(func.body)
        # Registration exemptions: scalar locals never address-taken.
        for func in self.program.funcs.values():
            for node in ast.walk(func.body):
                if isinstance(node, ast.VarDecl):
                    pointerish = isinstance(node.ctype,
                                            (ArrayType, PointerType))
                    if node.name not in addr_taken and not pointerish:
                        self.report.unregistered.add(node.name)
                    else:
                        self.report.registered_vars += 1
        return self.report

    def _instr_stmt(self, stmt: ast.Stmt) -> ast.Stmt:
        if isinstance(stmt, ast.Block):
            stmt.stmts = [self._instr_stmt(s) for s in stmt.stmts]
            return stmt
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                stmt.init = self._instr_expr(stmt.init)
            return stmt
        if isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._instr_expr(stmt.expr)
            return stmt
        if isinstance(stmt, ast.If):
            stmt.cond = self._instr_expr(stmt.cond)
            stmt.then = self._instr_stmt(stmt.then)
            if stmt.orelse is not None:
                stmt.orelse = self._instr_stmt(stmt.orelse)
            return stmt
        if isinstance(stmt, ast.While):
            stmt.cond = self._instr_expr(stmt.cond)
            stmt.body = self._instr_stmt(stmt.body)
            return stmt
        if isinstance(stmt, ast.For):
            if stmt.init is not None:
                stmt.init = self._instr_stmt(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self._instr_expr(stmt.cond)
            if stmt.step is not None:
                stmt.step = self._instr_expr(stmt.step)
            stmt.body = self._instr_stmt(stmt.body)
            return stmt
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                stmt.value = self._instr_expr(stmt.value)
            return stmt
        return stmt

    def _access_size(self, expr: ast.Expr) -> int:
        t = self._types.type_of(expr) if self._types is not None else None
        return t.size if t is not None and t.size > 0 else 1

    def _instr_expr(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, (ast.IntLit, ast.StrLit, ast.Ident, ast.SizeOf)):
            return expr
        if isinstance(expr, ast.Deref):
            expr.ptr = self._instr_expr(expr.ptr)
            return self._make_check("deref", expr, self._access_size(expr),
                                    expr.line)
        if isinstance(expr, ast.Index):
            expr.base = self._instr_expr(expr.base)
            expr.index = self._instr_expr(expr.index)
            return self._make_check("deref", expr, self._access_size(expr),
                                    expr.line)
        if isinstance(expr, ast.Member):
            expr.base = self._instr_expr(expr.base)
            if expr.arrow:
                # p->f dereferences p: check the field access range
                return self._make_check("deref", expr,
                                        self._access_size(expr), expr.line)
            return expr  # x.f on a local struct needs no runtime check
        if isinstance(expr, ast.BinOp):
            expr.left = self._instr_expr(expr.left)
            expr.right = self._instr_expr(expr.right)
            if expr.op in ("+", "-") and _side_effect_free(expr):
                t = self._types.type_of(expr) if self._types else None
                if isinstance(t, PointerType):
                    return self._make_check("arith", expr, 1, expr.line)
            return expr
        if isinstance(expr, ast.UnOp):
            expr.operand = self._instr_expr(expr.operand)
            return expr
        if isinstance(expr, ast.AddrOf):
            # &x itself accesses nothing; do not descend into an Index here
            # with a deref check (C blesses &a[n] even one past the end), but
            # still instrument the index expression's subexpressions.
            if isinstance(expr.target, ast.Index):
                expr.target.base = self._instr_expr(expr.target.base)
                expr.target.index = self._instr_expr(expr.target.index)
            return expr
        if isinstance(expr, ast.Assign):
            expr.target = self._instr_expr(expr.target)
            expr.value = self._instr_expr(expr.value)
            return expr
        if isinstance(expr, ast.PostIncDec):
            return expr
        if isinstance(expr, ast.Call):
            expr.args = [self._instr_expr(a) for a in expr.args]
            return expr
        return expr


def instrument(program: ast.Program, filename: str = "<kgcc>"
               ) -> InstrumentationReport:
    """Instrument ``program`` in place; returns the report.

    Pair with :class:`~repro.safety.kgcc.runtime.KgccRuntime` via the
    interpreter's ``check_runtime=`` and ``var_hooks=`` arguments, and pass
    ``report.unregistered`` to the runtime's skip set.
    """
    report = _Instrumenter(program, filename).run()
    report.program = program
    # the AST changed shape: compiled code for the pre-instrumentation
    # generation is now stale
    bump_generation(program)
    return report
