"""The KGCC runtime: what compiled-in checks call at run time.

Implements the interpreter's ``CheckRuntime`` and ``VarHooks`` protocols:

* ``on_decl`` / ``on_scope_exit`` — compiler-inserted registration of
  stack objects in the address map (and their removal at scope exit);
* ``check_deref`` — every load/store address must fall inside a live
  object; dereferencing an OOB peer or unknown address raises;
* ``check_arith`` — pointer arithmetic may leave an object's bounds, but
  then the result becomes an *OOB peer* of that object: further arithmetic
  is fine, dereferencing is not, and arithmetic that re-enters the object
  returns to normal (§3.4's out-of-bounds handling);
* heap externs — ``malloc``/``free`` for checked programs, with
  double-free and invalid-free detection (BCC's malloc/free checking).

Per-site execution counters feed dynamic deinstrumentation (§3.5).
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

from repro.cminus.ctypes import ArrayType, CType
from repro.cminus.memaccess import MemoryAccess
from repro.errors import AllocatorMisuse, BoundsError, InvalidPointer
from repro.kernel.clock import Mode
from repro.safety.kgcc.addrmap import ObjectMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


class KgccRuntime:
    """One runtime instance per checked program execution context."""

    def __init__(self, kernel: "Kernel | None" = None, *,
                 mode: Mode = Mode.SYSTEM,
                 skip_names: set[str] | None = None):
        self.kernel = kernel
        self.mode = mode
        #: stack variables exempted from registration by the compiler's
        #: address-never-taken heuristic (InstrumentationReport.unregistered)
        self.skip_names = skip_names or set()
        self.map = ObjectMap(on_visit=self._charge_visits)
        self.checks_executed = 0
        self.check_failures = 0
        self.site_counts: Counter = Counter()
        self._addr_registered: dict[int, int] = {}  # addr -> nesting count

    # --------------------------------------------------------------- costs

    def _charge_visits(self, nodes: int) -> None:
        if self.kernel is not None and nodes > 0:
            self.kernel.clock.charge(
                nodes * self.kernel.costs.kgcc_splay_node, self.mode)

    def _charge_check(self) -> None:
        if self.kernel is not None:
            self.kernel.clock.charge(self.kernel.costs.kgcc_check, self.mode)

    def _charge_register(self) -> None:
        if self.kernel is not None:
            self.kernel.clock.charge(self.kernel.costs.kgcc_register, self.mode)

    # ---------------------------------------------------------- VarHooks

    def on_decl(self, name: str, addr: int, ctype: CType, site: str) -> None:
        """Compiler-inserted registration of a stack object."""
        if name in self.skip_names:
            return  # the compiler proved this scalar needs no tracking
        self._charge_register()
        size = ctype.size if not isinstance(ctype, ArrayType) else ctype.size
        self.map.register(addr, max(size, 1), "stack", site)
        self._addr_registered[addr] = self._addr_registered.get(addr, 0) + 1

    def on_scope_exit(self, addrs: list[int]) -> None:
        for addr in addrs:
            nesting = self._addr_registered.get(addr, 0)
            if nesting <= 0:
                continue
            self._charge_register()
            self.map.unregister(addr)
            if nesting == 1:
                del self._addr_registered[addr]
            else:
                self._addr_registered[addr] = nesting - 1

    # ------------------------------------------------------- CheckRuntime

    def check_deref(self, addr: int, size: int, site: str) -> None:
        """Validate an about-to-happen access of ``size`` bytes at ``addr``."""
        self.checks_executed += 1
        self.site_counts[site] += 1
        self._charge_check()
        oob = self.map.oob_at(addr)
        if oob is not None:
            self.check_failures += 1
            raise BoundsError(
                addr, f"dereference of out-of-bounds pointer (peer of "
                      f"object at {oob.peer.base:#x})", site)
        obj = self.map.lookup(addr)
        if obj is None:
            self.check_failures += 1
            raise InvalidPointer(addr)
        if addr + max(size, 1) > obj.end:
            self.check_failures += 1
            raise BoundsError(
                addr, f"access of {size} bytes overruns object "
                      f"[{obj.base:#x}, {obj.end:#x})", site)

    def check_index(self, base: int, addr: int, size: int, site: str) -> None:
        """Validate ``base[i]`` with intended-referent semantics: the access
        must stay within the object ``base`` points into — landing inside an
        *adjacent* object is still a violation (Jones & Kelly)."""
        self.checks_executed += 1
        self.site_counts[site] += 1
        self._charge_check()
        oob = self.map.oob_at(base)
        if oob is not None:
            self.check_failures += 1
            raise BoundsError(
                addr, f"indexing through out-of-bounds pointer (peer of "
                      f"object at {oob.peer.base:#x})", site)
        origin = self.map.lookup(base)
        if origin is None:
            self.check_failures += 1
            raise InvalidPointer(base, "indexing an unknown pointer")
        if addr < origin.base or addr + max(size, 1) > origin.end:
            self.check_failures += 1
            raise BoundsError(
                addr, f"index access of {size} bytes escapes object "
                      f"[{origin.base:#x}, {origin.end:#x})", site)

    def check_arith(self, base: int, result: int, site: str) -> int:
        """Validate pointer arithmetic; may create or retire an OOB peer."""
        self.checks_executed += 1
        self.site_counts[site] += 1
        self._charge_check()
        # Arithmetic starting from an existing OOB peer?
        src_oob = self.map.oob_at(base)
        origin = src_oob.peer if src_oob is not None else self.map.lookup(base)
        if origin is None:
            self.check_failures += 1
            raise InvalidPointer(
                base, "pointer arithmetic on an unknown pointer")
        # C blesses the one-past-the-end address; beyond that, a peer.
        if origin.base <= result <= origin.end:
            return result
        self.map.make_peer(result, origin, site)
        return result

    # --------------------------------------------------------- heap externs

    def make_externs(self, mem: MemoryAccess) -> dict:
        """The checked C runtime for instrumented programs.

        BCC checks not only pointer arithmetic but "string operations,
        memory copying, etc."; these are the checked library routines:
        ``malloc``/``free`` with registration and misuse detection, plus
        ``memcpy``/``memset``/``strcpy``/``strlen`` that validate their
        whole operand ranges against the address map before touching a
        byte.
        """

        def _require_range(addr: int, size: int, what: str) -> None:
            self.checks_executed += 1
            self._charge_check()
            obj = self.map.lookup(addr)
            if obj is None:
                self.check_failures += 1
                raise InvalidPointer(addr, f"{what} through unknown pointer")
            if addr + max(size, 0) > obj.end:
                self.check_failures += 1
                raise BoundsError(
                    addr, f"{what} of {size} bytes overruns object "
                          f"[{obj.base:#x}, {obj.end:#x})", what)

        def checked_malloc(size: int) -> int:
            if size <= 0:
                raise AllocatorMisuse(f"malloc({size})")
            addr = mem.malloc(size)
            self._charge_register()
            self.map.register(addr, size, "heap", "malloc")
            return addr

        def checked_free(addr: int) -> int:
            obj = self.map.lookup(addr)
            if obj is None or obj.base != addr or obj.kind != "heap":
                self.check_failures += 1
                raise AllocatorMisuse(
                    f"free of {addr:#x}, which is not a live heap object")
            self._charge_register()
            self.map.unregister(addr)
            mem.free(addr)
            return 0

        def checked_memcpy(dst: int, src: int, n: int) -> int:
            _require_range(src, n, "memcpy-src")
            _require_range(dst, n, "memcpy-dst")
            mem.write(dst, mem.read(src, n))
            return dst

        def checked_memset(dst: int, value: int, n: int) -> int:
            _require_range(dst, n, "memset")
            mem.write(dst, bytes([value & 0xFF]) * n)
            return dst

        def checked_strlen(addr: int) -> int:
            obj = self.map.lookup(addr)
            self.checks_executed += 1
            self._charge_check()
            if obj is None:
                self.check_failures += 1
                raise InvalidPointer(addr, "strlen through unknown pointer")
            n = 0
            while addr + n < obj.end:
                if mem.read(addr + n, 1) == b"\0":
                    return n
                n += 1
            self.check_failures += 1
            raise BoundsError(addr, "unterminated string reaches object end",
                              "strlen")

        def checked_strcpy(dst: int, src: int) -> int:
            n = checked_strlen(src)
            _require_range(dst, n + 1, "strcpy-dst")
            mem.write(dst, mem.read(src, n + 1))
            return dst

        return {"malloc": checked_malloc, "free": checked_free,
                "memcpy": checked_memcpy, "memset": checked_memset,
                "strlen": checked_strlen, "strcpy": checked_strcpy}
