"""KGCC: compiler-assisted runtime bounds checking (§3.4).

Derived from Jones & Kelly's Bounds-Checking GCC (BCC), extended as the
paper describes:

* the runtime keeps "a map of currently allocated memory in a splay tree;
  the tree is consulted before any memory operation"
  (:mod:`splay`, :mod:`addrmap`);
* temporary out-of-bounds pointers are handled with **peer objects**: an
  OOB marker object remembers which real object the pointer strayed from,
  arithmetic on it is legal, dereferencing it is not (:mod:`addrmap`);
* the instrumentation pass inserts checks around pointer arithmetic and
  dereferences (:mod:`instrument`), and optimization passes remove the
  redundant ones — unescaped-stack-object elimination and
  common-subexpression elimination, which the paper credits with removing
  more than half of the checks (:mod:`optimize`);
* dynamic deinstrumentation disables check sites that have executed safely
  enough times (:mod:`deinstrument` — §3.5's planned technique,
  implemented).
"""

from repro.safety.kgcc.splay import SplayTree
from repro.safety.kgcc.addrmap import MemObject, OOBObject, ObjectMap
from repro.safety.kgcc.runtime import KgccRuntime
from repro.safety.kgcc.instrument import (instrument, FuncTypes,
                                          InstrumentationReport)
from repro.safety.kgcc.optimize import (const_fold,
                                        eliminate_safe_static_checks,
                                        eliminate_common_checks,
                                        eliminate_verified_checks, optimize,
                                        OptimizeReport)
from repro.safety.kgcc.deinstrument import DynamicDeinstrumenter
from repro.safety.kgcc.selective import Rule, SelectiveReport, apply_rules
from repro.safety.kgcc.modulefs import KgccFsSuperBlock
from repro.safety.kgcc.hotpatch import HotPatcher, PatchRecord

__all__ = [
    "SplayTree", "MemObject", "OOBObject", "ObjectMap", "KgccRuntime",
    "instrument", "FuncTypes", "InstrumentationReport",
    "const_fold", "eliminate_safe_static_checks", "eliminate_common_checks",
    "eliminate_verified_checks", "optimize",
    "OptimizeReport", "DynamicDeinstrumenter",
    "Rule", "SelectiveReport", "apply_rules", "KgccFsSuperBlock",
    "HotPatcher", "PatchRecord",
]
