"""Check-elimination optimizations (§3.4).

"During compilation, KGCC employs heuristics to eliminate unnecessary
checks. ... Another technique, common subexpression elimination, allowed
us to reduce the number of checks inserted by more than half for typical
kernel code."

Three passes over an instrumented AST:

* :func:`eliminate_safe_static_checks` — remove deref checks that are
  provably safe at compile time: a constant (literal, ``sizeof``-derived,
  or constant-folded), in-bounds index into a local array whose address
  never escapes.
* :func:`eliminate_verified_checks` — remove every check whose site the
  load-time verifier (:mod:`repro.safety.verifier`) proved safe by
  abstract interpretation; this subsumes the static pass on straight-line
  code and additionally handles loops, guards, and pointer arithmetic.
* :func:`eliminate_common_checks` — CSE over checks: within straight-line
  code, a check identical to an earlier one whose operands have not been
  reassigned (and with no intervening call, which could free heap objects)
  is redundant and removed.  Nested control flow is processed with fresh
  state (conservative, always sound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cminus import ast_nodes as ast
from repro.cminus.compile import bump_generation
from repro.cminus.ctypes import ArrayType


@dataclass
class OptimizeReport:
    checks_before: int = 0
    checks_removed_static: int = 0
    checks_removed_verified: int = 0
    checks_removed_cse: int = 0

    @property
    def checks_removed(self) -> int:
        return (self.checks_removed_static + self.checks_removed_verified
                + self.checks_removed_cse)

    @property
    def checks_after(self) -> int:
        return self.checks_before - self.checks_removed

    @property
    def removed_fraction(self) -> float:
        if self.checks_before == 0:
            return 0.0
        return self.checks_removed / self.checks_before


def _count_checks(program: ast.Program) -> int:
    return sum(1 for node in ast.walk(program) if isinstance(node, ast.Check))


# --------------------------------------------------------------- static pass

def const_fold(expr: ast.Expr) -> int | None:
    """Evaluate ``expr`` to an int when it is a compile-time constant.

    Handles literals, ``sizeof`` (with a resolved type), unary minus and
    bitwise-not, and the usual integer binary operators.  Returns ``None``
    for anything non-constant (including division by zero, which is left
    for the runtime to fault on).
    """
    if isinstance(expr, ast.Check):
        return const_fold(expr.inner)
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.SizeOf) and expr.ctype is not None:
        return expr.ctype.size
    if isinstance(expr, ast.UnOp):
        v = const_fold(expr.operand)
        if v is None:
            return None
        if expr.op == "-":
            return -v
        if expr.op == "~":
            return ~v
        if expr.op == "!":
            return 0 if v else 1
        return None
    if isinstance(expr, ast.BinOp):
        left = const_fold(expr.left)
        right = const_fold(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: int(left / right),
                "%": lambda: left - int(left / right) * right,
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
            }[expr.op]()
        except (KeyError, ZeroDivisionError, ValueError):
            return None
    return None


def eliminate_safe_static_checks(program: ast.Program,
                                 report: OptimizeReport | None = None
                                 ) -> OptimizeReport:
    """Drop deref checks on provably-in-bounds constant indexing."""
    report = report or OptimizeReport(checks_before=_count_checks(program))
    for func in program.funcs.values():
        # local arrays whose address never escapes in this function
        arrays: dict[str, int] = {}
        escaped: set[str] = set()
        for node in ast.walk(func.body):
            if isinstance(node, ast.VarDecl) and isinstance(node.ctype,
                                                            ArrayType):
                arrays[node.name] = node.ctype.length
            if isinstance(node, ast.AddrOf) and isinstance(node.target,
                                                           ast.Ident):
                escaped.add(node.target.name)
            if isinstance(node, ast.Call):
                for a in node.args:
                    base = a
                    while isinstance(base, ast.Check):
                        base = base.inner
                    if isinstance(base, ast.Ident):
                        escaped.add(base.name)
            if isinstance(node, ast.Assign) and isinstance(node.value,
                                                           ast.Ident):
                escaped.add(node.value.name)  # aliased through a pointer var

        def is_safe(check: ast.Check) -> bool:
            inner = check.inner
            if check.kind != "deref" or not isinstance(inner, ast.Index):
                return False
            if not isinstance(inner.base, ast.Ident):
                return False
            index = const_fold(inner.index)
            if index is None:
                return False
            name = inner.base.name
            if name in escaped or name not in arrays:
                return False
            return 0 <= index < arrays[name]

        removed = _replace_checks(func.body, is_safe)
        report.checks_removed_static += removed
    bump_generation(program)
    return report


# ------------------------------------------------------------ verifier pass

def eliminate_verified_checks(program: ast.Program, verifier_report,
                              report: OptimizeReport | None = None
                              ) -> OptimizeReport:
    """Drop every check at a site the load-time verifier proved safe.

    ``verifier_report`` is a
    :class:`~repro.safety.verifier.VerifierReport` produced by verifying
    this program (after instrumentation, with the same filename, so the
    site keys line up).  A site is dropped only when *every* check
    instance at that key was classified ``PROVEN``, which makes the
    removal sound regardless of how many AST nodes share the source line.
    """
    report = report or OptimizeReport(checks_before=_count_checks(program))
    proven = verifier_report.proven_sites()
    if not proven:
        return report
    for func in program.funcs.values():
        removed = _replace_checks(func.body,
                                  lambda check: check.site in proven)
        report.checks_removed_verified += removed
    bump_generation(program)
    return report


# ------------------------------------------------------------------ CSE pass

def _fingerprint(expr: ast.Expr) -> str:
    """Stable structural key for an expression."""
    if isinstance(expr, ast.IntLit):
        return f"#{expr.value}"
    if isinstance(expr, ast.StrLit):
        return f"${expr.value!r}"
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.BinOp):
        return f"({_fingerprint(expr.left)}{expr.op}{_fingerprint(expr.right)})"
    if isinstance(expr, ast.UnOp):
        return f"({expr.op}{_fingerprint(expr.operand)})"
    if isinstance(expr, ast.Deref):
        return f"(*{_fingerprint(expr.ptr)})"
    if isinstance(expr, ast.Index):
        return f"({_fingerprint(expr.base)}[{_fingerprint(expr.index)}])"
    if isinstance(expr, ast.AddrOf):
        return f"(&{_fingerprint(expr.target)})"
    if isinstance(expr, ast.Member):
        op = "->" if expr.arrow else "."
        return f"({_fingerprint(expr.base)}{op}{expr.field_name})"
    if isinstance(expr, ast.Check):
        return _fingerprint(expr.inner)
    if isinstance(expr, ast.Call):
        args = ",".join(_fingerprint(a) for a in expr.args)
        return f"{expr.func}({args})!"   # '!' marks non-CSE-able
    if isinstance(expr, ast.Assign):
        return f"(={_fingerprint(expr.target)})!"
    if isinstance(expr, ast.PostIncDec):
        return f"({_fingerprint(expr.target)}{expr.op})!"
    return f"?{type(expr).__name__}!"


def _names_in(expr: ast.Expr) -> set[str]:
    return {n.name for n in ast.walk(expr) if isinstance(n, ast.Ident)}


class _CseState:
    def __init__(self) -> None:
        self.seen: dict[str, ast.Check] = {}
        self.removed = 0

    def kill_names(self, names: set[str]) -> None:
        dead = [fp for fp in self.seen
                if names & _names_in(self.seen[fp].inner)]
        for fp in dead:
            del self.seen[fp]

    def kill_all(self) -> None:
        self.seen.clear()


def eliminate_common_checks(program: ast.Program,
                            report: OptimizeReport | None = None
                            ) -> OptimizeReport:
    """Remove checks dominated by an identical earlier check."""
    report = report or OptimizeReport(checks_before=_count_checks(program))
    for func in program.funcs.values():
        state = _CseState()
        _cse_stmt(func.body, state)
        report.checks_removed_cse += state.removed
    bump_generation(program)
    return report


def _cse_stmt(stmt: ast.Stmt, state: _CseState) -> None:
    if isinstance(stmt, ast.Block):
        for s in stmt.stmts:
            _cse_stmt(s, state)
        return
    if isinstance(stmt, ast.VarDecl):
        if stmt.init is not None:
            stmt.init = _cse_expr(stmt.init, state)
        state.kill_names({stmt.name})
        return
    if isinstance(stmt, ast.ExprStmt):
        stmt.expr = _cse_expr(stmt.expr, state)
        return
    if isinstance(stmt, ast.If):
        stmt.cond = _cse_expr(stmt.cond, state)
        # Branches execute conditionally: analyze each with a private copy
        # and keep nothing afterwards (conservative join).
        for branch in ("then", "orelse"):
            body = getattr(stmt, branch)
            if body is not None:
                sub = _CseState()
                sub.seen = dict(state.seen)
                _cse_stmt(body, sub)
                state.removed += sub.removed
        state.kill_all()
        return
    if isinstance(stmt, (ast.While, ast.For)):
        # Loop bodies: fresh state per static occurrence (sound; checks can
        # still be deduplicated *within* one iteration's straight-line code).
        if isinstance(stmt, ast.For) and stmt.init is not None:
            _cse_stmt(stmt.init, state)
        sub = _CseState()
        if isinstance(stmt, ast.While):
            stmt.cond = _cse_expr(stmt.cond, sub)
            _cse_stmt(stmt.body, sub)
        else:
            if stmt.cond is not None:
                stmt.cond = _cse_expr(stmt.cond, sub)
            _cse_stmt(stmt.body, sub)
            if stmt.step is not None:
                stmt.step = _cse_expr(stmt.step, sub)
        state.removed += sub.removed
        state.kill_all()
        return
    if isinstance(stmt, ast.Return):
        if stmt.value is not None:
            stmt.value = _cse_expr(stmt.value, state)
        return
    # Break/Continue: nothing to do


def _cse_expr(expr: ast.Expr, state: _CseState) -> ast.Expr:
    if isinstance(expr, ast.Check):
        expr.inner = _cse_expr(expr.inner, state)
        fp = f"{expr.kind}|{_fingerprint(expr.inner)}"
        if "!" not in fp:
            if fp in state.seen:
                state.removed += 1
                return expr.inner  # drop the redundant check
            state.seen[fp] = expr
        return expr
    if isinstance(expr, ast.BinOp):
        expr.left = _cse_expr(expr.left, state)
        expr.right = _cse_expr(expr.right, state)
        return expr
    if isinstance(expr, ast.UnOp):
        expr.operand = _cse_expr(expr.operand, state)
        if expr.op in ("++", "--") and isinstance(expr.operand, ast.Ident):
            state.kill_names({expr.operand.name})
        return expr
    if isinstance(expr, ast.Deref):
        expr.ptr = _cse_expr(expr.ptr, state)
        return expr
    if isinstance(expr, ast.Index):
        expr.base = _cse_expr(expr.base, state)
        expr.index = _cse_expr(expr.index, state)
        return expr
    if isinstance(expr, ast.Member):
        expr.base = _cse_expr(expr.base, state)
        return expr
    if isinstance(expr, ast.AddrOf):
        expr.target = _cse_expr(expr.target, state)
        return expr
    if isinstance(expr, ast.Assign):
        expr.value = _cse_expr(expr.value, state)
        expr.target = _cse_expr(expr.target, state)
        names = set()
        base = expr.target
        while isinstance(base, ast.Check):
            base = base.inner
        if isinstance(base, ast.Ident):
            names.add(base.name)
        state.kill_names(names)
        return expr
    if isinstance(expr, ast.PostIncDec):
        base = expr.target
        while isinstance(base, ast.Check):
            base = base.inner
        if isinstance(base, ast.Ident):
            state.kill_names({base.name})
        return expr
    if isinstance(expr, ast.Call):
        expr.args = [_cse_expr(a, state) for a in expr.args]
        state.kill_all()  # the callee may free objects or write anywhere
        return expr
    return expr


# ----------------------------------------------------------------- utilities

def _replace_checks(stmt: ast.Stmt, predicate) -> int:
    """Replace Check nodes satisfying ``predicate`` with their inner expr,
    anywhere under ``stmt``.  Returns the number removed."""
    removed = 0

    def fix_expr(expr: ast.Expr) -> ast.Expr:
        nonlocal removed
        if expr is None:
            return expr
        if isinstance(expr, ast.Check):
            expr.inner = fix_expr(expr.inner)
            if predicate(expr):
                removed += 1
                return expr.inner
            return expr
        for name, value in vars(expr).items():
            if isinstance(value, ast.Expr):
                setattr(expr, name, fix_expr(value))
            elif isinstance(value, list):
                setattr(expr, name,
                        [fix_expr(v) if isinstance(v, ast.Expr) else v
                         for v in value])
        return expr

    def fix_stmt(s: ast.Stmt) -> None:
        for name, value in vars(s).items():
            if isinstance(value, ast.Expr):
                setattr(s, name, fix_expr(value))
            elif isinstance(value, ast.Stmt):
                fix_stmt(value)
            elif isinstance(value, list):
                new = []
                for v in value:
                    if isinstance(v, ast.Expr):
                        new.append(fix_expr(v))
                    else:
                        if isinstance(v, ast.Stmt):
                            fix_stmt(v)
                        new.append(v)
                setattr(s, name, new)

    fix_stmt(stmt)
    return removed


def optimize(program: ast.Program,
             verifier_report=None) -> OptimizeReport:
    """Run all elimination passes; returns the combined report.

    When ``verifier_report`` (a verified :class:`VerifierReport` for this
    program) is supplied, checks at verifier-proven sites are removed
    between the static and CSE passes — they cost zero cycles at run time,
    paid for once by the load-time verification charge in the cost model.
    """
    report = OptimizeReport(checks_before=_count_checks(program))
    eliminate_safe_static_checks(program, report)
    if verifier_report is not None:
        eliminate_verified_checks(program, verifier_report, report)
    eliminate_common_checks(program, report)
    # structural Check removal invalidates compiled code for the program
    bump_generation(program)
    return report
