"""The KGCC address map: live objects and out-of-bounds peers.

"The checks are simply function calls to the BCC runtime environment,
which maintains a map of currently allocated memory in a splay tree; the
tree is consulted before any memory operation."

Out-of-bounds peers (§3.4, the paper's own contribution over BCC):
"Whenever an out-of-bounds address is created by arithmetic on an object
O, we insert a special out-of-bounds (OOB) object at the new address into
the address map, and make it a peer of object O.  Our KGCC runtime
permits only pointer arithmetic on OOB objects, which can either generate
another peer or return to O's bounds."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass
class MemObject:
    """One registered live allocation."""

    base: int
    size: int
    kind: str         # 'stack' | 'heap' | 'global'
    site: str = "?"

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass
class OOBObject:
    """An out-of-bounds marker peered to a real object."""

    addr: int
    peer: MemObject
    site: str = "?"


class ObjectMap:
    """The splay-tree-backed address map consulted by every check.

    ``on_visit(n)`` is invoked with the number of splay nodes touched per
    operation — the KGCC runtime charges cycles through it.
    """

    def __init__(self, on_visit: Callable[[int], None] | None = None):
        from repro.safety.kgcc.splay import SplayTree

        self._tree = SplayTree()
        self._oob: dict[int, OOBObject] = {}
        self.on_visit = on_visit
        self.registrations = 0
        self.lookups = 0

    def _charge(self, before: int) -> None:
        if self.on_visit is not None:
            self.on_visit(self._tree.visits - before)

    # ------------------------------------------------------------- objects

    def register(self, base: int, size: int, kind: str, site: str = "?"
                 ) -> MemObject:
        if size <= 0:
            raise ValueError(f"object of non-positive size at {base:#x}")
        before = self._tree.visits
        obj = MemObject(base, size, kind, site)
        self._tree.insert(base, obj)
        self.registrations += 1
        self._charge(before)
        return obj

    def unregister(self, base: int) -> MemObject | None:
        before = self._tree.visits
        obj = self._tree.remove(base)
        # Any peers of this object die with it.
        if obj is not None:
            dead = [a for a, o in self._oob.items() if o.peer is obj]
            for a in dead:
                del self._oob[a]
        self._charge(before)
        return obj

    def lookup(self, addr: int) -> MemObject | None:
        """The live object whose range covers ``addr``, if any."""
        before = self._tree.visits
        self.lookups += 1
        hit = self._tree.find_le(addr)
        self._charge(before)
        if hit is None:
            return None
        _, obj = hit
        return obj if obj.contains(addr) else None

    # ----------------------------------------------------------- OOB peers

    def make_peer(self, addr: int, peer: MemObject, site: str = "?"
                  ) -> OOBObject:
        oob = OOBObject(addr, peer, site)
        self._oob[addr] = oob
        return oob

    def oob_at(self, addr: int) -> OOBObject | None:
        return self._oob.get(addr)

    def drop_oob(self, addr: int) -> None:
        self._oob.pop(addr, None)

    # ------------------------------------------------------------- queries

    @property
    def live_objects(self) -> int:
        return len(self._tree)

    @property
    def live_oob(self) -> int:
        return len(self._oob)

    def all_objects(self) -> list[MemObject]:
        return [obj for _, obj in self._tree.items()]
