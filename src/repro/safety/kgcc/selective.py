"""Selective instrumentation rules (§3.5, implemented).

"First, we intend to make the compiler capable of inserting
instrumentation based on rules such as 'instrument every operation on an
inode's reference count'. ... we plan to develop a language that
specifies code patterns that the KGCC compiler can then recognize and
instrument."

The rule language here is deliberately small: a rule selects check sites
by function-name pattern, variable-name pattern (the identifier at the
base of the checked expression), and check kind; :func:`apply_rules`
filters an instrumented program so only rule-matching checks remain live.
Rules compose as a whitelist — no rules means everything stays
instrumented (plain KGCC behaviour).

Example::

    report = instrument(program)
    apply_rules(program, report, [
        Rule(variables="*refcount*"),          # the paper's example
        Rule(functions="readdir*", kinds={"deref"}),
    ])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from repro.cminus import ast_nodes as ast
from repro.cminus.compile import bump_generation
from repro.safety.kgcc.instrument import InstrumentationReport


@dataclass(frozen=True)
class Rule:
    """One whitelist entry.  Unset fields match everything."""

    functions: str = "*"
    variables: str = "*"
    kinds: frozenset[str] = frozenset({"deref", "arith"})

    def matches(self, func: str, var: str | None, kind: str) -> bool:
        if kind not in self.kinds:
            return False
        if not fnmatchcase(func, self.functions):
            return False
        if self.variables != "*":
            if var is None or not fnmatchcase(var, self.variables):
                return False
        return True


@dataclass
class SelectiveReport:
    checks_total: int = 0
    checks_kept: int = 0
    kept_sites: set[str] = field(default_factory=set)
    #: rules that matched no check site at all — almost always a typo in
    #: the pattern (e.g. "refcont*"); surfaced via syslog as well
    unmatched_rules: list["Rule"] = field(default_factory=list)

    @property
    def checks_disabled(self) -> int:
        return self.checks_total - self.checks_kept


def _base_variable(expr: ast.Expr) -> str | None:
    """The identifier a checked expression ultimately reads through."""
    node = expr
    while True:
        if isinstance(node, ast.Check):
            node = node.inner
        elif isinstance(node, ast.Index):
            node = node.base
        elif isinstance(node, ast.Deref):
            node = node.ptr
        elif isinstance(node, ast.AddrOf):
            node = node.target
        elif isinstance(node, ast.Member):
            node = node.base
        elif isinstance(node, ast.BinOp):
            # pointer arithmetic: prefer the left operand's base
            left = _base_variable(node.left)
            if left is not None:
                return left
            node = node.right
        elif isinstance(node, ast.Ident):
            return node.name
        else:
            return None


def apply_rules(program: ast.Program, report: InstrumentationReport,
                rules: list[Rule], *,
                syslog=None) -> SelectiveReport:
    """Keep only rule-matching checks enabled; disable the rest.

    Disabled checks stay in the AST (they cost nothing at run time and can
    be re-enabled), so selective instrumentation composes with dynamic
    deinstrumentation.

    A rule that matches nothing is reported in
    :attr:`SelectiveReport.unmatched_rules` and, when a
    :class:`~repro.kernel.syslog.Syslog` is supplied, logged at
    ``KERN_WARNING`` — a dead whitelist entry usually means a misspelled
    pattern silently leaving code unprotected... or *believed* protected.
    """
    result = SelectiveReport()
    if not rules:
        for check in report.all_checks():
            result.checks_total += 1
            result.checks_kept += 1
            result.kept_sites.add(check.site)
        return result
    matched: set[int] = set()
    for func_name, func in program.funcs.items():
        for node in ast.walk(func.body):
            if not isinstance(node, ast.Check):
                continue
            result.checks_total += 1
            var = _base_variable(node.inner)
            keep = False
            for i, rule in enumerate(rules):
                if rule.matches(func_name, var, node.kind):
                    matched.add(i)
                    keep = True
            node.enabled = keep
            if keep:
                result.checks_kept += 1
                result.kept_sites.add(node.site)
    # check toggles change what compiled closures must bake in
    bump_generation(program)
    for i, rule in enumerate(rules):
        if i not in matched:
            result.unmatched_rules.append(rule)
            if syslog is not None:
                from repro.kernel.syslog import KERN_WARNING
                syslog.printk(
                    KERN_WARNING,
                    f"kgcc: selective rule matched no check sites: "
                    f"functions={rule.functions!r} "
                    f"variables={rule.variables!r} "
                    f"kinds={sorted(rule.kinds)}")
    return result
