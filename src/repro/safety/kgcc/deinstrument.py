"""Dynamic deinstrumentation (§3.5, implemented).

"As code paths execute safely more times and more often, one can state
with greater confidence that they are correct.  We intend to implement
instrumentation that can be deactivated when it has executed a sufficient
number of times, reclaiming performance quickly as the confidence level
for frequently-executed code becomes acceptable."

The deinstrumenter watches the runtime's per-site execution counters and
flips ``Check.enabled`` off for sites that have executed ``threshold``
times without a single failure.  Disabled checks cost nothing (the
interpreter skips the runtime call).  A site where a failure ever occurred
is pinned enabled forever.
"""

from __future__ import annotations

from repro.cminus.compile import bump_generation
from repro.safety.kgcc.instrument import InstrumentationReport
from repro.safety.kgcc.runtime import KgccRuntime


class DynamicDeinstrumenter:
    """Deactivates trusted check sites based on execution counts."""

    def __init__(self, runtime: KgccRuntime, report: InstrumentationReport,
                 *, threshold: int = 10_000):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.runtime = runtime
        self.report = report
        self.threshold = threshold
        self.disabled_sites: set[str] = set()
        self.pinned_sites: set[str] = set()

    def pin(self, site: str) -> None:
        """Never disable this site (e.g. it has seen a failure)."""
        self.pinned_sites.add(site)
        self._set_enabled(site, True)
        self.disabled_sites.discard(site)

    def sweep(self) -> int:
        """Disable every unpinned site past the threshold.  Returns the
        number of sites newly disabled.  Call at any convenient cadence
        (the benchmarks sweep between workload phases)."""
        newly = 0
        for site, count in self.runtime.site_counts.items():
            if site in self.disabled_sites or site in self.pinned_sites:
                continue
            if count >= self.threshold:
                self._set_enabled(site, False)
                self.disabled_sites.add(site)
                newly += 1
        return newly

    def enable_all(self) -> None:
        """Re-arm every site (e.g. after loading untrusted input)."""
        for site in list(self.disabled_sites):
            self._set_enabled(site, True)
        self.disabled_sites.clear()

    def _set_enabled(self, site: str, enabled: bool) -> None:
        for check in self.report.nodes_at(site):
            check.enabled = enabled
        # compiled closures read Check.enabled live, so the toggle takes
        # effect immediately — but the generation bump still records that
        # cached code was built against a different check configuration
        if self.report.program is not None:
            bump_generation(self.report.program)

    @property
    def active_sites(self) -> int:
        return len(self.report.sites) - len(self.disabled_sites)
