"""The paper's safety systems.

* :mod:`repro.safety.kefence` — hardware (guard-page) buffer-overflow
  detection for kernel modules (§3.2).
* :mod:`repro.safety.monitor` — the event-monitoring framework: dispatcher,
  lock-free ring buffer, user-space consumers, and invariant monitors for
  locks and reference counts (§3.3).
* :mod:`repro.safety.kgcc` — compiler-inserted bounds checking with a
  splay-tree address map, out-of-bounds peers, check-elimination
  optimizations, and dynamic deinstrumentation (§3.4).
"""
