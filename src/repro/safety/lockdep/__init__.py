"""repro.safety.lockdep — the concurrency sanitizer (Linux lockdep model).

Validates lock ordering, IRQ-safety classes, and atomicity across the
whole simulated kernel *before* the SMP work makes violations fatal.
Enable per-kernel with ``Kernel(lockdep=True)`` (record violations) or
run-wide with ``REPRO_LOCKDEP=1`` (strict: first violation raises
:class:`LockdepError`).  Validation charges zero simulated cycles.

See ``docs/LOCKDEP.md`` for the model and report format.
"""

from repro.safety.lockdep.classes import (CTX_HARDIRQ, CTX_PROCESS,
                                          CTX_SOFTIRQ, ENABLED_IRQ,
                                          KIND_SLEEP, KIND_SPIN,
                                          USED_IN_HARDIRQ, USED_IN_SOFTIRQ,
                                          DepEdge, HeldLock, LockClass)
from repro.safety.lockdep.report import (DEADLOCK, IRQ_INVERSION,
                                         IRQ_UNSAFE_DEP, RECURSION,
                                         RELEASE_NOT_HELD, RELEASE_ORDER,
                                         SLEEP_IN_ATOMIC, LockdepError,
                                         LockdepReport, render_reports)
from repro.safety.lockdep.selftest import SelftestResult, run_selftests
from repro.safety.lockdep.validator import (ENV_LOCKDEP, ENV_LOCKDEP_OUT,
                                            LockdepValidator)

__all__ = [
    "LockdepValidator", "LockdepError", "LockdepReport", "render_reports",
    "LockClass", "HeldLock", "DepEdge",
    "run_selftests", "SelftestResult",
    "ENV_LOCKDEP", "ENV_LOCKDEP_OUT",
    "KIND_SPIN", "KIND_SLEEP",
    "USED_IN_HARDIRQ", "USED_IN_SOFTIRQ", "ENABLED_IRQ",
    "CTX_PROCESS", "CTX_SOFTIRQ", "CTX_HARDIRQ",
    "DEADLOCK", "RECURSION", "IRQ_INVERSION", "IRQ_UNSAFE_DEP",
    "SLEEP_IN_ATOMIC", "RELEASE_ORDER", "RELEASE_NOT_HELD",
]
