"""Lock classes and held-lock records — the validator's vocabulary.

Like Linux lockdep, the validator reasons about lock *classes*, not lock
instances: every lock with the same name (``dcache_lock``, ``i_sem``,
``sock_rxq``...) belongs to one class, and dependencies/usage are recorded
per class.  That is what lets a rule proven on one socket's receive-queue
lock apply to the other ten thousand sockets.

A class accumulates *usage bits* as its instances are acquired in
different contexts; the bit names follow Linux's vocabulary:

* ``USED_IN_HARDIRQ`` — acquired while a hardware interrupt is being
  handled (the class is *hardirq-safe*);
* ``USED_IN_SOFTIRQ`` — acquired during softirq processing
  (*softirq-safe*);
* ``ENABLED_IRQ`` — acquired in process context with interrupts enabled,
  i.e. an interrupt could arrive while the lock is held (the class is
  *irq-unsafe*).

A class that is both irq-safe and irq-unsafe is an inversion waiting for
SMP/preemption to make it real — exactly what the validator reports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

#: usage bits (Linux: LOCK_USED_IN_HARDIRQ / LOCK_ENABLED_HARDIRQ ...)
USED_IN_HARDIRQ = 1
USED_IN_SOFTIRQ = 2
ENABLED_IRQ = 4

_USAGE_NAMES = {
    USED_IN_HARDIRQ: "IN-HARDIRQ",
    USED_IN_SOFTIRQ: "IN-SOFTIRQ",
    ENABLED_IRQ: "IRQS-ON",
}

#: irq context marks carried by held locks (0 = process context)
CTX_PROCESS = 0
CTX_SOFTIRQ = 1
CTX_HARDIRQ = 2

CTX_NAMES = {CTX_PROCESS: "process", CTX_SOFTIRQ: "softirq",
             CTX_HARDIRQ: "hardirq"}

#: lock kinds: spinning locks may not be held across blocking; sleeping
#: locks (semaphores/mutexes) may.
KIND_SPIN = "spin"
KIND_SLEEP = "sleep"


@dataclass
class LockClass:
    """One lock class: every instance sharing a name (plus subclass)."""

    name: str
    kind: str                      # KIND_SPIN | KIND_SLEEP
    usage: int = 0                 # OR of usage bits
    #: first acquisition evidence per usage bit: (site, task, cycles)
    usage_sites: dict = field(default_factory=dict)
    acquisitions: int = 0
    instances: set = field(default_factory=set)
    sites: Counter = field(default_factory=Counter)

    @property
    def irq_safe(self) -> bool:
        """Taken inside an interrupt handler at least once."""
        return bool(self.usage & (USED_IN_HARDIRQ | USED_IN_SOFTIRQ))

    @property
    def irq_unsafe(self) -> bool:
        """Held, at least once, while interrupts were enabled."""
        return self.kind == KIND_SPIN and bool(self.usage & ENABLED_IRQ)

    def usage_str(self) -> str:
        """Linux-style usage annotation, e.g. ``{IN-SOFTIRQ, IRQS-ON}``."""
        bits = [label for bit, label in _USAGE_NAMES.items()
                if self.usage & bit]
        return "{" + ", ".join(bits) + "}" if bits else "{}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LockClass({self.name!r}, {self.kind}, "
                f"{self.usage_str()}, hits={self.acquisitions})")


@dataclass
class HeldLock:
    """One entry on a task's held-lock stack."""

    cls: LockClass
    obj_id: int
    site: str
    cycles: int
    irq_ctx: int                   # CTX_* at acquisition time
    task: str                      # "name/pid" of the acquiring task

    def describe(self) -> str:
        ctx = CTX_NAMES[self.irq_ctx]
        return (f"({self.cls.name}){'{' + ctx + '}' if self.irq_ctx else ''} "
                f"at {self.site}, by {self.task}, cycle {self.cycles}")


@dataclass(frozen=True)
class DepEdge:
    """First-witness evidence for a dependency edge ``src -> dst``:
    ``dst`` was acquired (at ``dst_site``) while ``src`` was held (taken
    at ``src_site``) by ``task`` at simulated ``cycles``."""

    src: str
    dst: str
    src_site: str
    dst_site: str
    task: str
    cycles: int

    def describe(self) -> str:
        return (f"{self.src} (at {self.src_site}) -> {self.dst} "
                f"(at {self.dst_site})  [{self.task}, cycle {self.cycles}]")
