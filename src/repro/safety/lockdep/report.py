"""Lockdep violation reports, rendered in the style of Linux's splats.

Every violation carries enough evidence to act on without re-running:
the acquisition that tripped the check, the full held-lock chain of the
current task, and — for dependency cycles — the previously recorded
chain with the site/task/cycle of each edge's first witness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvariantViolation

#: violation kinds
DEADLOCK = "deadlock"                 # circular lock-order dependency
RECURSION = "recursion"               # same class acquired twice by one task
IRQ_INVERSION = "irq-inversion"       # one class both irq-safe and irq-unsafe
IRQ_UNSAFE_DEP = "irq-unsafe-dependency"  # irq-safe class depends on unsafe
SLEEP_IN_ATOMIC = "sleep-in-atomic"   # blocking in atomic context
RELEASE_ORDER = "release-order"       # non-LIFO spinlock release
RELEASE_NOT_HELD = "release-not-held"  # release by a task that never acquired

_TITLES = {
    DEADLOCK: "possible circular locking dependency detected",
    RECURSION: "possible recursive locking detected",
    IRQ_INVERSION: "inconsistent lock state (irq-safe vs irq-unsafe usage)",
    IRQ_UNSAFE_DEP: "irq-safe lock depends on an irq-unsafe lock",
    SLEEP_IN_ATOMIC: "sleeping function called from invalid context",
    RELEASE_ORDER: "spinlock released out of acquisition order",
    RELEASE_NOT_HELD: "lock released by a task that does not hold it",
}


class LockdepError(InvariantViolation):
    """Raised (in strict mode) when the validator finds a violation."""

    def __init__(self, report: "LockdepReport"):
        super().__init__(f"lockdep-{report.kind}", report.render())
        self.report = report


@dataclass
class LockdepReport:
    """One rendered-able violation."""

    kind: str
    headline: str                  # one-line what-happened
    cycles: int                    # simulated timestamp of detection
    task: str                      # "name/pid" of the tripping task
    #: the acquisition chain of the current task (strings, outermost first)
    this_chain: list = field(default_factory=list)
    #: the previously recorded dependency chain (strings), for cycles
    recorded_chain: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    @property
    def title(self) -> str:
        return _TITLES.get(self.kind, self.kind)

    def render(self) -> str:
        bar = "=" * 60
        lines = [bar, f"WARNING: {self.title}", "-" * 60,
                 f"{self.task}, cycle {self.cycles}:", f"  {self.headline}"]
        if self.this_chain:
            lines.append("")
            lines.append("this task's acquisition chain (outermost first):")
            for i, entry in enumerate(self.this_chain):
                lines.append(f"  #{i}: {entry}")
        if self.recorded_chain:
            lines.append("")
            lines.append("recorded dependency chain (first witnesses):")
            for i, entry in enumerate(self.recorded_chain):
                lines.append(f"  #{i}: {entry}")
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.append(bar)
        return "\n".join(lines)


def render_reports(reports: list) -> str:
    """All reports of a run, concatenated (the CI artifact body)."""
    if not reports:
        return "lockdep: no violations recorded"
    return "\n\n".join(r.render() for r in reports)
