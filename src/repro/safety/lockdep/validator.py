"""The lock dependency validator (Linux lockdep, scaled to the simulator).

The §3.3 monitors already watch the lock/unlock event stream for *local*
invariants (no recursion, balanced release).  This validator checks the
*global* ones the upcoming SMP work depends on:

* **lock ordering** — a persistent dependency edge ``A -> B`` is recorded
  the first time an instance of class B is acquired while an instance of
  class A is held; inserting an edge that closes a cycle is a potential
  AB-BA deadlock, reported with both acquisition chains even though the
  single-CPU simulation never actually deadlocks;
* **IRQ safety** — lock classes are classified irq-safe (acquired inside
  hardirq/softirq handlers) or irq-unsafe (held with interrupts enabled);
  a class that is both, or an irq-safe class that depends on an
  irq-unsafe one, inverts the moment interrupts become asynchronous;
* **sleep-in-atomic** — blocking (wait-queue sleep, semaphore down) while
  holding a spinlock, inside an interrupt handler, or with interrupts
  disabled.

Cost discipline is inherited from the tracer: the validator only ever
*reads* the clock, so the simulated cycle counts are bit-identical with
lockdep on or off (asserted in ``tests/safety/test_lockdep.py``).
Enable with ``Kernel(lockdep=True)`` or run-wide with ``REPRO_LOCKDEP=1``
(strict: the first violation raises :class:`LockdepError`).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.safety.lockdep.classes import (CTX_HARDIRQ, CTX_NAMES, CTX_PROCESS,
                                          CTX_SOFTIRQ, ENABLED_IRQ, KIND_SLEEP,
                                          KIND_SPIN, USED_IN_HARDIRQ,
                                          USED_IN_SOFTIRQ, DepEdge, HeldLock,
                                          LockClass)
from repro.safety.lockdep.report import (DEADLOCK, IRQ_INVERSION,
                                         IRQ_UNSAFE_DEP, RECURSION,
                                         RELEASE_NOT_HELD, RELEASE_ORDER,
                                         SLEEP_IN_ATOMIC, LockdepError,
                                         LockdepReport)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

#: environment knobs (read by Kernel at boot)
ENV_LOCKDEP = "REPRO_LOCKDEP"
ENV_LOCKDEP_OUT = "REPRO_LOCKDEP_OUT"

_USAGE_LABEL = {USED_IN_HARDIRQ: "hardirq", USED_IN_SOFTIRQ: "softirq"}


class LockdepValidator:
    """Kernel-wide lock-order / irq-safety / atomicity validator.

    One per kernel (``kernel.lockdep``), or ``None`` when validation is
    compiled out — every hook site guards with ``if ld is not None``.
    """

    def __init__(self, kernel: "Kernel", *, strict: bool = False):
        self.kernel = kernel
        self.strict = strict
        self.classes: dict[str, LockClass] = {}
        #: per-task held-lock stacks, keyed by pid (0 = boot/idle)
        self.held: dict[int, list[HeldLock]] = {}
        #: forward dependency edges: src class -> {dst class: first witness}
        self.forward: dict[str, dict[str, DepEdge]] = {}
        self.backward: dict[str, set[str]] = {}
        self.reports: list[LockdepReport] = []
        self._reported: set = set()      # dedup keys, one report per cause
        # interrupt state (single CPU: one global view)
        self.hardirq_depth = 0
        self.softirq_depth = 0
        self.irqoff_depth = 0
        # statistics
        self.acquisitions = 0
        self.max_held = 0
        metrics = kernel.metrics
        self._violations = metrics.counter(
            "lockdep.violations", help="lockdep violation reports")
        metrics.gauge("lockdep.classes", fn=lambda: len(self.classes),
                      help="lock classes registered")
        metrics.gauge("lockdep.dependencies", fn=self.edge_count,
                      help="distinct dependency edges recorded")
        metrics.gauge("lockdep.acquisitions", fn=lambda: self.acquisitions,
                      help="acquisitions validated")
        metrics.gauge("lockdep.held_max", fn=lambda: self.max_held,
                      help="deepest held-lock stack observed")

    # ----------------------------------------------------------- wiring

    def _current(self):
        sched = getattr(self.kernel, "sched", None)   # None during boot
        return sched.current if sched is not None else None

    def _task_label(self) -> str:
        task = self._current()
        return f"{task.name}/{task.pid}" if task is not None else "boot/0"

    def _stack(self) -> list[HeldLock]:
        task = self._current()
        pid = task.pid if task is not None else 0
        stack = self.held.get(pid)
        if stack is None:
            stack = self.held[pid] = []
        return stack

    def _ctx(self) -> int:
        if self.hardirq_depth:
            return CTX_HARDIRQ
        if self.softirq_depth:
            return CTX_SOFTIRQ
        return CTX_PROCESS

    def _class(self, name: str, kind: str) -> LockClass:
        cls = self.classes.get(name)
        if cls is None:
            cls = self.classes[name] = LockClass(name, kind)
        return cls

    def edge_count(self) -> int:
        return sum(len(d) for d in self.forward.values())

    def dependency_graph(self) -> dict[str, set[str]]:
        """{src class: set of dst classes} — the recorded order graph."""
        return {src: set(dsts) for src, dsts in self.forward.items()}

    def has_edge(self, src: str, dst: str) -> bool:
        return dst in self.forward.get(src, ())

    def reports_of(self, kind: str) -> list[LockdepReport]:
        return [r for r in self.reports if r.kind == kind]

    # ---------------------------------------------------- context tracking

    def hardirq_enter(self) -> None:
        self.hardirq_depth += 1

    def hardirq_exit(self) -> None:
        self.hardirq_depth -= 1

    def softirq_enter(self) -> None:
        self.softirq_depth += 1

    def softirq_exit(self) -> None:
        self.softirq_depth -= 1

    def irq_disable(self) -> None:
        self.irqoff_depth += 1

    def irq_enable(self) -> None:
        self.irqoff_depth -= 1

    # --------------------------------------------------------- acquisition

    def acquire(self, lock, kind: str, site: str, *, subclass: int = 0) -> None:
        """Validate one acquisition and push it on the holder's stack."""
        name = lock.name if not subclass else f"{lock.name}/{subclass}"
        cls = self._class(name, kind)
        cls.acquisitions += 1
        cls.instances.add(id(lock))
        cls.sites[site] += 1
        self.acquisitions += 1
        ctx = self._ctx()
        stack = self._stack()
        task = self._task_label()

        if kind == KIND_SPIN:
            self._mark_usage(cls, ctx, site, task)
        else:
            # Sleeping locks may block on acquisition, contended or not —
            # the same might_sleep() a real down()/mutex_lock() performs.
            self.might_sleep(site, what=f"acquiring sleeping lock "
                                        f"'{name}'")

        # Recursion: the same class already held by this task (instance
        # recursion is caught by the lock itself; class recursion is the
        # AB-BA-with-yourself case lockdep adds).
        for h in stack:
            if h.cls is cls:
                self._report(LockdepReport(
                    RECURSION,
                    f"trying to acquire ({name}) at {site}, already held",
                    self.kernel.clock.now, task,
                    this_chain=[x.describe() for x in stack] +
                               [f"({name}) at {site}  <- AGAIN"],
                ), key=(RECURSION, name))
                break

        # Dependencies: new class is ordered after every distinct class
        # this task already holds in the same interrupt context (chains
        # are split at context boundaries, as in Linux).
        for h in stack:
            if h.irq_ctx == ctx and h.cls is not cls:
                self._add_edge(h, cls, site, task, stack)

        stack.append(HeldLock(cls, id(lock), site,
                              self.kernel.clock.now, ctx, task))
        if len(stack) > self.max_held:
            self.max_held = len(stack)

    def release(self, lock, kind: str, site: str, *, subclass: int = 0) -> None:
        """Pop an acquisition; spinlocks must release in LIFO order."""
        name = lock.name if not subclass else f"{lock.name}/{subclass}"
        stack = self._stack()
        idx = None
        for i in range(len(stack) - 1, -1, -1):
            if stack[i].obj_id == id(lock) and stack[i].cls.name == name:
                idx = i
                break
        if idx is None:
            # Semaphores are legitimately released by a different task
            # (signalling); remove silently from whichever stack holds it.
            for pid, other in self.held.items():
                for i in range(len(other) - 1, -1, -1):
                    if other[i].obj_id == id(lock) \
                            and other[i].cls.name == name:
                        if kind == KIND_SPIN:
                            self._report(LockdepReport(
                                RELEASE_NOT_HELD,
                                f"releasing ({name}) at {site}, held by "
                                f"{other[i].task} not {self._task_label()}",
                                self.kernel.clock.now, self._task_label(),
                                this_chain=[other[i].describe()],
                            ), key=(RELEASE_NOT_HELD, name))
                        del other[i]
                        return
            return  # up() on a never-downed counting semaphore: fine
        if kind == KIND_SPIN and idx != len(stack) - 1:
            above = [h for h in stack[idx + 1:]]
            self._report(LockdepReport(
                RELEASE_ORDER,
                f"releasing ({name}) at {site} while "
                f"{', '.join('(' + h.cls.name + ')' for h in above)} "
                f"acquired later {'is' if len(above) == 1 else 'are'} "
                f"still held",
                self.kernel.clock.now, self._task_label(),
                this_chain=[h.describe() for h in stack],
            ), key=(RELEASE_ORDER, name,
                    tuple(h.cls.name for h in above)))
        del stack[idx]

    # ----------------------------------------------------------- blocking

    def might_sleep(self, site: str, what: str = "blocking") -> None:
        """The might_sleep() check: called at every point that may block
        (wait-queue sleep, semaphore down) regardless of contention."""
        ctx = self._ctx()
        task = self._task_label()
        stack = self._stack()
        spins = [h for h in stack if h.cls.kind == KIND_SPIN]
        if ctx != CTX_PROCESS:
            self._report(LockdepReport(
                SLEEP_IN_ATOMIC,
                f"{what} at {site} in {CTX_NAMES[ctx]} context",
                self.kernel.clock.now, task,
                this_chain=[h.describe() for h in stack],
            ), key=(SLEEP_IN_ATOMIC, site, CTX_NAMES[ctx]))
        elif self.irqoff_depth:
            self._report(LockdepReport(
                SLEEP_IN_ATOMIC,
                f"{what} at {site} with interrupts disabled",
                self.kernel.clock.now, task,
                this_chain=[h.describe() for h in stack],
            ), key=(SLEEP_IN_ATOMIC, site, "irqs-off"))
        elif spins:
            self._report(LockdepReport(
                SLEEP_IN_ATOMIC,
                f"{what} at {site} while holding "
                f"{', '.join('(' + h.cls.name + ')' for h in spins)}",
                self.kernel.clock.now, task,
                this_chain=[h.describe() for h in stack],
            ), key=(SLEEP_IN_ATOMIC, site,
                    tuple(h.cls.name for h in spins)))

    # --------------------------------------------------------- usage rules

    def _mark_usage(self, cls: LockClass, ctx: int, site: str,
                    task: str) -> None:
        if ctx == CTX_HARDIRQ:
            bit = USED_IN_HARDIRQ
        elif ctx == CTX_SOFTIRQ and self.irqoff_depth == 0:
            # softirq entry with hardirqs disabled (irqsave callers) is
            # indistinguishable from hardirq protection; only count the
            # interruptible softirq usage.
            bit = USED_IN_SOFTIRQ
        elif ctx == CTX_PROCESS and self.irqoff_depth == 0:
            bit = ENABLED_IRQ
        else:
            return
        if cls.usage & bit:
            return
        cls.usage |= bit
        cls.usage_sites[bit] = (site, task, self.kernel.clock.now)
        if cls.irq_safe and cls.irq_unsafe:
            chain = []
            for b, (s, t, cyc) in sorted(cls.usage_sites.items()):
                label = {USED_IN_HARDIRQ: "IN-HARDIRQ",
                         USED_IN_SOFTIRQ: "IN-SOFTIRQ",
                         ENABLED_IRQ: "IRQS-ON"}[b]
                chain.append(f"({cls.name}) {label} at {s}, by {t}, "
                             f"cycle {cyc}")
            self._report(LockdepReport(
                IRQ_INVERSION,
                f"({cls.name}) is acquired both inside interrupt handlers "
                f"and with interrupts enabled",
                self.kernel.clock.now, task, this_chain=chain,
            ), key=(IRQ_INVERSION, cls.name))
        # The class's irq-safety just changed: re-validate recorded edges.
        if bit in (USED_IN_HARDIRQ, USED_IN_SOFTIRQ):
            for unsafe in self._reachable(cls.name):
                dst = self.classes[unsafe]
                if dst.irq_unsafe and dst is not cls:
                    self._report_irq_dep(cls, dst, task)
        elif bit == ENABLED_IRQ:
            for ancestor in self._reaching(cls.name):
                src = self.classes[ancestor]
                if src.irq_safe and src is not cls:
                    self._report_irq_dep(src, cls, task)

    def _report_irq_dep(self, safe: LockClass, unsafe: LockClass,
                        task: str) -> None:
        path = self._find_path(safe.name, unsafe.name)
        chain = [self.forward[a][b].describe()
                 for a, b in zip(path, path[1:])] if path else []
        safe_bit = USED_IN_HARDIRQ if safe.usage & USED_IN_HARDIRQ \
            else USED_IN_SOFTIRQ
        s_site, s_task, s_cyc = safe.usage_sites.get(
            safe_bit, ("?", "?", 0))
        u_site, u_task, u_cyc = unsafe.usage_sites.get(
            ENABLED_IRQ, ("?", "?", 0))
        self._report(LockdepReport(
            IRQ_UNSAFE_DEP,
            f"({safe.name}) [{_USAGE_LABEL[safe_bit]}-safe, taken at "
            f"{s_site}] depends on ({unsafe.name}) [irq-unsafe, held with "
            f"irqs on at {u_site}]",
            self.kernel.clock.now, task,
            this_chain=[f"({safe.name}) used in {_USAGE_LABEL[safe_bit]} "
                        f"at {s_site}, by {s_task}, cycle {s_cyc}",
                        f"({unsafe.name}) held with irqs enabled at "
                        f"{u_site}, by {u_task}, cycle {u_cyc}"],
            recorded_chain=chain,
        ), key=(IRQ_UNSAFE_DEP, safe.name, unsafe.name))

    # ------------------------------------------------------- order rules

    def _add_edge(self, held: HeldLock, cls: LockClass, site: str,
                  task: str, stack: list[HeldLock]) -> None:
        src, dst = held.cls, cls
        if dst.name in self.forward.get(src.name, ()):
            return
        # Would this edge close a cycle?  Check before inserting so the
        # report can show the already-recorded opposite-direction path.
        path = self._find_path(dst.name, src.name)
        if path is not None:
            recorded = [self.forward[a][b].describe()
                        for a, b in zip(path, path[1:])]
            self._report(LockdepReport(
                DEADLOCK,
                f"trying to acquire ({dst.name}) at {site} while holding "
                f"({src.name}), but ({src.name}) is already reachable "
                f"from ({dst.name})",
                self.kernel.clock.now, task,
                this_chain=[h.describe() for h in stack] +
                           [f"({dst.name}) at {site}  <- NEW"],
                recorded_chain=recorded,
                notes=[f"cycle: {' -> '.join(path)} -> {dst.name}"],
            ), key=(DEADLOCK, frozenset((src.name, dst.name))))
        edge = DepEdge(src.name, dst.name, held.site, site, task,
                       self.kernel.clock.now)
        self.forward.setdefault(src.name, {})[dst.name] = edge
        self.backward.setdefault(dst.name, set()).add(src.name)
        if src.kind == KIND_SPIN and dst.kind == KIND_SPIN \
                and src.irq_safe and dst.irq_unsafe:
            self._report_irq_dep(src, dst, task)

    def _find_path(self, src: str, dst: str) -> list[str] | None:
        """BFS over forward edges; returns [src, ..., dst] or None."""
        if src == dst:
            return [src]
        parent: dict[str, str] = {src: src}
        frontier = [src]
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for child in self.forward.get(node, ()):
                    if child in parent:
                        continue
                    parent[child] = node
                    if child == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(parent[path[-1]])
                        path.reverse()
                        return path
                    nxt.append(child)
            frontier = nxt
        return None

    def _reachable(self, src: str) -> list[str]:
        """All classes reachable from ``src`` via forward edges."""
        seen: set[str] = set()
        frontier = [src]
        while frontier:
            node = frontier.pop()
            for child in self.forward.get(node, ()):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return list(seen)

    def _reaching(self, dst: str) -> list[str]:
        """All classes from which ``dst`` is reachable (backward edges)."""
        seen: set[str] = set()
        frontier = [dst]
        while frontier:
            node = frontier.pop()
            for parent in self.backward.get(node, ()):
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        return list(seen)

    # ----------------------------------------------------------- reporting

    def _report(self, report: LockdepReport, key) -> None:
        if key in self._reported:
            return
        self._reported.add(key)
        self.reports.append(report)
        self._violations.inc()
        tracer = self.kernel.trace
        if tracer.enabled:
            tracer.instant(f"lockdep:{report.kind}", "lockdep",
                           headline=report.headline, task=report.task)
        out_dir = os.environ.get(ENV_LOCKDEP_OUT)
        if out_dir:
            try:
                os.makedirs(out_dir, exist_ok=True)
                path = os.path.join(
                    out_dir, f"lockdep-{len(self.reports):04d}-"
                             f"{report.kind}.txt")
                with open(path, "w") as fh:
                    fh.write(report.render() + "\n")
            except OSError:  # pragma: no cover - artifact dir unwritable
                pass
        if self.strict:
            raise LockdepError(report)

    def render(self) -> str:
        """Summary table + all violation reports (repro.analysis uses it)."""
        lines = ["== lockdep =="]
        lines.append(f"  classes: {len(self.classes)}, dependencies: "
                     f"{self.edge_count()}, acquisitions: "
                     f"{self.acquisitions}, max held: {self.max_held}, "
                     f"violations: {len(self.reports)}")
        for name in sorted(self.classes):
            cls = self.classes[name]
            lines.append(
                f"  {name:<24} {cls.kind:<5} {cls.usage_str():<24} "
                f"{cls.acquisitions:>8} hits, "
                f"{len(cls.instances)} instance(s)")
        for report in self.reports:
            lines.append("")
            lines.append(report.render())
        return "\n".join(lines)
