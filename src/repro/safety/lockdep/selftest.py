"""Lockdep self-tests: known-bad locking patterns the validator must catch.

Linux ships ``lib/locking-selftest.c`` — a battery of deliberately wrong
lock sequences run at boot to prove the validator itself works.  This is
the simulator's equivalent: each case boots a fresh kernel with a
*non-strict* validator (record, don't raise), executes one bad pattern
with throwaway locks, and checks that exactly the expected violation kind
was reported — plus "good" cases that must stay silent.

``run_selftests()`` returns the results; ``tests/safety/test_lockdep.py``
asserts every case passes, and the CI ``lockdep`` job runs them too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.safety.lockdep.report import (DEADLOCK, IRQ_INVERSION,
                                         IRQ_UNSAFE_DEP, RECURSION,
                                         RELEASE_ORDER, SLEEP_IN_ATOMIC)


@dataclass
class SelftestResult:
    name: str
    expected: str | None          # violation kind, or None for good cases
    ok: bool
    reports: list = field(default_factory=list)

    def describe(self) -> str:
        want = self.expected or "no violation"
        got = ", ".join(r.kind for r in self.reports) or "no violation"
        mark = "ok" if self.ok else "FAILED"
        return f"[{mark:>6}] {self.name}: expected {want}, got {got}"


def _fresh_kernel():
    from repro.kernel.core import Kernel
    from repro.kernel.fs.ramfs import RamfsSuperBlock
    kernel = Kernel(lockdep=True)
    kernel.mount_root(RamfsSuperBlock(kernel))
    kernel.spawn("selftest")
    return kernel


def _case(name: str, expected: str | None, body) -> SelftestResult:
    kernel = _fresh_kernel()
    body(kernel)
    reports = kernel.lockdep.reports
    if expected is None:
        ok = not reports
    else:
        ok = any(r.kind == expected for r in reports)
        if expected == DEADLOCK:
            # The acceptance bar: a cycle report must carry BOTH chains —
            # this task's acquisitions and the recorded first witnesses.
            ok = ok and all(r.this_chain and r.recorded_chain
                            for r in reports if r.kind == DEADLOCK)
    return SelftestResult(name, expected, ok, list(reports))


# --------------------------------------------------------------- bad cases

def _ab_ba(kernel):
    from repro.kernel.locks import SpinLock
    a = SpinLock(kernel, "selftest_A")
    b = SpinLock(kernel, "selftest_B")
    with a.guard("st:ab1"):
        with b.guard("st:ab2"):
            pass
    with b.guard("st:ba1"):
        with a.guard("st:ba2"):
            pass


def _abc_cycle(kernel):
    """Three-lock cycle: A->B, B->C, then C->A closes it."""
    from repro.kernel.locks import SpinLock
    a = SpinLock(kernel, "selftest_A")
    b = SpinLock(kernel, "selftest_B")
    c = SpinLock(kernel, "selftest_C")
    with a.guard("st:ab"):
        with b.guard("st:ab"):
            pass
    with b.guard("st:bc"):
        with c.guard("st:bc"):
            pass
    with c.guard("st:ca"):
        with a.guard("st:ca"):
            pass


def _class_recursion(kernel):
    """Two *instances* of one class nested — instance recursion is caught
    by the spinlock itself, class recursion only by lockdep."""
    from repro.kernel.locks import SpinLock
    a1 = SpinLock(kernel, "selftest_R")
    a2 = SpinLock(kernel, "selftest_R")
    with a1.guard("st:rec1"):
        with a2.guard("st:rec2"):
            pass


def _sem_ab_ba(kernel):
    """Order violations apply to sleeping locks too."""
    from repro.kernel.locks import Semaphore
    a = Semaphore(kernel, "selftest_sem_A")
    b = Semaphore(kernel, "selftest_sem_B")
    a.down("st:sab1"); b.down("st:sab2")
    b.up("st:sab2"); a.up("st:sab1")
    b.down("st:sba1"); a.down("st:sba2")
    a.up("st:sba2"); b.up("st:sba1")


def _irq_inversion(kernel):
    """One class taken both inside a hardirq handler and with irqs on."""
    from repro.kernel.locks import SpinLock
    lk = SpinLock(kernel, "selftest_inv")
    ld = kernel.lockdep
    ld.hardirq_enter()
    with kernel.irq.irqs_off("st:handler"):
        with lk.guard("st:in-irq"):
            pass
    ld.hardirq_exit()
    with lk.guard("st:irqs-on"):          # no irqs_off: inversion
        pass


def _irq_unsafe_dep(kernel):
    """An irq-safe lock ordered before an irq-unsafe one."""
    from repro.kernel.locks import SpinLock
    safe = SpinLock(kernel, "selftest_safe")
    unsafe = SpinLock(kernel, "selftest_unsafe")
    ld = kernel.lockdep
    with unsafe.guard("st:unsafe-on"):    # irqs on: class is irq-unsafe
        pass
    ld.hardirq_enter()
    with kernel.irq.irqs_off("st:handler"):
        with safe.guard("st:safe-in-irq"):   # class is irq-safe
            pass
    ld.hardirq_exit()
    with kernel.irq.irqs_off("st:dep"):
        with safe.guard("st:dep"):
            with unsafe.guard("st:dep"):     # safe -> unsafe dependency
                pass


def _sleep_under_spinlock(kernel):
    from repro.kernel.locks import SpinLock
    from repro.kernel.sched import WaitQueue
    lk = SpinLock(kernel, "selftest_atomic")
    wq = WaitQueue(kernel, "selftest_wq")
    with lk.guard("st:atomic"):
        wq.sleep("st:sleep")


def _sem_down_in_irq_handler(kernel):
    from repro.kernel.locks import Semaphore
    sem = Semaphore(kernel, "selftest_sem")
    ld = kernel.lockdep
    ld.softirq_enter()
    sem.down("st:down-in-softirq")
    ld.softirq_exit()
    sem.up("st:up")


def _sleep_with_irqs_off(kernel):
    from repro.kernel.sched import WaitQueue
    wq = WaitQueue(kernel, "selftest_wq")
    with kernel.irq.irqs_off("st:cli"):
        wq.sleep("st:sleep")


def _release_out_of_order(kernel):
    from repro.kernel.locks import SpinLock
    a = SpinLock(kernel, "selftest_A")
    b = SpinLock(kernel, "selftest_B")
    a.lock("st:oo")
    b.lock("st:oo")
    a.unlock("st:oo")                     # A released while B (newer) held
    b.unlock("st:oo")


# -------------------------------------------------------------- good cases

def _consistent_order(kernel):
    from repro.kernel.locks import SpinLock
    a = SpinLock(kernel, "selftest_A")
    b = SpinLock(kernel, "selftest_B")
    c = SpinLock(kernel, "selftest_C")
    for _ in range(3):
        with a.guard("st:good"):
            with b.guard("st:good"):
                with c.guard("st:good"):
                    pass
        with b.guard("st:good"):          # skipping levels is fine
            with c.guard("st:good"):
                pass


def _irqsave_discipline(kernel):
    """A lock shared with irq context, but always taken irqsave: clean."""
    from repro.kernel.locks import SpinLock
    lk = SpinLock(kernel, "selftest_irqsave")
    ld = kernel.lockdep
    ld.hardirq_enter()
    with kernel.irq.irqs_off("st:handler"):
        with lk.guard("st:in-irq"):
            pass
    ld.hardirq_exit()
    with kernel.irq.irqs_off("st:process"):
        with lk.guard("st:process"):      # irqs off: no inversion
            pass


def _subclass_nesting(kernel):
    """Same-class nesting blessed with subclass annotation (i_sem/1)."""
    from repro.kernel.locks import Semaphore
    parent = Semaphore(kernel, "selftest_nest")
    child = Semaphore(kernel, "selftest_nest")
    parent.down("st:parent")
    child.down("st:child", subclass=1)
    child.up("st:child", subclass=1)
    parent.up("st:parent")


def _sleeping_then_spin(kernel):
    """Spinlock under a semaphore is fine; only the reverse is atomic."""
    from repro.kernel.locks import Semaphore, SpinLock
    sem = Semaphore(kernel, "selftest_sem")
    lk = SpinLock(kernel, "selftest_spin")
    sem.down("st:outer")
    with lk.guard("st:inner"):
        pass
    sem.up("st:outer")


CASES = [
    ("AB-BA deadlock", DEADLOCK, _ab_ba),
    ("A->B->C->A cycle", DEADLOCK, _abc_cycle),
    ("same-class recursion", RECURSION, _class_recursion),
    ("semaphore AB-BA", DEADLOCK, _sem_ab_ba),
    ("irq inversion", IRQ_INVERSION, _irq_inversion),
    ("irq-safe -> irq-unsafe dependency", IRQ_UNSAFE_DEP, _irq_unsafe_dep),
    ("sleep under spinlock", SLEEP_IN_ATOMIC, _sleep_under_spinlock),
    ("semaphore down in softirq", SLEEP_IN_ATOMIC, _sem_down_in_irq_handler),
    ("sleep with irqs off", SLEEP_IN_ATOMIC, _sleep_with_irqs_off),
    ("release out of order", RELEASE_ORDER, _release_out_of_order),
    ("consistent ordering (good)", None, _consistent_order),
    ("irqsave discipline (good)", None, _irqsave_discipline),
    ("subclass nesting (good)", None, _subclass_nesting),
    ("spin under sleeping lock (good)", None, _sleeping_then_spin),
]


def run_selftests() -> list[SelftestResult]:
    """Run every case on a fresh kernel; returns one result per case."""
    return [_case(name, expected, body) for name, expected, body in CASES]


def main() -> int:  # pragma: no cover - exercised via CI job
    results = run_selftests()
    for res in results:
        print(res.describe())
    failed = [r for r in results if not r.ok]
    print(f"lockdep selftest: {len(results) - len(failed)}/{len(results)} ok")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
