"""Kefence: detect kernel buffer overflows at the hardware level (§3.2).

Mechanism, as in the paper:

* allocations go through ``vmalloc`` so each buffer gets whole pages and
  can be aligned flush against a page boundary;
* a *guardian PTE* with read and write permissions disabled sits adjacent
  to the buffer; any overflow touches it and the hardware page-faults;
* the page-fault handler is modified: a fault on a guardian PTE is
  reported through syslog with the context (faulting address, the buffer,
  its allocation site) and then Kefence applies policy —

  - :attr:`KefenceMode.CRASH` — "when security is critical, Kefence can be
    configured to crash the module upon a memory overflow, thereby
    preventing further malicious operations";
  - :attr:`KefenceMode.CONTINUE_RO` / :attr:`CONTINUE_RW` — for debugging,
    "auto-mapping a read-only or read-write page to the guardian PTE
    whenever there is an overflow", so execution proceeds while every
    overflow stays fully diagnosed in the log.

The kmalloc→vmalloc conversion flag of the paper is realized by handing a
module (e.g. Wrapfs) the Kefence instance as its allocator facade instead
of the kernel's kmalloc facade — same module code, different allocator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import BufferOverflow, PageFault
from repro.kernel.memory.layout import vpn_of
from repro.kernel.memory.paging import PERM_R, PERM_W, PTE
from repro.kernel.syslog import KERN_ERR

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel
    from repro.kernel.memory.vmalloc import VmallocArea


class KefenceMode(enum.Enum):
    CRASH = "crash"            # terminate the module on overflow
    CONTINUE_RO = "continue-ro"  # allow reads past the end, log everything
    CONTINUE_RW = "continue-rw"  # allow reads and writes, log everything


@dataclass(frozen=True)
class OverflowReport:
    """One detected overflow, as logged."""

    vaddr: int
    access: str
    buf_base: int
    buf_size: int
    site: str
    cycles: int
    kind: str  # 'overflow' or 'underflow'


@dataclass
class KefenceStats:
    """The figures the paper reports for the Wrapfs evaluation."""

    total_allocs: int
    total_frees: int
    outstanding_pages: int
    peak_outstanding_pages: int
    avg_alloc_size: float
    overflows_detected: int


class Kefence:
    """One Kefence instance bound to a kernel.

    Also serves as the *allocator facade* modules are compiled against
    (``malloc(size, site)`` / ``free(addr)``), replacing kmalloc.
    """

    def __init__(self, kernel: "Kernel", mode: KefenceMode = KefenceMode.CRASH,
                 *, align: str = "end"):
        self.kernel = kernel
        self.mode = mode
        self.align = align
        self.reports: list[OverflowReport] = []
        #: vpn -> (substitute frame, owning area base) for continue modes
        self._automapped: dict[int, tuple[int, int]] = {}
        self._installed = False
        self.install()

    # ------------------------------------------------------------ lifecycle

    def install(self) -> None:
        if not self._installed:
            self.kernel.mmu.add_fault_handler(self._on_fault)
            self._installed = True

    def uninstall(self) -> None:
        if self._installed:
            self.kernel.mmu.remove_fault_handler(self._on_fault)
            self._installed = False

    # ---------------------------------------------------- allocator facade

    def malloc(self, size: int, site: str = "?") -> int:
        """vmalloc with guardian PTEs (the converted kmalloc)."""
        return self.kernel.vmalloc.vmalloc(size, guard=True,
                                           align=self.align, site=site)

    def free(self, addr: int) -> None:
        # Release any pages auto-mapped over this buffer's guardian PTEs.
        for vpn, (frame, base) in list(self._automapped.items()):
            if base == addr:
                self.kernel.kernel_pt.unmap(vpn)
                self.kernel.physmem.free_frame(frame)
                del self._automapped[vpn]
        self.kernel.vmalloc.vfree(addr)

    # -------------------------------------------------------- fault handler

    def _on_fault(self, fault: PageFault) -> bool:
        """The modified page-fault handler: claims guardian-PTE faults."""
        if not fault.guard:
            # A write to a page we earlier auto-mapped read-only is still an
            # overflow — report it as such rather than as a stray fault.
            mapping = self._automapped.get(vpn_of(fault.vaddr))
            if mapping is not None and fault.access == "w":
                _, base = mapping
                area = self.kernel.vmalloc.areas.get(base)
                size = area.size if area is not None else 0
                site = area.site if area is not None else "?"
                raise BufferOverflow(fault.vaddr, base, size, "w", site)
            return False  # not ours; let the next handler look
        area = self.kernel.vmalloc.area_for_guard_vpn(vpn_of(fault.vaddr))
        if area is None:
            return False  # a guard page some other subsystem planted
        kind = "underflow" if fault.vaddr < area.base else "overflow"
        report = OverflowReport(
            vaddr=fault.vaddr, access=fault.access, buf_base=area.base,
            buf_size=area.size, site=area.site,
            cycles=self.kernel.clock.now, kind=kind,
        )
        self.reports.append(report)
        self.kernel.printk(KERN_ERR, (
            f"kefence: buffer {kind}: {fault.access}-access at "
            f"{fault.vaddr:#x}, buffer [{area.base:#x}, "
            f"{area.base + area.size:#x}) of {area.size} bytes "
            f"allocated at {area.site}"))
        if self.mode is KefenceMode.CRASH:
            raise BufferOverflow(fault.vaddr, area.base, area.size,
                                 fault.access, area.site)
        if self.mode is KefenceMode.CONTINUE_RO and fault.access == "w":
            # Reads were permitted, but this is a write: still fatal.
            raise BufferOverflow(fault.vaddr, area.base, area.size,
                                 fault.access, area.site)
        self._auto_map(fault, area)
        return True  # resolved: the MMU retries the access

    def _auto_map(self, fault: PageFault, area: "VmallocArea") -> None:
        """Map a real page over the guardian PTE so execution continues."""
        perms = PERM_R if self.mode is KefenceMode.CONTINUE_RO \
            else PERM_R | PERM_W
        frame = self.kernel.physmem.alloc_frame()
        vpn = vpn_of(fault.vaddr)
        self.kernel.kernel_pt.map(vpn, PTE(frame, perms=perms, guard=False))
        self.kernel.mmu.invalidate_tlb_page(fault.vaddr)
        # Track the substitute frame so free() releases it with the buffer.
        self._automapped[vpn] = (frame, area.base)
        guard_vpns = list(area.guard_vpns)
        if vpn in guard_vpns:
            guard_vpns.remove(vpn)
            area.guard_vpns = tuple(guard_vpns)
            self.kernel.vmalloc.guard_index.pop(vpn, None)

    # --------------------------------------------------------------- stats

    def stats(self) -> KefenceStats:
        vm = self.kernel.vmalloc
        return KefenceStats(
            total_allocs=vm.total_allocs,
            total_frees=vm.total_frees,
            outstanding_pages=vm.outstanding_pages,
            peak_outstanding_pages=vm.peak_outstanding_pages,
            avg_alloc_size=vm.avg_alloc_size,
            overflows_detected=len(self.reports),
        )
