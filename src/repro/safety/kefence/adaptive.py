"""Adaptive Kefence: dynamic protection decisions (§3.5, implemented).

"Because converting all kmalloc calls to vmalloc calls consumes more
memory, we are investigating methods to dynamically decide which memory
should be protected at runtime."

:class:`AdaptiveKefence` is such a method, in the spirit of the paper's
confidence heuristics (§3.5's deinstrumentation, §2.4's trust): decisions
are per *allocation site*.

* every site starts fully protected (guarded vmalloc);
* once a site has completed ``trust_threshold`` allocation/free cycles
  without an overflow, it is sampled: only one in ``sample_rate``
  allocations keeps the guard, the rest drop to plain kmalloc — bounding
  the page-granularity memory cost while retaining statistical coverage;
* an overflow at a site pins it protected forever;
* a hard ``page_budget`` caps outstanding guarded pages: when exceeded,
  new allocations from trusted sites fall back to kmalloc regardless.

The facade interface matches :class:`~repro.safety.kefence.Kefence`, so a
module compiles against either unchanged.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

from repro.safety.kefence.kefence import Kefence, KefenceMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


class AdaptiveKefence:
    """Per-site adaptive guard-page protection."""

    def __init__(self, kernel: "Kernel",
                 mode: KefenceMode = KefenceMode.CRASH, *,
                 trust_threshold: int = 200,
                 sample_rate: int = 16,
                 page_budget: int | None = None):
        if trust_threshold <= 0 or sample_rate <= 0:
            raise ValueError("trust_threshold and sample_rate must be positive")
        self.kernel = kernel
        self.kefence = Kefence(kernel, mode)
        self.trust_threshold = trust_threshold
        self.sample_rate = sample_rate
        self.page_budget = page_budget
        self.clean_cycles: Counter = Counter()
        self.pinned_sites: set[str] = set()
        self._sample_counter: Counter = Counter()
        #: guarded addr -> site (also distinguishes guarded from plain)
        self._guarded: dict[int, str] = {}
        self.guarded_allocs = 0
        self.plain_allocs = 0

    # ------------------------------------------------------------- decisions

    def _should_guard(self, site: str) -> bool:
        if site in self.pinned_sites:
            return True
        if self.page_budget is not None and \
                self.kernel.vmalloc.outstanding_pages >= self.page_budget:
            return False
        if self.clean_cycles[site] < self.trust_threshold:
            return True
        # trusted site: keep statistical coverage via sampling
        self._sample_counter[site] += 1
        return self._sample_counter[site] % self.sample_rate == 0

    # ------------------------------------------------------------ allocator

    def malloc(self, size: int, site: str = "?") -> int:
        if self._should_guard(site):
            addr = self.kefence.malloc(size, site=site)
            self._guarded[addr] = site
            self.guarded_allocs += 1
            return addr
        self.plain_allocs += 1
        return self.kernel.kmalloc.kmalloc(size)

    def free(self, addr: int) -> None:
        site = self._guarded.pop(addr, None)
        if site is None:
            self.kernel.kmalloc.kfree(addr)
            return
        overflowed = any(r.buf_base == addr for r in self.kefence.reports)
        if overflowed:
            # never trust this site again
            self.pinned_sites.add(site)
            self.clean_cycles[site] = 0
        else:
            self.clean_cycles[site] += 1
        self.kefence.free(addr)

    # ----------------------------------------------------------------- stats

    @property
    def reports(self):
        return self.kefence.reports

    def protection_rate(self) -> float:
        total = self.guarded_allocs + self.plain_allocs
        return self.guarded_allocs / total if total else 1.0

    def site_status(self, site: str) -> str:
        if site in self.pinned_sites:
            return "pinned-protected"
        if self.clean_cycles[site] >= self.trust_threshold:
            return f"sampled (1/{self.sample_rate})"
        return (f"protected ({self.clean_cycles[site]}"
                f"/{self.trust_threshold} clean)")

    def uninstall(self) -> None:
        self.kefence.uninstall()
