"""Kefence: guard-page buffer-overflow detection (§3.2)."""

from repro.safety.kefence.kefence import (Kefence, KefenceMode,
                                          OverflowReport, KefenceStats)
from repro.safety.kefence.adaptive import AdaptiveKefence

__all__ = ["Kefence", "KefenceMode", "OverflowReport", "KefenceStats",
           "AdaptiveKefence"]
