"""libkernevents: the user-space event consumer library.

"User-space applications can link with libkernevents to copy log entries
in bulk from the kernel and then read them one by one."

:class:`UserSpaceLogger` models the paper's librefcounts-based logger:
it *polls* the character device continuously (the prototype behaviour the
paper blames for the user-space overhead — "librefcounts polls the
character device continuously rather than using blocking reads"), and can
optionally append what it reads to a log file on a (separate) disk, which
is the configuration that produced the 103% overhead versus 61% without
the disk writes.

The simulation is single-CPU, so the logger does not run as a real
concurrent process; the benchmark harness calls :meth:`pump` at workload
checkpoints, and the logger performs however many poll iterations its
polling rate dictates for the elapsed interval — charging user time,
syscalls, and disk exactly as the real logger would have.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.clock import Mode
from repro.safety.monitor.chardev import EventCharDevice
from repro.safety.monitor.events import EVENT_RECORD_SIZE, Event, pack_event

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


class UserSpaceLogger:
    """A polling user-space logger fed from the character device."""

    def __init__(self, kernel: "Kernel", chardev: EventCharDevice, *,
                 log_path: str | None = None,
                 poll_interval_cycles: int = 6_000,
                 max_polls_per_pump: int = 2_000,
                 own_task: bool = True,
                 read_bufsize: int = 32768):
        self.kernel = kernel
        self.chardev = chardev
        self.log_path = log_path
        #: the logger issues one non-blocking read roughly every this many
        #: cycles of wall time — back-to-back polling, as the paper's
        #: prototype did ("librefcounts polls the character device
        #: continuously rather than using blocking reads")
        self.poll_interval_cycles = poll_interval_cycles
        self.max_polls_per_pump = max_polls_per_pump
        self.read_bufsize = read_bufsize
        self.events_logged = 0
        self.polls = 0
        self.empty_polls = 0
        self._last_pump = kernel.clock.now
        #: the logger is its own process; pumping context-switches to it
        self.task = None
        if own_task:
            from repro.kernel.process import TaskState
            self.task = kernel.spawn("kernevents-logger")
            self.task.state = TaskState.BLOCKED
        self._log_fd: int | None = None
        if log_path is not None:
            from repro.kernel.vfs.file import O_APPEND, O_CREAT, O_WRONLY
            self._log_fd = self._as_logger(
                lambda: kernel.sys.open(log_path,
                                        O_CREAT | O_WRONLY | O_APPEND))

    def _as_logger(self, thunk):
        """Run ``thunk`` on the logger's task (with context switches).

        Outside its polling bursts the logger parks BLOCKED so the
        scheduler does not charge the workload for timesharing against it
        (its CPU theft is charged explicitly, per poll)."""
        if self.task is None:
            return thunk()
        from repro.kernel.process import TaskState
        previous = self.kernel.sched.current
        self.kernel.sched.switch_to(self.task)
        try:
            return thunk()
        finally:
            if previous is not None:
                self.kernel.sched.switch_to(previous)
            self.task.state = TaskState.BLOCKED

    def close(self) -> None:
        if self._log_fd is not None:
            self._as_logger(lambda: self.kernel.sys.close(self._log_fd))
            self._log_fd = None

    # ----------------------------------------------------------------- pump

    def pump(self) -> list[Event]:
        """Run the poll iterations owed for the elapsed virtual interval.

        The simulation is single-CPU, so the continuously-polling logger
        cannot literally run concurrently; instead, at each workload
        checkpoint the logger "catches up": it performs one poll per
        ``poll_interval_cycles`` of wall time that passed since its last
        chance to run.  Its polling itself advances the clock, which is
        exactly the CPU theft the paper measured.
        """
        now = self.kernel.clock.now
        elapsed = now - self._last_pump
        iterations = min(self.max_polls_per_pump,
                         max(1, elapsed // self.poll_interval_cycles))
        drained: list[Event] = []

        def _loop():
            for _ in range(iterations):
                drained.extend(self._poll_once())

        self._as_logger(_loop)
        self._last_pump = self.kernel.clock.now
        return drained

    def drain(self) -> list[Event]:
        """Poll until the ring is empty (end-of-run flush)."""
        drained: list[Event] = []

        def _loop():
            while True:
                batch = self._poll_once()
                if not batch:
                    break
                drained.extend(batch)

        self._as_logger(_loop)
        self._last_pump = self.kernel.clock.now
        return drained

    def _poll_once(self) -> list[Event]:
        self.polls += 1
        events = self.chardev.read(self.read_bufsize)
        if not events:
            self.empty_polls += 1
            # A fruitless poll loop iteration still burns user CPU.
            self.kernel.clock.charge(self.kernel.costs.monitor_poll_empty,
                                     Mode.USER)
            return []
        # User-side per-record processing (read "one by one").
        self.kernel.clock.charge(
            int(len(events) * EVENT_RECORD_SIZE
                * self.kernel.costs.user_touch_per_byte), Mode.USER)
        self.events_logged += len(events)
        if self._log_fd is not None:
            payload = b"".join(pack_event(e, self.chardev.dispatcher.sites)
                               for e in events)
            self.kernel.sys.write(self._log_fd, payload)
        return events
