"""The character-device interface between the ring buffer and user space.

Reads behave like a non-blocking device: each read is a syscall (trap paid)
that drains up to a buffer's worth of packed event records, copied out at
uaccess rates.  An empty read returns no records — which is what the
paper's polling librefcounts logger spins on, burning the user time that
shows up as its 61–103% overhead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.safety.monitor.dispatcher import EventDispatcher
from repro.safety.monitor.events import EVENT_RECORD_SIZE, Event, pack_event

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel


class EventCharDevice:
    """``/dev/kernevents``: bulk reads of packed event records."""

    def __init__(self, kernel: "Kernel", dispatcher: EventDispatcher):
        self.kernel = kernel
        self.dispatcher = dispatcher
        self.reads = 0
        self.records_delivered = 0

    def read(self, bufsize: int = 32768) -> list[Event]:
        """One read(2) on the device; returns the drained events."""
        if bufsize < EVENT_RECORD_SIZE:
            return []
        max_records = bufsize // EVENT_RECORD_SIZE
        sys = self.kernel.sys
        return sys._dispatch("read", lambda: self._read_kernel(max_records),
                             args=("kernevents", bufsize))

    def _read_kernel(self, max_records: int) -> list[Event]:
        costs = self.kernel.costs
        events = self.dispatcher.ring.pop_batch(max_records)
        self.reads += 1
        self.records_delivered += len(events)
        nbytes = 0
        for event in events:
            self.kernel.clock.charge(costs.monitor_chardev_record)
            nbytes += len(pack_event(event, self.dispatcher.sites))
        if nbytes:
            self.kernel.sys.ucopy.charge_to_user(nbytes)
        return events
