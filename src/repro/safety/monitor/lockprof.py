"""Lock profiling: in-depth analysis of lock behaviour (§3.3/§3.5).

"We intend to develop on-line, in-kernel monitors for reference counters,
spinlocks, and semaphores, **as well as tools that allow for more
in-depth analysis of performance bottlenecks related to these objects**."

:class:`LockProfiler` is that tool: a dispatcher callback that computes
per-lock hold-time distributions, acquisition rates, and the hottest
acquisition sites — everything needed to decide whether a lock (like
§3.3's ``dcache_lock``) is a bottleneck worth splitting.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.kernel.locks import EV_LOCK, EV_UNLOCK
from repro.safety.monitor.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace import MetricsRegistry


@dataclass
class LockStats:
    """Profile of one lock object."""

    acquisitions: int = 0
    total_hold_cycles: int = 0
    max_hold_cycles: int = 0
    min_hold_cycles: int | None = None
    #: acquisitions that spun (injected or genuine cross-CPU contention),
    #: vs. the uncontended fast path counted only in ``acquisitions``.
    contended: int = 0
    contention_cycles: int = 0
    sites: Counter = field(default_factory=Counter)
    first_cycles: int | None = None
    last_cycles: int = 0

    @property
    def mean_hold_cycles(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.total_hold_cycles / self.acquisitions

    def hit_rate(self, hz: float) -> float:
        """Acquisitions per second over the observed window."""
        if self.first_cycles is None:
            return 0.0
        span = self.last_cycles - self.first_cycles
        if span <= 0:
            return 0.0
        return self.acquisitions / (span / hz)

    def top_sites(self, n: int = 5) -> list[tuple[str, int]]:
        return self.sites.most_common(n)


class LockProfiler:
    """Per-lock hold-time and hit-rate profiling (a dispatcher callback).

    Pass the kernel's :class:`~repro.trace.metrics.MetricsRegistry` to
    publish aggregate counters (``lock.events``, ``lock.acquisitions``)
    and the cross-lock hold-time histogram (``lock.hold_cycles``)
    alongside the per-lock stats kept here.
    """

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        if metrics is None:
            from repro.trace.metrics import MetricsRegistry
            metrics = MetricsRegistry()
        self.stats: dict[int, LockStats] = defaultdict(LockStats)
        self._held_since: dict[int, tuple[int, str]] = {}
        #: last seen cumulative contention_cycles per lock (the EV_LOCK
        #: event's ``value`` payload); a positive delta between two
        #: acquisitions means this acquisition spun.
        self._last_value: dict[int, int] = {}
        self._events_seen = metrics.counter(
            "lock.events", help="lock/unlock monitor events profiled")
        self._acquisitions = metrics.counter(
            "lock.acquisitions", help="lock acquisitions profiled")
        self._contended = metrics.counter(
            "lock.contended", help="acquisitions that spun (slow path)")
        self._contention_cycles = metrics.counter(
            "lock.contention_cycles", help="cycles burned spinning on locks")
        self._hold_hist = metrics.histogram(
            "lock.hold_cycles", help="hold-time distribution, all locks")

    @property
    def events_seen(self) -> int:
        return self._events_seen.value

    def __call__(self, event: Event) -> None:
        if event.event_type not in (EV_LOCK, EV_UNLOCK):
            return
        self._events_seen.inc()
        stats = self.stats[event.obj_id]
        if stats.first_cycles is None:
            stats.first_cycles = event.cycles
        stats.last_cycles = event.cycles
        if event.event_type == EV_LOCK:
            self._held_since[event.obj_id] = (event.cycles, event.site)
            stats.acquisitions += 1
            self._acquisitions.inc()
            stats.sites[event.site] += 1
            # The lock's event payload is its cumulative contended cycles:
            # a positive delta since the last acquisition means this one
            # took the spinning slow path rather than the fast path.
            spun = event.value - self._last_value.get(event.obj_id, 0)
            if spun > 0:
                self._last_value[event.obj_id] = event.value
                stats.contended += 1
                stats.contention_cycles += spun
                self._contended.inc()
                self._contention_cycles.inc(spun)
        else:
            entry = self._held_since.pop(event.obj_id, None)
            if entry is None:
                return  # unmatched unlock: the invariant monitor's business
            since, _ = entry
            hold = event.cycles - since
            stats.total_hold_cycles += hold
            self._hold_hist.observe(hold)
            stats.max_hold_cycles = max(stats.max_hold_cycles, hold)
            stats.min_hold_cycles = hold if stats.min_hold_cycles is None \
                else min(stats.min_hold_cycles, hold)

    # -------------------------------------------------------------- queries

    def hottest_locks(self, n: int = 5) -> list[tuple[int, LockStats]]:
        """Locks ranked by total cycles held (the bottleneck ordering)."""
        ranked = sorted(self.stats.items(),
                        key=lambda kv: -kv[1].total_hold_cycles)
        return ranked[:n]

    def report(self, hz: float = 1.7e9, n: int = 5) -> str:
        lines = ["lock profile (hottest first):"]
        for obj_id, s in self.hottest_locks(n):
            lines.append(
                f"  lock {obj_id:#x}: {s.acquisitions} acquisitions "
                f"({s.hit_rate(hz):,.0f}/s), hold mean "
                f"{s.mean_hold_cycles:.0f} / max {s.max_hold_cycles} cycles")
            if s.contended:
                lines.append(
                    f"    contended: {s.contended}x, "
                    f"{s.contention_cycles} cycles spun")
            for site, count in s.top_sites(3):
                lines.append(f"    {count:6d}x  {site}")
        return "\n".join(lines)
