"""In-kernel invariant monitors (§3.3's planned refcount/spinlock/semaphore
monitors, implemented).

Each registers as a dispatcher callback and verifies a higher-level
property over the event stream:

* :class:`SpinlockMonitor` — "spinlocks that are locked are later
  unlocked": lock/unlock must alternate per object; ``held()`` lists locks
  currently held (leak candidates at shutdown).
* :class:`RefcountMonitor` — "reference counters are incremented and
  decremented symmetrically": per-object net counts, underflow detection,
  and end-of-run imbalance reporting.
* :class:`SemaphoreMonitor` — down/up pairing.
* :class:`IrqMonitor` — "interrupts that are disabled are later
  re-enabled": nesting depth must return to zero and never go negative.
* :class:`SocketMonitor` — accepted connections are eventually closed;
  packet drops are accounted per connection.

Monitors record violations rather than raising: a real in-kernel monitor
must never take the machine down itself.  ``strict=True`` opts into
raising :class:`InvariantViolation` immediately (useful in tests).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.errors import InvariantViolation
from repro.kernel.locks import (EV_IRQ_DISABLE, EV_IRQ_ENABLE, EV_LOCK,
                                EV_REF_DEC, EV_REF_INC, EV_SEM_DOWN,
                                EV_SEM_UP, EV_UNLOCK)
from repro.safety.monitor.events import (EV_SOCK_ACCEPT, EV_SOCK_CLOSE,
                                         EV_SOCK_DROP, Event)


@dataclass(frozen=True)
class Violation:
    rule: str
    obj_id: int
    site: str
    detail: str


class _BaseMonitor:
    def __init__(self, *, strict: bool = False):
        self.strict = strict
        self.violations: list[Violation] = []
        self.events_seen = 0

    def _violate(self, rule: str, obj_id: int, site: str, detail: str) -> None:
        violation = Violation(rule, obj_id, site, detail)
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolation(rule, f"{detail} (obj {obj_id:#x}, {site})")

    def __call__(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SpinlockMonitor(_BaseMonitor):
    """lock/unlock must strictly alternate per lock object."""

    def __init__(self, *, strict: bool = False):
        super().__init__(strict=strict)
        self._held: dict[int, str] = {}  # obj -> site of the lock
        self.hold_counts: Counter = Counter()

    def __call__(self, event: Event) -> None:
        if event.event_type not in (EV_LOCK, EV_UNLOCK):
            return
        self.events_seen += 1
        if event.event_type == EV_LOCK:
            if event.obj_id in self._held:
                self._violate("spinlock-no-recursion", event.obj_id,
                              event.site, "lock acquired while already held")
            self._held[event.obj_id] = event.site
            self.hold_counts[event.obj_id] += 1
        else:
            if event.obj_id not in self._held:
                self._violate("spinlock-balanced", event.obj_id, event.site,
                              "unlock of a lock that is not held")
            else:
                del self._held[event.obj_id]

    def held(self) -> dict[int, str]:
        """Locks still held (object -> acquisition site)."""
        return dict(self._held)


class RefcountMonitor(_BaseMonitor):
    """inc/dec symmetry per counter object."""

    def __init__(self, *, strict: bool = False):
        super().__init__(strict=strict)
        self.incs: Counter = Counter()
        self.decs: Counter = Counter()
        self.last_value: dict[int, int] = {}
        self.sites: dict[int, set[str]] = defaultdict(set)

    def __call__(self, event: Event) -> None:
        if event.event_type not in (EV_REF_INC, EV_REF_DEC):
            return
        self.events_seen += 1
        self.sites[event.obj_id].add(event.site)
        self.last_value[event.obj_id] = event.value
        if event.event_type == EV_REF_INC:
            self.incs[event.obj_id] += 1
        else:
            self.decs[event.obj_id] += 1
            if event.value < 0:
                self._violate("refcount-no-underflow", event.obj_id,
                              event.site, f"count went negative ({event.value})")

    def net(self, obj_id: int) -> int:
        return self.incs[obj_id] - self.decs[obj_id]

    def imbalances(self) -> dict[int, int]:
        """Objects whose incs != decs over the observed window."""
        out: dict[int, int] = {}
        for obj_id in set(self.incs) | set(self.decs):
            net = self.net(obj_id)
            if net != 0:
                out[obj_id] = net
        return out

    def report_asymmetries(self) -> list[Violation]:
        """End-of-run symmetry audit (call after the watched epoch)."""
        found = []
        for obj_id, net in sorted(self.imbalances().items()):
            sites = ", ".join(sorted(self.sites[obj_id]))[:120]
            found.append(Violation("refcount-symmetric", obj_id, sites,
                                   f"net {net:+d} over window"))
        return found


class SemaphoreMonitor(_BaseMonitor):
    """down/up pairing per semaphore."""

    def __init__(self, *, strict: bool = False):
        super().__init__(strict=strict)
        self.outstanding: Counter = Counter()

    def __call__(self, event: Event) -> None:
        if event.event_type not in (EV_SEM_DOWN, EV_SEM_UP):
            return
        self.events_seen += 1
        if event.event_type == EV_SEM_DOWN:
            self.outstanding[event.obj_id] += 1
        else:
            self.outstanding[event.obj_id] -= 1
            if self.outstanding[event.obj_id] < 0:
                self._violate("semaphore-balanced", event.obj_id, event.site,
                              "up without matching down")

    def unbalanced(self) -> dict[int, int]:
        return {k: v for k, v in self.outstanding.items() if v != 0}


class IrqMonitor(_BaseMonitor):
    """interrupt disable/enable nesting must balance and never go negative."""

    def __init__(self, *, strict: bool = False):
        super().__init__(strict=strict)
        self.depth: Counter = Counter()  # per CPU/object id

    def __call__(self, event: Event) -> None:
        if event.event_type not in (EV_IRQ_DISABLE, EV_IRQ_ENABLE):
            return
        self.events_seen += 1
        if event.event_type == EV_IRQ_DISABLE:
            self.depth[event.obj_id] += 1
        else:
            self.depth[event.obj_id] -= 1
            if self.depth[event.obj_id] < 0:
                self._violate("irq-balanced", event.obj_id, event.site,
                              "enable without matching disable")

    def still_disabled(self) -> dict[int, int]:
        return {k: v for k, v in self.depth.items() if v > 0}


class SocketMonitor(_BaseMonitor):
    """Socket lifecycle hygiene over ``sock.accept``/``close``/``drop``.

    Rules: every accepted connection is eventually closed (a server that
    accepts and forgets leaks fds and wedges its peers), and packet drops
    are charged to the connection that suffered them.  ``leaked()`` lists
    accepted-but-never-closed sockets — call it after the watched epoch.
    """

    def __init__(self, *, strict: bool = False):
        super().__init__(strict=strict)
        self._accepted: dict[int, str] = {}  # obj -> accept site
        self.accepts = 0
        self.closes = 0
        self.drops: Counter = Counter()      # obj -> packets dropped

    def __call__(self, event: Event) -> None:
        if event.event_type not in (EV_SOCK_ACCEPT, EV_SOCK_CLOSE,
                                    EV_SOCK_DROP):
            return
        self.events_seen += 1
        if event.event_type == EV_SOCK_ACCEPT:
            self.accepts += 1
            self._accepted[event.obj_id] = event.site
        elif event.event_type == EV_SOCK_CLOSE:
            self.closes += 1
            self._accepted.pop(event.obj_id, None)
        else:
            self.drops[event.obj_id] += 1

    def leaked(self) -> dict[int, str]:
        """Accepted sockets never closed (object -> accept site)."""
        return dict(self._accepted)

    def report_leaks(self) -> list[Violation]:
        """End-of-run audit: every accept must have a matching close."""
        return [Violation("socket-accept-close", obj_id, site,
                          "accepted connection never closed")
                for obj_id, site in sorted(self._accepted.items())]
