"""The event dispatcher (center of Figure 1).

"The log_event call invokes an event dispatcher, which in turn invokes a
set of callbacks.  When high performance is needed, an event monitor
should be developed as a kernel module and register a callback with the
dispatcher."  User-space delivery goes through the ring buffer instead.

Attaching a dispatcher to a kernel is what turns a "vanilla" build into an
"instrumented" one; the 3.9% overhead the paper measures for
dispatcher+ring-buffer falls out of the dispatch and enqueue charges here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.kernel.clock import Mode
from repro.safety.monitor.events import Event, SiteTable
from repro.safety.monitor.ringbuf import LockFreeRingBuffer

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.core import Kernel

Callback = Callable[[Event], None]


class EventDispatcher:
    """Fan-out from ``log_event`` to callbacks and the ring buffer."""

    def __init__(self, kernel: "Kernel", *, ring_capacity: int = 4096):
        self.kernel = kernel
        self.callbacks: list[Callback] = []
        self.ring: LockFreeRingBuffer[Event] = LockFreeRingBuffer(ring_capacity)
        self.ring_enabled = False
        self.sites = SiteTable()
        self.events_dispatched = 0
        self._attached = False

    # ------------------------------------------------------------ lifecycle

    def attach(self) -> "EventDispatcher":
        """Hook into the kernel's log_event socket."""
        if not self._attached:
            self.kernel.attach_event_dispatcher(self._on_event)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.kernel.detach_event_dispatcher()
            self._attached = False

    # ------------------------------------------------------------- registry

    def register_callback(self, callback: Callback) -> None:
        """Register an in-kernel (synchronous) monitor."""
        self.callbacks.append(callback)

    def unregister_callback(self, callback: Callback) -> None:
        self.callbacks.remove(callback)

    def enable_ring(self) -> None:
        """Start feeding the user-space path (chardev consumers)."""
        self.ring_enabled = True

    def disable_ring(self) -> None:
        self.ring_enabled = False

    # ------------------------------------------------------------- dispatch

    def describe(self) -> str:
        """Figure 1 as text, annotated with live counts."""
        cbs = len(self.callbacks)
        ring = (f"ring[{len(self.ring)}/{self.ring.capacity}, "
                f"pushed {self.ring.total_pushed}, "
                f"dropped {self.ring.overruns}]"
                if self.ring_enabled else "ring[disabled]")
        return (
            f"log_event ({self.events_dispatched} events)\n"
            f"  └─> dispatcher\n"
            f"        ├─> {cbs} in-kernel callback(s)   (synchronous)\n"
            f"        └─> {ring}\n"
            f"              └─> character device ─> libkernevents (user space)"
        )

    def _on_event(self, obj: Any, event_type: int, site: str) -> None:
        costs = self.kernel.costs
        clock = self.kernel.clock
        clock.charge(costs.monitor_dispatch, Mode.SYSTEM)
        event = Event(
            obj_id=id(obj) & ((1 << 64) - 1),
            event_type=event_type,
            site=site,
            value=getattr(obj, "value", 0) or 0,
            cycles=clock.now,
        )
        self.events_dispatched += 1
        for callback in self.callbacks:
            clock.charge(costs.monitor_dispatch, Mode.SYSTEM)
            callback(event)
        if self.ring_enabled:
            clock.charge(costs.monitor_ring_enqueue, Mode.SYSTEM)
            self.ring.try_push(event)
