"""Event monitoring framework (§3.3, Figure 1).

Structure, matching the figure::

    log_event ──> dispatcher ──> kernel-module callbacks (synchronous)
                      │
                      └──> lock-free ring buffer ──> character device
                                                          │
                                              libkernevents (user space)

In-kernel monitors register callbacks for high performance; user-space
monitors bulk-copy records out through the character device.  The ring
buffer is lock-free so interrupt-context code can be instrumented without
any risk of blocking.
"""

from repro.safety.monitor.events import (Event, pack_event, unpack_events,
                                         EVENT_RECORD_SIZE, EV_SOCK_ACCEPT,
                                         EV_SOCK_CLOSE, EV_SOCK_DROP)
from repro.safety.monitor.ringbuf import LockFreeRingBuffer
from repro.safety.monitor.dispatcher import EventDispatcher
from repro.safety.monitor.chardev import EventCharDevice
from repro.safety.monitor.libkernevents import UserSpaceLogger
from repro.safety.monitor.monitors import (IrqMonitor, RefcountMonitor,
                                           SemaphoreMonitor, SocketMonitor,
                                           SpinlockMonitor)
from repro.safety.monitor.lockprof import LockProfiler, LockStats
from repro.safety.monitor.offline import analyze, load_event_log, OfflineReport

__all__ = [
    "Event", "pack_event", "unpack_events", "EVENT_RECORD_SIZE",
    "EV_SOCK_ACCEPT", "EV_SOCK_CLOSE", "EV_SOCK_DROP",
    "LockFreeRingBuffer", "EventDispatcher", "EventCharDevice",
    "UserSpaceLogger", "RefcountMonitor", "SpinlockMonitor",
    "SemaphoreMonitor", "SocketMonitor", "IrqMonitor",
    "LockProfiler", "LockStats",
    "analyze", "load_event_log", "OfflineReport",
]
