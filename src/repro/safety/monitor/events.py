"""Event records.

"Each event is recorded by a structure that contains a void * that
references the object affected by the event ...; an integer that encodes
the type of event ...; and the source file and line number that triggered
the event.  This structure has been designed to minimize the size of
individual log entries." (§3.3)

The packed wire format (what crosses the character device) is 32 bytes:
``obj_id u64 | event_type u32 | site_id u32 | value i64 | cycles u64``.
Sites (file:line strings) are interned into a side table once, so the
per-record cost stays flat — the same trick the paper's fixed-size record
plays with pointers into the kernel image.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

# Socket lifecycle event codes, re-exported so monitor consumers need not
# reach into the kernel's net package (codes 9.. continue the EV_* numbering
# started in repro.kernel.locks).
from repro.kernel.net.socket import (EV_SOCK_ACCEPT, EV_SOCK_CLOSE,  # noqa: F401
                                     EV_SOCK_DROP)

_RECORD = struct.Struct("<IIQqQ")
EVENT_RECORD_SIZE = _RECORD.size  # 32? -> actually 4+4+8+8+8 = 32


@dataclass(frozen=True)
class Event:
    """One monitored kernel event."""

    obj_id: int      # identity of the affected object (the void *)
    event_type: int  # EV_* code from repro.kernel.locks
    site: str        # "file:line" that triggered the event
    value: int       # current value (e.g. refcount after the op)
    cycles: int      # timestamp

    def key(self) -> tuple[int, int]:
        return (self.obj_id, self.event_type)


class SiteTable:
    """Interns site strings to small ids (shared kernel/user)."""

    def __init__(self) -> None:
        self._by_site: dict[str, int] = {}
        self._by_id: list[str] = []

    def intern(self, site: str) -> int:
        sid = self._by_site.get(site)
        if sid is None:
            sid = len(self._by_id)
            self._by_site[site] = sid
            self._by_id.append(site)
        return sid

    def site(self, sid: int) -> str:
        if 0 <= sid < len(self._by_id):
            return self._by_id[sid]
        return "?"

    def __len__(self) -> int:
        return len(self._by_id)


def pack_event(event: Event, sites: SiteTable) -> bytes:
    return _RECORD.pack(event.event_type, sites.intern(event.site),
                        event.obj_id & ((1 << 64) - 1), event.value,
                        event.cycles)


def unpack_events(data: bytes, sites: SiteTable) -> list[Event]:
    if len(data) % EVENT_RECORD_SIZE:
        raise ValueError(f"event stream of {len(data)} bytes is not a "
                         f"multiple of {EVENT_RECORD_SIZE}")
    events = []
    for off in range(0, len(data), EVENT_RECORD_SIZE):
        etype, sid, obj_id, value, cycles = _RECORD.unpack_from(data, off)
        events.append(Event(obj_id=obj_id, event_type=etype,
                            site=sites.site(sid), value=value, cycles=cycles))
    return events
