"""A lock-free single-producer/single-consumer ring buffer.

"User-space event monitors receive events through a character device
interface to a lock-free ring buffer.  Because the ring buffer is
lock-free, we can instrument code that is invoked during interrupt
handlers without fear that the interrupt handler will block." (§3.3)

The classic SPSC design: ``head`` (producer) and ``tail`` (consumer) are
monotonically increasing counters; each side writes only its own counter,
so no lock is needed.  Both operations are explicitly non-blocking: a full
buffer *drops* the new event (counted in ``overruns``) rather than
waiting, preserving the never-block guarantee inside interrupt handlers.
"""

from __future__ import annotations

from typing import Generic, TypeVar

T = TypeVar("T")


class LockFreeRingBuffer(Generic[T]):
    """Bounded SPSC queue with drop-on-full semantics."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0 or capacity & (capacity - 1):
            raise ValueError("capacity must be a positive power of two")
        self.capacity = capacity
        self._slots: list[T | None] = [None] * capacity
        self._head = 0  # next write position (producer-owned)
        self._tail = 0  # next read position (consumer-owned)
        self.total_pushed = 0
        self.overruns = 0

    # -------------------------------------------------------------- producer

    def try_push(self, item: T) -> bool:
        """Producer side: enqueue or drop (never blocks)."""
        if self._head - self._tail >= self.capacity:
            self.overruns += 1
            return False
        self._slots[self._head & (self.capacity - 1)] = item
        # The store above must be visible before the index publish; in
        # Python the GIL gives us that ordering for free.
        self._head += 1
        self.total_pushed += 1
        return True

    # -------------------------------------------------------------- consumer

    def try_pop(self) -> T | None:
        """Consumer side: dequeue one item or None (never blocks)."""
        if self._tail == self._head:
            return None
        item = self._slots[self._tail & (self.capacity - 1)]
        self._slots[self._tail & (self.capacity - 1)] = None
        self._tail += 1
        return item

    def pop_batch(self, max_items: int) -> list[T]:
        """Bulk dequeue, the libkernevents read path."""
        out: list[T] = []
        while len(out) < max_items:
            item = self.try_pop()
            if item is None:
                break
            out.append(item)
        return out

    # ----------------------------------------------------------------- state

    def __len__(self) -> int:
        return self._head - self._tail

    @property
    def empty(self) -> bool:
        return self._head == self._tail

    @property
    def full(self) -> bool:
        return self._head - self._tail >= self.capacity
