"""A lock-free single-producer/single-consumer ring buffer.

"User-space event monitors receive events through a character device
interface to a lock-free ring buffer.  Because the ring buffer is
lock-free, we can instrument code that is invoked during interrupt
handlers without fear that the interrupt handler will block." (§3.3)

The classic SPSC design: ``head`` (producer) and ``tail`` (consumer) are
monotonically increasing counters; each side writes only its own counter,
so no lock is needed.  Both operations are explicitly non-blocking: what a
full buffer does is the ``policy``:

* ``"drop-new"`` (default, the §3.3 monitor semantics) — the new event is
  dropped, counted in ``overruns``, preserving the never-block guarantee
  inside interrupt handlers;
* ``"drop-oldest"`` (ftrace-style, used by ``repro.trace``) — the oldest
  queued event is overwritten, counted in ``dropped_oldest``, so the
  buffer always holds the *most recent* window of events.
"""

from __future__ import annotations

from typing import Generic, TypeVar

T = TypeVar("T")

POLICIES = ("drop-new", "drop-oldest")


class LockFreeRingBuffer(Generic[T]):
    """Bounded SPSC queue with drop-new or drop-oldest overflow policy."""

    def __init__(self, capacity: int = 4096, policy: str = "drop-new"):
        if capacity <= 0 or capacity & (capacity - 1):
            raise ValueError("capacity must be a positive power of two")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        self.capacity = capacity
        self.policy = policy
        self._slots: list[T | None] = [None] * capacity
        self._head = 0  # next write position (producer-owned)
        self._tail = 0  # next read position (consumer-owned)
        self.total_pushed = 0
        self.overruns = 0
        self.dropped_oldest = 0

    # -------------------------------------------------------------- producer

    def try_push(self, item: T) -> bool:
        """Producer side: enqueue, drop the item, or drop the oldest
        (never blocks)."""
        if self._head - self._tail >= self.capacity:
            if self.policy == "drop-new":
                self.overruns += 1
                return False
            # drop-oldest: the slot the tail points at is the one the head
            # is about to overwrite (head ≡ tail mod capacity when full).
            self._tail += 1
            self.dropped_oldest += 1
        self._slots[self._head & (self.capacity - 1)] = item
        # The store above must be visible before the index publish; in
        # Python the GIL gives us that ordering for free.
        self._head += 1
        self.total_pushed += 1
        return True

    # -------------------------------------------------------------- consumer

    def try_pop(self) -> T | None:
        """Consumer side: dequeue one item or None (never blocks)."""
        if self._tail == self._head:
            return None
        item = self._slots[self._tail & (self.capacity - 1)]
        self._slots[self._tail & (self.capacity - 1)] = None
        self._tail += 1
        return item

    def pop_batch(self, max_items: int) -> list[T]:
        """Bulk dequeue, the libkernevents read path."""
        out: list[T] = []
        while len(out) < max_items:
            item = self.try_pop()
            if item is None:
                break
            out.append(item)
        return out

    # ----------------------------------------------------------------- state

    def __len__(self) -> int:
        return self._head - self._tail

    @property
    def empty(self) -> bool:
        return self._head == self._tail

    @property
    def full(self) -> bool:
        return self._head - self._tail >= self.capacity
